"""The middleware mechanism: contexts, the hook chain, and seam metrics.

The source paper's central idea is middleware-mediated interception:
cross-cutting concerns live in a composable chain *around* the mechanism
instead of inside it.  This module supplies that mechanism for the repro
stack.  A :class:`Middleware` sees every call that crosses one of four hot
seams as a :class:`MiddlewareContext` plus a ``call_next`` continuation:

``engine``
    op admission in :class:`repro.sim.engine.SimEngine` — one interception
    per ``run()``/``run_batch()``/``run_vector()`` invocation (coarse-grained
    on purpose: wrapping the per-op inner loop would tax the 100k-op vector
    path the whole engine rewrite was about).
``dispatch``
    scenario execution in :mod:`repro.dispatch` — wrapped on the *executing*
    side (serial in-process, pool child, cluster worker daemon), so the same
    chain runs wherever the task actually lands.
``cli``
    command dispatch in ``repro <command>``.
``serve``
    request admission in the ``repro serve`` daemon (:mod:`repro.serve`) —
    one interception per ``simulate``/``compare``/``sweep`` request, built
    from the *server's* policy only, which is what makes admission control
    (``quota:...``, ``concurrency:...``) enforceable: clients override
    execution fields per request, never the server's chain.

Which middleware run is policy, not mechanism: the chain is described by
spec strings on ``ExecutionPolicy.middleware`` (resolved arg > ``configure``
context > ``$REPRO_MIDDLEWARE`` > default-empty) and instantiated where it
executes.  Spec strings — not instances — cross process boundaries, which is
what makes the chain trivially picklable to pool and cluster workers.

Ordering semantics are the conventional onion: the first middleware in the
chain is outermost — it sees the context first on the way in and the result
last on the way out.  A middleware that returns without invoking
``call_next`` short-circuits everything deeper, including the wrapped
operation itself; an exception raised by the operation propagates outward
through every middleware unless one of them handles it.

This module depends only on the stdlib and ``repro.common.errors`` so every
other layer (policy, engine, dispatch, CLI) can import it without cycles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.common.errors import ConfigurationError

#: The four interception seams.  Seam names appear in ``MiddlewareContext.seam``
#: and key the process-wide timing metrics.
SEAM_ENGINE = "engine"
SEAM_DISPATCH = "dispatch"
SEAM_CLI = "cli"
SEAM_SERVE = "serve"
SEAMS = (SEAM_ENGINE, SEAM_DISPATCH, SEAM_CLI, SEAM_SERVE)


@dataclass(frozen=True)
class MiddlewareContext:
    """What one intercepted call looks like to the chain.

    ``seam``
        which seam fired (:data:`SEAM_ENGINE` / :data:`SEAM_DISPATCH` /
        :data:`SEAM_CLI`).
    ``name``
        a human-readable label for the intercepted operation — the engine
        name and run method, the dispatched worker spec, or the CLI command.
    ``policy``
        the resolved :class:`~repro.runtime.ExecutionPolicy` active at the
        seam (``None`` only in unit tests that exercise the chain bare).
    ``payload``
        seam-specific metadata — e.g. ``{"index", "attempts", "worker_id"}``
        at the dispatch seam, ``{"scheduler", "op_count"}`` at the engine
        seam.  Read-only by convention: middleware observe it, they do not
        steer the mechanism through it.
    ``started``
        ``time.perf_counter()`` at context creation — a monotonic timestamp
        middleware can diff against for latency without re-reading the clock.
    """

    seam: str
    name: str
    policy: Any = None
    payload: Mapping[str, Any] = field(default_factory=dict)
    started: float = field(default_factory=time.perf_counter)


class Middleware:
    """Base middleware: an observe-only pass-through.

    Subclasses override :meth:`handle`; the base implementation forwards to
    ``call_next`` untouched, so it doubles as the ``noop`` spec used by the
    overhead benchmark and the differential identity tests.
    """

    def handle(
        self, context: MiddlewareContext, call_next: Callable[[MiddlewareContext], Any]
    ) -> Any:
        """Intercept one call; return its (possibly substituted) result.

        ``call_next(context)`` invokes the rest of the chain and, at the
        innermost position, the wrapped operation itself.  Not calling it
        short-circuits; calling it more than once re-executes the remainder
        of the chain (how :class:`~repro.middleware.builtin.RetryMiddleware`
        retries).
        """
        return call_next(context)


class MiddlewareChain:
    """An ordered stack of middleware composed into one continuation.

    The chain is immutable; :meth:`run` threads a context through every
    middleware (first entry outermost) down to the wrapped zero-argument
    callable.  An empty chain is falsy, so seams can skip interception with
    a single truthiness check — the no-middleware fast path costs nothing.
    """

    __slots__ = ("middlewares",)

    def __init__(self, middlewares: tuple[Middleware, ...] = ()) -> None:
        for candidate in middlewares:
            if not callable(getattr(candidate, "handle", None)):
                raise ConfigurationError(
                    f"middleware {candidate!r} does not provide a handle() method"
                )
        object.__setattr__(self, "middlewares", tuple(middlewares))

    def __bool__(self) -> bool:
        return bool(self.middlewares)

    def __len__(self) -> int:
        return len(self.middlewares)

    def run(self, context: MiddlewareContext, call: Callable[[], Any]) -> Any:
        """Run ``call`` through the chain under ``context``."""
        middlewares = self.middlewares

        def continuation(position: int) -> Callable[[MiddlewareContext], Any]:
            if position >= len(middlewares):
                return lambda _context: call()
            nxt = continuation(position + 1)
            return lambda ctx: middlewares[position].handle(ctx, nxt)

        return continuation(0)(context)


# --------------------------------------------------------------------- metrics

# Process-wide per-seam timing registry, fed by TimingMiddleware and surfaced
# through ``repro config --json``.  A plain dict keyed by seam: entries are
# only ever mutated under the GIL by whichever thread runs the seam, and the
# consumers (CLI diagnostics, tests) read snapshots.
_SEAM_METRICS: dict[str, dict[str, float]] = {}


def _metrics_entry(seam: str) -> dict[str, float]:
    entry = _SEAM_METRICS.get(seam)
    if entry is None:
        entry = {
            "count": 0,
            "errors": 0,
            "total_s": 0.0,
            "min_s": float("inf"),
            "max_s": 0.0,
            "last_s": 0.0,
        }
        _SEAM_METRICS[seam] = entry
    return entry


def record_seam_timing(metrics: dict[str, float], elapsed: float, *, error: bool) -> None:
    """Fold one completed interception into a metrics entry (in place)."""
    if error:
        metrics["errors"] += 1
    metrics["total_s"] += elapsed
    metrics["min_s"] = min(metrics["min_s"], elapsed)
    metrics["max_s"] = max(metrics["max_s"], elapsed)
    metrics["last_s"] = elapsed


def middleware_metrics() -> dict[str, dict[str, float]]:
    """A snapshot of the process-wide per-seam timing metrics.

    Empty until a :class:`~repro.middleware.builtin.TimingMiddleware` has
    intercepted at least one call.  ``count`` is incremented at seam *entry*
    and the duration fields at exit, so an in-flight interception (the CLI
    seam while ``repro config`` itself runs) is already visible in ``count``.
    The snapshot is JSON-ready: a seam with no *completed* interception yet
    reports ``min_s`` as ``0.0``, not the internal ``inf`` sentinel.
    """
    snapshot = {}
    for seam, entry in _SEAM_METRICS.items():
        entry = dict(entry)
        if entry["min_s"] == float("inf"):
            entry["min_s"] = 0.0
        snapshot[seam] = entry
    return snapshot


def reset_middleware_metrics() -> None:
    """Clear the process-wide timing metrics (test isolation hook)."""
    _SEAM_METRICS.clear()
