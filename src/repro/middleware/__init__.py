"""Composable interception around the stack's four hot seams.

The mechanism/policy split the source paper argues for: this package is the
*mechanism* — :class:`MiddlewareContext`, :class:`Middleware`,
:class:`MiddlewareChain`, and the built-in concerns (timing, logging, retry,
fault injection, quotas, concurrency bounds) — while *which* middleware run
where is policy, declared as spec strings on ``ExecutionPolicy.middleware``
and resolved like every other runtime knob (arg > context >
``$REPRO_MIDDLEWARE`` > default-empty).

See ``docs/middleware.md`` for seams, ordering semantics, the spec grammar,
and worker-pickling caveats.
"""

from repro.middleware.base import (
    SEAM_CLI,
    SEAM_DISPATCH,
    SEAM_ENGINE,
    SEAM_SERVE,
    SEAMS,
    Middleware,
    MiddlewareChain,
    MiddlewareContext,
    middleware_metrics,
    reset_middleware_metrics,
)
from repro.middleware.builtin import (
    DEFAULT_RETRY_ATTEMPTS,
    MIDDLEWARE_FACTORIES,
    ConcurrencyLimitError,
    ConcurrencyMiddleware,
    FaultInjectionMiddleware,
    InjectedFault,
    LoggingMiddleware,
    QuotaExceededError,
    QuotaMiddleware,
    RetryMiddleware,
    TimingMiddleware,
    build_chain,
    build_middleware,
    effective_middleware_specs,
    normalize_middleware_specs,
    parse_middleware_spec,
    retry_attempts_from_specs,
)

__all__ = [
    "SEAM_CLI",
    "SEAM_DISPATCH",
    "SEAM_ENGINE",
    "SEAM_SERVE",
    "SEAMS",
    "DEFAULT_RETRY_ATTEMPTS",
    "MIDDLEWARE_FACTORIES",
    "ConcurrencyLimitError",
    "ConcurrencyMiddleware",
    "FaultInjectionMiddleware",
    "InjectedFault",
    "LoggingMiddleware",
    "Middleware",
    "MiddlewareChain",
    "MiddlewareContext",
    "QuotaExceededError",
    "QuotaMiddleware",
    "RetryMiddleware",
    "TimingMiddleware",
    "build_chain",
    "build_middleware",
    "effective_middleware_specs",
    "middleware_metrics",
    "normalize_middleware_specs",
    "parse_middleware_spec",
    "reset_middleware_metrics",
    "retry_attempts_from_specs",
]
