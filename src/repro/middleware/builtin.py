"""The built-in middleware and the spec grammar that names them.

A chain is configured as a sequence of **spec strings**, each
``name[:key=value[:key=value...]]`` — colons separate arguments so commas
stay free to separate specs in ``$REPRO_MIDDLEWARE`` and ``--middleware``::

    REPRO_MIDDLEWARE="timing,logging"
    repro --middleware retry:attempts=3:backoff=0.1 sweep ...
    middleware=("fault:mode=crash:index=1", "retry:attempts=1")

Specs — not instances — live on ``ExecutionPolicy.middleware`` and travel
to pool and cluster workers inside the pickled policy; :func:`build_chain`
instantiates them on the executing side.  Chains are cached per spec tuple,
so every dispatch at a seam reuses one chain (and one set of
:class:`TimingMiddleware` counters) per process.
"""

from __future__ import annotations

import hashlib
import logging
import os
import threading
import time
from collections import deque
from functools import lru_cache
from typing import Any, Callable, Iterable, Mapping

from repro.common.errors import ConfigurationError, ReproError
from repro.middleware.base import (
    Middleware,
    MiddlewareChain,
    MiddlewareContext,
    SEAM_DISPATCH,
    SEAM_SERVE,
    SEAMS,
    _metrics_entry,
    record_seam_timing,
)
from repro.obs import metrics as obs_metrics

log = logging.getLogger("repro.middleware")

#: Default retry bound of the ``retry`` spec: re-attempts after the first
#: try, matching the cluster coordinator's historical ``max_retries`` knob
#: (which now derives from this spec — see ``repro.dispatch.cluster``).
DEFAULT_RETRY_ATTEMPTS = 2


class InjectedFault(RuntimeError):
    """The deterministic failure raised by ``FaultInjectionMiddleware`` in raise mode."""


class QuotaExceededError(ReproError):
    """A client exhausted its request quota (``quota:...`` middleware).

    The serve layer maps this to HTTP 429; a framed client sees it as a
    ``status=429`` error response.
    """


class ConcurrencyLimitError(ReproError):
    """Admission rejected at the concurrency bound (``concurrency:...``, reject mode).

    The serve layer maps this to HTTP 503 — the canonical "shed load, retry
    later" signal.
    """


# ------------------------------------------------------------------ middlewares


class TimingMiddleware(Middleware):
    """Per-seam latency/counter metrics.

    Counts are incremented at seam entry and durations folded in at exit,
    into both this instance's ``metrics`` and the process-wide registry
    behind :func:`repro.middleware.middleware_metrics` (what
    ``repro config --json`` surfaces).  Observe-only: results and exceptions
    pass through untouched.
    """

    def __init__(self) -> None:
        self.metrics: dict[str, dict[str, float]] = {}

    def _entry(self, seam: str) -> dict[str, float]:
        entry = self.metrics.get(seam)
        if entry is None:
            entry = {
                "count": 0,
                "errors": 0,
                "total_s": 0.0,
                "min_s": float("inf"),
                "max_s": 0.0,
                "last_s": 0.0,
            }
            self.metrics[seam] = entry
        return entry

    def handle(
        self, context: MiddlewareContext, call_next: Callable[[MiddlewareContext], Any]
    ) -> Any:
        mine = self._entry(context.seam)
        shared = _metrics_entry(context.seam)
        mine["count"] += 1
        shared["count"] += 1
        obs_metrics.SEAM_CALLS.labels(seam=context.seam).inc()
        started = time.perf_counter()
        error = False
        try:
            return call_next(context)
        except BaseException:
            error = True
            raise
        finally:
            elapsed = time.perf_counter() - started
            record_seam_timing(mine, elapsed, error=error)
            record_seam_timing(shared, elapsed, error=error)
            obs_metrics.SEAM_LATENCY.labels(seam=context.seam).observe(elapsed)
            if error:
                obs_metrics.SEAM_ERRORS.labels(seam=context.seam).inc()

    @classmethod
    def from_spec(cls, args: Mapping[str, str]) -> "TimingMiddleware":
        _reject_unknown_args("timing", args, ())
        return cls()


class LoggingMiddleware(Middleware):
    """Logs seam entry, exit (with latency) and errors to ``repro.middleware``.

    Observe-only; quiet by default because the logger propagates to the root
    handler at WARNING.  ``logging:level=debug`` (or ``info``) picks the
    record level.
    """

    _LEVELS = {"debug": logging.DEBUG, "info": logging.INFO, "warning": logging.WARNING}

    def __init__(self, level: str = "debug") -> None:
        if level not in self._LEVELS:
            raise ConfigurationError(
                f"unknown logging middleware level {level!r}; expected one of "
                f"{', '.join(sorted(self._LEVELS))}"
            )
        self.level = level

    def handle(
        self, context: MiddlewareContext, call_next: Callable[[MiddlewareContext], Any]
    ) -> Any:
        level = self._LEVELS[self.level]
        log.log(level, "-> %s %s", context.seam, context.name)
        try:
            result = call_next(context)
        except BaseException as exc:
            log.log(level, "!! %s %s: %r", context.seam, context.name, exc)
            raise
        log.log(
            level,
            "<- %s %s (%.6fs)",
            context.seam,
            context.name,
            time.perf_counter() - context.started,
        )
        return result

    @classmethod
    def from_spec(cls, args: Mapping[str, str]) -> "LoggingMiddleware":
        _reject_unknown_args("logging", args, ("level",))
        return cls(level=args.get("level", "debug"))


class RetryMiddleware(Middleware):
    """Bounded retry with exponential backoff at the dispatch seam.

    ``retry:attempts=N`` allows N re-invocations after the first failure
    (N+1 tries total); ``backoff=S`` sleeps ``S * 2**k`` seconds before retry
    ``k`` (default 0: no sleep, deterministic tests).  Retries application
    exceptions on the executing side; infrastructure failures (a worker
    process dying mid-task) are the cluster coordinator's re-queue bound,
    which now *derives* from this spec — one knob for both layers.

    Active only at the dispatch seam: re-running an engine pass or a CLI
    command on error would repeat side effects, not mask transients.
    """

    def __init__(self, attempts: int = DEFAULT_RETRY_ATTEMPTS, backoff: float = 0.0) -> None:
        if attempts < 0:
            raise ConfigurationError("retry middleware attempts must be >= 0")
        if backoff < 0:
            raise ConfigurationError("retry middleware backoff must be >= 0")
        self.attempts = attempts
        self.backoff = backoff

    def handle(
        self, context: MiddlewareContext, call_next: Callable[[MiddlewareContext], Any]
    ) -> Any:
        if context.seam != SEAM_DISPATCH:
            return call_next(context)
        failures = 0
        while True:
            try:
                return call_next(context)
            except Exception:
                failures += 1
                if failures > self.attempts:
                    raise
                if self.backoff:
                    time.sleep(self.backoff * 2 ** (failures - 1))

    @classmethod
    def from_spec(cls, args: Mapping[str, str]) -> "RetryMiddleware":
        _reject_unknown_args("retry", args, ("attempts", "backoff"))
        return cls(
            attempts=_spec_int("retry", "attempts", args.get("attempts"), DEFAULT_RETRY_ATTEMPTS),
            backoff=_spec_float("retry", "backoff", args.get("backoff"), 0.0),
        )


class FaultInjectionMiddleware(Middleware):
    """Deterministic, seed-driven fault injection at the dispatch seam.

    The first-class replacement for the env-armed fault hooks the cluster
    tests used to plant in worker functions: the fault is policy, declared
    in the spec string, and fires on the executing side wherever the task
    lands — serial process, pool child, or cluster daemon.

    Target selection (all deterministic):

    ``index=I``
        fire only on the task whose dispatch ``payload["index"]`` equals I.
    ``ratio=R:seed=S``
        fire on the fraction R of indices selected by hashing ``"S:index"``
        — the same seed always picks the same tasks, independent of worker
        assignment or timing.
    neither
        fire on every task.

    ``times=K`` arms the fault for the first K delivery attempts of a
    selected task (``payload["attempts"]``, 1-based), so a task crashed once
    succeeds on re-dispatch; ``times=0`` means *every* attempt (retry
    exhaustion).  Modes:

    ``mode=raise``
        raise :class:`InjectedFault` (an application error: no retry by the
        coordinator, surfaces as ``DispatchTaskError``).
    ``mode=crash``
        sleep ``delay`` seconds (default 0.2 — long enough for the lease to
        be observed mid-task), then ``os._exit(exit_code)`` (default 13),
        killing the executing process without cleanup.
    ``mode=hang``
        sleep ``seconds`` (default 30.0) before proceeding — with
        heartbeats disabled this wedges the task past its lease.
    """

    MODES = ("raise", "crash", "hang")

    def __init__(
        self,
        mode: str = "raise",
        index: int | None = None,
        ratio: float | None = None,
        seed: int = 0,
        times: int = 1,
        seconds: float = 30.0,
        delay: float = 0.2,
        exit_code: int = 13,
    ) -> None:
        if mode not in self.MODES:
            raise ConfigurationError(
                f"unknown fault middleware mode {mode!r}; expected one of "
                f"{', '.join(self.MODES)}"
            )
        if ratio is not None and not 0.0 <= ratio <= 1.0:
            raise ConfigurationError("fault middleware ratio must be in [0, 1]")
        if times < 0:
            raise ConfigurationError("fault middleware times must be >= 0")
        self.mode = mode
        self.index = index
        self.ratio = ratio
        self.seed = seed
        self.times = times
        self.seconds = seconds
        self.delay = delay
        self.exit_code = exit_code

    def _selected(self, index: Any) -> bool:
        if self.index is not None:
            return index == self.index
        if self.ratio is not None:
            digest = hashlib.sha256(f"{self.seed}:{index}".encode()).digest()
            return int.from_bytes(digest[:8], "big") / 2**64 < self.ratio
        return True

    def _armed(self, context: MiddlewareContext) -> bool:
        if context.seam != SEAM_DISPATCH:
            return False
        if not self._selected(context.payload.get("index")):
            return False
        attempts = int(context.payload.get("attempts", 1))
        return self.times == 0 or attempts <= self.times

    def handle(
        self, context: MiddlewareContext, call_next: Callable[[MiddlewareContext], Any]
    ) -> Any:
        if self._armed(context):
            if self.mode == "raise":
                raise InjectedFault(
                    f"injected fault at dispatch seam "
                    f"(index={context.payload.get('index')}, "
                    f"attempts={context.payload.get('attempts', 1)})"
                )
            if self.mode == "crash":
                time.sleep(self.delay)
                os._exit(self.exit_code)
            time.sleep(self.seconds)
        return call_next(context)

    @classmethod
    def from_spec(cls, args: Mapping[str, str]) -> "FaultInjectionMiddleware":
        _reject_unknown_args(
            "fault",
            args,
            ("mode", "index", "ratio", "seed", "times", "seconds", "delay", "exit_code"),
        )
        index = args.get("index")
        ratio = args.get("ratio")
        return cls(
            mode=args.get("mode", "raise"),
            index=_spec_int("fault", "index", index, 0) if index is not None else None,
            ratio=_spec_float("fault", "ratio", ratio, 0.0) if ratio is not None else None,
            seed=_spec_int("fault", "seed", args.get("seed"), 0),
            times=_spec_int("fault", "times", args.get("times"), 1),
            seconds=_spec_float("fault", "seconds", args.get("seconds"), 30.0),
            delay=_spec_float("fault", "delay", args.get("delay"), 0.2),
            exit_code=_spec_int("fault", "exit_code", args.get("exit_code"), 13),
        )


class QuotaMiddleware(Middleware):
    """Per-client sliding-window request quota.

    ``quota:limit=N[:window=S][:seam=NAME]`` admits at most N calls per
    client per rolling window of S seconds (default 60) at the configured
    seam (default ``serve``); the N+1th raises :class:`QuotaExceededError`
    *before* ``call_next``, so a throttled request never reaches the
    mechanism.  The client identity is read from ``context.payload["client"]``
    — the serve layer puts the caller's declared id (or peer address) there;
    contexts without one share the ``"anonymous"`` bucket.

    State is per middleware *instance*; chains are cached per spec tuple
    (see :func:`build_chain`), so every request admitted through the same
    declared chain counts against one shared window — exactly the scope an
    admission quota wants.  Thread-safe: serve requests run on a thread pool.
    """

    def __init__(self, limit: int, window: float = 60.0, seam: str = SEAM_SERVE) -> None:
        if limit < 1:
            raise ConfigurationError("quota middleware limit must be >= 1")
        if window <= 0:
            raise ConfigurationError("quota middleware window must be positive")
        if seam not in SEAMS:
            raise ConfigurationError(
                f"unknown quota middleware seam {seam!r}; expected one of {', '.join(SEAMS)}"
            )
        self.limit = int(limit)
        self.window = float(window)
        self.seam = seam
        self._lock = threading.Lock()
        self._admitted: dict[str, deque] = {}

    def handle(
        self, context: MiddlewareContext, call_next: Callable[[MiddlewareContext], Any]
    ) -> Any:
        if context.seam != self.seam:
            return call_next(context)
        client = str(context.payload.get("client") or "anonymous")
        now = time.monotonic()
        with self._lock:
            window = self._admitted.setdefault(client, deque())
            while window and now - window[0] >= self.window:
                window.popleft()
            if len(window) >= self.limit:
                retry_in = self.window - (now - window[0])
                obs_metrics.QUOTA_REJECTIONS.labels(client=client).inc()
                raise QuotaExceededError(
                    f"client {client!r} exceeded {self.limit} request(s) per "
                    f"{self.window:g}s; retry in {max(retry_in, 0.0):.1f}s"
                )
            window.append(now)
        return call_next(context)

    @classmethod
    def from_spec(cls, args: Mapping[str, str]) -> "QuotaMiddleware":
        _reject_unknown_args("quota", args, ("limit", "window", "seam"))
        if "limit" not in args:
            raise ConfigurationError(
                "quota middleware requires a limit, as in quota:limit=60"
            )
        return cls(
            limit=_spec_int("quota", "limit", args.get("limit"), 0),
            window=_spec_float("quota", "window", args.get("window"), 60.0),
            seam=args.get("seam", SEAM_SERVE),
        )


class ConcurrencyMiddleware(Middleware):
    """Bounded in-flight calls at a seam — the backpressure knob.

    ``concurrency:limit=N[:mode=wait|reject][:seam=NAME]`` holds at most N
    calls inside ``call_next`` at once (default seam ``serve``).  ``wait``
    (the default) blocks the excess caller until a slot frees — backpressure
    that surfaces to clients as latency; ``reject`` raises
    :class:`ConcurrencyLimitError` immediately — load shedding.

    Note the interaction with serve-layer request coalescing: the chain runs
    *outside* the coalescing map (so quotas count every request), which means
    a ``wait``-mode limit of 1 serializes identical requests instead of
    letting them share one in-flight computation.  Size the limit above the
    expected duplicate burst when coalescing matters.
    """

    MODES = ("wait", "reject")

    def __init__(self, limit: int, mode: str = "wait", seam: str = SEAM_SERVE) -> None:
        if limit < 1:
            raise ConfigurationError("concurrency middleware limit must be >= 1")
        if mode not in self.MODES:
            raise ConfigurationError(
                f"unknown concurrency middleware mode {mode!r}; expected one of "
                f"{', '.join(self.MODES)}"
            )
        if seam not in SEAMS:
            raise ConfigurationError(
                f"unknown concurrency middleware seam {seam!r}; expected one of "
                f"{', '.join(SEAMS)}"
            )
        self.limit = int(limit)
        self.mode = mode
        self.seam = seam
        self._slots = threading.BoundedSemaphore(self.limit)

    def handle(
        self, context: MiddlewareContext, call_next: Callable[[MiddlewareContext], Any]
    ) -> Any:
        if context.seam != self.seam:
            return call_next(context)
        if not self._slots.acquire(blocking=self.mode == "wait"):
            obs_metrics.CONCURRENCY_REJECTIONS.labels(seam=self.seam).inc()
            raise ConcurrencyLimitError(
                f"concurrency limit of {self.limit} in-flight call(s) reached "
                f"at the {self.seam} seam"
            )
        obs_metrics.CONCURRENCY_IN_FLIGHT.labels(seam=self.seam).inc()
        try:
            return call_next(context)
        finally:
            obs_metrics.CONCURRENCY_IN_FLIGHT.labels(seam=self.seam).dec()
            self._slots.release()

    @classmethod
    def from_spec(cls, args: Mapping[str, str]) -> "ConcurrencyMiddleware":
        _reject_unknown_args("concurrency", args, ("limit", "mode", "seam"))
        if "limit" not in args:
            raise ConfigurationError(
                "concurrency middleware requires a limit, as in concurrency:limit=4"
            )
        return cls(
            limit=_spec_int("concurrency", "limit", args.get("limit"), 0),
            mode=args.get("mode", "wait"),
            seam=args.get("seam", SEAM_SERVE),
        )


# ------------------------------------------------------------------ spec layer


def _reject_unknown_args(
    name: str, args: Mapping[str, str], known: tuple[str, ...]
) -> None:
    unknown = set(args) - set(known)
    if unknown:
        expected = f"expected one of {', '.join(known)}" if known else "takes no arguments"
        raise ConfigurationError(
            f"unknown argument(s) {sorted(unknown)!r} for middleware {name!r}; {expected}"
        )


def _spec_int(name: str, key: str, text: str | None, default: int) -> int:
    if text is None:
        return default
    try:
        return int(text)
    except ValueError:
        raise ConfigurationError(
            f"middleware {name!r} argument {key}={text!r} must be an integer"
        ) from None


def _spec_float(name: str, key: str, text: str | None, default: float) -> float:
    if text is None:
        return default
    try:
        return float(text)
    except ValueError:
        raise ConfigurationError(
            f"middleware {name!r} argument {key}={text!r} must be a number"
        ) from None


def _trace_from_spec(args: Mapping[str, str]) -> Middleware:
    # Deferred import: repro.obs.trace imports the middleware base, which
    # triggers this module while trace is still half-initialised — resolving
    # TraceMiddleware at call time keeps the cycle one-directional.
    from repro.obs.trace import TraceMiddleware

    return TraceMiddleware.from_spec(args)


#: Spec name -> factory.  ``noop`` is the bare observe-only base class, kept
#: first-class for the overhead benchmark and the identity tests.
MIDDLEWARE_FACTORIES: dict[str, Callable[[Mapping[str, str]], Middleware]] = {
    "noop": lambda args: (_reject_unknown_args("noop", args, ()), Middleware())[1],
    "timing": TimingMiddleware.from_spec,
    "logging": LoggingMiddleware.from_spec,
    "retry": RetryMiddleware.from_spec,
    "fault": FaultInjectionMiddleware.from_spec,
    "quota": QuotaMiddleware.from_spec,
    "concurrency": ConcurrencyMiddleware.from_spec,
    "trace": _trace_from_spec,
}


def parse_middleware_spec(spec: str) -> tuple[str, dict[str, str]]:
    """``"name:key=value:..."`` -> ``(name, {key: value})`` (no instantiation)."""
    if not isinstance(spec, str) or not spec.strip():
        raise ConfigurationError(f"middleware spec must be a non-empty string, got {spec!r}")
    head, *rest = [part.strip() for part in spec.strip().split(":")]
    args: dict[str, str] = {}
    for part in rest:
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep or not key.strip():
            raise ConfigurationError(
                f"malformed middleware argument {part!r} in spec {spec!r}; expected key=value"
            )
        args[key.strip()] = value.strip()
    return head, args


def build_middleware(spec: str) -> Middleware:
    """Instantiate one spec string (validating its name and arguments)."""
    name, args = parse_middleware_spec(spec)
    factory = MIDDLEWARE_FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown middleware {name!r}; expected one of "
            f"{', '.join(sorted(MIDDLEWARE_FACTORIES))}"
        )
    return factory(args)


def normalize_middleware_specs(value: Any) -> tuple[str, ...]:
    """Canonicalize + validate a middleware stack description.

    Accepts a comma-separated string (the ``$REPRO_MIDDLEWARE`` /
    ``--middleware`` form) or a sequence of spec strings, and returns the
    canonical tuple stored on ``ExecutionPolicy.middleware``.  Every spec is
    instantiated once here so a typo fails at declaration time, not on the
    first worker.
    """
    if isinstance(value, str):
        value = tuple(part.strip() for part in value.split(",") if part.strip())
    if not isinstance(value, (tuple, list)):
        raise ConfigurationError(
            "middleware must be a comma-separated spec string or a sequence "
            f"of spec strings, got {value!r}"
        )
    specs = tuple(str(spec).strip() for spec in value)
    for spec in specs:
        build_middleware(spec)
    return specs


def retry_attempts_from_specs(
    specs: Iterable[str] | None, default: int = DEFAULT_RETRY_ATTEMPTS
) -> int:
    """The retry bound a ``retry`` spec declares, or ``default`` without one.

    How the cluster coordinator derives its re-queue bound from the policy's
    middleware stack: ``retry:attempts=N`` means N re-attempts after the first
    try at *both* layers — the worker-side :class:`RetryMiddleware` for
    application exceptions and the coordinator's lease re-queue for
    infrastructure failures.
    """
    for spec in specs or ():
        name, args = parse_middleware_spec(spec)
        if name == "retry":
            return _spec_int("retry", "attempts", args.get("attempts"), DEFAULT_RETRY_ATTEMPTS)
    return default


def effective_middleware_specs(policy: Any) -> tuple[str, ...]:
    """The chain a policy actually asks for: declared specs, plus tracing.

    ``ExecutionPolicy.trace`` is the switch that turns span recording on
    without editing the middleware stack — when set, a ``trace`` spec is
    appended (innermost, so its spans sit inside any declared timing/quota
    shells) unless the stack already names one.  Every seam that builds a
    chain from a policy goes through here, so ``--trace`` reaches the CLI,
    serve, dispatch, engine and pipeline seams identically.
    """
    if policy is None:
        return ()
    specs = tuple(getattr(policy, "middleware", ()) or ())
    if not getattr(policy, "trace", False):
        return specs
    for spec in specs:
        if str(spec).split(":", 1)[0].strip() == "trace":
            return specs
    return specs + ("trace",)


@lru_cache(maxsize=64)
def _chain_for(specs: tuple[str, ...]) -> MiddlewareChain:
    return MiddlewareChain(tuple(build_middleware(spec) for spec in specs))


def build_chain(specs: Iterable[str] | None) -> MiddlewareChain | None:
    """Instantiate the chain for a spec tuple; ``None`` when the stack is empty.

    Chains are cached per spec tuple, so repeated dispatches in one process
    share instances (and :class:`TimingMiddleware` accumulates into one set
    of counters).  The ``None`` return lets seams skip interception with a
    single identity check.
    """
    specs = tuple(specs or ())
    if not specs:
        return None
    return _chain_for(specs)
