"""Command-line interface for the reproduction.

Usage (after ``pip install -e .``)::

    python -m repro list-presets
    python -m repro config
    python -m repro --scheduler vector config --json
    python -m repro --middleware timing,logging config --json
    python -m repro compare --model 20B --strategies zero3-offload deep-optimizer-states
    python -m repro experiment fig7
    python -m repro experiment fig2 --models 7B,20B --set iterations=2
    python -m repro sweep --models 7B,20B --strategies zero3-offload,deep-optimizer-states --jobs 4
    python -m repro sweep --models 20B --machines jlse-4xh100,4xv100 --strategies deep-optimizer-states
    python -m repro sweep --worker numeric --models nano --axis seed=0,1,2
    python -m repro pipeline --schedule zb --stages 8 --microbatches 16
    python -m repro pipeline --list-schedules
    python -m repro sweep --worker pipeline --strategies gpipe,1f1b,zb --axis microbatches=4,8,16
    python -m repro sweep --models 20B --strategies deep-optimizer-states --scheduler vector
    python -m repro sweep --executor cluster --workers 2 --bind 127.0.0.1:7931 --progress
    python -m repro worker --connect 127.0.0.1:7931 --retry-for 60
    python -m repro serve --bind 127.0.0.1:7940
    python -m repro --middleware timing,quota:limit=60 serve --bind 127.0.0.1:7940 --jobs 4
    python -m repro sweep --cache-stats --models 7B --strategies deep-optimizer-states
    python -m repro sweep --cache-evict stale
    python -m repro stride --machine jlse-4xh100

The CLI is a thin wrapper over the public API so that the headline results can be
regenerated without writing any Python.  Execution policy is handled globally:
``--scheduler`` / ``--op-backend`` / ``--middleware`` before the subcommand
apply to *every* command by entering a ``repro.configure`` context around
dispatch — the resolved middleware chain also wraps the subcommand itself at
the CLI seam (:mod:`repro.middleware`) — (subcommand
flags such as ``sweep --scheduler`` stay available and win, being explicit
arguments), and ``repro config`` prints the fully resolved
:class:`~repro.runtime.ExecutionPolicy` with each field's source.  ``sweep``
exposes the scenario-sweep subsystem directly: any
:func:`repro.experiments.base.run_training` keyword (or, with ``--worker
numeric``, any :func:`repro.training.numeric.run_numeric_training` keyword)
can become an axis; ``--executor`` picks the dispatch backend
(``serial``/``pool``/``cluster``; ``--jobs`` drives the default choice), with
``--executor cluster`` dispatching over TCP to ``repro worker`` daemons
(``--workers`` of them gate dispatch, ``--bind`` sets the coordinator
address); and results are cached on disk so a repeated invocation is instant
(disable with ``--no-cache``).  ``--progress`` streams one completion line
per scenario from any executor.  The cache is inspectable
(``--cache-stats``) and evictable (``--cache-evict stale|all``) through its
JSON manifest.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import nullcontext

from repro.baselines.registry import available_strategies
from repro.common.errors import ConfigurationError
from repro.core.performance_model import cpu_to_gpu_update_ratio, optimal_update_stride
from repro.experiments import EXPERIMENT_MODULES
from repro.experiments.base import run_experiment, run_training, training_sweep
from repro.hardware.presets import get_machine_preset, list_machine_presets
from repro.hardware.throughput import ThroughputProfile
from repro.middleware import (
    SEAM_CLI,
    MiddlewareContext,
    build_chain,
    effective_middleware_specs,
    middleware_metrics,
)
from repro.obs.trace import tracing_enabled
from repro.model.presets import list_model_presets
from repro.runtime import (
    EXECUTOR_CHOICES,
    OP_BACKENDS,
    SCHEDULER_CHOICES,
    SWEEP_MODE_CHOICES,
    ExecutionPolicy,
    configure,
    resolution_report,
)
from repro.sweep import SweepRunner, SweepSpec, default_cache_dir
from repro.sweep.cache import cache_stats, evict_cache, format_stats
from repro.training.metrics import format_table
from repro.training.numeric import run_numeric_training
from repro.training.trainer import compare_strategies  # noqa: F401  (public re-export)


def _parse_scalar(text: str):
    """Best-effort scalar parsing for --set/--axis values: int, float, bool, None, str."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _parse_values(text: str) -> tuple:
    """Parse a comma-separated value list into a tuple of scalars."""
    return tuple(_parse_scalar(part) for part in text.split(",") if part != "")


def _parse_assignment(item: str) -> tuple[str, str]:
    """Split one KEY=VALUE argument."""
    key, separator, value = item.partition("=")
    if not separator or not key:
        raise ConfigurationError(f"expected KEY=VALUE, got {item!r}")
    return key.replace("-", "_"), value


def _add_sweep_flags(parser: argparse.ArgumentParser) -> None:
    """Execution-policy flags shared by ``sweep`` and ``compare``."""
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for scenario execution (default: serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    # The default is described, not resolved: parser construction must never
    # run the policy resolver (a broken REPRO_* variable would kill --help).
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default: ~/.cache/repro/sweeps "
                             "or $REPRO_SWEEP_CACHE_DIR)")
    parser.add_argument("--scheduler", choices=SCHEDULER_CHOICES, default=None,
                        help="simulation scheduler backend (byte-identical schedules; "
                             "'auto' picks the vector kernel for large scenarios)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deep Optimizer States reproduction (MIDDLEWARE 2024)",
    )
    # Global execution-policy flags: apply to every subcommand by entering a
    # repro.configure context around dispatch.  Distinct dests keep subcommand
    # defaults (e.g. `sweep --scheduler`) from clobbering them — a classic
    # argparse shared-dest pitfall.
    parser.add_argument("--scheduler", dest="global_scheduler",
                        choices=SCHEDULER_CHOICES, default=None,
                        help="simulation scheduler backend for every command "
                             "('auto' picks the vector kernel for large scenarios)")
    parser.add_argument("--op-backend", dest="global_op_backend",
                        choices=OP_BACKENDS, default=None,
                        help="op-construction backend for every command "
                             "(byte-identical schedules; 'batch' is the fast default)")
    parser.add_argument("--middleware", dest="global_middleware", default=None,
                        metavar="SPEC[,SPEC...]",
                        help="middleware chain for every command, e.g. "
                             "timing,logging or retry:attempts=3:backoff=0.1 "
                             "(overrides $REPRO_MIDDLEWARE; see docs/middleware.md)")
    # store_const rather than store_true: the default must stay None so an
    # unset flag falls through to context/$REPRO_TRACE/default resolution.
    parser.add_argument("--trace", dest="global_trace", action="store_const",
                        const=True, default=None,
                        help="record one span per seam crossing (CLI dispatch, "
                             "serve request, dispatched task, engine run) for "
                             "this command (overrides $REPRO_TRACE; see "
                             "docs/observability.md)")
    parser.add_argument("--trace-out", dest="global_trace_out", default=None,
                        metavar="PATH",
                        help="write the recorded spans as Chrome trace-event "
                             "JSON when the command finishes (implies --trace; "
                             "overrides $REPRO_TRACE_OUT)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-presets", help="list model, machine and strategy presets")

    config = subparsers.add_parser(
        "config", help="print the fully resolved execution policy and each field's source"
    )
    config.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the resolved policy as JSON")

    compare = subparsers.add_parser("compare", help="compare offloading strategies on one job")
    compare.add_argument("--model", default="20B", help="model preset (Table 2 name)")
    compare.add_argument("--machine", default="jlse-4xh100", help="machine preset")
    compare.add_argument("--microbatch", type=int, default=1, help="microbatch size per GPU")
    compare.add_argument("--data-parallel", type=int, default=None, help="data-parallel degree")
    compare.add_argument("--static-gpu-fraction", type=float, default=0.0,
                         help="TwinFlow-style fraction of optimizer state pinned to the GPU")
    compare.add_argument("--iterations", type=int, default=10, help="training iterations")
    compare.add_argument("--strategies", nargs="+", default=available_strategies(),
                         help="strategies to compare")
    compare.add_argument("--trace-out", default=None, dest="trace_out", metavar="PATH",
                         help="export each strategy's simulated schedule as one "
                              "Chrome trace-event file, one process group per "
                              "strategy (re-simulates each non-OOM strategy)")
    _add_sweep_flags(compare)

    experiment = subparsers.add_parser("experiment", help="run one paper experiment (table/figure)")
    experiment.add_argument("experiment_id", choices=sorted(EXPERIMENT_MODULES),
                            help="experiment identifier, e.g. fig7")
    experiment.add_argument("--models", default=None,
                            help="comma-separated model presets forwarded to the experiment")
    experiment.add_argument("--set", action="append", default=[], dest="overrides",
                            metavar="KEY=VALUE",
                            help="forward any run() keyword, e.g. --set iterations=2 "
                                 "(comma-separated values become tuples)")
    experiment.add_argument("--jobs", type=int, default=None,
                            help="worker processes for the experiment's internal sweeps")
    experiment.add_argument("--scheduler", choices=SCHEDULER_CHOICES, default=None,
                            help="simulation scheduler backend for the experiment's "
                                 "internal sweeps (byte-identical schedules)")

    pipeline = subparsers.add_parser(
        "pipeline", help="simulate one pipeline-parallel iteration (gpipe/1f1b/zb)"
    )
    pipeline.add_argument("--schedule", default=None,
                          help="schedule family (gpipe, 1f1b, zb or an alias; "
                               "default: the resolved pipeline_schedule policy field)")
    pipeline.add_argument("--stages", type=int, default=4,
                          help="pipeline depth (stage count)")
    pipeline.add_argument("--microbatches", type=int, default=8,
                          help="microbatches in flight per iteration")
    pipeline.add_argument("--model", default="20B", help="model preset (Table 2 name)")
    pipeline.add_argument("--machine", default="jlse-4xh100", help="machine preset")
    pipeline.add_argument("--microbatch-size", type=int, default=1,
                          help="samples per microbatch")
    pipeline.add_argument("--backward-split", type=float, default=None,
                          help="fraction of the backward pass on the input-gradient "
                               "half (B); the rest is the deferrable W half "
                               "(default 0.5)")
    pipeline.add_argument("--no-activation-checkpointing", action="store_true",
                          help="disable activation checkpointing in the timing model")
    pipeline.add_argument("--list-schedules", action="store_true",
                          help="list the registered schedule families and offload "
                               "strategies, then exit")
    pipeline.add_argument("--json", action="store_true", dest="as_json",
                          help="emit the result as JSON")
    pipeline.add_argument("--scheduler", choices=SCHEDULER_CHOICES, default=None,
                          help="simulation scheduler backend (byte-identical schedules)")
    pipeline.add_argument("--trace-out", default=None, dest="trace_out", metavar="PATH",
                          help="export the simulated schedule as Chrome trace-event "
                               "JSON (one track per stage/link resource; open in "
                               "Perfetto or chrome://tracing)")

    sweep = subparsers.add_parser(
        "sweep", help="run a declarative training-scenario grid, parallel and cached"
    )
    sweep.add_argument("--worker", choices=("training", "numeric", "pipeline"),
                       default=None,
                       dest="worker_kind",
                       help="worker behind the grid: 'training' simulates paper-scale "
                            "jobs (run_training, the default), 'numeric' trains tiny "
                            "models for real (run_numeric_training), 'pipeline' "
                            "simulates pipeline-parallel iterations (run_pipeline; "
                            "--strategies becomes the schedule axis)")
    sweep.add_argument("--executor", default=None,
                       choices=EXECUTOR_CHOICES + ("training", "numeric"),
                       help="dispatch backend: 'serial', 'pool' (local processes), "
                            "'cluster' (TCP to repro worker daemons) or 'auto' "
                            "(pool when --jobs > 1; the default).  'training'/"
                            "'numeric' are deprecated aliases for --worker")
    sweep.add_argument("--workers", type=int, default=None,
                       help="cluster executor: wait for this many connected "
                            "worker daemons before dispatching (default 1, "
                            "or $REPRO_WORKERS)")
    sweep.add_argument("--bind", default="127.0.0.1:0", metavar="HOST:PORT",
                       help="cluster executor: coordinator listen address "
                            "(port 0 picks a free port and prints it)")
    sweep.add_argument("--lease-timeout", type=float, default=None, metavar="SECONDS",
                       help="cluster executor: task lease duration; a worker silent "
                            "for this long has its task re-queued elsewhere")
    sweep.add_argument("--max-retries", type=int, default=None, metavar="N",
                       help="cluster executor: re-dispatch attempts per task after "
                            "worker failures before the sweep errors out "
                            "(deprecated: declare --middleware retry:attempts=N "
                            "instead; an explicit flag still wins)")
    sweep.add_argument("--sweep-mode", choices=SWEEP_MODE_CHOICES, default=None,
                       help="scenario execution shape: 'scenario' runs one task per "
                            "grid point, 'batch' groups same-shape scenarios and "
                            "schedules each group in one stacked pass "
                            "(byte-identical results), 'auto' picks 'batch' when "
                            "the worker supports it (the default)")
    sweep.add_argument("--progress", action="store_true",
                       help="stream one line per completed scenario (id, worker, "
                            "wall time, cache hit/miss, rate/ETA) from any executor")
    sweep.add_argument("--models", default=None,
                       help="comma-separated model presets (one sweep axis; default "
                            "7B,20B for training, nano,tiny-1M for numeric)")
    sweep.add_argument("--strategies", default=None,
                       help="comma-separated strategies (one sweep axis; default: all "
                            "registered offload strategies, or all schedule families "
                            "with --worker pipeline, where this is the schedule axis)")
    sweep.add_argument("--machines", default=None,
                       help="comma-separated machine presets (adds a machine axis, "
                            "training and pipeline workers only), e.g. jlse-4xh100,4xv100")
    sweep.add_argument("--axis", action="append", default=[], dest="axes",
                       metavar="KEY=V1,V2",
                       help="extra axis over a worker keyword, "
                            "e.g. --axis microbatch_size=1,2,4 or --axis machine=jlse-4xh100,4xv100")
    sweep.add_argument("--set", action="append", default=[], dest="overrides",
                       metavar="KEY=VALUE",
                       help="fixed worker keyword applied to every scenario")
    sweep.add_argument("--iterations", type=int, default=4,
                       help="training iterations (numeric executor: steps)")
    sweep.add_argument("--json", default=None, dest="json_path",
                       help="write the structured sweep result to this JSON file")
    sweep.add_argument("--cache-stats", action="store_true",
                       help="print result-cache statistics (entries, bytes, stale "
                            "entries) after the sweep")
    sweep.add_argument("--cache-evict", nargs="?", const="stale",
                       choices=("stale", "all"), default=None,
                       help="evict cache entries instead of sweeping: 'stale' removes "
                            "orphaned/version-mismatched entries, 'all' clears the cache")
    _add_sweep_flags(sweep)

    worker = subparsers.add_parser(
        "worker", help="run a dispatch worker daemon serving cluster sweeps"
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="address of the sweep coordinator "
                             "(repro sweep --executor cluster --bind ...)")
    worker.add_argument("--id", default=None, dest="worker_id",
                        help="worker identity shown in progress lines "
                             "(default: <hostname>-<pid>)")
    worker.add_argument("--heartbeat", type=float, default=None, metavar="SECONDS",
                        help="lease heartbeat interval; 0 disables heartbeats "
                             "(default: what the coordinator suggests)")
    worker.add_argument("--retry-for", type=float, default=0.0, metavar="SECONDS",
                        help="keep retrying the initial connect for this long, so "
                             "daemons can start before the coordinator is listening")

    serve = subparsers.add_parser(
        "serve", help="run the simulation service daemon (framed + HTTP on one port)"
    )
    serve.add_argument("--bind", default="127.0.0.1:0", metavar="HOST:PORT",
                       help="listen address; port 0 picks a free port and prints it "
                            "(IPv6 hosts bracketed, as in [::1]:7940)")
    _add_sweep_flags(serve)

    stride = subparsers.add_parser("stride", help="evaluate Equation 1 for a machine preset")
    stride.add_argument("--machine", default="jlse-4xh100", help="machine preset")
    stride.add_argument("--cores-per-gpu", type=int, default=None, help="CPU cores per GPU")
    return parser


def _cmd_config(args: argparse.Namespace) -> int:
    """Print the resolved execution policy; global flags count as explicit args.

    Fields resolve independently (``resolution_report``), so a broken
    ``REPRO_*`` variable prints as an error row — the command stays usable as
    the tool for diagnosing exactly that — and the exit code turns non-zero.
    """
    described = resolution_report(
        scheduler=args.global_scheduler, op_backend=args.global_op_backend,
        middleware=args.global_middleware,
        trace=args.global_trace, trace_out=args.global_trace_out,
    )
    errors = sum(1 for item in described.values() if "error" in item)
    # TimingMiddleware feeds a process-wide per-seam registry; surface it here.
    # A timing chain on this very invocation is already visible: counts are
    # incremented at seam entry, so the in-flight cli interception shows up.
    metrics = middleware_metrics()
    if args.as_json:
        payload: dict = dict(described)
        if metrics:
            payload["middleware_metrics"] = metrics
        print(json.dumps(payload, indent=2))
        return 1 if errors else 0
    rendered = {
        name: str(item["value"]) if "value" in item else f"<error: {item['error']}>"
        for name, item in described.items()
    }
    width = max(len(name) for name in described)
    value_width = max(len(text) for text in rendered.values())
    print(f"{'field':<{width}}  {'value':<{value_width}}  source")
    for name, item in described.items():
        print(f"{name:<{width}}  {rendered[name]:<{value_width}}  {item['source']}")
    if metrics:
        print("\nmiddleware metrics (this process):")
        for seam, entry in sorted(metrics.items()):
            print(f"  {seam}: count={int(entry['count'])} errors={int(entry['errors'])} "
                  f"total={entry['total_s']:.6f}s last={entry['last_s']:.6f}s")
    return 1 if errors else 0


def _cmd_list_presets() -> int:
    from repro.pipeline import available_schedules

    print("Models    :", ", ".join(list_model_presets(include_tiny=True)))
    print("Machines  :", ", ".join(list_machine_presets()))
    print("Strategies:", ", ".join(available_strategies()))
    print("Schedules :", ", ".join(available_schedules()))
    print("Experiments:", ", ".join(sorted(EXPERIMENT_MODULES)))
    return 0


_REPORT_COLUMNS = ["forward_s", "backward_s", "update_s", "iteration_s",
                   "update_throughput_bpps", "tflops", "end_to_end_s", "oom"]


def _cmd_compare(args: argparse.Namespace) -> int:
    reports = training_sweep(
        {"strategy": tuple(args.strategies)},
        base={
            "model": args.model,
            "machine": args.machine,
            "microbatch_size": args.microbatch,
            "data_parallel_degree": args.data_parallel,
            "static_gpu_fraction": args.static_gpu_fraction,
            "iterations": args.iterations,
            # compare has always averaged steady state over two warmup iterations.
            "warmup_iterations": min(2, args.iterations - 1),
        },
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        scheduler=args.scheduler,
    )
    rows = [report.as_row() for report in reports.values()]
    columns = ["strategy"] + _REPORT_COLUMNS
    print(format_table(rows, columns=[c for c in columns if any(c in row for row in rows)]))
    valid = {name: report for name, report in reports.items() if not report.oom}
    if "zero3-offload" in valid and "deep-optimizer-states" in valid:
        speedup = valid["deep-optimizer-states"].speedup_over(valid["zero3-offload"])
        print(f"\nDeep Optimizer States speedup over ZeRO-3 offload: {speedup:.2f}x")
    if args.trace_out is not None:
        # Reports carry metrics, not schedules; re-simulate each comparable
        # strategy once to render its timeline (cheap next to the sweep above,
        # and byte-identical to what the sweep scheduled).
        from repro.experiments.base import _training_trainer
        from repro.obs.export import write_schedules_trace

        schedules = {}
        with configure(scheduler=args.scheduler):
            for name in valid:
                trainer = _training_trainer(
                    model=args.model, strategy=name, machine=args.machine,
                    static_gpu_fraction=args.static_gpu_fraction,
                    microbatch_size=args.microbatch,
                    data_parallel_degree=args.data_parallel,
                    iterations=args.iterations,
                )
                schedules[name] = trainer.simulate(trainer.config.resolve()).schedule
        path = write_schedules_trace(args.trace_out, schedules)
        print(f"schedule trace written to {path}", file=sys.stderr)
    return 0


def _print_registry(title: str, registry) -> None:
    print(f"{title}:")
    for entry in registry.entries():
        aliases = f"  (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
        print(f"  {entry.name:<22} {entry.description}{aliases}")


_PIPELINE_COLUMNS = (
    "schedule", "stages", "microbatches", "op_count", "makespan_s", "ideal_s",
    "bubble_fraction", "f_s", "b_s", "w_s", "comm_s",
    "min_stage_utilization", "max_stage_utilization",
)


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from repro.baselines.registry import STRATEGIES
    from repro.pipeline import SCHEDULES, simulate_pipeline

    if args.list_schedules:
        # Both scenario families share the registry mechanism; list them
        # together so one command answers "what can I plug in here".
        _print_registry("Pipeline schedules", SCHEDULES)
        _print_registry("Offload strategies", STRATEGIES)
        return 0
    with configure(scheduler=args.scheduler):
        result = simulate_pipeline(
            schedule=args.schedule,
            stages=args.stages,
            microbatches=args.microbatches,
            model=args.model,
            machine=args.machine,
            microbatch_size=args.microbatch_size,
            activation_checkpointing=not args.no_activation_checkpointing,
            **({} if args.backward_split is None
               else {"backward_split": args.backward_split}),
        )
    payload = result.to_dict()
    if args.trace_out is not None:
        from repro.obs.export import write_schedule_trace

        path = write_schedule_trace(
            args.trace_out, result.sim_schedule,
            label=f"pipeline:{payload['schedule']}",
        )
        print(f"schedule trace written to {path}", file=sys.stderr)
    if args.as_json:
        print(json.dumps(payload, indent=2))
        return 0
    width = max(len(name) for name in _PIPELINE_COLUMNS)
    for name in _PIPELINE_COLUMNS:
        value = payload[name]
        rendered = f"{value:.6f}" if isinstance(value, float) else str(value)
        print(f"{name:<{width}}  {rendered}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    kwargs: dict = {}
    if args.models is not None:
        kwargs["models"] = _parse_values(args.models)
    for item in args.overrides:
        key, raw = _parse_assignment(item)
        values = _parse_values(raw)
        if not values:
            raise ConfigurationError(f"--set {key} has no value")
        kwargs[key] = values if len(values) > 1 else values[0]
    # Scoped, not configure_defaults: the override must not outlive this command.
    with configure(jobs=args.jobs, scheduler=args.scheduler):
        result = run_experiment(args.experiment_id, **kwargs)
    print(result.format())
    return 0


class _ProgressPrinter:
    """One completion line per scenario, with live throughput and an ETA.

    Identical for every executor and sweep mode.  Throughput counts *computed*
    scenarios only — cache hits return in microseconds and would otherwise
    inflate the rate the ETA of the remaining computed work is based on; hits
    are tallied separately in each line instead.
    """

    def __init__(self) -> None:
        # Anchored at construction (just before the sweep starts), not at the
        # first event: batched chunks report all their scenarios in one burst
        # after computing, so event-to-event spacing measures nothing.
        self._started = time.perf_counter()
        self._computed = 0
        self._cache_hits = 0

    def _pace(self, event: dict, now: float) -> str:
        elapsed = now - self._started
        if self._computed == 0 or elapsed <= 0:
            return ""
        rate = self._computed / elapsed
        remaining = event["total"] - event["completed"]
        return f" rate={rate:.1f}/s eta={remaining / rate:.0f}s"

    def __call__(self, event: dict) -> None:
        now = time.perf_counter()
        if event["cached"]:
            self._cache_hits += 1
        else:
            self._computed += 1
        status = "hit" if event["cached"] else "miss"
        hits = f" hits={self._cache_hits}" if self._cache_hits else ""
        retried = f" attempts={event['attempts']}" if event["attempts"] > 1 else ""
        print(
            f"[{event['completed']}/{event['total']}] {event['label']} "
            f"worker={event['worker']} wall={event['wall_time']:.2f}s "
            f"cache={status}{self._pace(event, now)}{hits}{retried}",
            flush=True,
        )


def _dispatch_event_printer(event: dict) -> None:
    """Coordinator lifecycle lines (worker joins, lease expiries, re-queues)."""
    kind = event.pop("event")
    detail = " ".join(f"{key}={value}" for key, value in event.items())
    print(f"[dispatch] {kind} {detail}".rstrip(), flush=True)


def _split_sweep_executor(args: argparse.Namespace) -> tuple[str, str | None]:
    """(worker kind, dispatch backend or None) from --worker/--executor.

    ``--executor training|numeric`` predates the dispatch subsystem and named
    the *worker*, not the backend; it keeps working as a deprecated alias so
    existing invocations and docs do not break.  With neither flag given, the
    default worker kind follows the resolved ``scenario_family`` policy field
    (``$REPRO_SCENARIO_FAMILY`` / ``configure(scenario_family=...)``): the
    ``offload`` family sweeps training jobs, ``pipeline`` sweeps schedules.
    """
    worker_kind = args.worker_kind
    backend = args.executor
    if backend in ("training", "numeric"):
        if worker_kind is not None and worker_kind != backend:
            raise ConfigurationError(
                f"--executor {backend} (deprecated alias of --worker {backend}) "
                f"conflicts with --worker {worker_kind}"
            )
        print(f"note: --executor {backend} is deprecated; use --worker {backend}",
              file=sys.stderr)
        worker_kind = backend
        backend = None
    if worker_kind is None:
        family = ExecutionPolicy.resolve(
            env_fields=("scenario_family",)
        ).scenario_family
        worker_kind = "pipeline" if family == "pipeline" else "training"
    return worker_kind, backend


def _cmd_sweep(args: argparse.Namespace) -> int:
    cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()

    # Maintenance mode: evict and report without running a sweep.
    if args.cache_evict is not None:
        report = evict_cache(cache_dir, mode=args.cache_evict)
        print(
            f"evicted {report['removed_files']} cache files "
            f"({report['freed_bytes']} bytes), dropped {report['dropped_entries']} "
            f"manifest entries [{args.cache_evict}]"
        )
        if args.cache_stats:
            print(format_stats(cache_stats(cache_dir)))
        return 0

    worker_kind, executor_backend = _split_sweep_executor(args)
    numeric = worker_kind == "numeric"
    pipeline = worker_kind == "pipeline"
    if args.models is not None:
        models = args.models
    elif numeric:
        models = "nano,tiny-1M"
    elif pipeline:
        models = "20B"
    else:
        models = "7B,20B"
    axes: dict[str, tuple] = {}
    if models:
        axes["model"] = _parse_values(models)
    # The pipeline worker's pluggable axis is the schedule family, so the
    # --strategies flag feeds the "schedule" axis there; both default to every
    # registered member of their registry.
    if args.strategies is not None:
        strategy_values = _parse_values(args.strategies)
    elif pipeline:
        from repro.pipeline import available_schedules

        strategy_values = tuple(available_schedules())
    else:
        strategy_values = tuple(available_strategies())
    if strategy_values:
        axes["schedule" if pipeline else "strategy"] = strategy_values
    if args.machines:
        if numeric:
            raise ConfigurationError(
                "--machines applies to the training and pipeline workers only"
            )
        axes["machine"] = _parse_values(args.machines)
    for item in args.axes:
        key, raw = _parse_assignment(item)
        axes[key] = _parse_values(raw)
    # run_pipeline simulates a single iteration; it takes no iteration count.
    base: dict = {} if pipeline else {"steps" if numeric else "iterations": args.iterations}
    for item in args.overrides:
        key, raw = _parse_assignment(item)
        values = _parse_values(raw)
        if len(values) != 1:
            raise ConfigurationError(
                f"--set {key} must be a single value; use --axis for value lists"
            )
        base[key] = values[0]

    # Cluster-backend options; the runner forwards them only when the policy
    # actually resolves to the cluster executor (which can also happen via
    # $REPRO_EXECUTOR, so they are prepared unconditionally).  The listen
    # address always prints — with --bind HOST:0 it is the only way to learn
    # the port workers should dial; --progress adds the full event stream.
    executor_options: dict = {"bind": args.bind}
    if args.lease_timeout is not None:
        executor_options["lease_timeout"] = args.lease_timeout
    if args.max_retries is not None:
        executor_options["max_retries"] = args.max_retries
    if args.progress:
        executor_options["on_event"] = _dispatch_event_printer
    else:
        executor_options["on_event"] = lambda event: (
            _dispatch_event_printer(event)
            if event.get("event") == "coordinator-listening" else None
        )

    if pipeline:
        from repro.pipeline import run_pipeline

        worker = run_pipeline
    elif numeric:
        worker = run_numeric_training
    else:
        worker = run_training

    spec = SweepSpec.build(axes, base)
    runner = SweepRunner(
        worker,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=cache_dir,
        scheduler=args.scheduler,
        executor=executor_backend,
        workers=args.workers,
        executor_options=executor_options,
        sweep_mode=args.sweep_mode,
        progress=_ProgressPrinter() if args.progress else None,
    )
    result = runner.run(spec)

    if numeric or pipeline:
        # These workers return flat JSON dicts; drop the axis duplicates and
        # inline the rest as value columns.
        axis_columns = list(spec.axis_names)
        rows = result.rows(value_columns=lambda summary: {
            column: value for column, value in summary.items()
            if column not in axis_columns
        })
        value_columns = [c for c in rows[0] if c not in axis_columns and c != "cached"]
    else:
        rows = result.rows(value_columns=lambda report: {
            column: value for column, value in report.as_row().items()
            if column in _REPORT_COLUMNS
        })
        axis_columns = list(spec.axis_names)
        value_columns = [c for c in _REPORT_COLUMNS if any(c in row for row in rows)]
    print(format_table(rows, columns=axis_columns + value_columns + ["cached"]))
    print(
        f"\n{len(result)} scenarios ({result.cache_hits} cached, "
        f"{result.cache_misses} computed) with jobs={result.jobs}"
    )
    if args.json_path:
        path = result.save_json(args.json_path)
        print(f"wrote {path}")
    if args.cache_stats:
        print()
        print(format_stats(cache_stats(cache_dir)))
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.dispatch import WorkerClient

    client = WorkerClient(
        args.connect,
        worker_id=args.worker_id,
        heartbeat=args.heartbeat,
        retry_for=args.retry_for,
        log=lambda line: print(line, flush=True),
    )
    return client.run()


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation service until interrupted.

    The server's policy resolves here, inside the ``configure`` context the
    global flags entered — so ``--middleware quota:limit=60`` (or
    ``$REPRO_MIDDLEWARE``) becomes the serve-seam admission chain, and the
    sweep flags (``--jobs``, ``--no-cache``, ...) become the defaults every
    request inherits unless it carries its own policy overrides.
    """
    import asyncio

    from repro.serve import ReproServer

    policy = ExecutionPolicy.resolve(
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        scheduler=args.scheduler,
    )
    server = ReproServer(args.bind, policy=policy)

    async def _serve() -> None:
        host, port = await server.start()
        # The only way to learn the port under --bind HOST:0, and the line
        # scripts wait for before sending requests.
        print(f"[serve] listening host={host} port={port}", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("[serve] interrupted; shutting down", flush=True)
    return 0


def _cmd_stride(args: argparse.Namespace) -> int:
    machine = get_machine_preset(args.machine)
    profile = ThroughputProfile.from_machine(machine, cores_per_gpu=args.cores_per_gpu)
    ratio = cpu_to_gpu_update_ratio(profile)
    stride = optimal_update_stride(profile)
    print(f"machine            : {machine.name}")
    print(f"PCIe (B)           : {profile.pcie_pps / 1e9:.2f} B params/s")
    print(f"GPU update (U_g)   : {profile.gpu_update_pps / 1e9:.2f} B params/s")
    print(f"CPU update (U_c)   : {profile.cpu_update_pps / 1e9:.2f} B params/s")
    print(f"CPU downscale (D_c): {profile.cpu_downscale_pps / 1e9:.2f} B params/s")
    print(f"Equation 1 ratio   : {ratio:.2f}")
    print(f"Selected stride    : {stride}  (every {stride}-th subgroup updates on the GPU)")
    return 0


def _run_command(args: argparse.Namespace) -> int:
    """Route one parsed invocation to its subcommand handler."""
    if args.command == "list-presets":
        return _cmd_list_presets()
    if args.command == "config":
        return _cmd_config(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "pipeline":
        return _cmd_pipeline(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "stride":
        return _cmd_stride(args)
    return 1  # pragma: no cover - argparse enforces the choices above


def _dispatch_command(args: argparse.Namespace) -> int:
    """Run the subcommand through the CLI-seam middleware chain.

    Only the observability fields resolve here (``env_fields``), so an
    unrelated broken ``REPRO_*`` variable cannot stop command dispatch.  A
    broken ``$REPRO_MIDDLEWARE`` itself degrades to no chain instead of
    raising: ``repro config`` must stay usable as the tool that diagnoses it
    (its middleware row reports the error and the exit code turns non-zero).

    When tracing is on, the CLI-seam span is the root of the command's trace
    and ``trace_out`` names the Chrome trace-event file written after the
    command finishes — success or failure, so a crashed sweep still leaves
    its trace behind.
    """
    try:
        policy = ExecutionPolicy.resolve(env_fields=("middleware", "trace", "trace_out"))
        if policy.trace_out is not None and not policy.trace:
            # Asking for a trace file is asking for a trace.
            policy = policy.with_overrides(trace=True)
        chain = build_chain(effective_middleware_specs(policy))
    except ConfigurationError:
        return _run_command(args)
    if chain is None:
        return _run_command(args)
    context = MiddlewareContext(
        seam=SEAM_CLI,
        name=args.command,
        policy=policy,
        payload={"command": args.command},
    )
    try:
        return chain.run(context, lambda: _run_command(args))
    finally:
        if policy.trace_out is not None and tracing_enabled(policy):
            from repro.obs.trace import write_trace

            path = write_trace(policy.trace_out)
            print(f"trace written to {path}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    overrides = {
        "scheduler": args.global_scheduler, "op_backend": args.global_op_backend,
        "middleware": args.global_middleware,
        # --trace-out implies --trace, and the implication must land at the
        # context level: subcommands resolve their own policies, and only the
        # context reaches all of them.
        "trace": args.global_trace or (True if args.global_trace_out else None),
        "trace_out": args.global_trace_out,
    }
    context = (
        configure(**overrides)
        if any(value is not None for value in overrides.values())
        else nullcontext()
    )
    with context:
        return _dispatch_command(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
