"""Command-line interface for the reproduction.

Usage (after ``pip install -e .``)::

    python -m repro list-presets
    python -m repro compare --model 20B --strategies zero3-offload deep-optimizer-states
    python -m repro experiment fig7
    python -m repro stride --machine jlse-4xh100

The CLI is a thin wrapper over the public API so that the headline results can be
regenerated without writing any Python.
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines.registry import available_strategies
from repro.core.performance_model import cpu_to_gpu_update_ratio, optimal_update_stride
from repro.experiments import EXPERIMENT_MODULES
from repro.experiments.base import run_experiment
from repro.hardware.presets import get_machine_preset, list_machine_presets
from repro.hardware.throughput import ThroughputProfile
from repro.model.presets import list_model_presets
from repro.training.config import TrainingJobConfig
from repro.training.metrics import format_table
from repro.training.trainer import compare_strategies


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deep Optimizer States reproduction (MIDDLEWARE 2024)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-presets", help="list model, machine and strategy presets")

    compare = subparsers.add_parser("compare", help="compare offloading strategies on one job")
    compare.add_argument("--model", default="20B", help="model preset (Table 2 name)")
    compare.add_argument("--machine", default="jlse-4xh100", help="machine preset")
    compare.add_argument("--microbatch", type=int, default=1, help="microbatch size per GPU")
    compare.add_argument("--data-parallel", type=int, default=None, help="data-parallel degree")
    compare.add_argument("--static-gpu-fraction", type=float, default=0.0,
                         help="TwinFlow-style fraction of optimizer state pinned to the GPU")
    compare.add_argument("--iterations", type=int, default=10, help="training iterations")
    compare.add_argument("--strategies", nargs="+", default=available_strategies(),
                         help="strategies to compare")

    experiment = subparsers.add_parser("experiment", help="run one paper experiment (table/figure)")
    experiment.add_argument("experiment_id", choices=sorted(EXPERIMENT_MODULES),
                            help="experiment identifier, e.g. fig7")

    stride = subparsers.add_parser("stride", help="evaluate Equation 1 for a machine preset")
    stride.add_argument("--machine", default="jlse-4xh100", help="machine preset")
    stride.add_argument("--cores-per-gpu", type=int, default=None, help="CPU cores per GPU")
    return parser


def _cmd_list_presets() -> int:
    print("Models    :", ", ".join(list_model_presets(include_tiny=True)))
    print("Machines  :", ", ".join(list_machine_presets()))
    print("Strategies:", ", ".join(available_strategies()))
    print("Experiments:", ", ".join(sorted(EXPERIMENT_MODULES)))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    base = TrainingJobConfig(
        model=args.model,
        machine=args.machine,
        microbatch_size=args.microbatch,
        data_parallel_degree=args.data_parallel,
        static_gpu_fraction=args.static_gpu_fraction,
        iterations=args.iterations,
        warmup_iterations=min(2, args.iterations - 1),
    )
    reports = compare_strategies(base, list(args.strategies))
    rows = [report.as_row() for report in reports.values()]
    columns = ["strategy", "forward_s", "backward_s", "update_s", "iteration_s",
               "update_throughput_bpps", "tflops", "end_to_end_s", "oom"]
    print(format_table(rows, columns=[c for c in columns if any(c in row for row in rows)]))
    valid = {name: report for name, report in reports.items() if not report.oom}
    if "zero3-offload" in valid and "deep-optimizer-states" in valid:
        speedup = valid["deep-optimizer-states"].speedup_over(valid["zero3-offload"])
        print(f"\nDeep Optimizer States speedup over ZeRO-3 offload: {speedup:.2f}x")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(args.experiment_id)
    print(result.format())
    return 0


def _cmd_stride(args: argparse.Namespace) -> int:
    machine = get_machine_preset(args.machine)
    profile = ThroughputProfile.from_machine(machine, cores_per_gpu=args.cores_per_gpu)
    ratio = cpu_to_gpu_update_ratio(profile)
    stride = optimal_update_stride(profile)
    print(f"machine            : {machine.name}")
    print(f"PCIe (B)           : {profile.pcie_pps / 1e9:.2f} B params/s")
    print(f"GPU update (U_g)   : {profile.gpu_update_pps / 1e9:.2f} B params/s")
    print(f"CPU update (U_c)   : {profile.cpu_update_pps / 1e9:.2f} B params/s")
    print(f"CPU downscale (D_c): {profile.cpu_downscale_pps / 1e9:.2f} B params/s")
    print(f"Equation 1 ratio   : {ratio:.2f}")
    print(f"Selected stride    : {stride}  (every {stride}-th subgroup updates on the GPU)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list-presets":
        return _cmd_list_presets()
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "stride":
        return _cmd_stride(args)
    return 1  # pragma: no cover - argparse enforces the choices above


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
