"""Structured sweep results with JSON export.

A :class:`SweepResult` is ordered by *scenario* order (the deterministic row-major
order of the spec, or the caller's explicit list order), never by completion order —
the runner guarantees a parallel, cached sweep is value-identical to the serial
loops it replaces, and this module is where that ordering becomes visible.  Each
:class:`SweepRecord` also carries cache provenance (``from_cache``), so exports can
distinguish computed from replayed values.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.common.errors import ConfigurationError
from repro.common.serialization import to_dict
from repro.sweep.spec import Scenario


@dataclass
class SweepRecord:
    """One scenario together with its computed value."""

    scenario: Scenario
    value: Any
    from_cache: bool = False


@dataclass
class SweepResult:
    """Ordered results of one sweep run (scenario order, not completion order)."""

    records: list[SweepRecord] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1

    def __len__(self) -> int:
        return len(self.records)

    def values(self) -> list[Any]:
        """Values in scenario order."""
        return [record.value for record in self.records]

    def keyed(self, *axes: str) -> dict:
        """Map axis-value keys to values.

        With a single axis the key is the bare value; with several it is the tuple of
        values in the given order.  Duplicate keys raise so silent overwrites cannot
        hide a mis-declared grid.
        """
        if not axes:
            raise ConfigurationError("keyed() needs at least one axis name")
        result: dict = {}
        for record in self.records:
            key = record.scenario.key(axes)
            if len(axes) == 1:
                key = key[0]
            if key in result:
                raise ConfigurationError(f"duplicate sweep key {key!r} for axes {axes}")
            result[key] = record.value
        return result

    def rows(self, value_columns: Callable[[Any], dict] | None = None) -> list[dict]:
        """One flat dict per record: scenario params plus the value's columns.

        ``value_columns`` converts a value into table columns; by default a dict value
        is inlined and anything else lands in a ``value`` column.
        """
        table = []
        for record in self.records:
            row = record.scenario.as_dict()
            value = record.value
            if value_columns is not None:
                row.update(value_columns(value))
            elif isinstance(value, dict):
                row.update(value)
            else:
                row["value"] = value
            row["cached"] = record.from_cache
            table.append(row)
        return table

    def to_dict(self) -> dict:
        """JSON-able representation (dataclass values are serialised recursively)."""
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "jobs": self.jobs,
            "scenarios": [
                {
                    "params": record.scenario.as_dict(),
                    "config_hash": record.scenario.config_hash(),
                    "from_cache": record.from_cache,
                    "value": to_dict(record.value),
                }
                for record in self.records
            ],
        }

    def save_json(self, path: str | Path) -> Path:
        """Write the result to ``path`` as pretty-printed JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path
