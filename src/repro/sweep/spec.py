"""Declarative scenario grids: the configuration model of the sweep subsystem.

A :class:`SweepSpec` describes a cartesian grid of scenarios — a set of *axes*
(parameter name → candidate values) layered over a *base* of fixed parameters.  Every
grid point becomes a :class:`Scenario`, a frozen mapping of JSON-scalar parameters
with a deterministic content hash.  The hash is what makes the on-disk result cache
of :class:`~repro.sweep.runner.SweepRunner` safe: two scenarios with the same
parameters always map to the same cache entry, regardless of axis declaration order.

Following the declarative-middleware idea (configuration describes *what* to run,
the runner decides *how*), a spec carries no execution policy: parallelism, caching
and the worker callable all live on the runner.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

from repro.common.errors import ConfigurationError

#: Parameter values must stay JSON scalars so scenario hashes are canonical.
SCALAR_TYPES = (str, int, float, bool, type(None))


def _check_scalar(key: str, value: Any) -> None:
    if not isinstance(value, SCALAR_TYPES):
        raise ConfigurationError(
            f"sweep parameter {key!r} must be a JSON scalar "
            f"(str/int/float/bool/None), got {type(value).__name__}"
        )


@dataclass(frozen=True)
class Scenario:
    """One grid point: an immutable parameter mapping with a stable hash."""

    params: tuple[tuple[str, Any], ...]

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "Scenario":
        """Build a scenario, validating every value is a JSON scalar."""
        for key, value in params.items():
            _check_scalar(key, value)
        return cls(params=tuple(params.items()))

    def as_dict(self) -> dict[str, Any]:
        """Parameters as a plain dict (the worker's ``**kwargs``)."""
        return dict(self.params)

    def get(self, key: str, default: Any = None) -> Any:
        """Value of one parameter."""
        return self.as_dict().get(key, default)

    def key(self, axes: Sequence[str]) -> tuple:
        """Tuple of the values of ``axes``, used to index sweep results."""
        lookup = self.as_dict()
        return tuple(lookup[axis] for axis in axes)

    def config_hash(self) -> str:
        """Deterministic content hash, independent of parameter order.

        The hash is SHA-256 over the canonical JSON form of the sorted parameter
        items (sorted keys, no whitespace), truncated to 24 hex chars.  It is the
        scenario component of the runner's cache key, so it must only ever change
        when a parameter's *value* changes — never with declaration order, Python
        version or process.  ``tests/test_sweep.py`` pins this behaviour.
        """
        canonical = json.dumps(
            sorted(self.as_dict().items(), key=lambda pair: pair[0]),
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:24]

    def label(self) -> str:
        """Compact human-readable form, e.g. ``model=20B strategy=twinflow``."""
        return " ".join(f"{key}={value}" for key, value in self.params)


@dataclass(frozen=True)
class SweepSpec:
    """A cartesian grid: ordered axes of candidate values over a base configuration."""

    axes: tuple[tuple[str, tuple[Any, ...]], ...]
    base: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def build(
        cls,
        axes: Mapping[str, Sequence[Any]],
        base: Mapping[str, Any] | None = None,
    ) -> "SweepSpec":
        """Validate and freeze an axes/base declaration.

        Axis order is preserved: the first axis varies slowest, exactly like the
        nested ``for`` loops the spec replaces.
        """
        if not axes:
            raise ConfigurationError("a sweep needs at least one axis")
        frozen_axes = []
        for name, values in axes.items():
            values = tuple(values)
            if not values:
                raise ConfigurationError(f"sweep axis {name!r} has no values")
            for value in values:
                _check_scalar(name, value)
            frozen_axes.append((name, values))
        base = dict(base or {})
        overlap = set(base) & {name for name, _ in frozen_axes}
        if overlap:
            raise ConfigurationError(
                f"parameters {sorted(overlap)} appear in both axes and base"
            )
        for key, value in base.items():
            _check_scalar(key, value)
        return cls(axes=tuple(frozen_axes), base=tuple(base.items()))

    @property
    def axis_names(self) -> tuple[str, ...]:
        """Axis names in declaration order."""
        return tuple(name for name, _ in self.axes)

    @property
    def num_scenarios(self) -> int:
        """Size of the grid."""
        total = 1
        for _, values in self.axes:
            total *= len(values)
        return total

    def scenarios(self) -> Iterator[Scenario]:
        """Yield every grid point in deterministic (row-major) order."""
        names = self.axis_names
        value_lists = [values for _, values in self.axes]
        for combo in itertools.product(*value_lists):
            params = dict(self.base)
            params.update(zip(names, combo))
            yield Scenario.from_params(params)

    def describe(self) -> dict:
        """Summary used by logging and the CLI."""
        return {
            "axes": {name: list(values) for name, values in self.axes},
            "base": dict(self.base),
            "num_scenarios": self.num_scenarios,
        }
