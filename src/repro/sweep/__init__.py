"""Scenario-sweep subsystem: declarative grids, parallel execution, cached results.

The experiment layer re-runs the same discrete-event simulation over large
(model × strategy × machine × knob) grids.  This package turns those grids into
declarations:

* :class:`~repro.sweep.spec.SweepSpec` / :class:`~repro.sweep.spec.Scenario` — the
  declarative grid model (axes over a base configuration, JSON-scalar parameters,
  deterministic config hashes);
* :class:`~repro.sweep.runner.SweepRunner` — policy-carrying execution through a
  pluggable :mod:`repro.dispatch` backend (serial, process pool, or a TCP
  cluster of ``repro worker`` daemons), with a deterministic on-disk result
  cache keyed by the scenario hash and streamed to as results complete;
* :class:`~repro.sweep.result.SweepResult` — ordered, structured results with JSON
  export;
* :mod:`repro.sweep.cache` — a JSON manifest over the result cache, powering
  ``repro sweep --cache-stats`` (inspection, stale-entry detection) and
  ``--cache-evict`` (eviction);
* :mod:`repro.sweep.batching` — shape-compiled scenario batching: workers that
  :func:`~repro.sweep.batching.register_batchable` let the runner group
  same-shape scenarios (``sweep_mode="batch"``, the ``auto`` default where
  supported) and schedule each group in one stacked pass, byte-identical to
  the per-scenario path.

Two invariants hold across the subsystem:

* **determinism** — a scenario's cache key depends only on its parameters (canonical
  hash), the worker's identity/signature and the cache version, never on axis
  declaration order, parallelism or wall-clock;
* **execution transparency** — ``jobs`` and ``use_cache`` change performance, never
  values: a parallel, cached sweep returns exactly what the nested loops it replaces
  would have returned, in scenario order.
"""

from repro.sweep.batching import (
    BatchAdapter,
    PreparedCase,
    is_batchable,
    register_batchable,
    run_scenario_group,
)
from repro.sweep.cache import CACHE_VERSION, cache_stats, evict_cache
from repro.sweep.result import SweepRecord, SweepResult
from repro.sweep.runner import (
    SweepRunner,
    configure_defaults,
    default_cache_dir,
    default_jobs,
    reset_defaults,
    run_sweep,
)
from repro.sweep.spec import Scenario, SweepSpec

__all__ = [
    "Scenario",
    "SweepSpec",
    "SweepRunner",
    "SweepRecord",
    "SweepResult",
    "run_sweep",
    "configure_defaults",
    "reset_defaults",
    "default_jobs",
    "default_cache_dir",
    "CACHE_VERSION",
    "cache_stats",
    "evict_cache",
    "BatchAdapter",
    "PreparedCase",
    "register_batchable",
    "is_batchable",
    "run_scenario_group",
]
