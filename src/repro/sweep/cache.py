"""JSON manifest over the sweep runner's pickle-per-scenario result cache.

The :class:`~repro.sweep.runner.SweepRunner` cache is a directory of opaque
``*.pkl`` files whose names encode ``(worker identity, cache version, worker salt,
scenario hash)`` — safe, but uninspectable: nothing says which scenario produced an
entry, when, or whether it is still reachable.  The manifest fixes that: every
stored entry is also recorded in ``manifest.json`` next to the pickles, carrying the
scenario parameters, the worker's dotted name, the cache version, a creation
timestamp and the entry's size.

On top of the manifest this module implements the two maintenance operations the
CLI exposes (``repro sweep --cache-stats`` / ``--cache-evict``):

* :func:`cache_stats` — entry/byte totals, per-worker breakdown, and *stale-entry
  detection*: manifest entries whose pickle vanished, pickles the manifest does not
  know about (orphans, e.g. from a pre-manifest version of this code or a sweep
  killed between store and record), and entries written under an older
  ``CACHE_VERSION``.
* :func:`evict_cache` — ``mode="stale"`` removes exactly those three classes;
  ``mode="all"`` clears the cache completely.

Manifest writes are atomic (write-temp + ``os.replace``) and best-effort, like the
cache itself: concurrent sweeps may lose a manifest record to a race (the entry then
shows up as an orphan, still evictable), but they can never corrupt the file or fail
a sweep.
"""

from __future__ import annotations

import json
import os
import tempfile
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterable

from repro.common.errors import ConfigurationError

#: Bump to invalidate every cache entry at once: when the entry format changes,
#: or after changing the simulated physics (which the cache key cannot detect —
#: the worker salt only covers signatures, not implementations).  Entries written
#: under an older version are reported — and evicted — as stale.
CACHE_VERSION = 1

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 1


def manifest_path(cache_dir: str | Path) -> Path:
    """Location of the manifest inside ``cache_dir``."""
    return Path(cache_dir) / MANIFEST_NAME


def load_manifest(cache_dir: str | Path) -> dict:
    """Read the manifest; a missing or unreadable file is an empty manifest."""
    try:
        data = json.loads(manifest_path(cache_dir).read_text())
    except (OSError, json.JSONDecodeError):
        return {"format": MANIFEST_FORMAT, "entries": {}}
    if not isinstance(data, dict) or not isinstance(data.get("entries"), dict):
        return {"format": MANIFEST_FORMAT, "entries": {}}
    return data


def _write_manifest(cache_dir: Path, manifest: dict) -> None:
    """Atomically replace the manifest; best-effort like the cache stores."""
    cache_dir.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        mode="w", dir=cache_dir, prefix=MANIFEST_NAME, suffix=".tmp", delete=False
    )
    try:
        with handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
        os.replace(handle.name, manifest_path(cache_dir))
    except OSError:
        try:
            os.unlink(handle.name)
        except OSError:
            pass


def record_entries(cache_dir: str | Path, entries: Iterable[dict]) -> None:
    """Merge freshly stored cache entries into the manifest.

    Each entry dict must carry a ``file`` key (the pickle's filename inside
    ``cache_dir``); remaining keys are stored verbatim.  The runner calls this
    in small batches as results stream in (per-scenario rewrites of a growing
    JSON file would be quadratic), so each call merges into — never replaces —
    the manifest on disk.  Resume durability lives in the pickles, which *are*
    written per scenario; a hard-killed sweep can at most leave one batch of
    records unwritten, and those pickles then surface as orphans in
    :func:`cache_stats`.
    """
    entries = list(entries)
    if not entries:
        return
    cache_dir = Path(cache_dir)
    manifest = load_manifest(cache_dir)
    stamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    for entry in entries:
        entry = dict(entry)
        filename = entry.pop("file", None)
        if not filename:
            raise ConfigurationError("manifest entries need a 'file' key")
        entry.setdefault("created_at", stamp)
        manifest["entries"][filename] = entry
    _write_manifest(cache_dir, manifest)


def _pickle_files(cache_dir: Path) -> dict[str, int]:
    """Map of pickle filename -> size in bytes for every entry on disk."""
    files: dict[str, int] = {}
    try:
        listing = list(cache_dir.iterdir())
    except OSError:
        return files
    for path in listing:
        if path.suffix == ".pkl" and path.is_file():
            try:
                files[path.name] = path.stat().st_size
            except OSError:
                continue
    return files


def cache_stats(cache_dir: str | Path) -> dict:
    """Inspect the cache: live/stale entry counts, byte totals, per-worker breakdown."""
    cache_dir = Path(cache_dir)
    manifest = load_manifest(cache_dir)
    on_disk = _pickle_files(cache_dir)

    live = 0
    live_bytes = 0
    missing_files: list[str] = []
    version_mismatch: list[str] = []
    workers: dict[str, int] = {}
    for filename, entry in manifest["entries"].items():
        if filename not in on_disk:
            missing_files.append(filename)
            continue
        if entry.get("cache_version") != CACHE_VERSION:
            version_mismatch.append(filename)
            continue
        live += 1
        live_bytes += on_disk[filename]
        worker = entry.get("worker", "<unknown>")
        workers[worker] = workers.get(worker, 0) + 1

    orphans = sorted(set(on_disk) - set(manifest["entries"]))
    return {
        "cache_dir": str(cache_dir),
        "entries": live,
        "total_bytes": live_bytes,
        "workers": dict(sorted(workers.items())),
        "stale": {
            "missing_files": sorted(missing_files),
            "orphaned_files": orphans,
            "version_mismatch": sorted(version_mismatch),
        },
        "stale_count": len(missing_files) + len(orphans) + len(version_mismatch),
    }


def evict_cache(cache_dir: str | Path, mode: str = "stale") -> dict:
    """Remove cache entries and their manifest records.

    ``mode="stale"`` removes version-mismatched entries, manifest records whose
    pickle is gone, and orphaned pickles; ``mode="all"`` removes every pickle and
    resets the manifest.  Returns ``{"removed_files", "freed_bytes",
    "dropped_entries"}``.
    """
    if mode not in ("stale", "all"):
        raise ConfigurationError(f"unknown eviction mode {mode!r}; use 'stale' or 'all'")
    cache_dir = Path(cache_dir)
    manifest = load_manifest(cache_dir)
    on_disk = _pickle_files(cache_dir)

    if mode == "all":
        to_remove = set(on_disk)
        dropped = len(manifest["entries"])
        manifest["entries"] = {}
    else:
        stats = cache_stats(cache_dir)
        stale = stats["stale"]
        to_remove = set(stale["orphaned_files"]) | set(stale["version_mismatch"])
        dropped = 0
        for filename in stale["missing_files"] + stale["version_mismatch"]:
            if manifest["entries"].pop(filename, None) is not None:
                dropped += 1

    freed = 0
    removed = 0
    for filename in to_remove:
        try:
            freed += on_disk.get(filename, 0)
            (cache_dir / filename).unlink()
            removed += 1
        except OSError:
            continue
    _write_manifest(cache_dir, manifest)
    return {"removed_files": removed, "freed_bytes": freed, "dropped_entries": dropped}


def format_stats(stats: dict) -> str:
    """Human-readable rendering of :func:`cache_stats` for the CLI."""
    lines = [
        f"cache dir   : {stats['cache_dir']}",
        f"live entries: {stats['entries']} ({stats['total_bytes']} bytes)",
    ]
    for worker, count in stats["workers"].items():
        lines.append(f"  {worker}: {count}")
    stale = stats["stale"]
    lines.append(
        f"stale       : {stats['stale_count']} "
        f"(missing {len(stale['missing_files'])}, orphaned {len(stale['orphaned_files'])}, "
        f"version-mismatch {len(stale['version_mismatch'])})"
    )
    return "\n".join(lines)
