"""Worker-side shape batching: prepare scenarios, schedule shape groups at once.

The per-scenario sweep path pays the full simulation pipeline per grid point.
For workers that opt in through :func:`register_batchable`, ``SweepRunner``
can instead dispatch *groups* of scenarios to :func:`run_scenario_group` —
a module-level trampoline every dispatch backend can ship by reference, just
like an ordinary worker.  Inside the group, each scenario is *prepared*
(everything up to but excluding scheduling: resolve, op-row construction),
the resulting op batches are grouped by :func:`~repro.sim.shapebatch.shape_key`,
each shape is compiled once (:func:`~repro.sim.shapebatch.compile_plan`) and
scheduled for all its scenarios in one stacked pass
(:func:`~repro.sim.shapebatch.schedule_group`), and the adapter's finalizer
turns the stacked schedule back into the exact per-scenario values the plain
worker returns.

The contract is strict value equality: for every scenario,
``run_scenario_group`` must produce byte-for-byte what ``worker(**params)``
produces (``tests/test_shapebatch.py`` enforces this differentially across
serial and pool executors).  That is what lets the runner keep its
per-scenario cache entries — a batch-computed result is stored under the same
key a serial run reads.

An adapter's :attr:`~BatchAdapter.prepare` may also *decline* a scenario by
returning the final value directly (anything that is not a
:class:`PreparedCase`): out-of-memory configurations, strategies without row
builders, and policies pinning the eager op backend all fall back to the
per-scenario code path inside the same process, so a mixed grid still works.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.common.errors import ConfigurationError
from repro.dispatch.base import resolve_worker_spec, worker_spec
from repro.sim.shapebatch import (
    StackedSchedule,
    compile_plan,
    scenario_column,
    schedule_group,
    shape_key,
)


@dataclass(frozen=True)
class PreparedCase:
    """One scenario, prepared up to (but excluding) scheduling.

    ``batch`` is the scenario's op rows (an :class:`~repro.sim.opbatch.OpBatch`);
    ``resource_names`` the resource universe those rows schedule on; ``salt``
    a string folding in everything *besides* the op topology that must match
    for two scenarios to share a compiled plan (strategy name, iteration
    count, ...) — it pre-partitions groups so :func:`~repro.sim.shapebatch.shape_key`
    only ever compares like with like; ``payload`` is whatever the adapter's
    finalizer needs to rebuild the worker's return value (it never crosses a
    process boundary — prepare and finalize run in the same process).

    The group runner consumes ``batch`` immediately — shape key, duration
    column — and then drops it (only each group's first batch is kept, as the
    compile representative).  Adapters should therefore **not** reference the
    batch from ``payload``: letting a scenario's row tuples die right after
    extraction is what keeps hundreds of prepared scenarios from turning into
    garbage-collector drag.
    """

    batch: Any
    resource_names: tuple[str, ...]
    salt: str
    payload: Any


@dataclass(frozen=True)
class BatchAdapter:
    """How one worker maps onto the prepare/schedule/finalize split.

    ``prepare(**params)`` returns a :class:`PreparedCase`, or the scenario's
    final value directly to decline batching for that point.
    ``finalize_group(payloads, stacked)`` receives the prepared payloads of
    one shape group (in group order) plus their stacked schedule and returns
    the final values in the same order.
    """

    prepare: Callable[..., Any]
    finalize_group: Callable[[list, StackedSchedule], list]


@dataclass
class _ShapeGroup:
    """Accumulator for one (salt, resources, shape-key) group of a chunk."""

    representative: Any
    resource_names: tuple[str, ...]
    positions: list[int] = field(default_factory=list)
    columns: list = field(default_factory=list)
    payloads: list = field(default_factory=list)


#: worker spec string -> adapter.  Populated by ``register_batchable`` as an
#: import side effect of the worker's module, so resolving the spec inside a
#: pool or cluster process repopulates it there too.
_REGISTRY: dict[str, BatchAdapter] = {}


def register_batchable(
    worker: Callable[..., Any],
    *,
    prepare: Callable[..., Any],
    finalize_group: Callable[[list, StackedSchedule], list],
) -> None:
    """Declare that ``worker`` supports shape-batched sweep execution.

    ``worker`` must be module-level (the registry is keyed by its
    ``module:qualname`` spec, which is also how remote processes rediscover
    the adapter: importing the module re-runs this registration).
    """
    _REGISTRY[worker_spec(worker)] = BatchAdapter(
        prepare=prepare, finalize_group=finalize_group
    )


def is_batchable(worker: Callable[..., Any]) -> bool:
    """Whether ``worker`` registered a batching adapter."""
    try:
        return worker_spec(worker) in _REGISTRY
    except ConfigurationError:
        return False


def batchable_adapter(worker: Callable[..., Any]) -> BatchAdapter:
    """The adapter ``worker`` registered (:class:`ConfigurationError` if none)."""
    spec = worker_spec(worker)
    adapter = _REGISTRY.get(spec)
    if adapter is None:
        raise ConfigurationError(
            f"worker {spec!r} has no batching adapter; register one with "
            "repro.sweep.batching.register_batchable or run with "
            "sweep_mode='scenario'"
        )
    return adapter


@contextmanager
def _gc_paused():
    """Pause generational collection for the duration of one chunk.

    Preparing a chunk allocates hundreds of thousands of short-lived row
    tuples; with the collector enabled, the recurring generation scans walk
    every surviving payload each time and dominate the prepare loop.  Nothing
    in a chunk builds reference cycles faster than the final collection can
    reclaim, so pausing is safe — and worth ~15% of batch-mode wall time.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def run_scenario_group(*, worker: str, scenarios: Sequence[dict]) -> list:
    """Execute one chunk of scenarios for ``worker``, shape-batched.

    This is the group trampoline the runner dispatches in ``sweep_mode="batch"``:
    a module-level callable taking plain-data keywords, so every backend ships
    it exactly like an ordinary worker (pool pickles it by reference, cluster
    daemons import it by name) and the dispatch policy context wraps the whole
    group call.  Returns one value per scenario, in input order, byte-identical
    to ``worker(**params)`` per scenario.
    """
    target = resolve_worker_spec(worker)
    adapter = _REGISTRY.get(worker)
    if adapter is None:
        # Importing the worker's module did not register an adapter: stay
        # correct by running the scenarios through the worker itself.
        return [target(**dict(params)) for params in scenarios]

    values: list[Any] = [None] * len(scenarios)
    groups: dict[tuple, _ShapeGroup] = {}
    with _gc_paused():
        for position, params in enumerate(scenarios):
            prepared = adapter.prepare(**dict(params))
            if not isinstance(prepared, PreparedCase):
                values[position] = prepared
                continue
            key = (prepared.salt, prepared.resource_names, shape_key(prepared.batch))
            group = groups.get(key)
            if group is None:
                groups[key] = group = _ShapeGroup(
                    representative=prepared.batch,
                    resource_names=prepared.resource_names,
                )
            group.positions.append(position)
            group.columns.append(scenario_column(prepared.batch))
            group.payloads.append(prepared.payload)
            # prepared.batch is dropped here: its rows die young (the extracted
            # column is all the stacked pass needs), except the representative's.

        for group in groups.values():
            plan = compile_plan(group.representative, group.resource_names)
            stacked = schedule_group(plan, group.columns)
            stacked.rows = group.representative.rows
            finals = adapter.finalize_group(group.payloads, stacked)
            for position, value in zip(group.positions, finals):
                values[position] = value
    return values
