"""Process-parallel scenario execution with a deterministic on-disk result cache.

The runner is the policy layer of the sweep subsystem: it takes a declarative
:class:`~repro.sweep.spec.SweepSpec` (or an explicit scenario list), a picklable
worker callable, and decides how to execute — serially in-process, or fanned out over
a :class:`concurrent.futures.ProcessPoolExecutor`.  Results come back in scenario
order regardless of completion order, so a parallel sweep is indistinguishable from
the nested loops it replaces.  That indistinguishability is an invariant the tests
enforce (``tests/test_sweep.py``): for a fixed worker, ``jobs`` and ``use_cache``
may change *performance*, never *values*.

**Cache key.**  An entry's filename is deterministic and content-addressed::

    <worker module.qualname>-v<CACHE_VERSION>-<worker salt>-<scenario hash>.pkl

* the *worker identity* keeps different workers from aliasing each other;
* the *cache version* (:data:`CACHE_VERSION`, re-exported from
  :mod:`repro.sweep.cache`) invalidates every entry when the storage format — not
  the simulated physics — changes;
* the *worker salt* hashes the worker's signature, so changing a keyword default
  invalidates entries instead of silently serving results computed under the old
  default (scenario hashes only cover explicitly-passed parameters);
* the *scenario hash* is :meth:`~repro.sweep.spec.Scenario.config_hash` — canonical
  over parameter order, so two declarations of the same grid point share one entry.

A cache entry is a pickle of the worker's return value, written atomically
(temp file + ``os.replace``) so a killed sweep never leaves a truncated entry
behind; unreadable or stale pickles load as misses, never as errors.  Every store
is also recorded in a JSON manifest next to the pickles
(:mod:`repro.sweep.cache`), which powers ``repro sweep --cache-stats`` and
``--cache-evict``.

**Execution policy.**  A runner carries one resolved
:class:`~repro.runtime.ExecutionPolicy` — ``jobs``, ``use_cache``,
``cache_dir`` and the simulation backends (``op_backend``, ``scheduler``,
``auto_vector_threshold``) all come from it.  Pass ``policy=`` explicitly, or
pass the individual keywords and the runner resolves the rest through the
standard order (``repro.configure`` context > ``REPRO_*`` environment >
defaults).  The resolved policy travels to workers **explicitly**: it is
pickled alongside the scenario parameters and activated as a
:func:`repro.runtime.policy_context` around each worker call — in-process for
serial runs, inside each pool process for parallel ones — so worker-side
resolution sees the parent's decisions at the context level and no
environment variables are exported anywhere.  Backends are byte-identical
(the whole point of the three-way differential harness), so the policy
deliberately does **not** enter the cache key: a grid computed on one backend
is a valid cache hit for the other.
"""

from __future__ import annotations

import hashlib
import inspect
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.common.errors import ConfigurationError
from repro.runtime import ExecutionPolicy, policy_context, set_global_defaults, clear_global_defaults
from repro.sweep.cache import CACHE_VERSION, record_entries
from repro.sweep.result import SweepRecord, SweepResult
from repro.sweep.spec import Scenario, SweepSpec

_MISS = object()


def configure_defaults(
    *,
    jobs: int | None = None,
    use_cache: bool | None = None,
    cache_dir: str | Path | None = None,
    scheduler: str | None = None,
) -> None:
    """Set session-wide execution-policy defaults (None leaves a setting unchanged).

    Compatibility shim over :func:`repro.runtime.set_global_defaults`: the
    values land at the bottom of the resolution order's *context* level, so
    any active ``repro.configure(...)`` context or explicit argument still
    wins.  Prefer ``repro.configure`` for new code — it is scoped.
    """
    set_global_defaults(
        jobs=jobs, use_cache=use_cache, cache_dir=cache_dir, scheduler=scheduler
    )


def reset_defaults() -> None:
    """Clear every default installed by :func:`configure_defaults` (used by tests)."""
    clear_global_defaults()


def default_jobs() -> int:
    """Worker parallelism the current resolution context yields."""
    return ExecutionPolicy.resolve(env_fields=("jobs",)).jobs


def default_cache_dir() -> Path:
    """Cache directory the current resolution context yields."""
    return ExecutionPolicy.resolve(env_fields=("cache_dir",)).cache_dir


def _call_worker(
    worker: Callable[..., Any],
    params: dict[str, Any],
    policy: ExecutionPolicy | None = None,
) -> Any:
    """Module-level trampoline so the pool only has to pickle (worker, params, policy).

    ``policy`` — the runner's resolved policy — is activated as the innermost
    resolution context around the call, so a worker that resolves an
    :class:`ExecutionPolicy` (``simulate_job`` does) sees the parent's
    decisions regardless of the worker process's own environment.
    """
    if policy is None:
        return worker(**params)
    with policy_context(policy):
        return worker(**params)


class SweepRunner:
    """Executes scenarios through a worker callable, parallel and cached.

    ``worker`` must be a module-level callable accepting every scenario parameter as
    a keyword argument (a requirement of process-based parallelism: the pool pickles
    the callable by reference).  Execution is governed by one resolved
    :class:`~repro.runtime.ExecutionPolicy`, bound at construction: pass
    ``policy=`` whole, or pass ``jobs``/``use_cache``/``cache_dir``/``scheduler``
    as explicit arguments and let the runner resolve the rest.  ``jobs`` > 1
    enables process parallelism; ``use_cache`` enables the on-disk result cache
    under ``cache_dir``; ``scheduler`` pins the simulation scheduler backend
    workers run on (``"auto"`` by default — each worker picks per scenario).
    The policy is serialized to every worker explicitly (see
    :func:`_call_worker`); no environment variables are exported.
    """

    def __init__(
        self,
        worker: Callable[..., Any],
        *,
        jobs: int | None = None,
        use_cache: bool | None = None,
        cache_dir: str | Path | None = None,
        scheduler: str | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> None:
        if not callable(worker):
            raise ConfigurationError("worker must be callable")
        self.worker = worker
        if policy is not None:
            if not isinstance(policy, ExecutionPolicy):
                raise ConfigurationError("policy must be an ExecutionPolicy")
            if any(value is not None for value in (jobs, use_cache, cache_dir, scheduler)):
                raise ConfigurationError(
                    "pass either policy= or individual jobs/use_cache/cache_dir/"
                    "scheduler arguments, not both"
                )
            self.policy = policy
        else:
            self.policy = ExecutionPolicy.resolve(
                jobs=jobs, use_cache=use_cache, cache_dir=cache_dir, scheduler=scheduler
            )
        self.jobs = self.policy.jobs
        self.use_cache = self.policy.use_cache
        self.cache_dir = self.policy.cache_dir
        self.scheduler = self.policy.scheduler
        if self.jobs > 1 and "<locals>" in getattr(worker, "__qualname__", ""):
            raise ConfigurationError(
                "parallel sweeps need a module-level worker (locally defined "
                "functions cannot be pickled into worker processes)"
            )
        # Scenario hashes only cover explicitly-passed parameters, so fold the
        # worker's signature (names, defaults, annotations) into the cache key:
        # changing a default invalidates entries instead of silently aliasing them.
        try:
            signature = str(inspect.signature(worker))
        except (TypeError, ValueError):
            signature = ""
        self._worker_salt = hashlib.sha256(signature.encode()).hexdigest()[:8]

    # ------------------------------------------------------------------ cache

    def _cache_path(self, scenario: Scenario) -> Path:
        worker_id = f"{self.worker.__module__}.{self.worker.__qualname__}"
        safe = worker_id.replace("<", "").replace(">", "").replace("/", "_")
        return self.cache_dir / (
            f"{safe}-v{CACHE_VERSION}-{self._worker_salt}-{scenario.config_hash()}.pkl"
        )

    def _cache_load(self, scenario: Scenario) -> Any:
        path = self._cache_path(scenario)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError, ImportError):
            # A stale entry referencing moved/renamed classes is a miss, not a crash.
            return _MISS

    def _cache_store(self, scenario: Scenario, value: Any) -> Path | None:
        """Atomically persist one entry; returns its path, or None when storing failed."""
        path = self._cache_path(scenario)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=path.parent, prefix=path.name, suffix=".tmp", delete=False
        )
        try:
            with handle:
                pickle.dump(value, handle)
            os.replace(handle.name, path)
            return path
        except OSError:
            # Caching is best-effort: a read-only or full disk must not fail the sweep.
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            return None

    def _record_manifest(self, stored: list[tuple[Path, Scenario]]) -> None:
        """Append the run's fresh cache entries to the manifest (best-effort)."""
        worker_id = f"{self.worker.__module__}.{self.worker.__qualname__}"
        entries = []
        for path, scenario in stored:
            try:
                size = path.stat().st_size
            except OSError:
                size = 0
            entries.append({
                "file": path.name,
                "worker": worker_id,
                "cache_version": CACHE_VERSION,
                "worker_salt": self._worker_salt,
                "config_hash": scenario.config_hash(),
                "params": scenario.as_dict(),
                "size_bytes": size,
            })
        try:
            record_entries(self.cache_dir, entries)
        except OSError:  # pragma: no cover - same best-effort rule as the stores
            pass

    # ------------------------------------------------------------------ execution

    def run(self, spec: SweepSpec | Iterable[Scenario]) -> SweepResult:
        """Execute every scenario and return results in scenario order."""
        if isinstance(spec, SweepSpec):
            scenarios: Sequence[Scenario] = list(spec.scenarios())
        else:
            scenarios = list(spec)

        values: dict[int, Any] = {}
        pending: list[int] = []
        for index, scenario in enumerate(scenarios):
            if self.use_cache:
                cached = self._cache_load(scenario)
                if cached is not _MISS:
                    values[index] = cached
                    continue
            pending.append(index)

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        index: pool.submit(
                            _call_worker, self.worker, scenarios[index].as_dict(),
                            self.policy,
                        )
                        for index in pending
                    }
                    for index, future in futures.items():
                        values[index] = future.result()
            else:
                # Serial workers run in-process under the same policy context a
                # pool worker would see — scoped to the sweep, nothing leaks
                # into the caller's environment or context.
                with policy_context(self.policy):
                    for index in pending:
                        values[index] = self.worker(**scenarios[index].as_dict())
            if self.use_cache:
                stored = []
                for index in pending:
                    path = self._cache_store(scenarios[index], values[index])
                    if path is not None:
                        stored.append((path, scenarios[index]))
                self._record_manifest(stored)

        fresh = set(pending)
        records = [
            SweepRecord(scenario=scenario, value=values[index], from_cache=index not in fresh)
            for index, scenario in enumerate(scenarios)
        ]
        return SweepResult(
            records=records,
            cache_hits=len(scenarios) - len(pending),
            cache_misses=len(pending),
            jobs=self.jobs,
        )


def run_sweep(
    worker: Callable[..., Any],
    axes: dict[str, Sequence[Any]],
    *,
    base: dict[str, Any] | None = None,
    jobs: int | None = None,
    use_cache: bool | None = None,
    cache_dir: str | Path | None = None,
    scheduler: str | None = None,
    policy: ExecutionPolicy | None = None,
) -> SweepResult:
    """One-call convenience: build a spec and run it."""
    spec = SweepSpec.build(axes, base)
    runner = SweepRunner(
        worker, jobs=jobs, use_cache=use_cache, cache_dir=cache_dir,
        scheduler=scheduler, policy=policy,
    )
    return runner.run(spec)
