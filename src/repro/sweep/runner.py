"""Process-parallel scenario execution with a deterministic on-disk result cache.

The runner is the policy layer of the sweep subsystem: it takes a declarative
:class:`~repro.sweep.spec.SweepSpec` (or an explicit scenario list), a picklable
worker callable, and decides how to execute — serially in-process, or fanned out over
a :class:`concurrent.futures.ProcessPoolExecutor`.  Results come back in scenario
order regardless of completion order, so a parallel sweep is indistinguishable from
the nested loops it replaces.  That indistinguishability is an invariant the tests
enforce (``tests/test_sweep.py``): for a fixed worker, ``jobs`` and ``use_cache``
may change *performance*, never *values*.

**Cache key.**  An entry's filename is deterministic and content-addressed::

    <worker module.qualname>-v<CACHE_VERSION>-<worker salt>-<scenario hash>.pkl

* the *worker identity* keeps different workers from aliasing each other;
* the *cache version* (:data:`CACHE_VERSION`, re-exported from
  :mod:`repro.sweep.cache`) invalidates every entry when the storage format — not
  the simulated physics — changes;
* the *worker salt* hashes the worker's signature, so changing a keyword default
  invalidates entries instead of silently serving results computed under the old
  default (scenario hashes only cover explicitly-passed parameters);
* the *scenario hash* is :meth:`~repro.sweep.spec.Scenario.config_hash` — canonical
  over parameter order, so two declarations of the same grid point share one entry.

A cache entry is a pickle of the worker's return value, written atomically
(temp file + ``os.replace``) so a killed sweep never leaves a truncated entry
behind; unreadable or stale pickles load as misses, never as errors.  Every store
is also recorded in a JSON manifest next to the pickles
(:mod:`repro.sweep.cache`), which powers ``repro sweep --cache-stats`` and
``--cache-evict``.

**Execution policy.**  A runner carries one resolved
:class:`~repro.runtime.ExecutionPolicy` — ``jobs``, ``use_cache``,
``cache_dir``, the simulation backends (``op_backend``, ``scheduler``,
``auto_vector_threshold``) and the dispatch decision (``executor``,
``workers``) all come from it.  Pass ``policy=`` explicitly, or pass the
individual keywords and the runner resolves the rest through the standard
order (``repro.configure`` context > ``REPRO_*`` environment > defaults).
The resolved policy travels to workers **explicitly**: it is serialized
alongside the scenario parameters and activated as a
:func:`repro.runtime.policy_context` around each worker call — in-process for
serial runs, inside each pool process, on each cluster daemon — so
worker-side resolution sees the parent's decisions at the context level and
no environment variables are exported anywhere.  Backends are byte-identical
(the whole point of the three-way differential harness), so the policy
deliberately does **not** enter the cache key: a grid computed on one backend
is a valid cache hit for the other.

**Dispatch.**  Scheduling and IPC live in :mod:`repro.dispatch`, not here:
the runner resolves a backend name from the policy
(:func:`repro.dispatch.select_backend` — ``serial``, ``pool`` or
``cluster``), instantiates it, and drains one stream of
:class:`~repro.dispatch.base.TaskOutcome` objects, identical for every
backend.  Completed results are cached **as they arrive** — the entry pickle
per outcome (that is what a resumed sweep loads), manifest records in small
batches — so a sweep killed halfway resumes from everything that finished.
"""

from __future__ import annotations

import hashlib
import inspect
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.common.errors import ConfigurationError
from repro.dispatch import Task, create_executor, select_backend, worker_spec
from repro.obs.trace import maybe_span, tracing_enabled
from repro.runtime import ExecutionPolicy, set_global_defaults, clear_global_defaults
from repro.sweep.batching import batchable_adapter, is_batchable, run_scenario_group
from repro.sweep.cache import CACHE_VERSION, record_entries
from repro.sweep.result import SweepRecord, SweepResult
from repro.sweep.spec import Scenario, SweepSpec

_MISS = object()

#: Worker id reported in progress events for scenarios served from the cache.
CACHE_WORKER_ID = "cache"

#: Manifest records buffered before a merge-and-rewrite of manifest.json.
_MANIFEST_FLUSH_EVERY = 32


def configure_defaults(
    *,
    jobs: int | None = None,
    use_cache: bool | None = None,
    cache_dir: str | Path | None = None,
    scheduler: str | None = None,
) -> None:
    """Set session-wide execution-policy defaults (None leaves a setting unchanged).

    Compatibility shim over :func:`repro.runtime.set_global_defaults`: the
    values land at the bottom of the resolution order's *context* level, so
    any active ``repro.configure(...)`` context or explicit argument still
    wins.  Prefer ``repro.configure`` for new code — it is scoped.
    """
    set_global_defaults(
        jobs=jobs, use_cache=use_cache, cache_dir=cache_dir, scheduler=scheduler
    )


def reset_defaults() -> None:
    """Clear every default installed by :func:`configure_defaults` (used by tests)."""
    clear_global_defaults()


def default_jobs() -> int:
    """Worker parallelism the current resolution context yields."""
    return ExecutionPolicy.resolve(env_fields=("jobs",)).jobs


def default_cache_dir() -> Path:
    """Cache directory the current resolution context yields."""
    return ExecutionPolicy.resolve(env_fields=("cache_dir",)).cache_dir


class SweepRunner:
    """Executes scenarios through a worker callable, parallel and cached.

    ``worker`` must be a module-level callable accepting every scenario parameter as
    a keyword argument (a requirement of every distributed backend: pool processes
    pickle the callable by reference, cluster daemons import it by name).
    Execution is governed by one resolved
    :class:`~repro.runtime.ExecutionPolicy`, bound at construction: pass
    ``policy=`` whole, or pass ``jobs``/``use_cache``/``cache_dir``/``scheduler``/
    ``executor``/``workers`` as explicit arguments and let the runner resolve
    the rest.  ``executor`` names the dispatch backend (``"auto"`` by default:
    ``pool`` when ``jobs`` > 1, ``serial`` otherwise; ``"cluster"`` dispatches
    over TCP-connected ``repro worker`` daemons, gated on ``workers`` of them
    connecting); ``use_cache`` enables the on-disk result cache under
    ``cache_dir``; ``scheduler`` pins the simulation scheduler backend workers
    run on (``"auto"`` by default — each worker picks per scenario).  The
    policy is serialized to every worker explicitly; no environment variables
    are exported.  ``middleware`` declares the interception chain (spec
    strings — see :mod:`repro.middleware`) that wraps each task on whatever
    side executes it; observe-only chains never change values or cache
    entries (``tests/test_middleware.py`` proves byte-identity), and the
    middleware field — like every policy field — does not enter the cache key.

    ``sweep_mode`` selects how scenarios are dispatched: ``"scenario"`` sends
    one task per grid point; ``"batch"`` groups scenarios by DAG shape and
    schedules each shape in one stacked vector pass
    (:mod:`repro.sweep.batching` / :mod:`repro.sim.shapebatch`), which the
    worker must support via a registered batching adapter; ``"auto"`` (the
    default) picks ``batch`` when the adapter exists and the executor is
    serial or pool.  Values and cache entries are byte-identical across modes
    — a batched run fills the same per-scenario pickles a serial run reads.

    ``executor_options`` are backend-specific keywords forwarded to
    :func:`repro.dispatch.create_executor` (the cluster backend takes
    ``bind``, ``lease_timeout``, ``max_retries``, ``on_event``, ...).
    ``progress`` is an optional callable receiving one event dict per
    completed scenario — cache hits included — with keys ``index``,
    ``scenario``, ``label``, ``cached``, ``worker``, ``wall_time``,
    ``attempts``, ``completed`` and ``total``; it powers
    ``repro sweep --progress`` for every backend alike.
    """

    def __init__(
        self,
        worker: Callable[..., Any],
        *,
        jobs: int | None = None,
        use_cache: bool | None = None,
        cache_dir: str | Path | None = None,
        scheduler: str | None = None,
        executor: str | None = None,
        workers: int | None = None,
        sweep_mode: str | None = None,
        middleware: Sequence[str] | str | None = None,
        policy: ExecutionPolicy | None = None,
        executor_options: Mapping[str, Any] | None = None,
        progress: Callable[[dict], None] | None = None,
    ) -> None:
        if not callable(worker):
            raise ConfigurationError("worker must be callable")
        self.worker = worker
        if policy is not None:
            if not isinstance(policy, ExecutionPolicy):
                raise ConfigurationError("policy must be an ExecutionPolicy")
            if any(value is not None for value in
                   (jobs, use_cache, cache_dir, scheduler, executor, workers,
                    sweep_mode, middleware)):
                raise ConfigurationError(
                    "pass either policy= or individual jobs/use_cache/cache_dir/"
                    "scheduler/executor/workers/sweep_mode/middleware arguments, "
                    "not both"
                )
            self.policy = policy
        else:
            self.policy = ExecutionPolicy.resolve(
                jobs=jobs, use_cache=use_cache, cache_dir=cache_dir,
                scheduler=scheduler, executor=executor, workers=workers,
                sweep_mode=sweep_mode, middleware=middleware,
            )
        self.jobs = self.policy.jobs
        self.use_cache = self.policy.use_cache
        self.cache_dir = self.policy.cache_dir
        self.scheduler = self.policy.scheduler
        self.executor = self.policy.executor
        self.sweep_mode = self.policy.sweep_mode
        self._executor_options = dict(executor_options or {})
        self._progress = progress
        if select_backend(self.policy) != "serial" and \
                "<locals>" in getattr(worker, "__qualname__", ""):
            raise ConfigurationError(
                "parallel sweeps need a module-level worker (locally defined "
                "functions cannot be shipped to worker processes)"
            )
        # Scenario hashes only cover explicitly-passed parameters, so fold the
        # worker's signature (names, defaults, annotations) into the cache key:
        # changing a default invalidates entries instead of silently aliasing them.
        try:
            signature = str(inspect.signature(worker))
        except (TypeError, ValueError):
            signature = ""
        self._worker_salt = hashlib.sha256(signature.encode()).hexdigest()[:8]

    # ------------------------------------------------------------------ cache

    def _cache_path(self, scenario: Scenario) -> Path:
        return self.cache_dir / self.cache_entry_name(scenario)

    def cache_entry_name(self, scenario: Scenario) -> str:
        """The content-addressed cache filename of one scenario (module docs
        describe the key).  Public because the serve layer coalesces identical
        in-flight requests on exactly this identity: two requests whose
        scenarios map to the same entry names would compute — and cache — the
        same values."""
        worker_id = f"{self.worker.__module__}.{self.worker.__qualname__}"
        safe = worker_id.replace("<", "").replace(">", "").replace("/", "_")
        return f"{safe}-v{CACHE_VERSION}-{self._worker_salt}-{scenario.config_hash()}.pkl"

    def _cache_load(self, scenario: Scenario) -> Any:
        path = self._cache_path(scenario)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError, ImportError):
            # A stale entry referencing moved/renamed classes is a miss, not a crash.
            return _MISS

    def _cache_store(self, scenario: Scenario, value: Any) -> Path | None:
        """Atomically persist one entry; returns its path, or None when storing failed."""
        path = self._cache_path(scenario)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=path.parent, prefix=path.name, suffix=".tmp", delete=False
        )
        try:
            with handle:
                pickle.dump(value, handle)
            os.replace(handle.name, path)
            return path
        except OSError:
            # Caching is best-effort: a read-only or full disk must not fail the sweep.
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            return None

    def _manifest_entry(self, path: Path, scenario: Scenario) -> dict:
        """Manifest record for one freshly stored cache entry."""
        worker_id = f"{self.worker.__module__}.{self.worker.__qualname__}"
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        return {
            "file": path.name,
            "worker": worker_id,
            "cache_version": CACHE_VERSION,
            "worker_salt": self._worker_salt,
            "config_hash": scenario.config_hash(),
            "params": scenario.as_dict(),
            "size_bytes": size,
        }

    def _flush_manifest(self, entries: list[dict]) -> None:
        """Merge buffered records into the manifest (best-effort) and clear them."""
        if not entries:
            return
        try:
            record_entries(self.cache_dir, entries)
        except OSError:  # pragma: no cover - same best-effort rule as the stores
            pass
        entries.clear()

    # ------------------------------------------------------------------ execution

    def _emit_progress(self, *, index: int, scenario: Scenario, cached: bool,
                       worker: str, wall_time: float, attempts: int,
                       completed: int, total: int) -> None:
        if self._progress is None:
            return
        self._progress({
            "index": index,
            "scenario": scenario,
            "label": scenario.label(),
            "cached": cached,
            "worker": worker,
            "wall_time": wall_time,
            "attempts": attempts,
            "completed": completed,
            "total": total,
        })

    def _make_executor(self, pending_count: int, worker: Callable[..., Any] | None = None):
        """Instantiate the dispatch backend this run resolves to.

        ``pool`` quietly downgrades to ``serial`` when there is nothing to
        parallelise (one pending task, or ``jobs == 1`` under an explicit
        ``executor="pool"``) — same values either way, without paying for a
        process pool that could never overlap work.  ``worker`` overrides the
        dispatched callable (the batched path ships the group trampoline
        instead of the worker itself).
        """
        name = select_backend(self.policy)
        if name == "pool" and (self.jobs <= 1 or pending_count <= 1):
            name = "serial"
        options = self._executor_options if name == "cluster" else {}
        return create_executor(name, worker or self.worker, self.policy, **options)

    def _effective_sweep_mode(self) -> str:
        """``"batch"`` or ``"scenario"`` for this run (resolving ``"auto"``).

        ``auto`` picks ``batch`` exactly when the worker registered a batching
        adapter (:func:`repro.sweep.batching.register_batchable`) and the
        executor is local (serial or pool) — cluster stays per-scenario unless
        ``sweep_mode="batch"`` is requested explicitly, because its per-task
        fault-tolerance granularity is a scenario.  An explicit ``"batch"``
        with a worker that never registered an adapter is a configuration
        error, not a silent downgrade.
        """
        if self.sweep_mode == "batch":
            batchable_adapter(self.worker)
            return "batch"
        if self.sweep_mode == "scenario":
            return "scenario"
        if select_backend(self.policy) in ("serial", "pool") and is_batchable(self.worker):
            return "batch"
        return "scenario"

    def _group_chunks(self, pending: list[int]) -> list[list[int]]:
        """Split pending scenario indices into one chunk per parallel slot.

        Chunked dispatch is what makes the batched path cheap on distributed
        backends: a pool of ``jobs`` processes receives ``jobs`` tasks of
        ``⌈pending/jobs⌉`` scenarios each — per-task pickle overhead is paid
        per *chunk*, and each chunk is large enough for shape compilation to
        amortise.  Serial runs get one chunk (maximum sharing).
        """
        name = select_backend(self.policy)
        if name == "pool":
            parallelism = max(1, min(self.jobs, len(pending)))
        elif name == "cluster":
            parallelism = max(1, self.policy.workers)
        else:
            parallelism = 1
        size = -(-len(pending) // parallelism)
        return [pending[start:start + size] for start in range(0, len(pending), size)]

    def _run_batched(self, scenarios: Sequence[Scenario], pending: list[int],
                     complete: Callable[..., None]) -> None:
        """Dispatch ``pending`` as scenario-group tasks through the trampoline.

        Each task carries the worker's ``module:qualname`` spec plus a chunk
        of scenario parameter dicts; :func:`repro.sweep.batching.run_scenario_group`
        re-resolves both on the executing side, so the same task payload works
        in-process, in pool processes and on cluster daemons.  Group outcomes
        fan back out into per-scenario completions — the cache and progress
        surfaces never see the difference (each scenario's ``wall_time`` is
        its chunk's share).
        """
        spec_name = worker_spec(self.worker)
        chunks = self._group_chunks(pending)
        tasks = [
            Task(index=number, params={
                "worker": spec_name,
                "scenarios": [scenarios[index].as_dict() for index in chunk],
            })
            for number, chunk in enumerate(chunks)
        ]
        with self._make_executor(len(tasks), worker=run_scenario_group) as executor:
            for outcome in executor.submit(tasks):
                chunk = chunks[outcome.index]
                share = outcome.wall_time / max(1, len(chunk))
                for position, index in enumerate(chunk):
                    complete(index, outcome.value[position],
                             worker=outcome.worker_id, wall_time=share,
                             attempts=outcome.attempts)

    def run(self, spec: SweepSpec | Iterable[Scenario]) -> SweepResult:
        """Execute every scenario and return results in scenario order."""
        if isinstance(spec, SweepSpec):
            scenarios: Sequence[Scenario] = list(spec.scenarios())
        else:
            scenarios = list(spec)
        total = len(scenarios)

        values: dict[int, Any] = {}
        pending: list[int] = []
        for index, scenario in enumerate(scenarios):
            if self.use_cache:
                cached = self._cache_load(scenario)
                if cached is not _MISS:
                    values[index] = cached
                    self._emit_progress(
                        index=index, scenario=scenario, cached=True,
                        worker=CACHE_WORKER_ID, wall_time=0.0, attempts=0,
                        completed=len(values), total=total,
                    )
                    continue
            pending.append(index)

        if pending:
            # Entry pickles stream to disk per outcome (that is what a killed
            # sweep resumes from — loads never consult the manifest), while
            # manifest records batch in memory and flush every
            # _MANIFEST_FLUSH_EVERY outcomes: one rewrite of a growing JSON
            # file per scenario would be quadratic on cluster-scale grids.
            # The finally flush covers failed sweeps; a hard kill loses at
            # most one batch of records, which then surface as orphaned (and
            # evictable) entries in --cache-stats.
            manifest_buffer: list[dict] = []

            def complete(index: int, value: Any, *, worker: str,
                         wall_time: float, attempts: int) -> None:
                values[index] = value
                scenario = scenarios[index]
                if self.use_cache:
                    path = self._cache_store(scenario, value)
                    if path is not None:
                        manifest_buffer.append(self._manifest_entry(path, scenario))
                    if len(manifest_buffer) >= _MANIFEST_FLUSH_EVERY:
                        self._flush_manifest(manifest_buffer)
                self._emit_progress(
                    index=index, scenario=scenario, cached=False, worker=worker,
                    wall_time=wall_time, attempts=attempts,
                    completed=len(values), total=total,
                )

            try:
                # The sweep-level root span: every dispatch-task span of this
                # run — serial, pool child or cluster daemon — parents under
                # it, so a distributed sweep stitches into one trace.
                with maybe_span(
                    tracing_enabled(self.policy), "sweep", seam="dispatch",
                    attrs={"scenarios": total, "pending": len(pending)},
                ):
                    if self._effective_sweep_mode() == "batch":
                        self._run_batched(scenarios, pending, complete)
                    else:
                        tasks = [Task(index=index, params=scenarios[index].as_dict())
                                 for index in pending]
                        with self._make_executor(len(pending)) as executor:
                            for outcome in executor.submit(tasks):
                                complete(outcome.index, outcome.value,
                                         worker=outcome.worker_id,
                                         wall_time=outcome.wall_time,
                                         attempts=outcome.attempts)
            finally:
                self._flush_manifest(manifest_buffer)

        fresh = set(pending)
        records = [
            SweepRecord(scenario=scenario, value=values[index], from_cache=index not in fresh)
            for index, scenario in enumerate(scenarios)
        ]
        return SweepResult(
            records=records,
            cache_hits=len(scenarios) - len(pending),
            cache_misses=len(pending),
            jobs=self.jobs,
        )


def run_sweep(
    worker: Callable[..., Any],
    axes: dict[str, Sequence[Any]],
    *,
    base: dict[str, Any] | None = None,
    jobs: int | None = None,
    use_cache: bool | None = None,
    cache_dir: str | Path | None = None,
    scheduler: str | None = None,
    executor: str | None = None,
    workers: int | None = None,
    sweep_mode: str | None = None,
    middleware: Sequence[str] | str | None = None,
    policy: ExecutionPolicy | None = None,
    executor_options: Mapping[str, Any] | None = None,
    progress: Callable[[dict], None] | None = None,
) -> SweepResult:
    """One-call convenience: build a spec and run it."""
    spec = SweepSpec.build(axes, base)
    runner = SweepRunner(
        worker, jobs=jobs, use_cache=use_cache, cache_dir=cache_dir,
        scheduler=scheduler, executor=executor, workers=workers,
        sweep_mode=sweep_mode, middleware=middleware, policy=policy,
        executor_options=executor_options, progress=progress,
    )
    return runner.run(spec)
