"""Span tracing: the collector, context propagation, and the trace middleware.

A **span** is one timed region of work — a CLI command, a serve request, a
dispatched task, an engine run — recorded as a plain dict (picklable,
JSON-able) with identity (``trace_id``/``span_id``/``parent_id``), a name and
seam, wall-clock start + monotonic duration, process/worker provenance, and
whatever payload attributes the seam carried.  Spans accumulate in one
process-wide collector and export to Chrome trace-event JSON
(:func:`trace_events` / :func:`write_trace`), loadable in Perfetto or
``chrome://tracing``.

**Parenting** is ambient: a :class:`~contextvars.ContextVar` holds the
current ``(trace_id, span_id)`` pair, so spans opened anywhere below an open
span — same thread or same async context — nest under it automatically.
Process and thread boundaries need the context carried *explicitly*:

* :func:`current_trace_context` captures the ambient pair as a small
  picklable dict (``None`` when no span is open);
* :func:`activate_trace_context` re-establishes it on the other side (the
  pool trampoline and the cluster worker daemon do this around each task);
* :func:`drain_spans` / :func:`absorb_spans` ship the recorded spans back —
  the pool returns them in the task tuple, the cluster attaches them to the
  result frame — so a distributed sweep stitches into **one** trace whose
  dispatch-task spans parent correctly under the sweep span.

Tracing is switched on by policy, not code: ``ExecutionPolicy.trace``
(``$REPRO_TRACE``) appends the ``trace`` middleware to every seam's chain
(see :func:`tracing_enabled` and
:func:`repro.middleware.effective_middleware_specs`), and
``ExecutionPolicy.trace_out`` (``$REPRO_TRACE_OUT``) names the export file
the CLI writes when the command finishes.

The collector is bounded (:data:`MAX_SPANS`): a long-lived traced server
cannot grow without limit — beyond the cap new spans are counted as dropped
instead of stored.  Spans are provenance only; they never reach values,
sweep JSON or cache entries (the observe-only byte-identity harness in
``tests/test_middleware.py`` proves it for the ``trace`` chain).
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.common.errors import ConfigurationError
from repro.middleware.base import Middleware, MiddlewareContext
from repro.obs import metrics as obs_metrics

#: Collector capacity: beyond this many stored spans, new ones are dropped
#: (and counted) rather than stored.  Generous — spans are per-seam-crossing,
#: never per-op, so a 100k-scenario sweep records ~100k dispatch spans.
MAX_SPANS = 200_000

# Ambient (trace_id, span_id) of the innermost open span, or None.
_CURRENT: ContextVar[tuple[str, str] | None] = ContextVar(
    "repro_trace_context", default=None
)

_LOCK = threading.Lock()
_SPANS: list[dict[str, Any]] = []
_DROPPED = 0


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


# ------------------------------------------------------------------- recording


@contextmanager
def span(name: str, *, seam: str = "", attrs: Mapping[str, Any] | None = None,
         worker: str = ""):
    """Open one span around a ``with`` block; records it on exit.

    Yields the span dict so callers can read its ids (``trace_id`` in
    particular) or add attributes while the block runs.  An exception inside
    the block marks ``attrs["error"]`` with the exception type and re-raises;
    the span is recorded either way.
    """
    parent = _CURRENT.get()
    trace_id = parent[0] if parent is not None else _new_id()
    record: dict[str, Any] = {
        "trace_id": trace_id,
        "span_id": _new_id(),
        "parent_id": parent[1] if parent is not None else None,
        "name": str(name),
        "seam": str(seam),
        "start_unix_s": time.time(),
        "duration_s": 0.0,
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "worker": str(worker),
        "attrs": dict(attrs or {}),
    }
    token = _CURRENT.set((trace_id, record["span_id"]))
    started = time.perf_counter()
    try:
        yield record
    except BaseException as exc:
        record["attrs"]["error"] = type(exc).__name__
        raise
    finally:
        record["duration_s"] = time.perf_counter() - started
        _CURRENT.reset(token)
        _store(record)


def _store(record: dict[str, Any]) -> None:
    global _DROPPED
    with _LOCK:
        if len(_SPANS) >= MAX_SPANS:
            _DROPPED += 1
            return
        _SPANS.append(record)
    obs_metrics.TRACE_SPANS.labels(seam=record.get("seam") or "none").inc()


# ------------------------------------------------------------------ collection


def snapshot_spans() -> list[dict[str, Any]]:
    """A copy of every stored span, in recording (completion) order."""
    with _LOCK:
        return [dict(record) for record in _SPANS]


def drain_spans() -> list[dict[str, Any]]:
    """Remove and return every stored span (the cross-process shipping hook)."""
    with _LOCK:
        records = list(_SPANS)
        _SPANS.clear()
    return records


def take_trace(trace_id: str) -> list[dict[str, Any]]:
    """Remove and return the spans of one trace, leaving other traces stored.

    The serve layer uses this to attach exactly its own request's spans to a
    response while concurrent requests' traces stay untouched.
    """
    taken: list[dict[str, Any]] = []
    with _LOCK:
        kept = []
        for record in _SPANS:
            (taken if record.get("trace_id") == trace_id else kept).append(record)
        _SPANS[:] = kept
    return taken


def absorb_spans(records: Iterable[Mapping[str, Any]] | None) -> None:
    """Fold spans recorded in another process into this collector.

    Tolerant of ``None`` and of foreign dict shapes (only mappings are kept):
    the dispatch layer calls this on whatever rode back in a result frame.
    """
    for record in records or ():
        if isinstance(record, Mapping):
            _store(dict(record))


def dropped_spans() -> int:
    """How many spans the capacity bound discarded since the last reset."""
    with _LOCK:
        return _DROPPED


def reset_tracing() -> None:
    """Clear stored spans and the dropped counter (test isolation hook)."""
    global _DROPPED
    with _LOCK:
        _SPANS.clear()
        _DROPPED = 0


# ----------------------------------------------------------------- propagation


def current_trace_context() -> dict[str, str] | None:
    """The ambient ``{"trace_id", "span_id"}`` pair, or ``None``.

    Small, JSON-able and picklable by construction — safe to embed in a task
    envelope or tuple argument.  Capture it on the *submitting* thread: the
    cluster coordinator runs on its own event-loop thread and pool tasks run
    in other processes, so ContextVars do not flow there by themselves.
    """
    current = _CURRENT.get()
    if current is None:
        return None
    return {"trace_id": current[0], "span_id": current[1]}


@contextmanager
def activate_trace_context(context: Mapping[str, Any] | None):
    """Make a shipped trace context ambient for a ``with`` block.

    ``None`` (tracing off, or nothing shipped) is a no-op, so call sites need
    no conditional.  Malformed contexts are ignored rather than failed: a
    tracing decoration must never break the task it decorates.
    """
    if not isinstance(context, Mapping) or \
            not context.get("trace_id") or not context.get("span_id"):
        yield
        return
    token = _CURRENT.set((str(context["trace_id"]), str(context["span_id"])))
    try:
        yield
    finally:
        _CURRENT.reset(token)


def tracing_enabled(policy: Any) -> bool:
    """True when this policy records spans (``trace`` field or a ``trace`` spec)."""
    if policy is None:
        return False
    if getattr(policy, "trace", False):
        return True
    return any(
        str(spec).split(":", 1)[0].strip() == "trace"
        for spec in getattr(policy, "middleware", ()) or ()
    )


@contextmanager
def maybe_span(enabled: bool, name: str, *, seam: str = "",
               attrs: Mapping[str, Any] | None = None):
    """A :func:`span` when ``enabled``, else a no-op (yields ``None``)."""
    if not enabled:
        yield None
        return
    with span(name, seam=seam, attrs=attrs) as record:
        yield record


# ------------------------------------------------------------------ middleware


class TraceMiddleware(Middleware):
    """The ``trace`` spec: one span per interception at every seam.

    Observe-only by construction — the result and any exception pass through
    untouched; the recorded span carries the seam, the context name and the
    seam payload as attributes.  Because the span context is ambient during
    ``call_next``, nested seams (an engine run inside a dispatched task
    inside a sweep) parent correctly without any wiring between them.
    """

    def handle(
        self, context: MiddlewareContext, call_next: Callable[[MiddlewareContext], Any]
    ) -> Any:
        worker = str(context.payload.get("worker_id", "") or "")
        with span(context.name, seam=context.seam, attrs=context.payload,
                  worker=worker):
            return call_next(context)

    @classmethod
    def from_spec(cls, args: Mapping[str, str]) -> "TraceMiddleware":
        if args:
            raise ConfigurationError(
                f"unknown argument(s) {sorted(args)!r} for middleware 'trace'; "
                "takes no arguments"
            )
        return cls()


# ---------------------------------------------------------------------- export


def trace_events(records: Iterable[Mapping[str, Any]] | None = None) -> dict[str, Any]:
    """Spans -> Chrome trace-event JSON (the ``{"traceEvents": [...]}`` shape).

    Each span becomes one complete (``"ph": "X"``) event with wall-clock
    microsecond ``ts`` — wall time, not the monotonic clock, so spans
    recorded in different processes of the same host line up on one
    timeline.  Span identity and parentage ride in ``args`` (Perfetto shows
    them per slice); metadata events name each process track after the
    worker that ran there.
    """
    if records is None:
        records = snapshot_spans()
    events: list[dict[str, Any]] = []
    process_names: dict[int, str] = {}
    for record in records:
        pid = int(record.get("pid", 0))
        worker = str(record.get("worker", "") or "")
        if worker and pid not in process_names:
            process_names[pid] = worker
        attrs = record.get("attrs") or {}
        args = {key: value for key, value in attrs.items()}
        args.update({
            "trace_id": record.get("trace_id"),
            "span_id": record.get("span_id"),
            "parent_id": record.get("parent_id"),
        })
        events.append({
            "ph": "X",
            "name": str(record.get("name", "")),
            "cat": str(record.get("seam", "") or "span"),
            "ts": float(record.get("start_unix_s", 0.0)) * 1e6,
            "dur": max(float(record.get("duration_s", 0.0)), 0.0) * 1e6,
            "pid": pid,
            "tid": int(record.get("tid", 0)),
            "args": args,
        })
    metadata = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
         "args": {"name": name}}
        for pid, name in sorted(process_names.items())
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_trace(path: str | Path,
                records: Iterable[Mapping[str, Any]] | None = None) -> Path:
    """Serialize :func:`trace_events` to ``path`` (UTF-8 JSON); returns it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = trace_events(records)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str),
                    encoding="utf-8")
    return path
