"""Schedule rendering: any schedule -> Chrome trace-event JSON.

The simulation's whole output is a :class:`~repro.sim.engine.Schedule` — and
until now there was no way to *look* at one.  This module renders schedules
to the same trace-event format the span tracer exports
(:mod:`repro.obs.trace`), so pipeline bubbles and offload overlap become
visually inspectable in Perfetto or ``chrome://tracing``: one horizontal
track per engine resource (``gpu``, ``cpu``, ``pcie``, ``stage0``,
``link0-1``, ...), one slice per scheduled op, simulated seconds on the
timeline (microsecond event units — 1 simulated second = 1 displayed
second).

Works on every schedule shape by duck typing — the eager
:class:`~repro.sim.engine.Schedule`, the lazy
:class:`~repro.sim.engine.VectorSchedule` (materialised through its ``ops``
property), and the stacked :class:`~repro.sim.shapebatch.StackedSchedule`
(one process group per scenario) — without importing the sim layer, so the
obs package stays importable from anywhere in the stack.

Surfaces: ``repro pipeline --trace-out``, ``repro compare --trace-out``
(one process group per strategy), and the serve sweep handler's
``trace`` request flag.  :func:`validate_trace_events` is the schema check
the tests and the CI serve job share.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.common.errors import ConfigurationError


def _kind_name(kind: Any) -> str:
    value = getattr(kind, "value", kind)
    return str(value)


def schedule_events(schedule: Any, *, pid: int = 1, label: str = "schedule",
                    sort_index: int = 0) -> list[dict[str, Any]]:
    """One schedule's trace events: a process group with a track per resource.

    ``pid`` numbers the process group (callers exporting several schedules —
    compare's strategies, a stacked group's scenarios — hand out distinct
    pids); ``label`` names it; ``sort_index`` orders groups in the viewer.
    Resources become thread tracks in the schedule's declared resource order,
    ops become complete events carrying kind/phase/subgroup/op id as args.
    """
    ops = getattr(schedule, "ops", None)
    resources = list(getattr(schedule, "resources", []) or [])
    if ops is None:
        raise ConfigurationError(
            f"cannot export {type(schedule).__name__!r}: no ops attribute "
            "(expected a Schedule, VectorSchedule or StackedSchedule)"
        )
    track_of = {name: number for number, name in enumerate(resources)}
    events: list[dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": label},
    }, {
        "ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
        "args": {"sort_index": sort_index},
    }]
    for name, number in track_of.items():
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": number,
            "args": {"name": name},
        })
        events.append({
            "ph": "M", "name": "thread_sort_index", "pid": pid, "tid": number,
            "args": {"sort_index": number},
        })
    for item in ops:
        op = item.op
        tid = track_of.get(op.resource)
        if tid is None:
            # A resource the schedule forgot to declare still gets a track.
            tid = len(track_of)
            track_of[op.resource] = tid
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": op.resource},
            })
        args: dict[str, Any] = {
            "kind": _kind_name(op.kind),
            "op_id": op.op_id,
        }
        if op.phase:
            args["phase"] = op.phase
        if op.subgroup is not None:
            args["subgroup"] = op.subgroup
        events.append({
            "ph": "X",
            "name": op.name,
            "cat": _kind_name(op.kind),
            "ts": item.start * 1e6,
            "dur": max(item.end - item.start, 0.0) * 1e6,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    return events


def schedule_trace(schedule: Any, *, label: str = "schedule") -> dict[str, Any]:
    """One schedule as a complete trace-event document."""
    return {"traceEvents": schedule_events(schedule, label=label),
            "displayTimeUnit": "ms"}


def schedules_trace(schedules: Mapping[str, Any]) -> dict[str, Any]:
    """Several labelled schedules, one process group each (compare's shape)."""
    events: list[dict[str, Any]] = []
    for number, (label, schedule) in enumerate(schedules.items()):
        events.extend(schedule_events(schedule, pid=number + 1, label=str(label),
                                      sort_index=number))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def stacked_trace(stacked: Any, labels: Iterable[str] | None = None) -> dict[str, Any]:
    """A :class:`~repro.sim.shapebatch.StackedSchedule`, one group per scenario."""
    schedule_for = getattr(stacked, "schedule_for", None)
    starts = getattr(stacked, "starts", None)
    if schedule_for is None or starts is None:
        raise ConfigurationError(
            f"cannot export {type(stacked).__name__!r} as a stacked schedule"
        )
    count = int(starts.shape[1]) if getattr(starts, "ndim", 0) == 2 else 0
    names = list(labels) if labels is not None else \
        [f"scenario {number}" for number in range(count)]
    return schedules_trace({
        names[number] if number < len(names) else f"scenario {number}":
            schedule_for(number)
        for number in range(count)
    })


def write_schedule_trace(path: str | Path, schedule: Any, *,
                         label: str = "schedule") -> Path:
    """Serialize one schedule's trace document to ``path``; returns it."""
    return _write(path, schedule_trace(schedule, label=label))


def write_schedules_trace(path: str | Path,
                          schedules: Mapping[str, Any]) -> Path:
    """Serialize several labelled schedules to one trace document at ``path``."""
    return _write(path, schedules_trace(schedules))


def _write(path: str | Path, payload: dict[str, Any]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str),
                    encoding="utf-8")
    return path


# ------------------------------------------------------------------ validation


def validate_trace_events(payload: Any) -> int:
    """Assert ``payload`` is a well-formed trace-event document; returns the
    number of duration ("X") events.

    The schema check the obs tests and the CI serve job share: the document
    must be an object with a ``traceEvents`` list whose members each carry a
    valid phase, and whose duration events carry name/ts/dur/pid/tid with
    numeric, non-negative timing.  Raises :class:`ConfigurationError` with
    the first offence.
    """
    if not isinstance(payload, Mapping):
        raise ConfigurationError("trace document must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ConfigurationError("trace document must carry a traceEvents list")
    complete = 0
    for position, event in enumerate(events):
        if not isinstance(event, Mapping):
            raise ConfigurationError(f"traceEvents[{position}] is not an object")
        phase = event.get("ph")
        if phase not in ("X", "B", "E", "M", "i", "C"):
            raise ConfigurationError(
                f"traceEvents[{position}] has unknown phase {phase!r}"
            )
        if phase != "M":
            for key in ("pid", "tid"):
                if not isinstance(event.get(key), (int, float)):
                    raise ConfigurationError(
                        f"traceEvents[{position}] is missing a numeric {key!r}"
                    )
        if phase == "X":
            if not event.get("name"):
                raise ConfigurationError(f"traceEvents[{position}] has no name")
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ConfigurationError(
                        f"traceEvents[{position}] has invalid {key!r}: {value!r}"
                    )
            complete += 1
    return complete
