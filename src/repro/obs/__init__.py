"""``repro.obs`` — unified observability: spans, schedule export, metrics.

Three pillars, one trace-event dialect:

* :mod:`repro.obs.trace` — span tracing across every middleware seam, with
  explicit context propagation through the dispatch layer so pool/cluster
  worker spans stitch into one parent trace, exported as Chrome trace-event
  JSON (Perfetto-loadable);
* :mod:`repro.obs.export` — any :class:`~repro.sim.engine.Schedule` /
  ``VectorSchedule`` / ``StackedSchedule`` rendered to the same format, one
  track per engine resource (``repro pipeline --trace-out``,
  ``repro compare --trace-out``, serve's sweep ``trace`` flag);
* :mod:`repro.obs.metrics` — a process-wide registry of labelled
  counters/gauges/histograms with Prometheus text exposition, which the
  timing/quota/concurrency middleware re-register onto
  (``repro.obs.metrics.reset()`` is the test-isolation hook).

Switched on by policy, not code: ``ExecutionPolicy.trace`` /
``ExecutionPolicy.trace_out`` (``$REPRO_TRACE`` / ``$REPRO_TRACE_OUT``)
resolve through the standard four-level order.  See
``docs/observability.md``.

Import ordering note: :mod:`repro.obs.metrics` must load before
:mod:`repro.obs.trace` here — the middleware layer imports ``metrics`` at
module scope and ``trace`` imports the middleware base, so this order keeps
the cycle one-directional at import time.
"""

from repro.obs import metrics
from repro.obs.export import (
    schedule_events,
    schedule_trace,
    schedules_trace,
    stacked_trace,
    validate_trace_events,
    write_schedule_trace,
    write_schedules_trace,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import (
    TraceMiddleware,
    absorb_spans,
    activate_trace_context,
    current_trace_context,
    drain_spans,
    maybe_span,
    reset_tracing,
    snapshot_spans,
    span,
    take_trace,
    trace_events,
    tracing_enabled,
    write_trace,
)

__all__ = [
    "metrics",
    "REGISTRY",
    "MetricsRegistry",
    "TraceMiddleware",
    "absorb_spans",
    "activate_trace_context",
    "current_trace_context",
    "drain_spans",
    "maybe_span",
    "reset_tracing",
    "snapshot_spans",
    "span",
    "take_trace",
    "trace_events",
    "tracing_enabled",
    "write_trace",
    "schedule_events",
    "schedule_trace",
    "schedules_trace",
    "stacked_trace",
    "validate_trace_events",
    "write_schedule_trace",
    "write_schedules_trace",
]
