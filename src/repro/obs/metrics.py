"""The metrics registry: labelled counters, gauges and histograms.

One process-wide :class:`MetricsRegistry` (:data:`REGISTRY`) replaces the
ad-hoc metric surfaces that grew with each subsystem: ``TimingMiddleware``'s
per-seam dict, serve's bespoke ``/metrics`` JSON blob, and the quota/
concurrency middleware's private state.  Those surfaces all still exist —
their exact shapes are load-bearing for tests and the CI serve job — but they
now *re-register* onto this registry as they record, so one
Prometheus-renderable snapshot covers everything
(:meth:`MetricsRegistry.render_prometheus`, surfaced by ``repro serve`` under
``GET /metrics`` with ``Accept: text/plain``).

Design constraints, in order:

* **stdlib only** — the middleware layer imports this module, so it must not
  import anything above ``repro.common``;
* **cheap on the hot path** — a labelled increment is one dict lookup and one
  float add under a lock (seam interceptions are per-request/per-task, never
  per-op, so the lock is uncontended in practice);
* **resettable** — :func:`reset` zeroes every value (registrations survive:
  module-level metric handles like :data:`SEAM_CALLS` stay valid) and clears
  the legacy per-seam timing dict too, which is what frees metric assertions
  from test-execution order.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable, Mapping

from repro.common.errors import ConfigurationError

#: Default histogram buckets (seconds-flavoured, like Prometheus client
#: libraries): wide enough for microsecond seam latencies and minute sweeps.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_KINDS = ("counter", "gauge", "histogram")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Metric:
    """One named metric family: a value (or histogram state) per label set.

    Instances come from the registry's :meth:`~MetricsRegistry.counter` /
    :meth:`~MetricsRegistry.gauge` / :meth:`~MetricsRegistry.histogram`
    factories — never constructed directly.  ``labels(**labelvalues)``
    returns a :class:`_Child` bound to one label combination; metrics
    declared without label names have an implicit single child reachable
    through the value methods on the metric itself.
    """

    def __init__(self, name: str, help_text: str, kind: str,
                 labelnames: tuple[str, ...],
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                 lock: threading.Lock | None = None) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = tuple(sorted(buckets)) if kind == "histogram" else ()
        self._lock = lock if lock is not None else threading.Lock()
        # label values tuple -> float (counter/gauge) or histogram state dict.
        self._values: dict[tuple[str, ...], Any] = {}

    # ------------------------------------------------------------- recording

    def labels(self, **labelvalues: Any) -> "_Child":
        if set(labelvalues) != set(self.labelnames):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.labelnames!r}, "
                f"got {tuple(sorted(labelvalues))!r}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        return _Child(self, key)

    def _no_labels(self) -> "_Child":
        if self.labelnames:
            raise ConfigurationError(
                f"metric {self.name!r} is labelled ({', '.join(self.labelnames)}); "
                "use .labels(...)"
            )
        return _Child(self, ())

    def inc(self, amount: float = 1.0) -> None:
        self._no_labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._no_labels().dec(amount)

    def set(self, value: float) -> None:
        self._no_labels().set(value)

    def observe(self, value: float) -> None:
        self._no_labels().observe(value)

    # ------------------------------------------------------------ inspection

    def value(self, **labelvalues: Any) -> float:
        """Current value of one child (counters/gauges; histograms: the sum)."""
        key = self.labels(**labelvalues)._key if labelvalues else ()
        with self._lock:
            state = self._values.get(key)
            if state is None:
                return 0.0
            if self.kind == "histogram":
                return state["sum"]
            return state

    def samples(self) -> dict[tuple[str, ...], Any]:
        """Snapshot of every child's state, keyed by its label-value tuple."""
        with self._lock:
            return {
                key: dict(state) if isinstance(state, dict) else state
                for key, state in self._values.items()
            }

    def _reset_values(self) -> None:
        with self._lock:
            self._values.clear()


class _Child:
    """One (metric, label values) binding with the kind's value methods."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Metric, key: tuple[str, ...]) -> None:
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        metric = self._metric
        if metric.kind == "histogram":
            raise ConfigurationError(f"histogram {metric.name!r} takes observe(), not inc()")
        if metric.kind == "counter" and amount < 0:
            raise ConfigurationError(f"counter {metric.name!r} cannot decrease")
        with metric._lock:
            metric._values[self._key] = metric._values.get(self._key, 0.0) + amount

    def dec(self, amount: float = 1.0) -> None:
        metric = self._metric
        if metric.kind != "gauge":
            raise ConfigurationError(f"only gauges decrease; {metric.name!r} is a {metric.kind}")
        with metric._lock:
            metric._values[self._key] = metric._values.get(self._key, 0.0) - amount

    def set(self, value: float) -> None:
        metric = self._metric
        if metric.kind != "gauge":
            raise ConfigurationError(f"only gauges set(); {metric.name!r} is a {metric.kind}")
        with metric._lock:
            metric._values[self._key] = float(value)

    def observe(self, value: float) -> None:
        metric = self._metric
        if metric.kind != "histogram":
            raise ConfigurationError(
                f"only histograms observe(); {metric.name!r} is a {metric.kind}"
            )
        value = float(value)
        with metric._lock:
            state = metric._values.get(self._key)
            if state is None:
                state = {"sum": 0.0, "count": 0,
                         "buckets": [0] * len(metric.buckets)}
                metric._values[self._key] = state
            state["sum"] += value
            state["count"] += 1
            for position, bound in enumerate(metric.buckets):
                if value <= bound:
                    state["buckets"][position] += 1


class MetricsRegistry:
    """A named collection of metrics with idempotent registration.

    Registering the same name twice returns the existing metric when kind and
    label names match (so module reloads and repeated middleware construction
    are safe) and raises when they conflict — two subsystems silently sharing
    one name with different schemas is exactly the bug a registry exists to
    catch.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _register(self, name: str, help_text: str, kind: str,
                  labelnames: Iterable[str],
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Metric:
        if not isinstance(name, str) or not name:
            raise ConfigurationError("metric name must be a non-empty string")
        if kind not in _KINDS:
            raise ConfigurationError(
                f"unknown metric kind {kind!r}; expected one of {', '.join(_KINDS)}"
            )
        labelnames = tuple(str(label) for label in labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != labelnames:
                    raise ConfigurationError(
                        f"metric {name!r} already registered as a {existing.kind} "
                        f"with labels {existing.labelnames!r}"
                    )
                return existing
            metric = Metric(name, help_text, kind, labelnames, buckets)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> Metric:
        """A monotonically increasing value per label set."""
        return self._register(name, help_text, "counter", labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = ()) -> Metric:
        """A value that can go up and down per label set."""
        return self._register(name, help_text, "gauge", labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Metric:
        """Cumulative-bucket observations per label set."""
        return self._register(name, help_text, "histogram", labelnames, buckets)

    def get(self, name: str) -> Metric | None:
        """The registered metric, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> dict[str, dict[str, Any]]:
        """JSON-able snapshot: name -> kind/help/labelnames/samples."""
        with self._lock:
            metrics = list(self._metrics.values())
        snapshot: dict[str, dict[str, Any]] = {}
        for metric in metrics:
            samples = [
                {"labels": dict(zip(metric.labelnames, key)), "value": state}
                for key, state in sorted(metric.samples().items())
            ]
            snapshot[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "labels": list(metric.labelnames),
                "samples": samples,
            }
        return snapshot

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (version 0.0.4).

        Histograms expose the conventional ``_bucket{le=...}`` (cumulative,
        ``+Inf`` included), ``_sum`` and ``_count`` series.  Families with no
        samples yet render their ``HELP``/``TYPE`` header only, so scrapers
        discover every declared metric immediately.
        """
        lines: list[str] = []
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda metric: metric.name)
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for key, state in sorted(metric.samples().items()):
                if metric.kind == "histogram":
                    lines.extend(self._histogram_lines(metric, key, state))
                else:
                    lines.append(
                        f"{metric.name}{self._label_text(metric.labelnames, key)} "
                        f"{_format_value(state)}"
                    )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _label_text(labelnames: tuple[str, ...], key: tuple[str, ...],
                    extra: Mapping[str, str] | None = None) -> str:
        pairs = [f'{name}="{_escape_label_value(value)}"'
                 for name, value in zip(labelnames, key)]
        for name, value in (extra or {}).items():
            pairs.append(f'{name}="{_escape_label_value(value)}"')
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def _histogram_lines(self, metric: Metric, key: tuple[str, ...],
                         state: Mapping[str, Any]) -> list[str]:
        lines = []
        for bound, count in zip(metric.buckets, state["buckets"]):
            label_text = self._label_text(
                metric.labelnames, key, {"le": _format_value(bound)})
            lines.append(f"{metric.name}_bucket{label_text} {count}")
        inf_text = self._label_text(metric.labelnames, key, {"le": "+Inf"})
        lines.append(f"{metric.name}_bucket{inf_text} {state['count']}")
        plain = self._label_text(metric.labelnames, key)
        lines.append(f"{metric.name}_sum{plain} {_format_value(state['sum'])}")
        lines.append(f"{metric.name}_count{plain} {state['count']}")
        return lines

    def reset_values(self) -> None:
        """Zero every sample; registrations (and metric handles) survive."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric._reset_values()


#: The process-wide default registry every built-in metric registers onto.
REGISTRY = MetricsRegistry()


# ------------------------------------------------------------ built-in metrics
#
# Declared here — not in the middleware that records them — so the families
# appear in a Prometheus scrape (HELP/TYPE headers) before the first sample,
# and so the serve layer can render one registry without importing middleware.

SEAM_CALLS = REGISTRY.counter(
    "repro_seam_calls_total",
    "Calls intercepted per middleware seam (recorded by TimingMiddleware).",
    ("seam",),
)
SEAM_ERRORS = REGISTRY.counter(
    "repro_seam_errors_total",
    "Intercepted calls that raised, per middleware seam.",
    ("seam",),
)
SEAM_LATENCY = REGISTRY.histogram(
    "repro_seam_latency_seconds",
    "Latency of intercepted calls per middleware seam.",
    ("seam",),
)
QUOTA_REJECTIONS = REGISTRY.counter(
    "repro_quota_rejections_total",
    "Requests rejected by the quota middleware, per client.",
    ("client",),
)
CONCURRENCY_REJECTIONS = REGISTRY.counter(
    "repro_concurrency_rejections_total",
    "Calls rejected at the concurrency bound (reject mode), per seam.",
    ("seam",),
)
CONCURRENCY_IN_FLIGHT = REGISTRY.gauge(
    "repro_concurrency_in_flight",
    "Calls currently inside a concurrency-limited section, per seam.",
    ("seam",),
)
TRACE_SPANS = REGISTRY.counter(
    "repro_trace_spans_total",
    "Spans recorded by the trace collector, per seam.",
    ("seam",),
)


def reset() -> None:
    """Zero every metric in the default registry *and* the legacy seam dict.

    The one reset test fixtures need: after it, ``middleware_metrics()`` is
    empty and every registry sample reads zero, so metric assertions no longer
    depend on what ran earlier in the process.
    """
    REGISTRY.reset_values()
    # Deferred import: repro.middleware.builtin imports this module at the
    # top level, so the reverse edge must stay function-local.
    from repro.middleware.base import reset_middleware_metrics

    reset_middleware_metrics()
