"""Length-prefixed message framing shared by the coordinator and the workers.

One frame on the wire is::

    +----------------+-----------+----------------+
    | length (4B BE) | codec (1B)| payload        |
    +----------------+-----------+----------------+

``length`` counts the payload bytes only.  ``codec`` selects how the payload
decodes: :data:`CODEC_JSON` (UTF-8 JSON — control messages: hello, welcome,
heartbeat, shutdown) or :data:`CODEC_PICKLE` (task assignments and results,
which carry arbitrary picklable values such as :class:`~repro.runtime.ExecutionPolicy`
and worker return values).  Frames above :data:`MAX_FRAME_BYTES` are rejected
on both send and receive, so a corrupt length prefix cannot make a peer
allocate unbounded memory.

Both a blocking-socket API (worker daemons are synchronous) and an
``asyncio`` stream API (the coordinator) are provided; they are wire-compatible
by construction since both go through :func:`encode_frame` / :func:`decode_payload`.

**Security model**: pickle crosses this wire.  The coordinator and its workers
mutually trust each other and the network between them — see the security note
in ``docs/dispatch.md``.  Nothing here authenticates peers.
"""

from __future__ import annotations

import asyncio
import json
import pickle
import socket
import struct
from typing import Any

from repro.common.errors import ReproError

CODEC_JSON = 0
CODEC_PICKLE = 1

_HEADER = struct.Struct("!IB")

#: Upper bound on one frame's payload; a sweep value larger than this should
#: not be crossing a control channel in one message anyway.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class FramingError(ReproError):
    """Raised on malformed frames or closed connections mid-frame."""


def encode_frame(message: Any, codec: int = CODEC_JSON) -> bytes:
    """Serialize one message into a complete frame (header + payload)."""
    if codec == CODEC_JSON:
        payload = json.dumps(message, separators=(",", ":")).encode()
    elif codec == CODEC_PICKLE:
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    else:
        raise FramingError(f"unknown frame codec {codec!r}")
    if len(payload) > MAX_FRAME_BYTES:
        raise FramingError(f"frame payload of {len(payload)} bytes exceeds the "
                           f"{MAX_FRAME_BYTES}-byte bound")
    return _HEADER.pack(len(payload), codec) + payload


def decode_payload(codec: int, payload: bytes) -> Any:
    """Deserialize one frame's payload."""
    if codec == CODEC_JSON:
        try:
            return json.loads(payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FramingError(f"undecodable JSON frame: {exc}") from exc
    if codec == CODEC_PICKLE:
        try:
            return pickle.loads(payload)
        except Exception as exc:  # pickle raises a zoo of types
            raise FramingError(f"undecodable pickle frame: {exc}") from exc
    raise FramingError(f"unknown frame codec {codec!r}")


def _check_header(length: int, codec: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise FramingError(f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte bound")
    if codec not in (CODEC_JSON, CODEC_PICKLE):
        raise FramingError(f"unknown frame codec {codec!r}")


# ------------------------------------------------------------- blocking socket


def send_message(sock: socket.socket, message: Any, codec: int = CODEC_JSON) -> None:
    """Write one complete frame to a blocking socket."""
    sock.sendall(encode_frame(message, codec))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise FramingError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Any:
    """Read one complete frame from a blocking socket.

    Raises :class:`FramingError` when the peer closes mid-frame; a clean close
    *between* frames raises :class:`ConnectionClosed` so callers can tell an
    orderly shutdown from a truncated message.
    """
    first = sock.recv(_HEADER.size)
    if not first:
        raise ConnectionClosed("connection closed")
    header = first if len(first) == _HEADER.size else \
        first + _recv_exact(sock, _HEADER.size - len(first))
    length, codec = _HEADER.unpack(header)
    _check_header(length, codec)
    return decode_payload(codec, _recv_exact(sock, length) if length else b"")


class ConnectionClosed(FramingError):
    """The peer closed the connection cleanly between frames."""


# ------------------------------------------------------------- asyncio streams


async def read_frame(reader: asyncio.StreamReader, *, prefix: bytes = b"") -> Any:
    """Read one complete frame from an asyncio stream.

    ``prefix`` replays bytes already consumed from the stream (the serve
    front sniffs the first byte to tell a frame from an HTTP request line and
    hands it back here) — they count as the start of the header.

    Raises :class:`ConnectionClosed` on clean EOF between frames and
    :class:`FramingError` on a truncated or malformed frame.
    """
    try:
        header = prefix + await reader.readexactly(_HEADER.size - len(prefix))
    except asyncio.IncompleteReadError as exc:
        if not exc.partial and not prefix:
            raise ConnectionClosed("connection closed") from None
        raise FramingError("connection closed mid-frame") from None
    length, codec = _HEADER.unpack(header)
    _check_header(length, codec)
    try:
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        raise FramingError("connection closed mid-frame") from None
    return decode_payload(codec, payload)


async def write_frame(writer: asyncio.StreamWriter, message: Any,
                      codec: int = CODEC_JSON) -> None:
    """Write one complete frame to an asyncio stream and drain."""
    writer.write(encode_frame(message, codec))
    await writer.drain()


# ----------------------------------------------------- request/response frames
# The frame shapes spoken by the repro.serve daemon over this framing.  They
# live here, next to the wire format, because server, client and tests all
# need the same dict layout.  Serve frames are JSON-codec only: unlike the
# cluster wire, nothing a serve client sends is ever unpickled.

MSG_REQUEST = "request"
MSG_RESPONSE = "response"


def make_request(request_id: Any, method: str, params: Any = None,
                 policy: Any = None, client: str | None = None) -> dict:
    """Build one serve request frame.

    ``params`` are the method's arguments; ``policy`` is a mapping of
    :class:`~repro.runtime.ExecutionPolicy` field overrides applied on top of
    the server's defaults; ``client`` identifies the caller for quota
    accounting (the server falls back to the peer address).
    """
    frame: dict = {"type": MSG_REQUEST, "id": request_id, "method": str(method)}
    if params:
        frame["params"] = dict(params)
    if policy:
        frame["policy"] = dict(policy)
    if client is not None:
        frame["client"] = str(client)
    return frame


def make_response(request_id: Any, result: Any) -> dict:
    """Build one successful serve response frame."""
    return {"type": MSG_RESPONSE, "id": request_id, "ok": True, "result": result}


def make_error_response(request_id: Any, error_type: str, message: str,
                        status: int = 500) -> dict:
    """Build one failed serve response frame.

    ``status`` doubles as the HTTP status code on the HTTP front, so both
    fronts classify errors identically.
    """
    return {"type": MSG_RESPONSE, "id": request_id, "ok": False,
            "error": {"type": str(error_type), "message": str(message),
                      "status": int(status)}}


def parse_request(frame: Any) -> tuple[Any, str, dict, dict, str | None]:
    """Validate one serve request frame into ``(id, method, params, policy, client)``.

    Raises :class:`FramingError` on anything that is not a well-formed request;
    the server answers those with a ``status=400`` error response rather than
    dropping the connection.
    """
    if not isinstance(frame, dict) or frame.get("type") != MSG_REQUEST:
        raise FramingError(f"expected a {MSG_REQUEST!r} frame, got {type(frame).__name__}")
    method = frame.get("method")
    if not isinstance(method, str) or not method:
        raise FramingError("request frame carries no method")
    params = frame.get("params") or {}
    policy = frame.get("policy") or {}
    if not isinstance(params, dict):
        raise FramingError("request params must be a JSON object")
    if not isinstance(policy, dict):
        raise FramingError("request policy must be a JSON object")
    client = frame.get("client")
    return frame.get("id"), method, dict(params), dict(policy), \
        None if client is None else str(client)
