"""The :class:`Executor` protocol: what every dispatch backend implements.

An executor is constructed around a *worker callable* and a resolved
:class:`~repro.runtime.ExecutionPolicy`, is entered as a context manager
(which starts whatever machinery the backend needs — nothing for serial, a
process pool for ``pool``, a listening TCP coordinator for ``cluster``), and
then accepts batches of :class:`Task` objects through :meth:`Executor.submit`,
yielding one :class:`TaskOutcome` per task **as tasks complete** — completion
order, not submission order.  The caller (``SweepRunner``) reassembles
scenario order by ``Task.index``; that split is what lets every backend share
one streaming consumption loop (cache stores, manifest records and progress
lines happen per outcome, so a killed sweep resumes from whatever completed).

Two error channels are deliberately distinct:

* a task that *raises* is an application failure — deterministic, so no
  backend retries it.  In-process backends (serial, pool) propagate the
  original exception unchanged; the cluster backend, which only has the
  remote traceback *text*, raises :class:`DispatchTaskError` carrying it.
  Either way the sweep fails immediately at the raising scenario.
* a worker that *dies or goes silent* is an infrastructure failure — the
  cluster backend re-queues the leased task on another worker, bounded by
  ``max_retries``, and only raises :class:`DispatchError` when the bound is
  exhausted.
"""

from __future__ import annotations

import importlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.common.errors import ConfigurationError, ReproError
from repro.middleware import (
    SEAM_DISPATCH,
    MiddlewareContext,
    build_chain,
    effective_middleware_specs,
)

# The backend names are declared in repro.runtime.policy (the policy layer
# validates the `executor` field, and importing them from here would cycle
# dispatch -> runtime -> dispatch); re-exported here as the canonical
# dispatch-facing names.
from repro.runtime.policy import AUTO_EXECUTOR, EXECUTOR_BACKENDS, EXECUTOR_CHOICES


class DispatchError(ReproError):
    """Infrastructure failure the dispatch layer could not mask.

    Raised when fault tolerance is exhausted: a task exceeded its retry bound,
    or the coordinator ran out of workers while work was still pending.
    """


class DispatchTaskError(ReproError):
    """A task raised inside a worker; carries the remote traceback text."""

    def __init__(self, message: str, *, index: int = -1, worker_id: str = "",
                 remote_traceback: str = ""):
        super().__init__(message)
        self.index = index
        self.worker_id = worker_id
        self.remote_traceback = remote_traceback


@dataclass(frozen=True)
class Task:
    """One unit of work: the scenario's index in the sweep and its parameters."""

    index: int
    params: Mapping[str, Any]


@dataclass(frozen=True)
class TaskOutcome:
    """One completed task: its value plus execution provenance.

    ``worker_id`` identifies who computed it (``"local"`` for serial,
    ``"pool-<pid>"`` for pool processes, the daemon's id for cluster
    workers); ``attempts`` counts lease grants, so anything above 1 means the
    fault-tolerance path ran.  Provenance feeds progress reporting and the
    fault-injection tests — it never influences the value or the cache key.
    """

    index: int
    value: Any
    worker_id: str
    wall_time: float
    attempts: int = 1


@dataclass(frozen=True)
class ExecutorCapabilities:
    """What a backend can do, for callers that need to introspect.

    ``max_parallelism`` is ``None`` when the backend's width is unbounded or
    unknown up front (cluster: workers join at runtime).
    """

    name: str
    distributed: bool
    fault_tolerant: bool
    max_parallelism: int | None


class Executor(ABC):
    """Lifecycle + submit: the whole contract between runner and backend.

    Subclasses receive the worker callable and the resolved policy at
    construction, allocate real resources in :meth:`__enter__` and release
    them in :meth:`close`.  ``submit`` may be called multiple times within one
    lifecycle; outcomes of one submission are fully drained before the next.
    """

    name: str = "abstract"

    def __init__(self, worker: Callable[..., Any], policy) -> None:
        if not callable(worker):
            raise ConfigurationError("executor worker must be callable")
        self.worker = worker
        self.policy = policy

    @abstractmethod
    def submit(self, tasks: Sequence[Task]) -> Iterator[TaskOutcome]:
        """Execute ``tasks``, yielding outcomes as they complete."""

    @abstractmethod
    def capabilities(self) -> ExecutorCapabilities:
        """Static description of the backend."""

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_task_with_middleware(
    worker: Callable[..., Any],
    params: Mapping[str, Any],
    policy,
    *,
    index: int,
    attempts: int = 1,
    worker_id: str = "",
) -> Any:
    """Invoke ``worker(**params)`` through the policy's dispatch-seam chain.

    The one dispatch-seam entry point every backend shares on its *executing*
    side — the serial loop, the pool-process trampoline, and the cluster
    worker daemon all land here, so a chain declared on the policy runs
    wherever the task does.  The payload carries the task's sweep ``index``,
    its 1-based delivery ``attempts`` (above 1 on cluster re-dispatch) and
    the executing ``worker_id`` — what :class:`~repro.middleware.FaultInjectionMiddleware`
    keys its deterministic targeting on.  With an empty stack this is a plain
    call: no context, no chain, no overhead.
    """
    chain = build_chain(effective_middleware_specs(policy))
    if chain is None:
        return worker(**dict(params))
    context = MiddlewareContext(
        seam=SEAM_DISPATCH,
        name=getattr(worker, "__qualname__", None) or repr(worker),
        policy=policy,
        payload={"index": index, "attempts": attempts, "worker_id": worker_id},
    )
    return chain.run(context, lambda: worker(**dict(params)))


def worker_spec(worker: Callable[..., Any]) -> str:
    """``module:qualname`` reference for a module-level worker callable.

    The cluster backend ships workers *by reference*, never by pickled code:
    worker daemons import the callable themselves, so both sides must agree on
    the deployed codebase (see the security note in ``docs/dispatch.md``).
    Locally-defined callables have no importable name and are rejected.
    """
    module = getattr(worker, "__module__", None)
    qualname = getattr(worker, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise ConfigurationError(
            "distributed execution needs a module-level worker callable "
            "(worker daemons import it by name; locally defined functions "
            "have no importable reference)"
        )
    return f"{module}:{qualname}"


def resolve_worker_spec(spec: str) -> Callable[..., Any]:
    """Import the callable a ``module:qualname`` spec names (worker side)."""
    module_name, separator, qualname = spec.partition(":")
    if not separator or not module_name or not qualname:
        raise ConfigurationError(f"malformed worker spec {spec!r}; expected 'module:qualname'")
    try:
        obj: Any = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigurationError(f"cannot import worker module {module_name!r}: {exc}") from exc
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError:
            raise ConfigurationError(
                f"worker spec {spec!r} does not resolve: {module_name!r} has no {qualname!r}"
            ) from None
    if not callable(obj):
        raise ConfigurationError(f"worker spec {spec!r} resolves to a non-callable")
    return obj
