"""The cluster executor: a TCP coordinator dispatching to ``repro worker`` daemons.

The coordinator runs inside the sweep process: an :mod:`asyncio` server on a
background thread, speaking the length-prefixed framing of
:mod:`repro.dispatch.framing`.  Worker daemons (:mod:`repro.dispatch.worker`,
``repro worker --connect HOST:PORT``) dial in, introduce themselves, and are
handed one task at a time: the worker callable *by importable reference*
(``module:qualname``), the scenario parameters, and the parent's resolved
:class:`~repro.runtime.ExecutionPolicy`, which the worker activates as a
context so remote resolution sees the coordinator's decisions — the exact
analogue of what the pool backend pickles into its processes.

**Fault model** (``docs/dispatch.md`` has the full protocol):

* every assignment is a **lease**: the worker must complete it or keep the
  lease alive with heartbeats before ``lease_timeout`` expires;
* a dropped connection or an expired lease **re-queues** the task on another
  worker; lease grants per task are bounded by ``max_retries`` re-tries, after
  which :class:`~repro.dispatch.base.DispatchError` propagates;
* results are deduplicated — first result wins — so a slow worker whose lease
  expired cannot double-deliver a task another worker re-ran;
* a task that *raises* is an application error, not an infrastructure one: it
  fails the sweep immediately — no retry, it would fail identically — as
  :class:`~repro.dispatch.base.DispatchTaskError` carrying the remote
  traceback text (the original exception object stays in the worker; an
  in-process backend would have propagated it unchanged).

Determinism: the coordinator affects *placement only*.  Values come from the
same worker callable under the same policy, and the runner reassembles
scenario order by task index, so a cluster sweep is byte-identical to a serial
one — the fault-injection tests assert this including under mid-task kills.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.common.errors import ConfigurationError
from repro.dispatch.base import (
    DispatchError,
    DispatchTaskError,
    Executor,
    ExecutorCapabilities,
    Task,
    TaskOutcome,
    worker_spec,
)
from repro.dispatch.framing import (
    CODEC_PICKLE,
    ConnectionClosed,
    FramingError,
    read_frame,
    write_frame,
)
from repro.middleware.builtin import retry_attempts_from_specs
from repro.obs.trace import absorb_spans, current_trace_context, tracing_enabled

#: Version stamped into the welcome message; workers refuse a mismatch.
PROTOCOL_VERSION = 1

#: Default lease duration.  Heartbeats (suggested to workers at a third of
#: this) keep long tasks alive, so the timeout only has to cover heartbeat
#: loss, not task duration.
DEFAULT_LEASE_TIMEOUT = 30.0

#: Default bound on *re*-tries per task after its first lease.  The operative
#: bound now derives from the policy's ``retry:attempts=N`` middleware spec
#: when one is declared (one knob for worker-side retry and coordinator
#: re-queue); this constant is the fallback for chains without one.
DEFAULT_MAX_RETRIES = 2

#: How long the coordinator waits for the worker fleet (the initial
#: ``min_workers`` gate, and any later stretch with zero workers connected)
#: before declaring the sweep undispatchable.
DEFAULT_WORKER_WAIT = 60.0

#: How long ``close()`` waits for the coordinator thread to stop.  A module
#: constant (not a parameter) so tests can exercise the wedged-thread path
#: without a ten-second stall.
_CLOSE_JOIN_TIMEOUT = 10.0


def parse_bind(bind: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` bind/connect string (port 0 = ephemeral).

    IPv6 hosts use the bracketed RFC 3986 form — ``[::1]:8000`` — and the
    brackets are stripped from the returned host, which is what
    ``socket.create_connection`` and ``asyncio.start_server`` expect.  A bare
    IPv6 address (``::1``) is rejected rather than misparsed: every colon is a
    candidate port separator, so the form is ambiguous without brackets.
    """
    if bind.startswith("["):
        host, bracket, rest = bind[1:].partition("]")
        if not bracket or not rest.startswith(":") or not host:
            raise ConfigurationError(
                f"expected [IPV6-HOST]:PORT, got {bind!r}")
        port_text = rest[1:]
    else:
        host, separator, port_text = bind.rpartition(":")
        if not separator or not host:
            raise ConfigurationError(f"expected HOST:PORT, got {bind!r}")
        if ":" in host:
            raise ConfigurationError(
                f"ambiguous IPv6 address {bind!r}: bracket the host, "
                f"as in [{host}]:{port_text}")
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(f"invalid port in {bind!r}") from None
    if not 0 <= port <= 65535:
        raise ConfigurationError(f"port out of range in {bind!r}")
    return host, port


@dataclass
class _Conn:
    """Coordinator-side state of one connected worker."""

    worker_id: str
    writer: asyncio.StreamWriter
    task_id: int | None = None  # the task this worker is believed to be running
    last_seen: float = 0.0      # monotonic time of its last frame


@dataclass
class _Round:
    """One submit() batch in flight."""

    tasks: dict[int, Task] = field(default_factory=dict)
    pending: deque = field(default_factory=deque)
    attempts: dict[int, int] = field(default_factory=dict)
    done: set = field(default_factory=set)
    leases: dict[int, tuple[_Conn, float]] = field(default_factory=dict)


class ClusterExecutor(Executor):
    """Distributed execution over TCP-connected ``repro worker`` daemons.

    ``bind`` is the coordinator's listen address (``"127.0.0.1:0"`` picks an
    ephemeral port; :attr:`address` reports the bound one after ``__enter__``).
    ``min_workers`` (default: the policy's ``workers`` field) gates dispatch:
    tasks are held until that many workers have connected, so a fixed fleet is
    fully utilised instead of the first worker draining the queue.
    ``on_event`` receives protocol events (worker joins, lease expiries,
    re-queues) as dicts — the CLI's ``--progress`` plumbing and the
    fault-injection tests both hang off it; it is called from the coordinator
    thread.
    """

    name = "cluster"

    def __init__(
        self,
        worker: Callable[..., Any],
        policy,
        *,
        bind: str = "127.0.0.1:0",
        min_workers: int | None = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_retries: int | None = None,
        worker_wait_timeout: float = DEFAULT_WORKER_WAIT,
        on_event: Callable[[dict], None] | None = None,
    ) -> None:
        super().__init__(worker, policy)
        self._spec = worker_spec(worker)  # validates importability up front
        self._host, self._port = parse_bind(bind)
        self._min_workers = int(policy.workers if min_workers is None else min_workers)
        if self._min_workers < 1:
            raise ConfigurationError("min_workers must be >= 1")
        if lease_timeout <= 0:
            raise ConfigurationError("lease_timeout must be positive")
        if max_retries is None:
            # One retry knob, declared as policy: a `retry:attempts=N` spec on
            # the middleware stack bounds coordinator re-queues too (the
            # worker-side RetryMiddleware covers application exceptions; this
            # bound covers infrastructure failures).
            max_retries = retry_attempts_from_specs(
                getattr(policy, "middleware", ()), default=DEFAULT_MAX_RETRIES
            )
        else:
            warnings.warn(
                "ClusterExecutor(max_retries=...) is deprecated; declare the "
                "bound on the policy's middleware stack instead "
                "(middleware=('retry:attempts=N',))",
                DeprecationWarning,
                stacklevel=2,
            )
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        self._lease_timeout = float(lease_timeout)
        self._max_retries = int(max_retries)
        self._worker_wait = float(worker_wait_timeout)
        self._on_event = on_event

        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        self._conns: dict[int, _Conn] = {}
        self._conn_counter = 0
        self._next_task_id = 0
        self._round: _Round | None = None
        self._outcomes: queue.Queue = queue.Queue()
        self._failed = False
        self._gate_open = False
        self._waiting_since: float | None = None
        self._no_worker_since: float | None = None
        self._stalled_since: float | None = None
        self._watchdog: asyncio.Task | None = None
        self._closed = False
        self._trace_ctx: dict | None = None

    # ------------------------------------------------------------- lifecycle

    def capabilities(self) -> ExecutorCapabilities:
        return ExecutorCapabilities(
            name=self.name, distributed=True, fault_tolerant=True, max_parallelism=None
        )

    def __enter__(self) -> "ClusterExecutor":
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-dispatch-coordinator", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._start(), self._loop)
        try:
            self.address = future.result(timeout=10.0)
        except BaseException:
            self.close()
            raise
        self._event("coordinator-listening", host=self.address[0], port=self.address[1])
        return self

    async def _start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(self._handle, self._host, self._port)
        self._watchdog = asyncio.get_running_loop().create_task(self._watch())
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    def close(self) -> None:
        if self._closed or self._loop is None:
            return
        self._closed = True
        try:
            asyncio.run_coroutine_threadsafe(
                self._shutdown(), self._loop).result(timeout=_CLOSE_JOIN_TIMEOUT)
        except BaseException:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=_CLOSE_JOIN_TIMEOUT)
            if self._thread.is_alive():
                # The loop was told to stop but the thread never came back —
                # some callback is wedged.  Closing the loop out from under it
                # raises in that thread eventually; leaking the loop object
                # forever (the old behaviour) is strictly worse.
                warnings.warn(
                    "coordinator thread did not stop within "
                    f"{_CLOSE_JOIN_TIMEOUT:.0f}s; closing its event loop anyway",
                    RuntimeWarning,
                    stacklevel=2,
                )
        try:
            self._loop.close()
        except RuntimeError:
            # The wedged callback still holds the loop in "running"; nothing
            # more can be done from this thread.  The warning above already
            # fired.
            pass

    async def _shutdown(self) -> None:
        if self._watchdog is not None:
            self._watchdog.cancel()
        for conn in list(self._conns.values()):
            try:
                await write_frame(conn.writer, {"type": "shutdown"})
                conn.writer.close()
            except (OSError, RuntimeError):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ---------------------------------------------------------------- submit

    def submit(self, tasks: Sequence[Task]) -> Iterator[TaskOutcome]:
        # Deliberately not a generator: the not-started guard and the enqueue
        # must fire at call time, not at first iteration of the result stream.
        if self._loop is None or self.address is None:
            raise DispatchError("cluster executor is not started; use it as a context manager")
        tasks = list(tasks)
        if not tasks:
            return iter(())
        # Captured here, on the submitting thread: the coordinator's event
        # loop runs on its own thread and never sees the caller's ContextVars,
        # so the ambient span context must ride in the task frames.  An empty
        # dict (tracing on, no open parent span) still asks workers to ship
        # their spans back.
        self._trace_ctx = None
        if tracing_enabled(self.policy):
            self._trace_ctx = current_trace_context() or {}
        asyncio.run_coroutine_threadsafe(self._enqueue(tasks), self._loop).result(timeout=10.0)
        return self._drain(len(tasks))

    def _drain(self, remaining: int) -> Iterator[TaskOutcome]:
        while remaining:
            try:
                item = self._outcomes.get(timeout=1.0)
            except queue.Empty:
                if self._thread is None or not self._thread.is_alive():
                    raise DispatchError("coordinator thread died") from None
                continue
            if isinstance(item, BaseException):
                raise item
            yield item
            remaining -= 1

    async def _enqueue(self, tasks: Sequence[Task]) -> None:
        # A real error, not an assert: `python -O` strips asserts, and an
        # overlapping submit() would silently interleave two rounds' tasks.
        if self._round is not None and self._round.pending:
            raise DispatchError(
                "previous submission must be fully drained before submit() "
                "is called again on this executor")
        round_ = _Round()
        for task in tasks:
            task_id = self._next_task_id
            self._next_task_id += 1
            round_.tasks[task_id] = task
            round_.pending.append(task_id)
            round_.attempts[task_id] = 0
        self._round = round_
        self._failed = False
        self._waiting_since = time.monotonic()
        self._maybe_dispatch()

    # ----------------------------------------------------------- coordination
    # Everything below runs on the coordinator thread's event loop.

    def _event(self, kind: str, **payload: Any) -> None:
        if self._on_event is not None:
            event = {"event": kind}
            event.update(payload)
            self._on_event(event)

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        key = self._conn_counter
        self._conn_counter += 1
        conn: _Conn | None = None
        try:
            hello = await read_frame(reader)
            if not isinstance(hello, dict) or hello.get("type") != "hello":
                return
            worker_id = str(hello.get("worker_id") or f"worker-{key}")
            await write_frame(writer, {
                "type": "welcome",
                "protocol": PROTOCOL_VERSION,
                "lease_timeout": self._lease_timeout,
                "heartbeat_interval": self._lease_timeout / 3.0,
            })
            conn = _Conn(worker_id=worker_id, writer=writer, last_seen=time.monotonic())
            self._conns[key] = conn
            self._no_worker_since = None
            self._event("worker-connected", worker=worker_id, total=len(self._conns))
            if not self._gate_open and len(self._conns) >= self._min_workers:
                self._gate_open = True
                self._event("dispatch-gate-open", workers=len(self._conns))
            self._maybe_dispatch()
            while True:
                message = await read_frame(reader)
                conn.last_seen = time.monotonic()
                if not isinstance(message, dict):
                    continue
                kind = message.get("type")
                if kind == "heartbeat":
                    self._on_heartbeat(conn, message)
                elif kind == "result":
                    self._on_result(conn, message)
                elif kind == "error":
                    self._on_error(conn, message)
                elif kind == "goodbye":
                    break
        except (ConnectionClosed, FramingError, OSError):
            pass
        finally:
            self._drop(key)
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop tearing down
                pass

    def _drop(self, key: int) -> None:
        conn = self._conns.pop(key, None)
        if conn is None:
            return
        self._event("worker-disconnected", worker=conn.worker_id, total=len(self._conns))
        round_ = self._round
        if round_ is None:
            return
        task_id = conn.task_id
        if task_id is not None and task_id in round_.leases and \
                round_.leases[task_id][0] is conn:
            round_.leases.pop(task_id)
            self._requeue(task_id, f"worker {conn.worker_id} disconnected")
        self._maybe_dispatch()

    def _requeue(self, task_id: int, reason: str) -> None:
        round_ = self._round
        if round_ is None or task_id in round_.done:
            return
        task = round_.tasks[task_id]
        if round_.attempts[task_id] >= self._max_retries + 1:
            self._fail(DispatchError(
                f"scenario #{task.index} failed {round_.attempts[task_id]} "
                f"dispatch attempts (last: {reason}); retry bound of "
                f"{self._max_retries} exhausted"
            ))
            return
        round_.pending.append(task_id)
        self._event("task-requeued", index=task.index, reason=reason,
                    attempts=round_.attempts[task_id])

    def _fail(self, exc: BaseException) -> None:
        if not self._failed:
            self._failed = True
            self._outcomes.put(exc)

    def _maybe_dispatch(self) -> None:
        round_ = self._round
        if round_ is None or self._failed or not self._gate_open:
            return
        idle = [conn for conn in self._conns.values() if conn.task_id is None]
        for conn in idle:
            task_id = None
            while round_.pending:
                candidate = round_.pending.popleft()
                if candidate not in round_.done:
                    task_id = candidate
                    break
            if task_id is None:
                break
            # Claim lease state synchronously, *before* the send coroutine is
            # scheduled: a second _maybe_dispatch in the same loop step must
            # see this worker as busy, or it would double-assign it and lose
            # the popped task.
            conn.task_id = task_id
            round_.attempts[task_id] += 1
            round_.leases[task_id] = (conn, time.monotonic() + self._lease_timeout)
            asyncio.get_running_loop().create_task(self._send_task(conn, task_id))

    def _release(self, conn: _Conn, task_id: int) -> None:
        """Undo a claimed assignment that never reached the worker."""
        round_ = self._round
        if round_ is not None and round_.leases.get(task_id, (None,))[0] is conn:
            round_.leases.pop(task_id)
        if conn.task_id == task_id:
            conn.task_id = None

    async def _send_task(self, conn: _Conn, task_id: int) -> None:
        round_ = self._round
        if round_ is None or task_id in round_.done:
            # The task concluded between the synchronous claim and this
            # coroutine running (e.g. a stale first-wins delivery): nothing
            # was sent, so the worker must be released or it would starve.
            self._release(conn, task_id)
            self._maybe_dispatch()
            return
        task = round_.tasks[task_id]
        self._event("task-assigned", index=task.index, worker=conn.worker_id,
                    attempts=round_.attempts[task_id])
        try:
            await write_frame(conn.writer, {
                "type": "task",
                "task_id": task_id,
                "index": task.index,
                "attempts": round_.attempts[task_id],
                "worker": self._spec,
                "params": dict(task.params),
                "policy": self.policy,
                "trace": self._trace_ctx,
            }, codec=CODEC_PICKLE)
        except (OSError, RuntimeError):
            # The connection handler will observe the broken stream and drop
            # the worker; releasing the lease here re-queues without waiting
            # for the lease to expire.
            if round_.leases.get(task_id, (None,))[0] is conn:
                self._release(conn, task_id)
                self._requeue(task_id, f"send to {conn.worker_id} failed")
                self._maybe_dispatch()
        except Exception as exc:
            # A task frame that cannot serialize (params/policy unpicklable,
            # frame over the bound) is deterministic: it would fail on every
            # worker and every retry, so fail fast with the cause — the
            # coordinator-side mirror of the worker's unserializable-result
            # handling.
            self._release(conn, task_id)
            self._fail(DispatchError(
                f"cannot serialize the task for scenario #{task.index}: "
                f"{type(exc).__name__}: {exc}"
            ))

    def _on_heartbeat(self, conn: _Conn, message: dict) -> None:
        round_ = self._round
        if round_ is None:
            return
        task_id = message.get("task_id")
        lease = round_.leases.get(task_id)
        if lease is not None and lease[0] is conn:
            round_.leases[task_id] = (conn, time.monotonic() + self._lease_timeout)

    def _on_result(self, conn: _Conn, message: dict) -> None:
        round_ = self._round
        task_id = message.get("task_id")
        if conn.task_id == task_id:
            conn.task_id = None
        if round_ is None or task_id not in round_.tasks or task_id in round_.done:
            self._maybe_dispatch()
            return  # stale or duplicate delivery: first result won already
        task = round_.tasks[task_id]
        round_.done.add(task_id)
        round_.leases.pop(task_id, None)
        # A task re-queued after a lease expiry may still be in pending when
        # the original (slow, alive) worker delivers; first result wins.
        try:
            round_.pending.remove(task_id)
        except ValueError:
            pass
        absorb_spans(message.get("spans"))
        self._outcomes.put(TaskOutcome(
            index=task.index,
            value=message.get("value"),
            worker_id=conn.worker_id,
            wall_time=float(message.get("wall_time", 0.0)),
            attempts=round_.attempts[task_id],
        ))
        self._maybe_dispatch()

    def _on_error(self, conn: _Conn, message: dict) -> None:
        round_ = self._round
        task_id = message.get("task_id")
        if conn.task_id == task_id:
            conn.task_id = None
        if round_ is None or task_id not in round_.tasks or task_id in round_.done:
            self._maybe_dispatch()
            return
        lease = round_.leases.get(task_id)
        if lease is None or lease[0] is not conn:
            # Stale delivery: this worker's lease was revoked and the task
            # re-queued (or re-leased elsewhere).  The error may be host-local
            # (OOM, disk full), so let the retry decide — mirroring the
            # first-result-wins rule for successful stale deliveries.
            self._event("stale-error-ignored", index=round_.tasks[task_id].index,
                        worker=conn.worker_id)
            self._maybe_dispatch()
            return
        task = round_.tasks[task_id]
        round_.done.add(task_id)
        round_.leases.pop(task_id, None)
        self._fail(DispatchTaskError(
            f"scenario #{task.index} raised on worker {conn.worker_id}: "
            f"{message.get('message', '<unknown>')}",
            index=task.index,
            worker_id=conn.worker_id,
            remote_traceback=str(message.get("traceback", "")),
        ))

    async def _watch(self) -> None:
        tick = max(0.05, min(0.5, self._lease_timeout / 5.0))
        while True:
            await asyncio.sleep(tick)
            round_ = self._round
            if round_ is None or self._failed:
                continue
            now = time.monotonic()
            outstanding = bool(round_.pending or round_.leases)
            for task_id, (conn, deadline) in list(round_.leases.items()):
                if now > deadline:
                    round_.leases.pop(task_id)
                    # Deliberately leave conn.task_id set: a silent worker gets
                    # no further tasks until its in-flight attempt concludes
                    # (result or error frame), so a wedged daemon cannot eat
                    # the queue.  Its liveness is tracked via last_seen.
                    self._event("lease-expired", index=round_.tasks[task_id].index,
                                worker=conn.worker_id)
                    self._requeue(task_id, f"lease expired on worker {conn.worker_id}")
            if outstanding and not self._conns:
                if self._no_worker_since is None:
                    self._no_worker_since = now
                elif now - self._no_worker_since > self._worker_wait:
                    self._fail(DispatchError(
                        f"no workers connected for {self._worker_wait:.0f}s with "
                        f"{len(round_.pending) + len(round_.leases)} task(s) outstanding"
                    ))
                    continue
            else:
                self._no_worker_since = None
            # Wedged fleet: tasks are queued, no lease is live, yet every
            # connected worker still "holds" an expired lease (conn.task_id
            # set, socket open).  Nothing can ever dispatch, so without this
            # check the sweep would hang instead of raising.  A worker that
            # has sent *anything* within a lease period does not count as
            # wedged — it is alive and its in-flight result will clear its
            # slot (first result wins if the task was already re-queued).
            idle_exists = any(conn.task_id is None for conn in self._conns.values())
            all_silent = all(now - conn.last_seen > self._lease_timeout
                             for conn in self._conns.values())
            if round_.pending and not round_.leases and self._conns \
                    and not idle_exists and all_silent:
                if self._stalled_since is None:
                    self._stalled_since = now
                elif now - self._stalled_since > self._worker_wait:
                    self._fail(DispatchError(
                        f"all {len(self._conns)} connected worker(s) unresponsive "
                        f"for {self._worker_wait:.0f}s with "
                        f"{len(round_.pending)} task(s) queued"
                    ))
                    continue
            else:
                self._stalled_since = None
            if not self._gate_open and round_.pending and self._waiting_since is not None \
                    and now - self._waiting_since > self._worker_wait:
                self._fail(DispatchError(
                    f"waited {self._worker_wait:.0f}s for {self._min_workers} worker(s); "
                    f"only {len(self._conns)} connected"
                ))
                continue
            self._maybe_dispatch()
