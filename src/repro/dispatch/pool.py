"""The pool executor: one host, many processes.

The pre-dispatch ``jobs > 1`` path of ``SweepRunner`` refactored behind the
:class:`~repro.dispatch.base.Executor` protocol: a
:class:`concurrent.futures.ProcessPoolExecutor` of ``policy.jobs`` processes,
each task invoked through a module-level trampoline that pickles only
``(worker, params, policy)`` and activates the policy as the innermost
resolution context around the call — worker-side resolution sees the parent's
decisions at the context level, no environment variables are exported.
Results stream back in completion order; values are byte-identical to a
serial run (the runner reassembles scenario order by index).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Iterator, Sequence

from repro.dispatch.base import (
    Executor,
    ExecutorCapabilities,
    Task,
    TaskOutcome,
    run_task_with_middleware,
)
from repro.obs.trace import absorb_spans, current_trace_context, tracing_enabled
from repro.runtime import policy_context


def _warm_worker() -> None:
    """Pool-process initializer: preload the hot import graph once per process.

    The first task a fresh pool process runs otherwise pays the full import of
    the training stack and the hardware/model preset tables (plain module-level
    dicts — importing the modules *is* the preload).  Doing it in the
    initializer moves that cost off the first task's critical path and pays it
    concurrently across processes while the parent is still submitting.
    Best-effort by design: a trimmed deployment without the training extras
    must not break pools running unrelated workers.
    """
    try:
        import repro.hardware.presets  # noqa: F401
        import repro.model.presets  # noqa: F401
        import repro.training.simulation  # noqa: F401
        import repro.experiments.base  # noqa: F401
    except Exception:  # pragma: no cover - only on broken/partial installs
        pass


def _pool_call(
    worker: Callable[..., Any], params: dict, policy, index: int,
    trace_ctx: dict | None = None,
) -> tuple[Any, str, float, list | None]:
    """Module-level trampoline: run one task inside a pool process.

    Returns ``(value, worker_id, wall_time, spans)`` so outcome provenance
    survives the process boundary without a second round trip.  The policy's
    dispatch-seam middleware chain is rebuilt from its spec strings here, on
    the executing side.  ``trace_ctx`` is the parent's captured span context:
    when present it is re-activated around the task so spans recorded here
    parent under the submitting side's trace, and the recorded spans ride
    back as the fourth element (``None`` when tracing is off, keeping the
    untraced return value byte-stable).
    """
    started = time.perf_counter()
    worker_id = f"pool-{os.getpid()}"
    if trace_ctx is None:
        with policy_context(policy):
            value = run_task_with_middleware(
                worker, params, policy, index=index, worker_id=worker_id,
            )
        return value, worker_id, time.perf_counter() - started, None
    from repro.obs.trace import activate_trace_context, drain_spans

    with policy_context(policy), activate_trace_context(trace_ctx):
        value = run_task_with_middleware(
            worker, params, policy, index=index, worker_id=worker_id,
        )
    return value, worker_id, time.perf_counter() - started, drain_spans()


class PoolExecutor(Executor):
    """Process-parallel execution on the local host."""

    name = "pool"

    def capabilities(self) -> ExecutorCapabilities:
        return ExecutorCapabilities(
            name=self.name, distributed=False, fault_tolerant=False,
            max_parallelism=self.policy.jobs,
        )

    def submit(self, tasks: Sequence[Task]) -> Iterator[TaskOutcome]:
        tasks = list(tasks)
        if not tasks:
            return
        # Captured on the submitting thread: pool processes inherit no
        # ContextVars, so the ambient span context must ride in the task
        # arguments.  An empty dict (tracing on, no open parent span) still
        # tells the child to ship its spans back.
        trace_ctx = None
        if tracing_enabled(self.policy):
            trace_ctx = current_trace_context() or {}
        workers = max(1, min(self.policy.jobs, len(tasks)))
        with ProcessPoolExecutor(max_workers=workers, initializer=_warm_worker) as pool:
            futures = {
                pool.submit(
                    _pool_call, self.worker, dict(task.params), self.policy,
                    task.index, trace_ctx,
                ): task
                for task in tasks
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    task = futures[future]
                    value, worker_id, wall_time, spans = future.result()
                    if spans:
                        absorb_spans(spans)
                    yield TaskOutcome(
                        index=task.index, value=value,
                        worker_id=worker_id, wall_time=wall_time,
                    )
