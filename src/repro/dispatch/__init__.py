"""Pluggable distributed execution: the middleware layer under the sweep runner.

The sweep subsystem's job is *what* to run (a declarative grid) and *what came
back* (ordered, cached results).  This package owns *where and how* scenarios
execute, behind one small protocol — :class:`~repro.dispatch.base.Executor`:
``submit(tasks)`` yields :class:`~repro.dispatch.base.TaskOutcome` objects as
tasks complete, and a context-manager lifecycle brackets whatever real
machinery (process pool, TCP coordinator) the backend needs.  Three backends
implement it:

* ``serial`` — in-process, in scenario order; the reference semantics every
  other backend must reproduce value-for-value.
* ``pool`` — one host, many processes (:class:`concurrent.futures.ProcessPoolExecutor`);
  the pre-dispatch ``jobs > 1`` path refactored behind the protocol.
* ``cluster`` — many hosts: an :mod:`asyncio` TCP coordinator
  (:class:`~repro.dispatch.cluster.ClusterExecutor`) plus ``repro worker``
  daemons (:class:`~repro.dispatch.worker.WorkerClient`), with task leases,
  heartbeats, automatic re-queue from dead or slow workers and bounded
  retries.  See ``docs/dispatch.md`` for the wire protocol and failure model.

Backend choice is execution *policy*, not code: the runner resolves it from
:class:`~repro.runtime.ExecutionPolicy` (``executor``/``workers`` fields,
``$REPRO_EXECUTOR``/``$REPRO_WORKERS``) through the standard resolution
order.  Every backend is value-identical by contract — the differential tests
in ``tests/test_dispatch.py`` / ``tests/test_dispatch_cluster.py`` enforce
byte-identical :class:`~repro.sweep.result.SweepResult` JSON across all
three, including under fault injection.
"""

from repro.dispatch.base import (
    AUTO_EXECUTOR,
    EXECUTOR_BACKENDS,
    EXECUTOR_CHOICES,
    DispatchError,
    DispatchTaskError,
    Executor,
    ExecutorCapabilities,
    Task,
    TaskOutcome,
    resolve_worker_spec,
    worker_spec,
)
from repro.dispatch.cluster import ClusterExecutor
from repro.dispatch.pool import PoolExecutor
from repro.dispatch.serial import SerialExecutor
from repro.dispatch.worker import WorkerClient


def select_backend(policy) -> str:
    """Map a resolved :class:`~repro.runtime.ExecutionPolicy` to a backend name.

    ``executor="auto"`` (the default) preserves the pre-dispatch behaviour:
    ``pool`` when ``jobs > 1``, ``serial`` otherwise.  Explicit names pass
    through unchanged.
    """
    if policy.executor != AUTO_EXECUTOR:
        return policy.executor
    return "pool" if policy.jobs > 1 else "serial"


def create_executor(name: str, worker, policy, **options) -> Executor:
    """Instantiate the named backend (``serial``/``pool``/``cluster``).

    ``options`` are backend-specific keywords (the cluster backend takes
    ``bind``, ``min_workers``, ``lease_timeout``, ``max_retries``, ...);
    backends reject options they do not understand.
    """
    from repro.common.errors import ConfigurationError

    if name not in _BACKENDS:
        raise ConfigurationError(
            f"unknown executor backend {name!r}; expected one of "
            f"{', '.join(repr(key) for key in _BACKENDS)}"
        )
    return _BACKENDS[name](worker, policy, **options)


_BACKENDS = {
    "serial": SerialExecutor,
    "pool": PoolExecutor,
    "cluster": ClusterExecutor,
}

__all__ = [
    "AUTO_EXECUTOR",
    "EXECUTOR_BACKENDS",
    "EXECUTOR_CHOICES",
    "DispatchError",
    "DispatchTaskError",
    "Executor",
    "ExecutorCapabilities",
    "Task",
    "TaskOutcome",
    "SerialExecutor",
    "PoolExecutor",
    "ClusterExecutor",
    "WorkerClient",
    "create_executor",
    "select_backend",
    "worker_spec",
    "resolve_worker_spec",
]
