"""The serial executor: in-process reference semantics.

Runs every task in submission order in the calling process, under a
:func:`repro.runtime.policy_context` pinning the resolved policy — exactly the
environment a pool or cluster worker reproduces remotely.  Every other backend
is tested against this one.
"""

from __future__ import annotations

import time
from typing import Iterator, Sequence

from repro.dispatch.base import (
    Executor,
    ExecutorCapabilities,
    Task,
    TaskOutcome,
    run_task_with_middleware,
)
from repro.runtime import policy_context

#: Worker id every serial outcome reports.
LOCAL_WORKER_ID = "local"


class SerialExecutor(Executor):
    """In-process execution, one task at a time, in submission order."""

    name = "serial"

    def capabilities(self) -> ExecutorCapabilities:
        return ExecutorCapabilities(
            name=self.name, distributed=False, fault_tolerant=False, max_parallelism=1
        )

    def submit(self, tasks: Sequence[Task]) -> Iterator[TaskOutcome]:
        # The context scopes to each worker call, never to the yield: this is
        # a generator, so a loop-wide context would also cover whatever the
        # consumer does between outcomes (cache stores, progress callbacks) —
        # work that runs *outside* any policy context on the pool and cluster
        # backends, and must resolve identically here.
        for task in tasks:
            started = time.perf_counter()
            with policy_context(self.policy):
                value = run_task_with_middleware(
                    self.worker, task.params, self.policy,
                    index=task.index, worker_id=LOCAL_WORKER_ID,
                )
            yield TaskOutcome(
                index=task.index,
                value=value,
                worker_id=LOCAL_WORKER_ID,
                wall_time=time.perf_counter() - started,
            )
