"""The ``repro worker`` daemon: a synchronous client of the cluster coordinator.

A worker dials the coordinator (``repro worker --connect HOST:PORT``),
introduces itself, and then serves tasks one at a time until the coordinator
sends ``shutdown`` or closes the connection.  For each task it:

1. imports the worker callable from its ``module:qualname`` reference
   (cached per spec — both sides must run the same deployed codebase);
2. activates the shipped :class:`~repro.runtime.ExecutionPolicy` as the
   innermost resolution context, exactly like a pool process would;
3. keeps the task's lease alive from a daemon heartbeat thread (the
   interpreter's GIL switching guarantees the thread runs even while the
   task computes); and
4. sends back a ``result`` frame — or an ``error`` frame with the formatted
   traceback if the task raised.

The client is deliberately synchronous: one socket, one task at a time, a
single lock serialising frame writes between the task loop and the heartbeat
thread.  Parallelism on a host comes from running several daemons.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from typing import Any, Callable

from repro.common.errors import ConfigurationError
from repro.dispatch.base import (
    DispatchError,
    resolve_worker_spec,
    run_task_with_middleware,
)
from repro.dispatch.cluster import PROTOCOL_VERSION, parse_bind
from repro.dispatch.framing import (
    CODEC_PICKLE,
    ConnectionClosed,
    FramingError,
    recv_message,
    send_message,
)
from repro.runtime import ExecutionPolicy, policy_context


class WorkerClient:
    """One worker daemon: connect, serve tasks, exit on shutdown.

    ``heartbeat`` overrides the interval the coordinator suggests in its
    welcome message; ``0`` disables heartbeats entirely (only useful to *test*
    the coordinator's lease-expiry path — a real deployment wants them on).
    ``retry_for`` keeps retrying the initial connect for that many seconds, so
    daemons can be launched before the coordinator is listening.
    """

    def __init__(
        self,
        connect: str,
        *,
        worker_id: str | None = None,
        heartbeat: float | None = None,
        retry_for: float = 0.0,
        log: Callable[[str], None] | None = None,
    ) -> None:
        self._host, self._port = parse_bind(connect)
        if self._port == 0:
            raise ConfigurationError("worker needs the coordinator's real port, not 0")
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        if heartbeat is not None and heartbeat < 0:
            raise ConfigurationError("heartbeat must be >= 0 (0 disables)")
        self._heartbeat = heartbeat
        self._retry_for = float(retry_for)
        self._log = log or (lambda line: None)
        self._resolved: dict[str, Callable[..., Any]] = {}
        self._send_lock = threading.Lock()
        self.tasks_completed = 0

    # ------------------------------------------------------------- connection

    def _connect(self) -> socket.socket:
        deadline = time.monotonic() + self._retry_for
        while True:
            try:
                return socket.create_connection((self._host, self._port), timeout=10.0)
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise DispatchError(
                        f"cannot reach coordinator at {self._host}:{self._port}: {exc}"
                    ) from exc
                time.sleep(0.2)

    def _send(self, sock: socket.socket, message: Any, codec: int) -> None:
        with self._send_lock:
            send_message(sock, message, codec)

    # -------------------------------------------------------------- main loop

    def run(self) -> int:
        """Serve until the coordinator shuts us down; returns an exit code."""
        sock = self._connect()
        sock.settimeout(None)  # task frames arrive at the coordinator's pace
        try:
            self._send(sock, {"type": "hello", "worker_id": self.worker_id,
                              "pid": os.getpid(), "host": socket.gethostname()}, 0)
            welcome = recv_message(sock)
            if not isinstance(welcome, dict) or welcome.get("type") != "welcome":
                raise DispatchError("coordinator did not send a welcome")
            if welcome.get("protocol") != PROTOCOL_VERSION:
                raise DispatchError(
                    f"protocol mismatch: coordinator speaks "
                    f"{welcome.get('protocol')!r}, this worker {PROTOCOL_VERSION!r}"
                )
            interval = self._heartbeat
            if interval is None:
                interval = float(welcome.get("heartbeat_interval", 5.0))
            self._log(f"worker {self.worker_id} connected to {self._host}:{self._port}")
            while True:
                try:
                    message = recv_message(sock)
                except ConnectionClosed:
                    self._log(f"worker {self.worker_id}: coordinator went away")
                    return 0
                if not isinstance(message, dict):
                    continue
                kind = message.get("type")
                if kind == "shutdown":
                    self._log(f"worker {self.worker_id}: shutdown "
                              f"({self.tasks_completed} task(s) served)")
                    return 0
                if kind == "task":
                    if not self._serve_task(sock, message, interval):
                        self._log(f"worker {self.worker_id}: coordinator went away")
                        return 0
        except ConnectionClosed:
            self._log(f"worker {self.worker_id}: coordinator went away")
            return 0
        except OSError as exc:
            # A vanished coordinator (reset, closed socket) is an orderly end
            # of service from the daemon's point of view, not a crash.
            self._log(f"worker {self.worker_id}: connection lost: {exc}")
            return 0
        except FramingError as exc:
            self._log(f"worker {self.worker_id}: protocol error: {exc}")
            return 1
        finally:
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ tasks

    def _serve_task(self, sock: socket.socket, message: dict, interval: float) -> bool:
        """Run one task and report it; False when the coordinator vanished.

        A failed result/error send is not a daemon crash: the likely cause is
        a coordinator that finished (or re-ran this task elsewhere after a
        lease expiry) and closed the connection — the daemon should end its
        service cleanly, matching the exit-0-on-shutdown contract.
        """
        task_id = message.get("task_id")
        stop = threading.Event()
        beat: threading.Thread | None = None
        if interval > 0:
            def _beat() -> None:
                while not stop.wait(interval):
                    try:
                        self._send(sock, {"type": "heartbeat", "task_id": task_id}, 0)
                    except OSError:
                        return
            beat = threading.Thread(target=_beat, daemon=True,
                                    name=f"heartbeat-{task_id}")
            beat.start()
        started = time.perf_counter()
        try:
            spec = message["worker"]
            if spec not in self._resolved:
                self._resolved[spec] = resolve_worker_spec(spec)
            fn = self._resolved[spec]
            policy = message.get("policy")
            if policy is not None and not isinstance(policy, ExecutionPolicy):
                raise ConfigurationError("task carried a non-ExecutionPolicy policy")
            params = message.get("params", {})
            # The dispatch seam runs here, on the executing side: the chain is
            # rebuilt from the shipped policy's spec strings, and the payload
            # carries the coordinator's delivery-attempt count so fault and
            # retry middleware see re-dispatches for what they are.
            # A "trace" key in the frame (possibly an empty dict) means the
            # coordinator is collecting spans: re-activate its span context
            # around the task so spans recorded here stitch under the parent
            # trace, and ship them back on the result frame.
            trace_ctx = message.get("trace")
            if policy is None:
                value = fn(**params)
            elif trace_ctx is None:
                with policy_context(policy):
                    value = run_task_with_middleware(
                        fn, params, policy,
                        index=message.get("index", -1),
                        attempts=int(message.get("attempts", 1)),
                        worker_id=self.worker_id,
                    )
            else:
                from repro.obs.trace import activate_trace_context

                with policy_context(policy), activate_trace_context(trace_ctx):
                    value = run_task_with_middleware(
                        fn, params, policy,
                        index=message.get("index", -1),
                        attempts=int(message.get("attempts", 1)),
                        worker_id=self.worker_id,
                    )
        except Exception as exc:
            stop.set()
            try:
                self._send(sock, {
                    "type": "error",
                    "task_id": task_id,
                    "index": message.get("index"),
                    "message": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                }, 0)
            except OSError:
                return False
            self._log(f"worker {self.worker_id}: scenario #{message.get('index')} "
                      f"raised {type(exc).__name__}")
            return True
        finally:
            stop.set()
            if beat is not None:
                beat.join(timeout=1.0)
        wall = time.perf_counter() - started
        result_frame = {
            "type": "result",
            "task_id": task_id,
            "index": message.get("index"),
            "value": value,
            "wall_time": wall,
        }
        if trace_ctx is not None:
            from repro.obs.trace import drain_spans

            result_frame["spans"] = drain_spans()
        try:
            self._send(sock, result_frame, CODEC_PICKLE)
        except OSError:
            return False
        except Exception as exc:
            # An unpicklable or over-frame-bound value is a deterministic
            # *application* failure: report it as a task error so the
            # coordinator fails the sweep with the cause, instead of crashing
            # the daemon and burning the retry budget on identical crashes.
            try:
                self._send(sock, {
                    "type": "error",
                    "task_id": task_id,
                    "index": message.get("index"),
                    "message": f"result not serializable: {type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                }, 0)
            except OSError:
                return False
            self._log(f"worker {self.worker_id}: scenario #{message.get('index')} "
                      f"returned an unserializable result ({type(exc).__name__})")
            return True
        self.tasks_completed += 1
        self._log(f"worker {self.worker_id}: scenario #{message.get('index')} "
                  f"done in {wall:.2f}s")
        return True
