"""The :class:`ExecutionPolicy` object and its four-level resolution order.

Three PRs of backend growth left runtime configuration smeared across call
sites: per-function kwargs (``op_backend=``, ``scheduler_backend=``,
``SweepRunner(scheduler=...)``), ad-hoc ``os.environ`` reads inside
``simulate_job``, and environment-variable exports to reach pooled sweep
workers.  Following the policy-free-middleware argument (Dearle et al.,
"Towards Adaptable and Adaptive Policy-Free Middleware"), this module makes
execution policy a first-class, explicitly-resolved object instead: every
consumer asks :meth:`ExecutionPolicy.resolve` once and passes the result
around as a value.

**Resolution order** — implemented in exactly one place,
:meth:`ExecutionPolicy.resolve`, and identical for every field:

1. **explicit argument** — a non-``None`` keyword passed to ``resolve()``
   (which is where ``simulate_job(policy=...)``, ``SweepRunner(jobs=...)``
   and the CLI flags feed in);
2. **active context** — the innermost :func:`configure` context manager that
   sets the field (contexts nest; inner wins).  The sweep layer's
   ``configure_defaults`` global sits at the bottom of this level;
3. **environment** — the ``REPRO_*`` variable for the field (see
   :data:`POLICY_FIELDS`);
4. **default** — the field's built-in default.

Only the winning value is validated, so a stale ``$REPRO_SIM_SCHEDULER`` in
the environment cannot break a call that overrides it explicitly.

**Automatic scheduler selection.**  ``scheduler="auto"`` (the default) is a
policy-level choice, not an engine backend: :meth:`ExecutionPolicy.select_scheduler`
maps it to the ``vector`` kernel when the DAG's op count reaches
``auto_vector_threshold`` and to the ``heap`` scheduler below it.  Because
scheduler backends are byte-identical (the three-way differential harness in
``tests/test_engine_equivalence.py`` is the proof), ``auto`` can never change a
result — only how fast it is computed.
"""

from __future__ import annotations

import os
from contextvars import ContextVar
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.common.errors import ConfigurationError
from repro.middleware import normalize_middleware_specs
from repro.sim.engine import SCHEDULER_BACKENDS

#: The op-construction backends of ``simulate_job`` (see ``repro.sim.opbatch``).
OP_BACKENDS = ("batch", "objects")

#: Policy-level scheduler choices: the engine backends plus ``"auto"``.
AUTO_SCHEDULER = "auto"
SCHEDULER_CHOICES = (AUTO_SCHEDULER,) + SCHEDULER_BACKENDS

#: The dispatch backends of :mod:`repro.dispatch` (declared here, not there,
#: because the policy layer validates the ``executor`` field and the dispatch
#: package imports this module).  ``"auto"`` preserves the pre-dispatch
#: behaviour: ``pool`` when ``jobs > 1``, ``serial`` otherwise.
EXECUTOR_BACKENDS = ("serial", "pool", "cluster")
AUTO_EXECUTOR = "auto"
EXECUTOR_CHOICES = (AUTO_EXECUTOR,) + EXECUTOR_BACKENDS

#: How ``SweepRunner`` executes scenario grids: ``"scenario"`` dispatches one
#: task per scenario (the classic path), ``"batch"`` groups scenarios by DAG
#: shape and schedules each group in one stacked vector pass (see
#: :mod:`repro.sim.shapebatch`), ``"auto"`` picks ``batch`` when the worker
#: registered a batching adapter and the executor is serial or pool.
SWEEP_MODES = ("scenario", "batch")
AUTO_SWEEP_MODE = "auto"
SWEEP_MODE_CHOICES = (AUTO_SWEEP_MODE,) + SWEEP_MODES

#: Default op count at which ``scheduler="auto"`` switches to the vector kernel.
#: Measured on the scaling benchmark: the struct-of-arrays kernel matches the
#: heap from a few thousand ops and wins clearly beyond ~50k (≈7k optimizer
#: subgroups per iteration), even for analyses that materialise every op.
DEFAULT_AUTO_VECTOR_THRESHOLD = 50_000

#: The policy fields ``simulate_job`` consumes — the ``env_fields`` it passes
#: to :meth:`ExecutionPolicy.resolve`, so a broken sweep-level environment
#: variable (say ``REPRO_SWEEP_JOBS=garbage``) can never fail a simulation
#: that does not read it.  ``middleware`` and ``trace`` are here because the
#: engine seam (``SimEngine.install_middleware``) runs the resolved chain.
SIMULATION_FIELDS = ("op_backend", "scheduler", "auto_vector_threshold", "middleware",
                     "trace")

#: The scenario families the toolkit simulates.  ``scenario_family`` selects
#: which axis a generic surface (the sweep CLI's default worker, serve's
#: dispatch) operates on; it never changes how a family simulates.
SCENARIO_FAMILIES = ("offload", "pipeline")

#: The fields ``simulate_pipeline`` consumes: the simulation set plus the
#: schedule-family default (``pipeline_schedule``).
PIPELINE_FIELDS = SIMULATION_FIELDS + ("pipeline_schedule",)

#: Source labels attached to each resolved field.
SOURCE_ARG = "arg"
SOURCE_CONTEXT = "context"
SOURCE_ENV = "env"
SOURCE_DEFAULT = "default"


class OpBackendFallbackWarning(RuntimeWarning):
    """Emitted (once per strategy) when ``op_backend="batch"`` silently degrades.

    A strategy that does not implement the op-batch row builders is simulated
    through the eager ``"objects"`` path instead.  The schedule is identical —
    the downgrade is purely a performance matter — but it used to be silent;
    now it is recorded in ``SimulationResult.resolved_policy`` and warned here.
    """


# --------------------------------------------------------------------- parsing


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ConfigurationError(f"expected a boolean, got {text!r}")


def _parse_int(text: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ConfigurationError(f"expected an integer, got {text!r}") from None


def _validate_op_backend(value: Any) -> str:
    if value not in OP_BACKENDS:
        raise ConfigurationError(
            f"unknown op backend {value!r}; expected one of "
            f"{', '.join(repr(name) for name in OP_BACKENDS)}"
        )
    return value


def _validate_scheduler(value: Any) -> str:
    if value not in SCHEDULER_CHOICES:
        raise ConfigurationError(
            f"unknown scheduler backend {value!r}; expected one of "
            f"{', '.join(repr(name) for name in SCHEDULER_CHOICES)}"
        )
    return value


def _validate_threshold(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError("auto_vector_threshold must be an integer")
    if value < 0:
        raise ConfigurationError("auto_vector_threshold must be >= 0")
    return value


def _validate_executor(value: Any) -> str:
    if value not in EXECUTOR_CHOICES:
        raise ConfigurationError(
            f"unknown executor backend {value!r}; expected one of "
            f"{', '.join(repr(name) for name in EXECUTOR_CHOICES)}"
        )
    return value


def _validate_sweep_mode(value: Any) -> str:
    if value not in SWEEP_MODE_CHOICES:
        raise ConfigurationError(
            f"unknown sweep mode {value!r}; expected one of "
            f"{', '.join(repr(name) for name in SWEEP_MODE_CHOICES)}"
        )
    return value


def _validate_positive_int(name: str) -> Callable[[Any], int]:
    def validate(value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigurationError(f"{name} must be an integer")
        if value < 1:
            raise ConfigurationError(f"{name} must be >= 1")
        return value
    return validate


_validate_jobs = _validate_positive_int("jobs")
_validate_workers = _validate_positive_int("workers")


def _validate_scenario_family(value: Any) -> str:
    if value not in SCENARIO_FAMILIES:
        raise ConfigurationError(
            f"unknown scenario family {value!r}; expected one of "
            f"{', '.join(repr(name) for name in SCENARIO_FAMILIES)}"
        )
    return value


def _validate_pipeline_schedule(value: Any) -> str:
    # Deferred import: the pipeline package sits above the policy layer.
    from repro.pipeline.schedules import SCHEDULES

    if not isinstance(value, str) or value not in SCHEDULES:
        valid = ", ".join(repr(name) for name in SCHEDULES.names())
        raise ConfigurationError(
            f"unknown pipeline schedule {value!r}; expected one of {valid}"
        )
    return SCHEDULES.get(value).name


def _validate_use_cache(value: Any) -> bool:
    if not isinstance(value, bool):
        raise ConfigurationError("use_cache must be a boolean")
    return value


def _validate_cache_dir(value: Any) -> Path:
    if isinstance(value, (str, Path)):
        return Path(value)
    raise ConfigurationError("cache_dir must be a path or string")


def _default_cache_dir() -> Path:
    return Path.home() / ".cache" / "repro" / "sweeps"


def _validate_trace(value: Any) -> bool:
    if not isinstance(value, bool):
        raise ConfigurationError("trace must be a boolean")
    return value


def _validate_trace_out(value: Any) -> Path | None:
    # None means "record spans but write no file" — the policy_context
    # round-trip carries it verbatim, so the validator must accept it.
    if value is None:
        return None
    if isinstance(value, (str, Path)):
        return Path(value)
    raise ConfigurationError("trace_out must be a path, string or None")


@dataclass(frozen=True)
class _FieldSpec:
    """How one policy field resolves: env variable, env parser, validator, default."""

    env_var: str
    parse_env: Callable[[str], Any]
    validate: Callable[[Any], Any]
    default: Callable[[], Any]


#: The single registry every resolution surface shares — ``resolve()``, the
#: ``repro config`` subcommand, and the docs table are all generated from it.
POLICY_FIELDS: dict[str, _FieldSpec] = {
    "op_backend": _FieldSpec(
        "REPRO_SIM_OP_BACKEND", str, _validate_op_backend, lambda: "batch"
    ),
    "scheduler": _FieldSpec(
        "REPRO_SIM_SCHEDULER", str, _validate_scheduler, lambda: AUTO_SCHEDULER
    ),
    "auto_vector_threshold": _FieldSpec(
        "REPRO_AUTO_VECTOR_THRESHOLD",
        _parse_int,
        _validate_threshold,
        lambda: DEFAULT_AUTO_VECTOR_THRESHOLD,
    ),
    "jobs": _FieldSpec("REPRO_SWEEP_JOBS", _parse_int, _validate_jobs, lambda: 1),
    "executor": _FieldSpec(
        "REPRO_EXECUTOR", str, _validate_executor, lambda: AUTO_EXECUTOR
    ),
    "workers": _FieldSpec("REPRO_WORKERS", _parse_int, _validate_workers, lambda: 1),
    "sweep_mode": _FieldSpec(
        "REPRO_SWEEP_MODE", str, _validate_sweep_mode, lambda: AUTO_SWEEP_MODE
    ),
    "use_cache": _FieldSpec(
        "REPRO_SWEEP_USE_CACHE", _parse_bool, _validate_use_cache, lambda: False
    ),
    "cache_dir": _FieldSpec(
        "REPRO_SWEEP_CACHE_DIR", Path, _validate_cache_dir, _default_cache_dir
    ),
    # The middleware stack: a tuple of spec strings ("timing", "retry:attempts=3",
    # ...) instantiated at each seam by repro.middleware.build_chain.  Specs —
    # not instances — are what pickle to pool/cluster workers inside the policy.
    "middleware": _FieldSpec(
        "REPRO_MIDDLEWARE",
        normalize_middleware_specs,
        normalize_middleware_specs,
        tuple,
    ),
    # Scenario-family selection: which axis generic surfaces (sweep CLI default
    # worker, serve dispatch) operate on, and the default pipeline schedule
    # pass.  Families simulate identically regardless of these — they are
    # routing defaults, not simulation semantics.
    "scenario_family": _FieldSpec(
        "REPRO_SCENARIO_FAMILY", str, _validate_scenario_family, lambda: "offload"
    ),
    "pipeline_schedule": _FieldSpec(
        "REPRO_PIPELINE_SCHEDULE", str, _validate_pipeline_schedule, lambda: "1f1b"
    ),
    # Observability: ``trace`` appends the span-recording middleware to every
    # seam's chain (see repro.middleware.effective_middleware_specs), and
    # ``trace_out`` names the Chrome trace-event file the CLI writes when the
    # traced command finishes.  Both observe-only: results are byte-identical
    # with tracing on or off.
    "trace": _FieldSpec("REPRO_TRACE", _parse_bool, _validate_trace, lambda: False),
    "trace_out": _FieldSpec(
        "REPRO_TRACE_OUT", Path, _validate_trace_out, lambda: None
    ),
}


# -------------------------------------------------------------------- contexts

# The context level of the resolution order: a tuple-of-overlays stack in a
# ContextVar (async- and thread-correct), plus one process-global overlay at
# its bottom that backs the legacy ``repro.sweep.configure_defaults`` surface.
_CONTEXT_STACK: ContextVar[tuple[Mapping[str, Any], ...]] = ContextVar(
    "repro_execution_policy_context", default=()
)
_GLOBAL_OVERLAY: dict[str, Any] = {}


def _checked_overrides(overrides: Mapping[str, Any]) -> dict[str, Any]:
    """Drop ``None`` values, reject unknown fields, validate the rest eagerly."""
    checked: dict[str, Any] = {}
    for name, value in overrides.items():
        if name not in POLICY_FIELDS:
            raise ConfigurationError(
                f"unknown execution-policy field {name!r}; expected one of "
                f"{', '.join(POLICY_FIELDS)}"
            )
        if value is None:
            continue
        checked[name] = POLICY_FIELDS[name].validate(value)
    return checked


class _PolicyContext:
    """Re-entrant-free context manager pushing one overlay onto the stack."""

    def __init__(self, overrides: dict[str, Any]) -> None:
        self._overrides = overrides
        self._token = None

    def __enter__(self) -> "_PolicyContext":
        self._token = _CONTEXT_STACK.set(_CONTEXT_STACK.get() + (self._overrides,))
        return self

    def __exit__(self, *exc_info) -> None:
        _CONTEXT_STACK.reset(self._token)
        self._token = None


def configure(**overrides: Any) -> _PolicyContext:
    """Scope execution-policy overrides to a ``with`` block.

    ::

        with repro.configure(scheduler="vector", jobs=4):
            report = Trainer(config).run()       # resolves scheduler="vector"

    Contexts nest — the innermost context that sets a field wins — and sit
    between explicit arguments and ``REPRO_*`` environment variables in the
    resolution order.  Values are validated here, at declaration time, so a
    typo fails fast rather than at the first resolution.
    """
    return _PolicyContext(_checked_overrides(overrides))


def policy_context(policy: "ExecutionPolicy") -> _PolicyContext:
    """A :func:`configure` context pinning *every* field of ``policy``.

    This is how a resolved policy crosses process boundaries explicitly:
    ``SweepRunner`` pickles its policy to each worker and the worker-side
    trampoline activates it with this context, so worker resolution sees the
    parent's decisions at the context level — no environment variables
    involved.
    """
    if not isinstance(policy, ExecutionPolicy):
        raise ConfigurationError("policy_context expects an ExecutionPolicy")
    return _PolicyContext(policy.as_dict())


def set_global_defaults(**overrides: Any) -> None:
    """Install process-wide context-level defaults (``None`` leaves a field unchanged).

    The bottom overlay of the context level — any active :func:`configure`
    context overrides it, explicit arguments override both.  Backs the
    ``repro.sweep.configure_defaults`` compatibility surface.
    """
    _GLOBAL_OVERLAY.update(_checked_overrides(overrides))


def clear_global_defaults() -> None:
    """Remove every global default installed by :func:`set_global_defaults`."""
    _GLOBAL_OVERLAY.clear()


def _context_lookup(name: str) -> tuple[bool, Any]:
    """(found, value) for ``name`` at the context level (innermost overlay wins)."""
    for overlay in reversed(_CONTEXT_STACK.get()):
        if name in overlay:
            return True, overlay[name]
    if name in _GLOBAL_OVERLAY:
        return True, _GLOBAL_OVERLAY[name]
    return False, None


# ---------------------------------------------------------------------- policy


@dataclass(frozen=True)
class ExecutionPolicy:
    """A frozen record of every runtime-execution decision.

    Constructing the dataclass directly yields a fully explicit policy (every
    field validated, nothing consulted); :meth:`resolve` builds one through the
    documented four-level order instead.  ``sources`` maps each field to where
    its value came from (``arg``/``context``/``env``/``default``); it is
    excluded from equality so two policies with identical values compare equal
    regardless of how they were resolved.
    """

    op_backend: str = "batch"
    scheduler: str = AUTO_SCHEDULER
    auto_vector_threshold: int = DEFAULT_AUTO_VECTOR_THRESHOLD
    jobs: int = 1
    executor: str = AUTO_EXECUTOR
    workers: int = 1
    sweep_mode: str = AUTO_SWEEP_MODE
    use_cache: bool = False
    cache_dir: Path = field(default_factory=_default_cache_dir)
    middleware: tuple = ()
    scenario_family: str = "offload"
    pipeline_schedule: str = "1f1b"
    trace: bool = False
    trace_out: Path | None = None
    sources: Mapping[str, str] = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        for name, spec in POLICY_FIELDS.items():
            object.__setattr__(self, name, spec.validate(getattr(self, name)))
        if not self.sources:
            # Direct construction: infer sources by comparison with the
            # defaults so describe()/resolved_policy introspection stays
            # honest (a field left at its default is not an "arg").
            object.__setattr__(self, "sources", {
                name: SOURCE_ARG if getattr(self, name) != spec.default() else SOURCE_DEFAULT
                for name, spec in POLICY_FIELDS.items()
            })

    # ------------------------------------------------------------- resolution

    @classmethod
    def resolve(
        cls, *, env_fields: tuple[str, ...] | None = None, **overrides: Any
    ) -> "ExecutionPolicy":
        """Resolve every field through arg > context > env > default.

        Keyword names are the policy field names; ``None`` means "not passed"
        and falls through to the next level.  Only the winning value of each
        field is parsed and validated, so garbage at an outvoted level (say, a
        bad environment variable under an explicit argument) never raises.

        ``env_fields`` limits which fields consult the *environment* level —
        a consumer names the fields it actually reads (``simulate_job`` passes
        :data:`SIMULATION_FIELDS`), so a broken ``REPRO_*`` variable for a
        field the consumer never touches cannot fail the call.  Fields outside
        ``env_fields`` still honour arguments and contexts (both validated at
        declaration time) and otherwise take their defaults.  ``None`` — the
        default, used by consumers of the whole policy such as ``SweepRunner``
        and ``repro config`` — consults the environment for every field.
        """
        unknown = set(overrides) - set(POLICY_FIELDS)
        if unknown:
            raise ConfigurationError(
                f"unknown execution-policy field(s) {sorted(unknown)!r}; "
                f"expected one of {', '.join(POLICY_FIELDS)}"
            )
        values: dict[str, Any] = {}
        sources: dict[str, str] = {}
        for name, spec in POLICY_FIELDS.items():
            if overrides.get(name) is not None:
                values[name] = spec.validate(overrides[name])
                sources[name] = SOURCE_ARG
                continue
            found, value = _context_lookup(name)
            if found:
                values[name] = spec.validate(value)
                sources[name] = SOURCE_CONTEXT
                continue
            if env_fields is None or name in env_fields:
                env_text = os.environ.get(spec.env_var)
                if env_text is not None and env_text != "":
                    try:
                        values[name] = spec.validate(spec.parse_env(env_text))
                    except ConfigurationError as exc:
                        # Name the variable: six REPRO_* vars feed this
                        # resolver, and a shell-level typo must say which.
                        raise ConfigurationError(
                            f"invalid ${spec.env_var}={env_text!r}: {exc}"
                        ) from None
                    sources[name] = SOURCE_ENV
                    continue
            values[name] = spec.default()
            sources[name] = SOURCE_DEFAULT
        return cls(sources=sources, **values)

    def with_overrides(self, **overrides: Any) -> "ExecutionPolicy":
        """A copy with the given fields replaced (marked as ``arg`` sources)."""
        checked = _checked_overrides(overrides)
        sources = dict(self.sources)
        sources.update({name: SOURCE_ARG for name in checked})
        return replace(self, sources=sources, **checked)

    # ------------------------------------------------------------- behaviour

    def select_scheduler(self, op_count: int) -> str:
        """The engine backend this policy runs ``op_count`` operations on.

        ``"auto"`` picks ``"vector"`` at or above ``auto_vector_threshold``
        and ``"heap"`` below it; explicit backends pass through unchanged.
        Backends are schedule-identical, so this is purely a performance
        decision.
        """
        if self.scheduler != AUTO_SCHEDULER:
            return self.scheduler
        return "vector" if op_count >= self.auto_vector_threshold else "heap"

    # ------------------------------------------------------------ introspection

    def as_dict(self) -> dict[str, Any]:
        """Field name -> value (no sources); the :func:`policy_context` payload."""
        return {name: getattr(self, name) for name in POLICY_FIELDS}

    def describe(self) -> dict[str, dict[str, Any]]:
        """Field name -> ``{"value", "source"}`` (JSON-ready values)."""
        return {
            name: {
                "value": str(value) if isinstance(value, Path) else value,
                "source": self.sources.get(name, SOURCE_ARG),
            }
            for name, value in self.as_dict().items()
        }


def resolution_report(**overrides: Any) -> dict[str, dict[str, Any]]:
    """Field -> ``{"value", "source"}`` rows (or ``{"error", "source": "error"}``).

    The diagnostic twin of :meth:`ExecutionPolicy.resolve` behind
    ``repro config``: each field resolves *independently*, so one broken
    environment variable shows up as an error on its own row instead of
    taking the whole report — the very tool for diagnosing it — down.
    """
    unknown = set(overrides) - set(POLICY_FIELDS)
    if unknown:
        raise ConfigurationError(
            f"unknown execution-policy field(s) {sorted(unknown)!r}; "
            f"expected one of {', '.join(POLICY_FIELDS)}"
        )
    report: dict[str, dict[str, Any]] = {}
    for name in POLICY_FIELDS:
        override = {name: overrides[name]} if overrides.get(name) is not None else {}
        try:
            policy = ExecutionPolicy.resolve(env_fields=(name,), **override)
        except ConfigurationError as exc:
            report[name] = {"error": str(exc), "source": "error"}
            continue
        value = getattr(policy, name)
        report[name] = {
            "value": str(value) if isinstance(value, Path) else value,
            "source": policy.sources[name],
        }
    return report


@dataclass(frozen=True)
class ResolvedExecution:
    """What one ``simulate_job`` call actually ran, attached to its result.

    ``policy`` is the resolved input; ``op_backend``/``scheduler`` are the
    *effective* backends after the strategy-capability fallback and the
    ``auto`` threshold decision, so callers can introspect what happened
    without re-deriving it.
    """

    policy: ExecutionPolicy
    op_backend: str
    scheduler: str
    op_count: int
    op_backend_fallback: bool = False
    fallback_reason: str = ""
