"""Runtime execution policy: one first-class object instead of plumbed knobs.

:class:`ExecutionPolicy` carries every runtime-execution decision — op
backend, scheduler backend (including ``"auto"`` threshold selection), sweep
parallelism and caching — and :meth:`ExecutionPolicy.resolve` implements the
one documented resolution order (explicit argument > active
:func:`configure` context > ``REPRO_*`` environment > defaults) that every
consumer shares: ``simulate_job``, ``Trainer``, ``SweepRunner`` and the CLI.
See ``docs/runtime.md`` for the full model.
"""

from repro.runtime.policy import (
    AUTO_EXECUTOR,
    AUTO_SCHEDULER,
    AUTO_SWEEP_MODE,
    DEFAULT_AUTO_VECTOR_THRESHOLD,
    EXECUTOR_BACKENDS,
    EXECUTOR_CHOICES,
    OP_BACKENDS,
    PIPELINE_FIELDS,
    POLICY_FIELDS,
    SCENARIO_FAMILIES,
    SCHEDULER_CHOICES,
    SIMULATION_FIELDS,
    SWEEP_MODE_CHOICES,
    SWEEP_MODES,
    ExecutionPolicy,
    OpBackendFallbackWarning,
    ResolvedExecution,
    clear_global_defaults,
    configure,
    policy_context,
    resolution_report,
    set_global_defaults,
)

__all__ = [
    "AUTO_EXECUTOR",
    "AUTO_SCHEDULER",
    "AUTO_SWEEP_MODE",
    "DEFAULT_AUTO_VECTOR_THRESHOLD",
    "EXECUTOR_BACKENDS",
    "EXECUTOR_CHOICES",
    "OP_BACKENDS",
    "PIPELINE_FIELDS",
    "POLICY_FIELDS",
    "SCENARIO_FAMILIES",
    "SCHEDULER_CHOICES",
    "SIMULATION_FIELDS",
    "SWEEP_MODE_CHOICES",
    "SWEEP_MODES",
    "ExecutionPolicy",
    "OpBackendFallbackWarning",
    "ResolvedExecution",
    "configure",
    "policy_context",
    "resolution_report",
    "set_global_defaults",
    "clear_global_defaults",
]
