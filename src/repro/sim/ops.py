"""Operation descriptors submitted to the simulator."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError


class OpKind(enum.Enum):
    """Categories of simulated operations.

    The categories map one-to-one onto the legend of the paper's Figure 5 / Figure 6
    timelines so that the experiment harness can reconstruct those plots.
    """

    GPU_COMPUTE = "gpu_compute"
    GPU_UPDATE = "gpu_update"
    GPU_CONVERT = "gpu_convert"
    CPU_UPDATE = "cpu_update"
    CPU_DOWNSCALE = "cpu_downscale"
    CPU_UPSCALE = "cpu_upscale"
    HOST_ALLOC = "host_alloc"
    H2D = "h2d"
    D2H = "d2h"
    D2D = "d2d"
    ALLGATHER = "allgather"
    REDUCE_SCATTER = "reduce_scatter"
    BARRIER = "barrier"

    @property
    def is_transfer(self) -> bool:
        """True for operations that move data over the PCIe link."""
        return self in (OpKind.H2D, OpKind.D2H)


_op_counter = itertools.count()


def next_op_id() -> int:
    """Allocate the next global op id.

    :class:`SimOp` draws from the same counter via its ``op_id`` default factory, so
    interleaving eager ``SimOp`` construction with :class:`~repro.sim.opbatch.OpBatch`
    row appends yields one globally consistent id sequence — the property the
    opbatch golden-equivalence tests rely on.
    """
    return next(_op_counter)


@dataclass
class SimOp:
    """One operation to be scheduled on a resource.

    ``duration`` is the service time in seconds once the operation starts.  ``deps``
    are operation ids that must complete before this operation may start (in addition
    to the FIFO order of its resource).  ``payload_bytes`` is used to reconstruct
    bandwidth traces; ``gpu_mem_delta`` is applied to the GPU-memory timeline when the
    operation completes (positive = allocation, negative = free).
    """

    name: str
    kind: OpKind
    resource: str
    duration: float
    deps: tuple[int, ...] = ()
    phase: str = ""
    subgroup: int | None = None
    payload_bytes: int = 0
    gpu_mem_delta: int = 0
    op_id: int = field(default_factory=lambda: next(_op_counter))

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigurationError(f"op {self.name!r} has negative duration {self.duration}")
        if self.payload_bytes < 0:
            raise ConfigurationError(f"op {self.name!r} has negative payload")
        self.deps = tuple(self.deps)


def reset_op_counter() -> None:
    """Reset the global op-id counter (used by tests for deterministic ids)."""
    global _op_counter
    _op_counter = itertools.count()
