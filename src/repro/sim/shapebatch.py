"""Shape-compiled scenario batching: one compiled DAG, many duration vectors.

A sweep pays the full scheduling pipeline per scenario even when every grid
point shares one DAG *shape* — the fig14/fig16 grids vary CPU cores or the
static GPU fraction, which changes operation *durations* but never the
operation set, the resources they run on, or the dependency edges.  This
module exploits that: it derives a :class:`ShapeKey` from an
:class:`~repro.sim.opbatch.OpBatch`'s topology, compiles the expensive parts
of the :mod:`~repro.sim.veckernel` pipeline **once per shape**
(:func:`compile_plan`), and then schedules every scenario of a group in one
stacked struct-of-arrays pass (:func:`schedule_group`) over scenario-major 2-D
columns.

**Why the plan replays.**  The vector kernel's frontier loop visits resources
in a fixed order and walks runs of ready head operations, where *ready* means
``pending == 0`` — a pure function of which operations finalised earlier,
i.e. of the dependency topology.  Durations, release times and lower bounds
only feed the *float* computation (``start = max(lb, resource end)``;
``end = start + duration``), never the control flow, so the sequence of
``(row, resource)`` finalisations is identical for every scenario of a shape.
:func:`compile_plan` records that sequence with a float-free walk;
:func:`schedule_group` replays it with each float operation vectorised across
the scenario axis — the same two-operand comparisons and additions
:func:`~repro.sim.veckernel.schedule_rows` performs per scenario, in the same
order, on the same IEEE-754 doubles.  Schedules are therefore byte-identical
to the per-scenario paths; ``tests/test_shapebatch.py`` enforces that
bit-for-bit against both the scalar vector kernel and the heap engine.

**What is in a ShapeKey.**  Everything the control flow can see: per-row
resource names, dependency edges and op ids (both normalised relative to the
batch's first id, so two batches drawn from different stretches of the global
id counter still match), and the *structure* of release times (which rows
have one).  Everything that only feeds floats — durations and release-time
*values* — is deliberately excluded: two scenarios that differ only in
durations share a key, which is the entire point.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from itertools import chain
from operator import itemgetter
from typing import Any, Mapping

from repro.common.errors import ConfigurationError, SimulationError
from repro.sim.engine import VectorSchedule
from repro.sim.veckernel import _compile, require_numpy

try:  # numpy is a hard dependency of the reproduction, but degrade loudly.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on broken installs
    np = None


@dataclass(frozen=True)
class ShapeKey:
    """Topology fingerprint of an op batch: equal keys mean one shared plan.

    ``digest`` hashes the scheduling topology (resources, relative op ids,
    relative dependency edges, release-time structure); ``op_count`` rides
    along for cheap sanity checks and logging.  Duration or release-time
    *value* changes never change a key.
    """

    digest: str
    op_count: int


def shape_key(batch) -> ShapeKey:
    """The :class:`ShapeKey` of an :class:`~repro.sim.opbatch.OpBatch`."""
    require_numpy()
    rows = batch.rows
    n = len(rows)
    if n == 0:
        return ShapeKey(digest=hashlib.sha256(b"empty").hexdigest(), op_count=0)
    first_id = rows[0][9]
    ids = np.fromiter(map(itemgetter(9), rows), dtype=np.int64, count=n)
    rel_ids = ids - first_id
    deps_col = list(map(itemgetter(4), rows))
    dep_counts = np.fromiter(map(len, deps_col), dtype=np.int64, count=n)
    flat_deps = np.fromiter(
        chain.from_iterable(deps_col), dtype=np.int64, count=int(dep_counts.sum())
    )
    hasher = hashlib.sha256()
    hasher.update("\x1f".join(map(itemgetter(2), rows)).encode())
    hasher.update(rel_ids.tobytes())
    hasher.update(dep_counts.tobytes())
    if flat_deps.size:
        hasher.update((flat_deps - first_id).tobytes())
    # Release-time *structure* only: which rows carry one, not their values.
    if batch.release_times:
        release_ids = np.asarray(sorted(batch.release_times), dtype=np.int64)
        hasher.update(b"release")
        hasher.update((release_ids - first_id).tobytes())
    return ShapeKey(digest=hasher.hexdigest(), op_count=n)


@dataclass(frozen=True)
class ShapePlan:
    """A shape's compiled scheduling recipe, reusable across scenarios.

    ``steps`` is the finalisation sequence the vector kernel's frontier loop
    produces for this topology: per step the row index, its resource code and
    the successor rows whose lower bounds it raises.  ``rel_ids`` are the
    batch-relative op ids (scenario ids are ``first id + rel_ids``);
    ``release_rows`` are the row indices carrying a release time.
    """

    resource_names: tuple[str, ...]
    op_count: int
    steps: tuple[tuple[int, int, tuple[int, ...]], ...]
    rel_ids: "np.ndarray"
    release_rows: tuple[int, ...]


def compile_plan(batch, resource_names) -> ShapePlan:
    """Compile one representative batch of a shape into a :class:`ShapePlan`.

    Runs the :func:`veckernel._compile <repro.sim.veckernel._compile>` bulk
    pipeline (CSR successor graph, redundant same-resource edge dropping,
    per-resource FIFO queues), then walks the frontier loop *without floats*,
    recording the finalisation order.  Raises the kernel's
    :class:`~repro.common.errors.SimulationError` on topological deadlock and
    :class:`~repro.common.errors.ConfigurationError` on unknown resources —
    once per shape instead of once per scenario.
    """
    require_numpy()
    rows = batch.rows
    resource_names = tuple(resource_names)
    n = len(rows)
    if n == 0:
        return ShapePlan(
            resource_names=resource_names, op_count=0, steps=(),
            rel_ids=np.empty(0, dtype=np.int64), release_rows=(),
        )
    queues, pending, _lb, succ_ptr, succ_tgt, _durations, op_ids = _compile(
        rows, batch.release_times, list(resource_names)
    )
    first_id = rows[0][9]
    rel_ids = op_ids - first_id

    row_resource = [0] * n
    for code, queue in enumerate(queues):
        for index in queue:
            row_resource[index] = code

    # The float-free twin of veckernel.schedule_rows' frontier loop: identical
    # sweep order, identical run walks, identical deadlock condition — only
    # the start/end arithmetic is deferred to schedule_group's stacked replay.
    steps: list[tuple[int, int, tuple[int, ...]]] = []
    append = steps.append
    cursor = [0] * len(queues)
    queue_lengths = [len(queue) for queue in queues]
    remaining = n
    while remaining:
        progressed = 0
        for resource, queue in enumerate(queues):
            position = cursor[resource]
            length = queue_lengths[resource]
            if position >= length or pending[queue[position]]:
                continue
            walked = position
            while position < length:
                index = queue[position]
                if pending[index]:
                    break
                successors = tuple(succ_tgt[succ_ptr[index]:succ_ptr[index + 1]])
                for target in successors:
                    pending[target] -= 1
                append((index, resource, successors))
                position += 1
            cursor[resource] = position
            progressed += position - walked
        if not progressed:
            blocked_heads = [
                rows[queue[cursor[resource]]][0]
                for resource, queue in enumerate(queues)
                if cursor[resource] < queue_lengths[resource]
            ]
            raise SimulationError(
                f"simulation deadlock: blocked head operations {blocked_heads}"
            )
        remaining -= progressed

    release_rows: tuple[int, ...] = ()
    if batch.release_times:
        by_id = {op_id: index for index, op_id in enumerate(op_ids.tolist())}
        release_rows = tuple(
            by_id[op_id] for op_id in sorted(batch.release_times) if op_id in by_id
        )
    return ShapePlan(
        resource_names=resource_names, op_count=n, steps=tuple(steps),
        rel_ids=rel_ids, release_rows=release_rows,
    )


@dataclass(frozen=True)
class ScenarioColumn:
    """One scenario's float inputs, detached from its op rows.

    Extracting a column is what lets a group run drop each scenario's row
    tuples as soon as it has prepared them — holding hundreds of row lists
    alive for the whole group keeps the garbage collector re-scanning them —
    while the stacked pass still sees everything scenario-specific: the
    duration vector (row order), the release times (keyed by original op id)
    and the batch's first op id.
    """

    durations: "np.ndarray"
    release_times: Mapping[int, float]
    first_id: int


def scenario_column(batch) -> ScenarioColumn:
    """The :class:`ScenarioColumn` of one op batch."""
    require_numpy()
    rows = batch.rows
    n = len(rows)
    return ScenarioColumn(
        durations=np.fromiter(map(itemgetter(3), rows), dtype=np.float64, count=n),
        release_times=dict(batch.release_times),
        first_id=rows[0][9] if n else 0,
    )


@dataclass
class StackedSchedule:
    """Start/end columns of every scenario in a group, shape ``(ops, scenarios)``.

    Row ``k`` of ``starts``/``ends`` is the scenario-major vector of op ``k``'s
    times; :meth:`schedule_for` slices one scenario back out as a lazy
    :class:`~repro.sim.engine.VectorSchedule`.  ``rows`` optionally carries the
    group representative's op rows so callers that dropped their own rows
    (column-extracted scenarios) can still materialise schedules — start, end
    and op-id columns are exact per scenario; only row metadata is shared.
    """

    plan: ShapePlan
    starts: "np.ndarray"
    ends: "np.ndarray"
    first_ids: tuple[int, ...]
    rows: Any = field(default=None, compare=False)

    @property
    def num_scenarios(self) -> int:
        return len(self.first_ids)

    def columns_for(self, scenario: int) -> tuple["np.ndarray", "np.ndarray"]:
        """Contiguous per-row (starts, ends) columns of one scenario."""
        return (
            np.ascontiguousarray(self.starts[:, scenario]),
            np.ascontiguousarray(self.ends[:, scenario]),
        )

    def schedule_for(self, scenario: int, rows=None) -> VectorSchedule:
        """One scenario's schedule (lazy materialisation over ``rows``).

        ``rows`` defaults to the stacked :attr:`rows` (the group
        representative's); pass the scenario's own rows for exact per-row
        metadata.
        """
        if rows is None:
            rows = self.rows
        if rows is None:
            raise ConfigurationError(
                "schedule_for needs op rows (pass rows= or set StackedSchedule.rows)"
            )
        starts, ends = self.columns_for(scenario)
        op_ids = self.plan.rel_ids + self.first_ids[scenario]
        return VectorSchedule(rows, starts, ends, op_ids, list(self.plan.resource_names))


def schedule_group(plan: ShapePlan, columns) -> StackedSchedule:
    """Schedule every scenario of one shape group in a single stacked pass.

    ``columns`` are the scenarios' :class:`ScenarioColumn` extracts; their
    batches must all carry ``plan``'s shape (group with :func:`shape_key`
    first).  The replay performs, per plan step, the kernel's scalar float
    operations vectorised across scenarios::

        start = lb[k]  if lb[k] > resource_end  else resource_end
        end   = start + duration[k]

    expressed as ``np.maximum``/``np.add`` into preallocated rows.  All times
    are non-negative and never NaN, so the max reformulations are bit-identical
    to the kernel's comparison branches, keeping every scenario's floats
    byte-equal to a solo :func:`~repro.sim.veckernel.schedule_rows` run.
    """
    require_numpy()
    columns = list(columns)
    if not columns:
        raise ConfigurationError("schedule_group needs at least one scenario column")
    n = plan.op_count
    count = len(columns)
    durations = np.empty((n, count), dtype=np.float64)
    lower_bounds = np.zeros((n, count), dtype=np.float64)
    release_rel = [int(plan.rel_ids[row]) for row in plan.release_rows]
    first_ids = []
    for index, column in enumerate(columns):
        if column.durations.shape != (n,):
            raise ConfigurationError(
                f"scenario column {index} has {column.durations.shape[0]} ops, "
                f"plan expects {n}; group batches by shape_key() before scheduling"
            )
        first_ids.append(column.first_id)
        if n == 0:
            continue
        durations[:, index] = column.durations
        for row, rel in zip(plan.release_rows, release_rel):
            lower_bounds[row, index] = column.release_times[rel + column.first_id]

    starts = np.empty((n, count), dtype=np.float64)
    ends = np.empty((n, count), dtype=np.float64)
    resource_end = [np.zeros(count, dtype=np.float64) for _ in plan.resource_names]
    for index, resource, successors in plan.steps:
        start = starts[index]
        end = ends[index]
        np.maximum(lower_bounds[index], resource_end[resource], out=start)
        np.add(start, durations[index], out=end)
        resource_end[resource] = end
        for target in successors:
            bound = lower_bounds[target]
            np.maximum(bound, end, out=bound)

    return StackedSchedule(
        plan=plan, starts=starts, ends=ends, first_ids=tuple(first_ids)
    )
