"""Trace reconstruction: memory and bandwidth time series from a schedule.

The paper instruments training with NVML and plots GPU memory utilisation (Figure 3),
PCIe throughput (Figure 4) and GPU/CPU/PCIe utilisation during the update phase
(Figure 15).  This module rebuilds the same kinds of series from a simulated
:class:`~repro.sim.engine.Schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError
from repro.sim.engine import Schedule
from repro.sim.ops import OpKind


@dataclass
class MemoryTimeline:
    """GPU memory occupancy over time, reconstructed from op ``gpu_mem_delta`` tags."""

    times: list[float] = field(default_factory=list)
    used_bytes: list[int] = field(default_factory=list)

    @classmethod
    def from_schedule(cls, schedule: Schedule, initial_bytes: int = 0) -> "MemoryTimeline":
        """Apply every op's memory delta at its completion time."""
        events = [
            (item.end, item.op.gpu_mem_delta)
            for item in schedule.ops
            if item.op.gpu_mem_delta != 0
        ]
        events.sort(key=lambda pair: pair[0])
        times = [0.0]
        used = [initial_bytes]
        current = initial_bytes
        for time, delta in events:
            current += delta
            times.append(time)
            used.append(current)
        return cls(times=times, used_bytes=used)

    @property
    def peak_bytes(self) -> int:
        """High-water mark of the timeline."""
        return max(self.used_bytes, default=0)

    @property
    def final_bytes(self) -> int:
        """Occupancy after the last event."""
        return self.used_bytes[-1] if self.used_bytes else 0

    def at(self, time: float) -> int:
        """Occupancy at ``time`` (step function, right-continuous)."""
        result = self.used_bytes[0] if self.used_bytes else 0
        for when, value in zip(self.times, self.used_bytes):
            if when <= time:
                result = value
            else:
                break
        return result

    def sample(self, resolution: float, end_time: float | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Sample the step function on a regular grid (for plotting/inspection)."""
        if resolution <= 0:
            raise ConfigurationError("resolution must be positive")
        stop = end_time if end_time is not None else (self.times[-1] if self.times else 0.0)
        grid = np.arange(0.0, stop + resolution, resolution)
        values = np.array([self.at(float(t)) for t in grid], dtype=np.int64)
        return grid, values


@dataclass
class ThroughputTimeline:
    """Bandwidth over time for one transfer direction (H2D or D2H)."""

    times: np.ndarray
    bytes_per_second: np.ndarray

    @classmethod
    def from_schedule(
        cls,
        schedule: Schedule,
        kind: OpKind,
        resolution: float = 0.05,
        end_time: float | None = None,
    ) -> "ThroughputTimeline":
        """Distribute each transfer's payload uniformly over its service interval."""
        if resolution <= 0:
            raise ConfigurationError("resolution must be positive")
        stop = end_time if end_time is not None else schedule.makespan
        num_bins = max(1, int(np.ceil(stop / resolution)))
        bins = np.zeros(num_bins, dtype=np.float64)
        for item in schedule.filter(kind=kind):
            if item.op.payload_bytes == 0 or item.duration <= 0:
                continue
            rate = item.op.payload_bytes / item.duration
            first = int(item.start / resolution)
            last = min(num_bins - 1, int(np.floor((item.end - 1e-12) / resolution)))
            for index in range(first, last + 1):
                bin_start = index * resolution
                bin_end = bin_start + resolution
                overlap = max(0.0, min(item.end, bin_end) - max(item.start, bin_start))
                bins[index] += rate * overlap
        times = (np.arange(num_bins) + 0.5) * resolution
        return cls(times=times, bytes_per_second=bins / resolution)

    @property
    def peak_bps(self) -> float:
        """Peak observed bandwidth."""
        return float(self.bytes_per_second.max()) if self.bytes_per_second.size else 0.0

    @property
    def mean_bps(self) -> float:
        """Mean bandwidth over the sampled window."""
        return float(self.bytes_per_second.mean()) if self.bytes_per_second.size else 0.0

    def total_bytes(self) -> float:
        """Integral of the series (total bytes transferred)."""
        if self.bytes_per_second.size == 0:
            return 0.0
        resolution = float(self.times[1] - self.times[0]) if self.times.size > 1 else float(self.times[0] * 2)
        return float(self.bytes_per_second.sum() * resolution)


def sample_series(times: list[float], values: list[float], resolution: float) -> tuple[np.ndarray, np.ndarray]:
    """Resample an irregular step series onto a regular grid."""
    if resolution <= 0:
        raise ConfigurationError("resolution must be positive")
    if not times:
        return np.array([]), np.array([])
    stop = times[-1]
    grid = np.arange(0.0, stop + resolution, resolution)
    sampled = np.zeros_like(grid)
    current = values[0]
    index = 0
    for position, t in enumerate(grid):
        while index < len(times) and times[index] <= t:
            current = values[index]
            index += 1
        sampled[position] = current
    return grid, sampled
