"""Event-heap discrete-event engine with FIFO resources and indexed schedules.

The engine intentionally mirrors CUDA execution semantics:

* every resource (GPU compute, each PCIe copy engine, the CPU, NVLink) executes the
  operations submitted to it strictly in submission order;
* an operation starts as soon as (a) its resource is free, (b) every operation it
  depends on has completed, and (c) its optional ``not_before`` release time passed;
* operations on different resources run concurrently — this is what produces the
  overlap between CPU updates, GPU updates and full-duplex PCIe transfers that Deep
  Optimizer States exploits.

Scheduling is driven by a ready-set heap: a resource enters the heap the moment its
head-of-queue operation has every dependency satisfied, keyed by the earliest start
time it could achieve (with the resource name as tie-break).  This is O(N log N) in
the number of operations while producing *exactly* the same schedule as the original
per-pop scan over all resource queues — the equivalence is enforced by the golden
property test in ``tests/test_engine_equivalence.py``.

The engine has three admission paths with identical semantics:

* **eager** — :meth:`SimEngine.submit` one :class:`~repro.sim.ops.SimOp` at a time,
  then :meth:`SimEngine.run`;
* **batched** — hand :meth:`SimEngine.run_batch` a
  :class:`~repro.sim.opbatch.OpBatch` of row tuples; the scheduler runs directly on
  the rows and materialises ``SimOp`` objects only for the finished schedule, which
  makes large DAGs (10k+ optimizer subgroups) several times cheaper end-to-end;
* **vector** — :meth:`SimEngine.run_vector` schedules a batch (or the eager
  submissions) on the numpy struct-of-arrays kernel in
  :mod:`repro.sim.veckernel`, which replaces the per-op heap/dict event loop
  with flat arrays and run-at-a-time scans — the backend for very large grids
  (100k+ subgroups per scenario).

All paths must produce byte-identical schedules; ``tests/test_opbatch_equivalence.py``
is the golden test for the batched path and the three-way differential harness in
``tests/test_engine_equivalence.py`` covers all of them against the seed
list-scheduler reference.
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, SimulationError
from repro.middleware.base import SEAM_ENGINE, MiddlewareContext
from repro.sim.opbatch import row_from_simop, simop_from_row
from repro.sim.ops import OpKind, SimOp

#: The engine's scheduler backends: ``"heap"`` is :meth:`SimEngine.run` /
#: :meth:`SimEngine.run_batch`, ``"vector"`` is :meth:`SimEngine.run_vector`.
#: The single source of truth for backend names — the execution-policy layer
#: (:mod:`repro.runtime`) builds its validation and the CLI ``--scheduler``
#: choices from it (plus the policy-level ``"auto"``), so adding a backend
#: here makes it selectable everywhere at once.
SCHEDULER_BACKENDS = ("heap", "vector")


@dataclass
class Resource:
    """A serially-executing resource (stream)."""

    name: str
    description: str = ""


@dataclass(frozen=True)
class ScheduledOp:
    """An operation together with its computed start/end times."""

    op: SimOp
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Scheduled service time."""
        return self.end - self.start


class _ScheduleIndex:
    """Precomputed lookup structures for :class:`Schedule` queries.

    Built once, lazily, on the first indexed query.  The per-resource, per-kind and
    per-phase lists preserve the schedule's global op order, so indexed filters return
    results in the same order as a full scan would.
    """

    __slots__ = ("by_id", "by_resource", "by_kind", "by_phase")

    def __init__(self, ops: list[ScheduledOp]) -> None:
        self.by_id: dict[int, ScheduledOp] = {}
        self.by_resource: dict[str, list[ScheduledOp]] = {}
        self.by_kind: dict[OpKind, list[ScheduledOp]] = {}
        self.by_phase: dict[str, list[ScheduledOp]] = {}
        for item in ops:
            self.by_id[item.op.op_id] = item
            self.by_resource.setdefault(item.op.resource, []).append(item)
            self.by_kind.setdefault(item.op.kind, []).append(item)
            self.by_phase.setdefault(item.op.phase, []).append(item)


@dataclass
class Schedule:
    """The result of running a :class:`SimEngine`.

    A schedule is immutable once produced: the query methods build lookup indices on
    first use and assume ``ops`` is never mutated afterwards.
    """

    ops: list[ScheduledOp] = field(default_factory=list)
    resources: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index_cache: _ScheduleIndex | None = None

    def __eq__(self, other: object) -> bool:
        # Defined by hand (the dataclass skips generating __eq__ when one
        # exists) so equality spans Schedule subclasses: a lazily materialised
        # VectorSchedule must compare equal to the heap Schedule it matches
        # bit for bit, not fail the generated same-class check.
        if not isinstance(other, Schedule):
            return NotImplemented
        return (self.ops, self.resources) == (other.ops, other.resources)

    @property
    def _index(self) -> _ScheduleIndex:
        if self._index_cache is None:
            self._index_cache = _ScheduleIndex(self.ops)
        return self._index_cache

    # ------------------------------------------------------------------ queries

    @property
    def makespan(self) -> float:
        """Completion time of the last operation."""
        return max((item.end for item in self.ops), default=0.0)

    def by_id(self, op_id: int) -> ScheduledOp:
        """Look up a scheduled operation by its op id (O(1) after the first call)."""
        try:
            return self._index.by_id[op_id]
        except KeyError:
            raise KeyError(f"no scheduled op with id {op_id}") from None

    def op_start(self, op_id: int) -> float:
        """Start time of one operation (:class:`VectorSchedule` answers from arrays)."""
        return self.by_id(op_id).start

    def op_end(self, op_id: int) -> float:
        """End time of one operation (:class:`VectorSchedule` answers from arrays)."""
        return self.by_id(op_id).end

    def filter(
        self,
        *,
        resource: str | None = None,
        kind: OpKind | None = None,
        phase: str | None = None,
        subgroup: int | None = None,
    ) -> list[ScheduledOp]:
        """Return scheduled ops matching all provided criteria.

        The narrowest available index (resource, kind or phase) seeds the candidate
        list; the remaining criteria are applied as predicates.
        """
        index = self._index
        if resource is not None:
            candidates = index.by_resource.get(resource, [])
            resource = None
        elif kind is not None:
            candidates = index.by_kind.get(kind, [])
            kind = None
        elif phase is not None:
            candidates = index.by_phase.get(phase, [])
            phase = None
        else:
            candidates = self.ops
        result = []
        for item in candidates:
            if resource is not None and item.op.resource != resource:
                continue
            if kind is not None and item.op.kind != kind:
                continue
            if phase is not None and item.op.phase != phase:
                continue
            if subgroup is not None and item.op.subgroup != subgroup:
                continue
            result.append(item)
        return result

    def busy_time(self, resource: str, window: tuple[float, float] | None = None) -> float:
        """Total service time of ``resource`` (optionally clipped to ``window``)."""
        total = 0.0
        for item in self._index.by_resource.get(resource, []):
            start, end = item.start, item.end
            if window is not None:
                start = max(start, window[0])
                end = min(end, window[1])
            if end > start:
                total += end - start
        return total

    def utilization(self, resource: str, window: tuple[float, float] | None = None) -> float:
        """Fraction of the window during which ``resource`` was busy."""
        if window is None:
            window = (0.0, self.makespan)
        span = window[1] - window[0]
        if span <= 0:
            return 0.0
        return min(1.0, self.busy_time(resource, window) / span)

    def phase_window(self, phase: str) -> tuple[float, float]:
        """(first start, last end) of the operations tagged with ``phase``."""
        items = self._index.by_phase.get(phase, [])
        if not items:
            return (0.0, 0.0)
        return (min(item.start for item in items), max(item.end for item in items))

    def phase_duration(self, phase: str) -> float:
        """Wall-clock span of a phase."""
        start, end = self.phase_window(phase)
        return end - start

    def end_of(self, op_ids: list[int]) -> float:
        """Latest completion time among ``op_ids`` (0.0 for an empty list)."""
        if not op_ids:
            return 0.0
        by_id = self._index.by_id
        return max(by_id[op_id].end for op_id in op_ids)

    def transferred_bytes(self, kind: OpKind, window: tuple[float, float] | None = None) -> float:
        """Bytes moved by transfers of ``kind`` (pro-rated if clipped to a window)."""
        total = 0.0
        for item in self._index.by_kind.get(kind, []):
            if item.op.payload_bytes == 0 or item.duration == 0:
                continue
            if window is None:
                total += item.op.payload_bytes
                continue
            start = max(item.start, window[0])
            end = min(item.end, window[1])
            if end > start:
                total += item.op.payload_bytes * (end - start) / item.duration
        return total

    def validate(self) -> None:
        """Check internal consistency (used by property tests)."""
        lookup = {item.op.op_id: item for item in self.ops}
        seen_order: dict[str, list[ScheduledOp]] = {}
        for item in self.ops:
            if item.start < 0 or item.end < item.start:
                raise SimulationError(f"op {item.op.name!r} has an invalid interval")
            for dep in item.op.deps:
                if dep not in lookup:
                    raise SimulationError(f"op {item.op.name!r} depends on unknown op {dep}")
                if lookup[dep].end - item.start > 1e-9:
                    raise SimulationError(
                        f"op {item.op.name!r} starts before its dependency finishes"
                    )
            seen_order.setdefault(item.op.resource, []).append(item)
        for resource, items in seen_order.items():
            # self.ops is sorted by (start, op id), which only matches execution
            # order when ids are monotone with submission order; serial execution
            # itself is order-free — intervals on one resource must not overlap.
            items = sorted(items, key=lambda item: (item.start, item.end))
            for first, second in zip(items, items[1:]):
                if second.start + 1e-9 < first.end:
                    raise SimulationError(
                        f"resource {resource!r} executes ops {first.op.name!r} and "
                        f"{second.op.name!r} concurrently"
                    )


def _materialise_ops(rows: list[tuple], triples) -> list[ScheduledOp]:
    """Bulk-build ``ScheduledOp`` objects from ``(row index, start, end)`` triples.

    The one materialisation path shared by :meth:`SimEngine.run_batch` and
    :class:`VectorSchedule`.  ``ScheduledOp`` is a frozen dataclass; installing
    the attribute dict through ``object.__setattr__`` skips the three per-field
    frozen checks of the generated ``__init__``, and the generational collector
    is paused for the duration (~4 container objects per op, every one of them
    reachable from the result or refcount-freed immediately) — both measurable
    wins at 100k+ ops.
    """
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        new_item = ScheduledOp.__new__
        set_attr = object.__setattr__
        ops: list[ScheduledOp] = []
        append = ops.append
        for index, start, end in triples:
            item = new_item(ScheduledOp)
            set_attr(item, "__dict__",
                     {"op": simop_from_row(rows[index]), "start": start, "end": end})
            append(item)
        return ops
    finally:
        if gc_was_enabled:
            gc.enable()


class VectorSchedule(Schedule):
    """A :class:`Schedule` whose per-op objects materialise lazily.

    The vector kernel finishes with flat start/end/op-id arrays — everything
    array-backed queries need.  Sorting the schedule and building the 100k+
    :class:`ScheduledOp`/:class:`~repro.sim.ops.SimOp` objects of a large grid
    cost more than the scheduling itself, so both are deferred to the first
    access of :attr:`ops`; ``makespan`` is answered from the arrays directly.
    Once materialised, the schedule is bit-for-bit the one the heap paths
    produce (same object layout, same floats, same order) and every inherited
    query behaves identically.
    """

    def __init__(self, rows: list[tuple], starts, ends, op_id_column, resources: list[str]) -> None:
        self._rows = rows
        self._starts = starts
        self._ends = ends
        self._op_id_column = op_id_column
        self._ops_cache: list[ScheduledOp] | None = None
        self._row_lookup = None
        self.resources = resources
        self._index_cache = None

    def _row_of(self, op_id: int) -> int:
        """Row index of ``op_id`` without materialising any ``ScheduledOp``."""
        if self._row_lookup is None:
            from repro.sim.veckernel import np

            column = self._op_id_column
            size = int(column.shape[0])
            if size and int(column[-1]) - int(column[0]) + 1 == size \
                    and bool((np.diff(column) == 1).all()):
                # Consecutive ids (every builder batch): row = id - first id.
                self._row_lookup = (int(column[0]), size)
            else:
                self._row_lookup = {
                    op_id: row for row, op_id in enumerate(column.tolist())
                }
        lookup = self._row_lookup
        if isinstance(lookup, tuple):
            row = op_id - lookup[0]
            if 0 <= row < lookup[1]:
                return row
            raise KeyError(f"no scheduled op with id {op_id}")
        try:
            return lookup[op_id]
        except KeyError:
            raise KeyError(f"no scheduled op with id {op_id}") from None

    def op_start(self, op_id: int) -> float:  # type: ignore[override]
        """Start time by op id, straight from the kernel's start column."""
        return float(self._starts[self._row_of(op_id)])

    def op_end(self, op_id: int) -> float:  # type: ignore[override]
        """End time by op id, straight from the kernel's end column."""
        return float(self._ends[self._row_of(op_id)])

    @property
    def ops(self) -> list[ScheduledOp]:  # type: ignore[override]
        if self._ops_cache is None:
            from repro.sim.veckernel import schedule_order

            order = schedule_order(self._starts, self._op_id_column)
            self._ops_cache = _materialise_ops(
                self._rows,
                zip(order.tolist(), self._starts[order].tolist(), self._ends[order].tolist()),
            )
        return self._ops_cache

    @property
    def makespan(self) -> float:  # type: ignore[override]
        """Completion time of the last operation (array-backed, no materialisation)."""
        if self._ends.shape[0] == 0:
            return 0.0
        return float(self._ends.max())


class SimEngine:
    """Collects operations and computes their schedule.

    The engine is **single-shot**: :meth:`run` consumes every submitted operation and
    resets the engine to an empty state, so a subsequent :meth:`run` without new
    submissions returns an empty schedule.  Re-submit (or build a fresh engine) to
    simulate again.
    """

    def __init__(self, name: str = "sim") -> None:
        self.name = name
        self._resources: dict[str, Resource] = {}
        self._queues: dict[str, deque[SimOp]] = {}
        self._submission_order: list[SimOp] = []
        self._release_times: dict[int, float] = {}
        self._middleware = None
        self._middleware_policy = None

    # -------------------------------------------------------------- middleware

    def install_middleware(self, chain, policy=None) -> None:
        """Install a :class:`~repro.middleware.MiddlewareChain` around op admission.

        Every subsequent :meth:`run`/:meth:`run_batch`/:meth:`run_vector` call
        is intercepted once, as a whole (the engine seam is deliberately
        coarse-grained — wrapping the per-op inner loops would tax the 100k-op
        vector path).  ``policy`` rides on the context for the chain to
        inspect.  Pass ``chain=None`` to uninstall; with no chain installed
        the run methods pay a single attribute check.
        """
        self._middleware = chain if chain else None
        self._middleware_policy = policy

    def _intercept(self, method: str, scheduler: str, op_count: int, call):
        """Run ``call`` through the installed chain at the engine seam."""
        context = MiddlewareContext(
            seam=SEAM_ENGINE,
            name=f"{self.name}.{method}",
            policy=self._middleware_policy,
            payload={
                "engine": self.name,
                "method": method,
                "scheduler": scheduler,
                "op_count": op_count,
            },
        )
        return self._middleware.run(context, call)

    # ------------------------------------------------------------------ setup

    def add_resource(self, name: str, description: str = "") -> Resource:
        """Register a resource; idempotent for an existing name."""
        if name not in self._resources:
            self._resources[name] = Resource(name=name, description=description)
            self._queues[name] = deque()
        return self._resources[name]

    def has_resource(self, name: str) -> bool:
        """True if ``name`` is a registered resource."""
        return name in self._resources

    @property
    def resources(self) -> list[str]:
        """Names of the registered resources."""
        return list(self._resources)

    # ------------------------------------------------------------------ submission

    def submit(self, op: SimOp, *, not_before: float = 0.0) -> int:
        """Queue ``op`` on its resource and return its op id."""
        if op.resource not in self._resources:
            raise ConfigurationError(
                f"op {op.name!r} targets unknown resource {op.resource!r}"
            )
        if not_before < 0:
            raise ConfigurationError("not_before must be non-negative")
        self._queues[op.resource].append(op)
        self._submission_order.append(op)
        if not_before > 0:
            self._release_times[op.op_id] = not_before
        return op.op_id

    def submit_many(self, ops: list[SimOp]) -> list[int]:
        """Queue several ops in order; returns their ids."""
        return [self.submit(op) for op in ops]

    @property
    def pending_ops(self) -> int:
        """Number of submitted, not yet scheduled operations."""
        return len(self._submission_order)

    # ------------------------------------------------------------------ execution

    def run(self) -> Schedule:
        """Compute the schedule of every submitted operation.

        A resource is *ready* when its head-of-queue operation has all dependencies
        finished; ready resources live in a min-heap keyed by ``(earliest start,
        resource name)``.  Each pop schedules exactly one operation, then re-arms the
        popped resource and any resources whose head was blocked on the finished op.
        A ready entry never goes stale: its start time depends only on the resource's
        own free time (the resource cannot run anything before its head) and on
        dependency end times that are already final.

        Raises :class:`SimulationError` when the dependency graph and the per-resource
        FIFO order deadlock (e.g. two resources whose head operations wait on each
        other's queued-but-not-head operations).

        The engine is single-shot: on return every queue is cleared, so calling
        :meth:`run` again without new submissions yields an empty schedule.
        """
        if self._middleware is not None:
            return self._intercept("run", "heap", self.pending_ops, self._run_heap)
        return self._run_heap()

    def _run_heap(self) -> Schedule:
        """The ready-set-heap scheduling core of :meth:`run`."""
        queues = {name: deque(queue) for name, queue in self._queues.items()}
        finished: dict[int, float] = {}
        resource_free = {name: 0.0 for name in self._resources}
        scheduled: list[ScheduledOp] = []

        # dep op_id -> resources whose head waits on it; resource -> #unfinished deps.
        waiting: dict[int, list[str]] = {}
        blocked: dict[str, int] = {}
        ready: list[tuple[float, str]] = []

        def arm(name: str) -> None:
            """Queue the resource's head on the ready heap, or register its blockers."""
            queue = queues[name]
            if not queue:
                return
            head = queue[0]
            unfinished = {dep for dep in head.deps if dep not in finished}
            if unfinished:
                blocked[name] = len(unfinished)
                for dep in unfinished:
                    waiting.setdefault(dep, []).append(name)
                return
            deps_end = max((finished[dep] for dep in head.deps), default=0.0)
            release = self._release_times.get(head.op_id, 0.0)
            start = max(resource_free[name], deps_end, release)
            heapq.heappush(ready, (start, name))

        for name in queues:
            arm(name)

        remaining = sum(len(queue) for queue in queues.values())
        while remaining:
            if not ready:
                blocked_heads = [queue[0].name for queue in queues.values() if queue]
                raise SimulationError(
                    f"simulation deadlock: blocked head operations {blocked_heads}"
                )
            start, name = heapq.heappop(ready)
            op = queues[name].popleft()
            end = start + op.duration
            finished[op.op_id] = end
            resource_free[name] = end
            scheduled.append(ScheduledOp(op=op, start=start, end=end))
            remaining -= 1
            arm(name)
            for blocked_name in waiting.pop(op.op_id, ()):
                blocked[blocked_name] -= 1
                if blocked[blocked_name] == 0:
                    del blocked[blocked_name]
                    arm(blocked_name)

        # Single-shot reset: clear submissions so explicit reuse starts empty.
        self._queues = {name: deque() for name in self._resources}
        self._submission_order = []
        self._release_times = {}

        schedule = Schedule(ops=sorted(scheduled, key=lambda item: (item.start, item.op.op_id)),
                            resources=list(self._resources))
        schedule.validate()
        return schedule

    def run_batch(self, batch, *, validate: bool = False) -> Schedule:
        """Schedule an :class:`~repro.sim.opbatch.OpBatch` without per-op objects.

        The scheduling algorithm is the same ready-set heap as :meth:`run` — same
        ``(earliest start, resource name)`` heap key, same FIFO-per-resource order,
        same deadlock condition — but it walks the batch's row tuples directly.
        ``SimOp`` objects are created only at the end, one ``__dict__`` assignment
        per scheduled row, so the result is a plain :class:`Schedule` that compares
        equal (including op ids, names and exact float times) to what expanding the
        batch through :meth:`submit`/:meth:`run` would produce; the golden tests in
        ``tests/test_opbatch_equivalence.py`` enforce that bit-for-bit.

        ``validate=False`` (the default) skips :meth:`Schedule.validate`: the loop
        establishes the schedule invariants by construction (starts are max() over
        resource-free and dependency-end times), and the golden-equivalence suite
        cross-checks against :meth:`run`, which does validate.  Pass ``True`` when
        scheduling rows from an untrusted builder.

        Unlike :meth:`run` this does not consume engine state — the batch carries
        the submissions — but mixing the two admission paths in one scheduling round
        is a :class:`ConfigurationError`.
        """
        if self._middleware is not None:
            return self._intercept(
                "run_batch",
                "heap",
                len(batch.rows),
                lambda: self._run_batch_guarded(batch, validate),
            )
        return self._run_batch_guarded(batch, validate)

    def _run_batch_guarded(self, batch, validate: bool) -> Schedule:
        """Admission guard + GC pause around :meth:`_run_batch_rows`."""
        if self._submission_order:
            raise ConfigurationError(
                "run_batch on an engine with eagerly submitted pending ops; "
                "use either submit()+run() or run_batch(), not both"
            )
        rows = batch.rows
        batch.validate_rows()
        # Scheduling and materialisation allocate ~4 container objects per op; at
        # 100k ops the generational collector would otherwise run hundreds of
        # pointless scans over acyclic garbage (every object built here is
        # reachable from the returned Schedule or refcount-freed immediately).
        # Pausing collection for the duration roughly halves run_batch wall time.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run_batch_rows(batch, rows, validate)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run_batch_rows(self, batch, rows: list[tuple], validate: bool) -> Schedule:
        """The scheduling core of :meth:`run_batch` (runs with GC paused)."""
        resources = self._resources
        queues: dict[str, list[int]] = {name: [] for name in resources}
        for index, row in enumerate(rows):
            queue = queues.get(row[2])
            if queue is None:
                raise ConfigurationError(
                    f"op {row[0]!r} targets unknown resource {row[2]!r}"
                )
            queue.append(index)

        release_times = batch.release_times
        heads = {name: 0 for name in queues}
        finished: dict[int, float] = {}
        finished_get = finished.get
        resource_free = {name: 0.0 for name in resources}
        scheduled: list[tuple[float, int, float, int]] = []  # (start, op_id, end, row index)
        sched_append = scheduled.append

        waiting: dict[int, list[str]] = {}
        blocked: dict[str, int] = {}
        ready: list[tuple[float, str]] = []
        push = heapq.heappush

        def arm(name: str) -> None:
            position = heads[name]
            queue = queues[name]
            if position >= len(queue):
                return
            row = rows[queue[position]]
            deps = row[4]
            deps_end = 0.0
            if deps:
                if len(deps) == 1:
                    deps_end = finished_get(deps[0])
                    if deps_end is None:
                        blocked[name] = 1
                        waiting.setdefault(deps[0], []).append(name)
                        return
                else:
                    for dep in deps:
                        end = finished_get(dep)
                        if end is None:
                            # At least one dependency unfinished: register every
                            # distinct blocker (duplicates count once, as in run()).
                            unfinished = {d for d in deps if d not in finished}
                            blocked[name] = len(unfinished)
                            for blocker in unfinished:
                                waiting.setdefault(blocker, []).append(name)
                            return
                        if end > deps_end:
                            deps_end = end
            start = resource_free[name]
            if deps_end > start:
                start = deps_end
            if release_times:
                release = release_times.get(row[9], 0.0)
                if release > start:
                    start = release
            push(ready, (start, name))

        for name in queues:
            arm(name)

        remaining = len(rows)
        while remaining:
            if not ready:
                blocked_heads = [
                    rows[queue[heads[name]]][0]
                    for name, queue in queues.items()
                    if heads[name] < len(queue)
                ]
                raise SimulationError(
                    f"simulation deadlock: blocked head operations {blocked_heads}"
                )
            start, name = heapq.heappop(ready)
            position = heads[name]
            heads[name] = position + 1
            index = queues[name][position]
            row = rows[index]
            end = start + row[3]
            op_id = row[9]
            finished[op_id] = end
            resource_free[name] = end
            sched_append((start, op_id, end, index))
            remaining -= 1
            arm(name)
            if op_id in waiting:
                for blocked_name in waiting.pop(op_id):
                    blocked[blocked_name] -= 1
                    if blocked[blocked_name] == 0:
                        del blocked[blocked_name]
                        arm(blocked_name)

        scheduled.sort()
        ops = _materialise_ops(
            rows, ((index, start, end) for start, _, end, index in scheduled)
        )

        schedule = Schedule(ops=ops, resources=list(self._resources))
        if validate:
            schedule.validate()
        return schedule


    def run_vector(self, batch=None, *, validate: bool = False) -> Schedule:
        """Schedule on the numpy vector kernel (:mod:`repro.sim.veckernel`).

        The third admission path: pass an :class:`~repro.sim.opbatch.OpBatch`
        to schedule its rows, or no batch to consume the eagerly submitted
        operations exactly as :meth:`run` would (single-shot semantics
        included).  The kernel performs the same float operations as the heap
        scheduler over struct-of-arrays state, so the resulting schedule is
        byte-identical to :meth:`run`/:meth:`run_batch` on the same DAG — the
        three-way differential harness in ``tests/test_engine_equivalence.py``
        enforces that bit-for-bit.

        Returns a :class:`VectorSchedule`: start/end times and schedule order
        are final on return, while ``ScheduledOp`` materialisation is deferred
        to the first ``.ops`` access.  ``validate=True`` materialises and runs
        :meth:`Schedule.validate` before returning.

        Raises the same errors as the heap paths: :class:`ConfigurationError`
        for unknown resources or mixed admission, :class:`SimulationError` for
        FIFO/dependency deadlocks.
        """
        if self._middleware is not None:
            op_count = len(batch.rows) if batch is not None else self.pending_ops
            return self._intercept(
                "run_vector",
                "vector",
                op_count,
                lambda: self._run_vector_kernel(batch, validate),
            )
        return self._run_vector_kernel(batch, validate)

    def _run_vector_kernel(self, batch, validate: bool) -> Schedule:
        """The vector-kernel scheduling core of :meth:`run_vector`."""
        from repro.sim.veckernel import schedule_rows

        if batch is None:
            rows = [row_from_simop(op) for op in self._submission_order]
            release_times = self._release_times
        else:
            if self._submission_order:
                raise ConfigurationError(
                    "run_vector on an engine with eagerly submitted pending ops; "
                    "use either submit()+run_vector() or run_vector(batch), not both"
                )
            batch.validate_rows()
            rows = batch.rows
            release_times = batch.release_times

        starts, ends, op_id_column = schedule_rows(rows, release_times, list(self._resources))
        if batch is None:
            # Single-shot reset, as in run(): only after successful scheduling,
            # so a deadlock error leaves the submissions intact (run() raises
            # before its own reset too).
            self._queues = {name: deque() for name in self._resources}
            self._submission_order = []
            self._release_times = {}
        schedule = VectorSchedule(rows, starts, ends, op_id_column, list(self._resources))
        if validate:
            schedule.validate()
        return schedule


#: Names (and registration order) of the canonical per-process resources; the
#: shape-batched sweep path builds schedules against this list without an engine.
STANDARD_RESOURCE_NAMES = ("gpu.compute", "pcie.h2d", "pcie.d2h", "cpu", "nvlink")


def standard_resources(engine: SimEngine) -> None:
    """Register the canonical per-process resources used throughout the reproduction."""
    engine.add_resource("gpu.compute", "GPU SMs (forward/backward compute and GPU Adam updates)")
    engine.add_resource("pcie.h2d", "Host-to-device PCIe copy engine")
    engine.add_resource("pcie.d2h", "Device-to-host PCIe copy engine")
    engine.add_resource("cpu", "Host CPU cores owned by this training process")
    engine.add_resource("nvlink", "Intra-node collective interconnect (NVLink)")
