"""List-scheduling discrete-event engine with FIFO resources.

The engine intentionally mirrors CUDA execution semantics:

* every resource (GPU compute, each PCIe copy engine, the CPU, NVLink) executes the
  operations submitted to it strictly in submission order;
* an operation starts as soon as (a) its resource is free, (b) every operation it
  depends on has completed, and (c) its optional ``not_before`` release time passed;
* operations on different resources run concurrently — this is what produces the
  overlap between CPU updates, GPU updates and full-duplex PCIe transfers that Deep
  Optimizer States exploits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, SimulationError
from repro.sim.ops import OpKind, SimOp


@dataclass
class Resource:
    """A serially-executing resource (stream)."""

    name: str
    description: str = ""


@dataclass(frozen=True)
class ScheduledOp:
    """An operation together with its computed start/end times."""

    op: SimOp
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Scheduled service time."""
        return self.end - self.start


@dataclass
class Schedule:
    """The result of running a :class:`SimEngine`."""

    ops: list[ScheduledOp] = field(default_factory=list)
    resources: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------ queries

    @property
    def makespan(self) -> float:
        """Completion time of the last operation."""
        return max((item.end for item in self.ops), default=0.0)

    def by_id(self, op_id: int) -> ScheduledOp:
        """Look up a scheduled operation by its op id."""
        for item in self.ops:
            if item.op.op_id == op_id:
                return item
        raise KeyError(f"no scheduled op with id {op_id}")

    def filter(
        self,
        *,
        resource: str | None = None,
        kind: OpKind | None = None,
        phase: str | None = None,
        subgroup: int | None = None,
    ) -> list[ScheduledOp]:
        """Return scheduled ops matching all provided criteria."""
        result = []
        for item in self.ops:
            if resource is not None and item.op.resource != resource:
                continue
            if kind is not None and item.op.kind != kind:
                continue
            if phase is not None and item.op.phase != phase:
                continue
            if subgroup is not None and item.op.subgroup != subgroup:
                continue
            result.append(item)
        return result

    def busy_time(self, resource: str, window: tuple[float, float] | None = None) -> float:
        """Total service time of ``resource`` (optionally clipped to ``window``)."""
        total = 0.0
        for item in self.filter(resource=resource):
            start, end = item.start, item.end
            if window is not None:
                start = max(start, window[0])
                end = min(end, window[1])
            if end > start:
                total += end - start
        return total

    def utilization(self, resource: str, window: tuple[float, float] | None = None) -> float:
        """Fraction of the window during which ``resource`` was busy."""
        if window is None:
            window = (0.0, self.makespan)
        span = window[1] - window[0]
        if span <= 0:
            return 0.0
        return min(1.0, self.busy_time(resource, window) / span)

    def phase_window(self, phase: str) -> tuple[float, float]:
        """(first start, last end) of the operations tagged with ``phase``."""
        items = self.filter(phase=phase)
        if not items:
            return (0.0, 0.0)
        return (min(item.start for item in items), max(item.end for item in items))

    def phase_duration(self, phase: str) -> float:
        """Wall-clock span of a phase."""
        start, end = self.phase_window(phase)
        return end - start

    def end_of(self, op_ids: list[int]) -> float:
        """Latest completion time among ``op_ids`` (0.0 for an empty list)."""
        if not op_ids:
            return 0.0
        lookup = {item.op.op_id: item.end for item in self.ops}
        return max(lookup[op_id] for op_id in op_ids)

    def transferred_bytes(self, kind: OpKind, window: tuple[float, float] | None = None) -> float:
        """Bytes moved by transfers of ``kind`` (pro-rated if clipped to a window)."""
        total = 0.0
        for item in self.filter(kind=kind):
            if item.op.payload_bytes == 0 or item.duration == 0:
                continue
            if window is None:
                total += item.op.payload_bytes
                continue
            start = max(item.start, window[0])
            end = min(item.end, window[1])
            if end > start:
                total += item.op.payload_bytes * (end - start) / item.duration
        return total

    def validate(self) -> None:
        """Check internal consistency (used by property tests)."""
        lookup = {item.op.op_id: item for item in self.ops}
        last_end: dict[str, float] = {}
        seen_order: dict[str, list[ScheduledOp]] = {}
        for item in self.ops:
            if item.start < 0 or item.end < item.start:
                raise SimulationError(f"op {item.op.name!r} has an invalid interval")
            for dep in item.op.deps:
                if dep not in lookup:
                    raise SimulationError(f"op {item.op.name!r} depends on unknown op {dep}")
                if lookup[dep].end - item.start > 1e-9:
                    raise SimulationError(
                        f"op {item.op.name!r} starts before its dependency finishes"
                    )
            seen_order.setdefault(item.op.resource, []).append(item)
        for resource, items in seen_order.items():
            for first, second in zip(items, items[1:]):
                if second.start + 1e-9 < first.end:
                    raise SimulationError(
                        f"resource {resource!r} executes ops {first.op.name!r} and "
                        f"{second.op.name!r} concurrently"
                    )
            last_end[resource] = items[-1].end


class SimEngine:
    """Collects operations and computes their schedule."""

    def __init__(self, name: str = "sim") -> None:
        self.name = name
        self._resources: dict[str, Resource] = {}
        self._queues: dict[str, deque[SimOp]] = {}
        self._submission_order: list[SimOp] = []
        self._release_times: dict[int, float] = {}

    # ------------------------------------------------------------------ setup

    def add_resource(self, name: str, description: str = "") -> Resource:
        """Register a resource; idempotent for an existing name."""
        if name not in self._resources:
            self._resources[name] = Resource(name=name, description=description)
            self._queues[name] = deque()
        return self._resources[name]

    def has_resource(self, name: str) -> bool:
        """True if ``name`` is a registered resource."""
        return name in self._resources

    @property
    def resources(self) -> list[str]:
        """Names of the registered resources."""
        return list(self._resources)

    # ------------------------------------------------------------------ submission

    def submit(self, op: SimOp, *, not_before: float = 0.0) -> int:
        """Queue ``op`` on its resource and return its op id."""
        if op.resource not in self._resources:
            raise ConfigurationError(
                f"op {op.name!r} targets unknown resource {op.resource!r}"
            )
        if not_before < 0:
            raise ConfigurationError("not_before must be non-negative")
        self._queues[op.resource].append(op)
        self._submission_order.append(op)
        if not_before > 0:
            self._release_times[op.op_id] = not_before
        return op.op_id

    def submit_many(self, ops: list[SimOp]) -> list[int]:
        """Queue several ops in order; returns their ids."""
        return [self.submit(op) for op in ops]

    @property
    def pending_ops(self) -> int:
        """Number of submitted, not yet scheduled operations."""
        return len(self._submission_order)

    # ------------------------------------------------------------------ execution

    def run(self) -> Schedule:
        """Compute the schedule of every submitted operation.

        Raises :class:`SimulationError` when the dependency graph and the per-resource
        FIFO order deadlock (e.g. two resources whose head operations wait on each
        other's queued-but-not-head operations).
        """
        queues = {name: deque(queue) for name, queue in self._queues.items()}
        finished: dict[int, float] = {}
        resource_free = {name: 0.0 for name in self._resources}
        scheduled: list[ScheduledOp] = []

        remaining = sum(len(queue) for queue in queues.values())
        while remaining:
            progressed = False
            # Among all ready head-of-queue ops pick the one that can start earliest;
            # this yields a deterministic, work-conserving schedule.
            best: tuple[float, str, SimOp] | None = None
            for name, queue in queues.items():
                if not queue:
                    continue
                head = queue[0]
                if any(dep not in finished for dep in head.deps):
                    continue
                deps_end = max((finished[dep] for dep in head.deps), default=0.0)
                release = self._release_times.get(head.op_id, 0.0)
                start = max(resource_free[name], deps_end, release)
                if best is None or start < best[0] or (start == best[0] and name < best[1]):
                    best = (start, name, head)
            if best is None:
                blocked = [queue[0].name for queue in queues.values() if queue]
                raise SimulationError(
                    f"simulation deadlock: blocked head operations {blocked}"
                )
            start, name, op = best
            queues[name].popleft()
            end = start + op.duration
            finished[op.op_id] = end
            resource_free[name] = end
            scheduled.append(ScheduledOp(op=op, start=start, end=end))
            progressed = True
            remaining -= 1
            if not progressed:  # pragma: no cover - defensive
                raise SimulationError("no progress in simulation loop")

        # The engine is single-shot: clear submissions so it can be reused explicitly.
        self._queues = {name: deque() for name in self._resources}
        self._submission_order = []
        self._release_times = {}

        schedule = Schedule(ops=sorted(scheduled, key=lambda item: (item.start, item.op.op_id)),
                            resources=list(self._resources))
        schedule.validate()
        return schedule


def standard_resources(engine: SimEngine) -> None:
    """Register the canonical per-process resources used throughout the reproduction."""
    engine.add_resource("gpu.compute", "GPU SMs (forward/backward compute and GPU Adam updates)")
    engine.add_resource("pcie.h2d", "Host-to-device PCIe copy engine")
    engine.add_resource("pcie.d2h", "Device-to-host PCIe copy engine")
    engine.add_resource("cpu", "Host CPU cores owned by this training process")
    engine.add_resource("nvlink", "Intra-node collective interconnect (NVLink)")
