"""Array-batched operation construction for the discrete-event simulator.

Building one :class:`~repro.sim.ops.SimOp` dataclass per operation costs ~1.5 µs of
pure Python overhead (``__init__`` with ten fields, ``__post_init__`` validation, a
deque append) before the engine does any scheduling work.  Beyond ~10k optimizer
subgroups (~80k operations per simulated iteration) that object churn dominates
``simulate_job``.  An :class:`OpBatch` removes it: every operation is a flat row
tuple appended to one list, and the engine's batch-admission path
(:meth:`repro.sim.engine.SimEngine.run_batch`) schedules straight off those rows,
materialising ``SimOp`` objects only once, for the finished :class:`~repro.sim.engine.Schedule`.

The row layout is the ``SimOp`` field order (see :data:`ROW_FIELDS`), so a row is
exactly the ``__dict__`` of the ``SimOp`` it expands to.  Rows are stored row-major
(one tuple per op) rather than as per-field parallel lists because in CPython one
tuple display plus one ``list.append`` is ~3x cheaper than ten list appends; the
:meth:`OpBatch.column` accessor recovers the columnar view when analysis wants it.

Two invariants make the batch path a drop-in replacement for eager submission:

* **Id compatibility** — rows draw ids from the same global counter as ``SimOp``
  (:func:`~repro.sim.ops.next_op_id`), so a batch-built schedule carries the exact
  ids the eager path would have produced.
* **Golden equivalence** — for every supported workload, ``run_batch`` over a batch
  produces a byte-identical :class:`~repro.sim.engine.Schedule` (same ops, same
  floats) to expanding the batch and running :meth:`~repro.sim.engine.SimEngine.run`.
  ``tests/test_opbatch_equivalence.py`` enforces this for raw DAGs and for the full
  ``simulate_job`` pipeline of every offloading strategy.

Hot builders (the per-subgroup loops of the training simulation) bypass
:meth:`OpBatch.add_op` and append row tuples directly via ``batch.rows.append`` —
the method exists for generic callers and tests, the row layout is the actual API.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.sim.ops import OpKind, SimOp, next_op_id

#: Row layout, in ``SimOp`` field order.  ``OpBatch`` rows are tuples indexed by
#: these positions; ``expand()`` zips them back into ``SimOp`` attribute dicts.
ROW_FIELDS = (
    "name",
    "kind",
    "resource",
    "duration",
    "deps",
    "phase",
    "subgroup",
    "payload_bytes",
    "gpu_mem_delta",
    "op_id",
)

# Positional indices into a row tuple, for readers of the scheduling loop.
NAME, KIND, RESOURCE, DURATION, DEPS, PHASE, SUBGROUP, PAYLOAD, MEM_DELTA, OP_ID = range(10)

_NEW_SIMOP = SimOp.__new__


def row_from_simop(op: SimOp) -> tuple:
    """Pack one ``SimOp`` as a row tuple (the inverse of :func:`simop_from_row`).

    The single place that spells out the row layout from object attributes —
    callers that turn eager submissions into rows (e.g.
    :meth:`~repro.sim.engine.SimEngine.run_vector`) go through it, so a
    ``SimOp`` field change only has to touch :data:`ROW_FIELDS` and the two
    converters.
    """
    return (op.name, op.kind, op.resource, op.duration, op.deps, op.phase,
            op.subgroup, op.payload_bytes, op.gpu_mem_delta, op.op_id)


def simop_from_row(row: tuple, _new=_NEW_SIMOP) -> SimOp:
    """Materialise one row as a ``SimOp`` without running ``SimOp.__init__``.

    The single place that maps row positions back to ``SimOp`` attributes — both
    :meth:`OpBatch.expand` and the schedule materialisation in
    :meth:`~repro.sim.engine.SimEngine.run_batch` go through it, so a ``SimOp``
    field change only has to touch :data:`ROW_FIELDS` and this function.
    """
    name, kind, resource, duration, deps, phase, subgroup, payload, delta, op_id = row
    op = _new(SimOp)
    op.__dict__ = {
        "name": name, "kind": kind, "resource": resource, "duration": duration,
        "deps": deps, "phase": phase, "subgroup": subgroup,
        "payload_bytes": payload, "gpu_mem_delta": delta, "op_id": op_id,
    }
    return op


class OpBatch:
    """A batch of operations represented as row tuples instead of ``SimOp`` objects.

    The batch is append-only: :meth:`add_op` (or a direct ``rows.append`` with a
    tuple in :data:`ROW_FIELDS` order and an id from
    :func:`~repro.sim.ops.next_op_id`) adds one operation and returns its id.
    Submission order is row order; per-resource FIFO order follows from it exactly
    as it does for :meth:`~repro.sim.engine.SimEngine.submit`.

    Field validation (non-negative duration and payload) is deferred to
    :meth:`validate_rows`, which :meth:`~repro.sim.engine.SimEngine.run_batch` runs
    once over the whole batch — the same checks ``SimOp.__post_init__`` performs
    per object, at a fraction of the cost.
    """

    __slots__ = ("rows", "release_times")

    def __init__(self) -> None:
        self.rows: list[tuple] = []
        #: op id -> earliest allowed start (the ``not_before`` of eager submission).
        self.release_times: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------ building

    def add_op(
        self,
        name: str,
        kind: OpKind,
        resource: str,
        duration: float,
        deps: tuple[int, ...] = (),
        phase: str = "",
        subgroup: int | None = None,
        payload_bytes: int = 0,
        gpu_mem_delta: int = 0,
        *,
        not_before: float = 0.0,
    ) -> int:
        """Append one operation row; returns its globally unique op id."""
        if not_before < 0:
            raise ConfigurationError("not_before must be non-negative")
        op_id = next_op_id()
        self.rows.append(
            (name, kind, resource, duration, tuple(deps), phase, subgroup,
             payload_bytes, gpu_mem_delta, op_id)
        )
        if not_before > 0:
            self.release_times[op_id] = not_before
        return op_id

    # ------------------------------------------------------------------ validation

    def validate_rows(self) -> None:
        """Bulk equivalent of ``SimOp.__post_init__``: reject negative durations/payloads."""
        for row in self.rows:
            if row[DURATION] < 0:
                raise ConfigurationError(
                    f"op {row[NAME]!r} has negative duration {row[DURATION]}"
                )
            if row[PAYLOAD] < 0:
                raise ConfigurationError(f"op {row[NAME]!r} has negative payload")

    # ------------------------------------------------------------------ expansion

    def column(self, field: str) -> list:
        """One field across all rows (the parallel-array view), in submission order."""
        try:
            index = ROW_FIELDS.index(field)
        except ValueError:
            raise ConfigurationError(
                f"unknown op field {field!r}; available: {ROW_FIELDS}"
            ) from None
        return [row[index] for row in self.rows]

    def expand(self) -> list[SimOp]:
        """Materialise every row as a ``SimOp`` (used by tests and the eager fallback).

        The expansion bypasses ``SimOp.__init__``: a row already *is* the attribute
        dict, so each op is ``__new__`` plus one ``__dict__`` assignment.  Run
        :meth:`validate_rows` first when the rows come from an untrusted builder.
        """
        return [simop_from_row(row) for row in self.rows]

    def submit_to(self, engine) -> list[int]:
        """Expand and submit every row to an eager engine (equivalence testing)."""
        self.validate_rows()
        ids = []
        for op in self.expand():
            ids.append(engine.submit(op, not_before=self.release_times.get(op.op_id, 0.0)))
        return ids
