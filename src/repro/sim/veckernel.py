"""Struct-of-arrays scheduler kernel: the ``vector`` engine backend.

The heap engine (:meth:`repro.sim.engine.SimEngine.run` / ``run_batch``) spends
several µs of pure Python per operation on heap tuples, growing dicts and per-op
``arm()`` bookkeeping, and its hash-based state degrades further once a schedule
carries hundreds of thousands of operations (the ~100k-subgroup grids of the
fig14/fig16 sweep experiments).  This module replaces that event loop with a
kernel over the :class:`~repro.sim.opbatch.OpBatch` row layout organised as
struct-of-arrays:

* **columns, not objects** — durations, release times, resource codes and op
  ids are extracted column-wise (one ``zip(*rows)`` instead of per-op object
  construction); dependency ids are resolved to row indices in one vectorised
  ``np.searchsorted``, classified in bulk, and compiled into a CSR successor
  graph plus a per-op *pending* count of unfinished cross-resource
  dependencies;
* **cursor walks, not heap pops** — every resource executes its queue in FIFO
  order, so the kernel keeps one cursor per resource and, per visit, walks the
  longest *run* of consecutive ready operations (``pending == 0``), finalising
  start/end times and scattering them into dependants' lower bounds inline.
  The frontier state (pending counts, lower bounds, start/end columns) lives
  in flat preallocated arrays indexed by row — no hashing, no heap, no
  allocation in the loop;
* **vectorised ordering** — the finished schedule is ordered by
  ``(start, op id)`` with one ``np.lexsort`` instead of a Timsort over a
  million-tuple list, and comes back as a lazy
  :class:`~repro.sim.engine.VectorSchedule` whose per-op objects materialise
  only when a query actually touches them.

**Byte-identical by construction.**  The schedule computed by the heap engine
is a pure function of the dependency DAG and the per-resource FIFO order: an
operation's start time is ``max(resource free time, dependency end times,
release time)``, and the heap's pop order is merely *one* topological order of
that DAG — it never changes the computed floats.  The kernel exploits exactly
that freedom (it finalises operations in cursor-run order instead of
simulated-time order) while performing identical float operations:

* within a run, ``end[k] = max(lb[k], end[k-1]) + duration[k]`` — the same
  two-operand comparisons and additions the heap's ``max()`` chain performs;
* a dependency on an earlier operation of the same resource is dropped during
  edge classification: the FIFO constraint already forces
  ``start[k] >= end[k-1] >= end[dep]``, so the ``max`` chain yields the same
  value with or without it.

The three-way differential harness in ``tests/test_engine_equivalence.py`` and
the golden suite in ``tests/test_opbatch_equivalence.py`` enforce the
equivalence bit-for-bit on randomized DAGs and on every offloading strategy's
full ``simulate_job`` pipeline; ``benchmarks/bench_sim_engine_scaling.py``
(Part 3) gates the speedup this buys at 100k subgroups.
"""

from __future__ import annotations

from operator import itemgetter

from repro.common.errors import ConfigurationError, SimulationError

try:  # numpy is a hard dependency of the reproduction, but degrade loudly.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on broken installs
    np = None


def require_numpy() -> None:
    """Raise a configuration error when the vector backend cannot run."""
    if np is None:  # pragma: no cover - exercised only on broken installs
        raise ConfigurationError(
            "scheduler backend 'vector' requires numpy, which is not installed; "
            "use the 'heap' scheduler instead"
        )


def _compile(rows, release_times, resource_names):
    """Compile rows into the kernel's struct-of-arrays form (all bulk numpy).

    Returns ``(queues, pending, lb, succ_ptr, succ_tgt, durations, op_ids)``:
    per-resource FIFO queues of row indices, the pending cross-resource
    dependency count and start-lower-bound columns, the CSR successor graph,
    and the duration / op-id columns.
    """
    n = len(rows)
    # Column extraction: only the scheduling columns, never whole rows — names,
    # kinds, phases and payloads stay untouched until lazy materialisation.
    durations = list(map(itemgetter(3), rows))
    deps_col = list(map(itemgetter(4), rows))
    id_col = list(map(itemgetter(9), rows))
    op_ids = np.asarray(id_col, dtype=np.int64)

    code_of = {name: code for code, name in enumerate(resource_names)}
    try:
        res_code = np.fromiter(
            (code_of[row[2]] for row in rows), dtype=np.int64, count=n
        )
    except KeyError:
        for row in rows:
            if row[2] not in code_of:
                raise ConfigurationError(
                    f"op {row[0]!r} targets unknown resource {row[2]!r}"
                ) from None
        raise  # pragma: no cover - unreachable, the loop above always raises

    # Per-resource FIFO queues: row indices grouped by resource, submission
    # order preserved by the stable sort.
    order = np.argsort(res_code, kind="stable").tolist()
    queue_lengths = np.bincount(res_code, minlength=len(resource_names)).tolist()
    queues = []
    offset = 0
    for length in queue_lengths:
        queues.append(order[offset:offset + length])
        offset += length

    # Start lower bounds: the release time, raised later by dependency ends.
    lb = [0.0] * n
    if release_times:
        by_id = {op_id: index for index, op_id in enumerate(id_col)}
        for op_id, release in release_times.items():
            index = by_id.get(op_id)
            if index is not None:
                lb[index] = release

    # Resolve dependency op-ids to row indices in bulk.  Unknown ids keep an
    # op pending forever, surfacing as the same deadlock the heap reports.
    dep_counts = np.fromiter(map(len, deps_col), dtype=np.int64, count=n)
    flat_deps = np.asarray(
        [dep for deps in deps_col for dep in deps], dtype=np.int64
    )
    if flat_deps.size:
        first_id = id_col[0]
        if n == op_ids[-1] - first_id + 1 and bool((np.diff(op_ids) > 0).all()):
            # Consecutive ids (a batch built by one uninterrupted draw from the
            # global counter — every builder batch): dep row = dep id - first id.
            dep_rows = np.clip(flat_deps - first_id, 0, n - 1)
        else:
            id_order = np.argsort(op_ids, kind="stable")
            pos = np.minimum(
                np.searchsorted(op_ids, flat_deps, sorter=id_order), n - 1
            )
            dep_rows = id_order[pos]
        known = op_ids[dep_rows] == flat_deps
        dst = np.repeat(np.arange(n, dtype=np.int64), dep_counts)
        # A dependency on an earlier op of the same resource is enforced by
        # FIFO order already; dropping it leaves the max() chain unchanged.
        redundant = known & (res_code[dep_rows] == res_code[dst]) & (dep_rows < dst)
        ext = ~redundant
        pending = np.bincount(dst[ext], minlength=n).tolist()
        # CSR successor graph over the known external edges (unknown ids have
        # no source row that could ever finalise them).
        live = ext & known
        src, tgt = dep_rows[live], dst[live]
        src_order = np.argsort(src, kind="stable")
        succ_tgt = tgt[src_order].tolist()
        succ_ptr = np.concatenate(
            ([0], np.cumsum(np.bincount(src, minlength=n)))
        ).tolist()
    else:
        pending = [0] * n
        succ_tgt = []
        succ_ptr = [0] * (n + 1)

    return queues, pending, lb, succ_ptr, succ_tgt, durations, op_ids


def schedule_rows(
    rows: list[tuple],
    release_times: dict[int, float],
    resource_names: list[str],
) -> tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Schedule op-batch rows on the vector kernel.

    Returns ``(starts, ends, op_ids)``: per-row float64 start/end columns plus
    the op-id column (the key material for the schedule's ``(start, op_id)``
    ordering, which :class:`~repro.sim.engine.VectorSchedule` computes lazily
    via :func:`schedule_order`).  Raises the same :class:`ConfigurationError` /
    :class:`SimulationError` conditions as the heap paths (unknown resources,
    FIFO/dependency deadlocks).
    """
    require_numpy()
    queues, pending, lb, succ_ptr, succ_tgt, durations, op_ids = _compile(
        rows, release_times, resource_names
    )
    n = len(rows)
    starts = [0.0] * n
    ends = [0.0] * n
    cursor = [0] * len(queues)
    resource_end = [0.0] * len(queues)
    queue_lengths = [len(queue) for queue in queues]

    # The frontier loop.  Each sweep visits every resource cursor and walks the
    # longest run of ready head operations, finalising times and propagating
    # them inline.  A sweep that finalises nothing while work remains is the
    # heap engine's deadlock condition (every head blocked).
    remaining = n
    while remaining:
        progressed = 0
        for resource, queue in enumerate(queues):
            position = cursor[resource]
            length = queue_lengths[resource]
            if position >= length or pending[queue[position]]:
                continue
            end = resource_end[resource]
            walked = position
            while position < length:
                index = queue[position]
                if pending[index]:
                    break
                bound = lb[index]
                start = bound if bound > end else end
                end = start + durations[index]
                starts[index] = start
                ends[index] = end
                edge = succ_ptr[index]
                stop = succ_ptr[index + 1]
                if edge != stop:
                    for target in succ_tgt[edge:stop]:
                        pending[target] -= 1
                        if end > lb[target]:
                            lb[target] = end
                position += 1
            cursor[resource] = position
            resource_end[resource] = end
            progressed += position - walked
        if not progressed:
            blocked_heads = [
                rows[queue[cursor[resource]]][0]
                for resource, queue in enumerate(queues)
                if cursor[resource] < queue_lengths[resource]
            ]
            raise SimulationError(
                f"simulation deadlock: blocked head operations {blocked_heads}"
            )
        remaining -= progressed

    start_column = np.asarray(starts, dtype=np.float64)
    end_column = np.asarray(ends, dtype=np.float64)
    return start_column, end_column, op_ids


def schedule_order(starts: "np.ndarray", op_ids: "np.ndarray") -> "np.ndarray":
    """Row order of the finished schedule: ``(start, op_id)``, one lexsort.

    Bit-for-bit the order ``Schedule.ops`` carries on the heap paths: float
    ties (including ``0.0`` vs ``-0.0``) are broken by the unique op id, so the
    sort never has to compare equal keys.
    """
    return np.lexsort((op_ids, starts))
