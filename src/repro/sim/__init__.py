"""Discrete-event simulator for hybrid CPU-GPU training timelines.

The simulator models one training process (one GPU plus its share of host resources)
as a set of FIFO resources — GPU compute, the H2D and D2H PCIe copy engines, the CPU,
and the NVLink collective engine — onto which the trainer and the update-phase
executors submit operations with explicit dependencies.  Operations on the same
resource execute in submission order (head-of-line blocking, the semantics of a CUDA
stream); operations on different resources overlap freely once their dependencies are
satisfied.  This is exactly the overlap structure the paper's Figures 5 and 6 draw.

The resulting :class:`~repro.sim.engine.Schedule` can be queried for phase durations,
per-resource busy time and utilisation, and can be sampled into GPU-memory and PCIe
throughput time series to reproduce Figures 3, 4 and 15.
"""

from repro.sim.ops import OpKind, SimOp, next_op_id
from repro.sim.engine import (
    SCHEDULER_BACKENDS,
    Resource,
    Schedule,
    ScheduledOp,
    SimEngine,
    VectorSchedule,
)
from repro.sim.opbatch import OpBatch
from repro.sim.trace import MemoryTimeline, ThroughputTimeline, sample_series

__all__ = [
    "OpKind",
    "SimOp",
    "OpBatch",
    "next_op_id",
    "SCHEDULER_BACKENDS",
    "SimEngine",
    "Resource",
    "Schedule",
    "ScheduledOp",
    "VectorSchedule",
    "MemoryTimeline",
    "ThroughputTimeline",
    "sample_series",
]
