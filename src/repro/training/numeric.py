"""Numeric end-to-end training of the miniature model through the sharded optimizer.

:class:`MiniTrainer` wires together the full data path of the paper at laptop scale:
the NumPy transformer produces FP32 gradients, they are cast to FP16 (the precision in
which a real backward pass emits them), averaged across simulated data-parallel ranks,
scattered into the ZeRO-3 subgroups, upscaled exactly to FP32, and consumed by the
optimizer through whichever update executor the chosen offloading strategy provides —
sequential CPU for the baselines, interleaved for Deep Optimizer States.  Because the
executors share the same arithmetic, any strategy must produce exactly the same
training trajectory, which the integration tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.common.errors import ConfigurationError
from repro.core.engine import OffloadStrategy
from repro.baselines.registry import build_strategy
from repro.hardware.presets import JLSE_H100_NODE
from repro.hardware.throughput import ThroughputProfile
from repro.model.config import TransformerConfig
from repro.model.nn.model import TinyTransformerLM
from repro.model.presets import TINY_MODELS
from repro.optim import AdamConfig, AdamRule
from repro.optim.base import OptimizerRule
from repro.precision.loss_scaler import DynamicLossScaler, StaticLossScaler
from repro.zero.collectives import allreduce_mean
from repro.zero.stage3 import ShardedMixedPrecisionOptimizer


@dataclass
class MiniTrainingResult:
    """Outcome of a numeric training run."""

    losses: list[float] = field(default_factory=list)
    skipped_steps: int = 0
    steps: int = 0
    strategy: str = ""

    @property
    def initial_loss(self) -> float:
        """Loss of the first step."""
        return self.losses[0] if self.losses else float("nan")

    @property
    def final_loss(self) -> float:
        """Loss of the last step."""
        return self.losses[-1] if self.losses else float("nan")


class MiniTrainer:
    """Trains a :class:`TinyTransformerLM` with a ZeRO-3 sharded, offloaded optimizer."""

    def __init__(
        self,
        model_config: TransformerConfig,
        *,
        strategy: str | OffloadStrategy = "deep-optimizer-states",
        data_parallel_degree: int = 2,
        subgroup_size: int = 8192,
        rule: OptimizerRule | None = None,
        loss_scaler: StaticLossScaler | DynamicLossScaler | None = None,
        seed: int | None = None,
        profile: ThroughputProfile | None = None,
    ) -> None:
        if data_parallel_degree <= 0:
            raise ConfigurationError("data_parallel_degree must be positive")
        self.model_config = model_config
        self.data_parallel_degree = data_parallel_degree
        self.model = TinyTransformerLM(model_config, seed=seed)
        self.rule = rule or AdamRule(AdamConfig(learning_rate=1e-3))
        self.loss_scaler = loss_scaler
        self.strategy = (
            strategy
            if isinstance(strategy, OffloadStrategy)
            else build_strategy(strategy, subgroup_size=subgroup_size)
        )
        self.profile = profile or ThroughputProfile.from_machine(JLSE_H100_NODE)

        flat = self.model.flatten_parameters()
        self.optimizer = ShardedMixedPrecisionOptimizer(
            flat,
            self.rule,
            data_parallel_degree=data_parallel_degree,
            offload=self.strategy.offload_config(subgroup_size),
        )
        subgroups_per_rank = self.optimizer.num_subgroups(self.optimizer.ranks[0])
        self.executor = self.strategy.numeric_executor(subgroups_per_rank, self.profile)

    # ------------------------------------------------------------------ training

    def train_step(self, batches: list[tuple[np.ndarray, np.ndarray]]) -> float | None:
        """One data-parallel training step; ``batches`` holds one microbatch per rank.

        Returns the mean loss, or None if the step was skipped due to an FP16 overflow
        detected by the (optional) dynamic loss scaler.
        """
        if len(batches) != self.data_parallel_degree:
            raise ConfigurationError(
                f"expected {self.data_parallel_degree} microbatches, got {len(batches)}"
            )
        rank_losses: list[float] = []
        rank_gradients: list[np.ndarray] = []
        for tokens, targets in batches:
            loss, gradients = self.model.train_step_gradients(tokens, targets)
            rank_losses.append(loss)
            rank_gradients.append(gradients)

        averaged = allreduce_mean(rank_gradients)
        if self.loss_scaler is not None:
            overflow = self.loss_scaler.has_overflow(averaged)
            should_step = self.loss_scaler.update(overflow)
            if not should_step:
                return None

        self.optimizer.set_gradients(averaged)
        self.optimizer.step(self.executor)
        updated = self.optimizer.gathered_fp16_parameters().astype(np.float32)
        self.model.load_flat_parameters(updated)
        return float(np.mean(rank_losses))

    def train(
        self,
        dataloader: Iterable[tuple[np.ndarray, np.ndarray]],
        *,
        max_steps: int | None = None,
    ) -> MiniTrainingResult:
        """Train over ``dataloader``, grouping batches into data-parallel steps."""
        result = MiniTrainingResult(strategy=self.strategy.name)
        pending: list[tuple[np.ndarray, np.ndarray]] = []
        for batch in dataloader:
            pending.append(batch)
            if len(pending) < self.data_parallel_degree:
                continue
            loss = self.train_step(pending)
            pending = []
            result.steps += 1
            if loss is None:
                result.skipped_steps += 1
            else:
                result.losses.append(loss)
            if max_steps is not None and result.steps >= max_steps:
                break
        return result

    # ------------------------------------------------------------------ inspection

    def master_parameters(self) -> np.ndarray:
        """The FP32 master parameter vector (for equivalence checks)."""
        return self.optimizer.master_parameters()

    def describe(self) -> dict:
        """Summary of the trainer's configuration."""
        return {
            "model": self.model_config.name,
            "parameters": self.model.num_parameters(),
            "strategy": self.strategy.name,
            "data_parallel_degree": self.data_parallel_degree,
            "subgroups_per_rank": self.optimizer.num_subgroups(self.optimizer.ranks[0]),
        }


def run_numeric_training(
    *,
    model: str = "nano",
    strategy: str = "deep-optimizer-states",
    steps: int = 3,
    data_parallel_degree: int = 2,
    subgroup_size: int = 2048,
    seed: int = 0,
    learning_rate: float = 1e-3,
) -> dict:
    """Sweep worker for the numeric execution path (module-level, hence picklable).

    Trains a tiny NumPy transformer for ``steps`` data-parallel steps on a
    deterministic synthetic batch stream (derived from ``seed``) through the chosen
    offloading strategy's numeric executor, and returns a JSON-friendly summary.
    Every parameter is a JSON scalar, so any of them can be a
    :class:`~repro.sweep.spec.SweepSpec` axis; ``repro sweep --executor numeric``
    routes exactly this callable through the :class:`~repro.sweep.runner.SweepRunner`.

    Because every strategy's executor performs the same arithmetic, sweeping
    ``strategy`` with fixed ``seed`` must produce identical losses — the headline
    numerical-equivalence claim, now checkable from the CLI.
    """
    if model not in TINY_MODELS:
        raise ConfigurationError(
            f"numeric training needs a tiny model preset ({sorted(TINY_MODELS)}), "
            f"got {model!r}; paper-scale presets are simulation-only"
        )
    if steps <= 0:
        raise ConfigurationError("steps must be positive")
    config = TINY_MODELS[model]
    trainer = MiniTrainer(
        config,
        strategy=strategy,
        data_parallel_degree=data_parallel_degree,
        subgroup_size=subgroup_size,
        rule=AdamRule(AdamConfig(learning_rate=learning_rate)),
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    batches = [
        (
            rng.integers(0, config.vocab_size, size=(1, config.sequence_length)),
            rng.integers(0, config.vocab_size, size=(1, config.sequence_length)),
        )
        for _ in range(steps * data_parallel_degree)
    ]
    result = trainer.train(iter(batches), max_steps=steps)
    return {
        "model": model,
        "strategy": result.strategy,
        "parameters": trainer.model.num_parameters(),
        "subgroups_per_rank": trainer.describe()["subgroups_per_rank"],
        "steps": result.steps,
        "skipped_steps": result.skipped_steps,
        "initial_loss": round(result.initial_loss, 8),
        "final_loss": round(result.final_loss, 8),
    }
