"""Training job configuration and its resolution into concrete objects."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.core.engine import OffloadStrategy
from repro.baselines.registry import build_strategy
from repro.hardware.contention import HostContentionModel
from repro.hardware.presets import get_machine_preset
from repro.hardware.specs import MachineSpec
from repro.hardware.throughput import ThroughputProfile
from repro.model.config import TransformerConfig
from repro.model.footprint import RankFootprint, build_rank_footprint, check_fits
from repro.model.presets import get_model_preset
from repro.zero.partitioner import build_subgroups, partition_evenly


@dataclass
class TrainingJobConfig:
    """Everything needed to describe one training run of the paper's evaluation."""

    model: str | TransformerConfig = "20B"
    machine: str | MachineSpec = "jlse-4xh100"
    strategy: str | OffloadStrategy = "deep-optimizer-states"
    data_parallel_degree: int | None = None
    microbatch_size: int = 1
    subgroup_size: int = 100_000_000
    activation_checkpointing: bool = True
    static_gpu_fraction: float = 0.0
    update_stride: int = 0
    cpu_cores_per_gpu: int | None = None
    iterations: int = 10
    warmup_iterations: int = 2
    model_contention: bool = True
    check_memory: bool = True
    forward_chunks: int = 16
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.microbatch_size <= 0:
            raise ConfigurationError("microbatch_size must be positive")
        if self.subgroup_size <= 0:
            raise ConfigurationError("subgroup_size must be positive")
        if self.iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if not 0 <= self.warmup_iterations < self.iterations:
            raise ConfigurationError("warmup_iterations must be in [0, iterations)")
        if self.forward_chunks <= 0:
            raise ConfigurationError("forward_chunks must be positive")

    # ------------------------------------------------------------------ resolution

    def resolve(self) -> "ResolvedJob":
        """Materialise presets and derived quantities into a :class:`ResolvedJob`."""
        model = self.model if isinstance(self.model, TransformerConfig) else get_model_preset(self.model)
        machine = (
            self.machine if isinstance(self.machine, MachineSpec) else get_machine_preset(self.machine)
        )
        dp = self.data_parallel_degree or machine.num_gpus
        if dp <= 0:
            raise ConfigurationError("data_parallel_degree must be positive")
        if dp < machine.num_gpus:
            machine = machine.with_num_gpus(dp)

        strategy = (
            self.strategy
            if isinstance(self.strategy, OffloadStrategy)
            else build_strategy(
                self.strategy,
                static_gpu_fraction=self.static_gpu_fraction,
                subgroup_size=self.subgroup_size,
                update_stride=self.update_stride,
            )
        )

        contention = HostContentionModel() if self.model_contention else None
        cores = self.cpu_cores_per_gpu
        if cores is not None and contention is not None:
            cores = contention.effective_cores(cores)
        profile = ThroughputProfile.from_machine(machine, cores_per_gpu=cores)

        rank_ranges = partition_evenly(model.num_parameters(), dp)
        rank0_specs = build_subgroups(0, rank_ranges[0], self.subgroup_size)
        subgroup_params = {spec.index: spec.num_params for spec in rank0_specs}

        plan_preview = strategy.build_plan(len(rank0_specs), profile)
        gradient_fraction = plan_preview.gpu_fraction() if strategy.stages_subgroup_on_gpu() else 0.0
        footprint = build_rank_footprint(
            model,
            data_parallel_degree=dp,
            microbatch_size=self.microbatch_size,
            activation_checkpointing=self.activation_checkpointing,
            gpu_resident_optimizer_fraction=strategy.static_gpu_fraction,
            subgroup_size=self.subgroup_size,
            stage_subgroup_on_gpu=strategy.stages_subgroup_on_gpu(),
            gpu_scheduled_gradient_fraction=gradient_fraction,
        )
        if self.check_memory:
            check_fits(footprint, machine, data_parallel_degree=dp)

        plan = plan_preview
        return ResolvedJob(
            config=self,
            model=model,
            machine=machine,
            strategy=strategy,
            profile=profile,
            contention=contention,
            data_parallel_degree=dp,
            subgroup_params=subgroup_params,
            plan=plan,
            footprint=footprint,
        )


@dataclass
class ResolvedJob:
    """A fully resolved training job ready to simulate."""

    config: TrainingJobConfig
    model: TransformerConfig
    machine: MachineSpec
    strategy: OffloadStrategy
    profile: ThroughputProfile
    contention: HostContentionModel | None
    data_parallel_degree: int
    subgroup_params: dict[int, int]
    plan: "object"
    footprint: RankFootprint

    @property
    def rank_parameters(self) -> int:
        """Parameters owned by the representative rank (rank 0)."""
        return sum(self.subgroup_params.values())

    @property
    def num_subgroups(self) -> int:
        """Subgroups of the representative rank."""
        return len(self.subgroup_params)

    def describe(self) -> dict:
        """Summary used by reports and examples."""
        return {
            "model": self.model.name,
            "parameters_billions": round(self.model.billions_of_parameters, 2),
            "machine": self.machine.name,
            "strategy": self.strategy.name,
            "data_parallel_degree": self.data_parallel_degree,
            "microbatch_size": self.config.microbatch_size,
            "subgroup_size": self.config.subgroup_size,
            "num_subgroups_per_rank": self.num_subgroups,
            "activation_checkpointing": self.config.activation_checkpointing,
            "static_gpu_fraction": self.strategy.static_gpu_fraction,
        }
