"""Training metrics: per-iteration phase breakdowns and aggregated reports."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class IterationBreakdown:
    """Wall-clock seconds of one training iteration, split by phase (Figure 7)."""

    forward_seconds: float
    backward_seconds: float
    update_seconds: float

    @property
    def total_seconds(self) -> float:
        """End-to-end iteration time."""
        return self.forward_seconds + self.backward_seconds + self.update_seconds

    def as_dict(self) -> dict:
        """Plain dictionary (used by the experiment tables)."""
        return {
            "forward_s": round(self.forward_seconds, 4),
            "backward_s": round(self.backward_seconds, 4),
            "update_s": round(self.update_seconds, 4),
            "total_s": round(self.total_seconds, 4),
        }


def average_breakdown(breakdowns: list[IterationBreakdown]) -> IterationBreakdown:
    """Element-wise mean of a list of breakdowns."""
    if not breakdowns:
        raise ConfigurationError("cannot average an empty list of breakdowns")
    count = len(breakdowns)
    return IterationBreakdown(
        forward_seconds=sum(item.forward_seconds for item in breakdowns) / count,
        backward_seconds=sum(item.backward_seconds for item in breakdowns) / count,
        update_seconds=sum(item.update_seconds for item in breakdowns) / count,
    )


@dataclass
class TrainingReport:
    """Aggregated result of one (simulated) training run."""

    job: dict
    breakdowns: list[IterationBreakdown] = field(default_factory=list)
    warmup_iterations: int = 0
    requested_iterations: int = 0
    update_throughput_pps: float = 0.0
    achieved_tflops: float = 0.0
    end_to_end_seconds: float = 0.0
    oom: bool = False
    oom_reason: str = ""

    @property
    def steady_state(self) -> IterationBreakdown:
        """Average breakdown over the post-warmup iterations."""
        usable = self.breakdowns[self.warmup_iterations :] or self.breakdowns
        return average_breakdown(usable)

    @property
    def iteration_seconds(self) -> float:
        """Average post-warmup iteration time (the headline per-iteration metric)."""
        return self.steady_state.total_seconds

    def speedup_over(self, other: "TrainingReport") -> float:
        """Iteration-time speedup of this run relative to ``other``."""
        if self.oom or other.oom:
            raise ConfigurationError("cannot compute a speedup involving an OOM run")
        return other.iteration_seconds / self.iteration_seconds

    def as_row(self) -> dict:
        """One row for the experiment tables."""
        if self.oom:
            return {**self.job, "oom": True}
        steady = self.steady_state
        return {
            **self.job,
            "forward_s": round(steady.forward_seconds, 3),
            "backward_s": round(steady.backward_seconds, 3),
            "update_s": round(steady.update_seconds, 3),
            "iteration_s": round(steady.total_seconds, 3),
            "update_throughput_bpps": round(self.update_throughput_pps / 1e9, 2),
            "tflops": round(self.achieved_tflops, 1),
            "end_to_end_s": round(self.end_to_end_seconds, 1),
            "oom": False,
        }


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0].keys())
    widths = {col: max(len(col), *(len(str(row.get(col, ""))) for row in rows)) for col in columns}
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    separator = "  ".join("-" * widths[col] for col in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)
