"""Iteration-level simulation: compose forward, backward and update into one schedule.

One training iteration of the ZeRO-3 runtime decomposes into:

* **forward** — per-layer parameter all-gathers over NVLink overlapped with GPU
  compute; activations (or activation checkpoints) accumulate in GPU memory;
* **backward** — GPU compute (plus recomputation when activation checkpointing is on)
  interleaved with gradient reduce-scatters and the per-subgroup gradient flush,
  which *blocks* the backward pass for the baselines and is asynchronous for Deep
  Optimizer States (Figure 6);
* **update** — the strategy-specific update phase (Figure 5), whose completion gates
  the next iteration's forward pass.

The builder chains several iterations in a single schedule so that transfers spilling
past the nominal end of the update phase (Figure 5, bottom) are charged against the
next iteration exactly as they would be on real hardware (the Figure 9 experiment).

Two op-construction backends feed the engine:

* ``"objects"`` — the original eager path: one :class:`~repro.sim.ops.SimOp` per
  operation, submitted through :meth:`~repro.sim.engine.SimEngine.submit`;
* ``"batch"`` (the default) — the array-batched path: operations are appended as row
  tuples to an :class:`~repro.sim.opbatch.OpBatch` and scheduled through
  :meth:`~repro.sim.engine.SimEngine.run_batch`, which skips per-op Python-object
  construction and is several times faster beyond ~10k subgroups.

Both backends produce byte-identical schedules and bookkeeping — enforced by
``tests/test_opbatch_equivalence.py`` — so every metric derived from a
:class:`SimulationResult` is backend-independent.  Strategies that do not
implement the row builders fall back to the eager path; the downgrade is
recorded in :attr:`SimulationResult.resolved_policy` and warned once per
strategy (:class:`~repro.runtime.OpBackendFallbackWarning`).

Orthogonally, a *scheduler backend* selects the engine that turns the submitted
operations into a schedule:

* ``"heap"`` — the ready-set heap of
  :meth:`~repro.sim.engine.SimEngine.run` / :meth:`~repro.sim.engine.SimEngine.run_batch`;
* ``"vector"`` — the struct-of-arrays kernel of :mod:`repro.sim.veckernel`
  via :meth:`~repro.sim.engine.SimEngine.run_vector`, whose scheduling is
  several times faster on very large scenarios;
* ``"auto"`` (the default) — picks ``vector`` when the DAG's op count reaches
  ``ExecutionPolicy.auto_vector_threshold`` and ``heap`` below it.

Scheduler backends are byte-identical (the three-way differential harness in
``tests/test_engine_equivalence.py`` is the proof), so the choice is purely a
performance knob: any combination of op backend and scheduler backend yields the
same :class:`SimulationResult`.

Both choices arrive through one :class:`~repro.runtime.ExecutionPolicy` — pass
``policy=`` explicitly, activate a ``repro.configure(...)`` context, or set the
``REPRO_SIM_OP_BACKEND``/``REPRO_SIM_SCHEDULER`` environment variables; see
:mod:`repro.runtime` for the resolution order.  The ``op_backend=`` /
``scheduler_backend=`` keywords survive as deprecation shims over the same
resolver.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.units import GB
from repro.core.gradient_flush import GradientFlushOps
from repro.core.sim_executor import UpdatePhaseOps
from repro.model.flops import backward_compute_seconds, forward_compute_seconds
from repro.middleware import build_chain, effective_middleware_specs
from repro.precision.dtypes import DType
from repro.sim.engine import (
    SCHEDULER_BACKENDS,  # noqa: F401  (public re-export)
    Schedule,
    SimEngine,
    standard_resources,
)
from repro.sim.opbatch import OpBatch
from repro.sim.ops import OpKind, SimOp, next_op_id
from repro.sim.trace import MemoryTimeline, ThroughputTimeline
from repro.runtime import (
    SIMULATION_FIELDS,
    ExecutionPolicy,
    OpBackendFallbackWarning,
    ResolvedExecution,
)
from repro.training.config import ResolvedJob
from repro.training.metrics import IterationBreakdown
from repro.zero.collectives import allgather_seconds, reduce_scatter_seconds

try:  # Optional at import time: only the stacked-breakdown helpers need it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on broken installs
    np = None


@dataclass
class IterationOps:
    """Op-id bookkeeping for one simulated iteration."""

    index: int
    forward_ops: list[int] = field(default_factory=list)
    forward_compute_ops: list[int] = field(default_factory=list)
    backward_compute_ops: list[int] = field(default_factory=list)
    flush: GradientFlushOps = field(default_factory=GradientFlushOps)
    update: UpdatePhaseOps = field(default_factory=UpdatePhaseOps)
    blocks_backward: bool = False


@dataclass
class SimulationResult:
    """A schedule plus the per-iteration op bookkeeping needed to interpret it.

    ``resolved_policy`` records what actually ran — the resolved
    :class:`~repro.runtime.ExecutionPolicy` plus the *effective* op and
    scheduler backends after the strategy-capability fallback and the
    ``auto`` threshold decision.  ``precomputed_breakdowns`` is set by the
    shape-batched sweep path (:mod:`repro.sweep.batching`), which computes
    every scenario's breakdowns in one vectorised pass; the values are
    bit-identical to what :meth:`breakdown` would derive from the schedule.
    """

    job: ResolvedJob
    schedule: Schedule
    iterations: list[IterationOps]
    initial_gpu_bytes: int = 0
    resolved_policy: ResolvedExecution | None = None
    precomputed_breakdowns: list[IterationBreakdown] | None = None

    # ------------------------------------------------------------------ times

    def iteration_start(self, index: int) -> float:
        """Start time of iteration ``index`` (first forward op's start)."""
        start_of = self.schedule.op_start
        return min(start_of(op_id) for op_id in self.iterations[index].forward_ops)

    def forward_end(self, index: int) -> float:
        """End of the forward compute of iteration ``index``."""
        end_of = self.schedule.op_end
        return max(end_of(op_id) for op_id in self.iterations[index].forward_compute_ops)

    def backward_end(self, index: int) -> float:
        """End of the backward phase (including blocking flushes for the baselines)."""
        record = self.iterations[index]
        end_of = self.schedule.op_end
        end = max(end_of(op_id) for op_id in record.backward_compute_ops)
        if record.blocks_backward and record.flush.op_ids:
            end = max(end, max(end_of(op_id) for op_id in record.flush.op_ids))
        return end

    def params_ready_time(self, index: int) -> float:
        """Time at which every updated FP16 parameter is back on the GPU."""
        end_of = self.schedule.op_end
        return max(end_of(op_id) for op_id in self.iterations[index].update.params_ready_ops)

    def update_window(self, index: int) -> tuple[float, float]:
        """(start, end) of the update phase, including any spill-over transfers."""
        ops = self.iterations[index].update.op_ids
        starts = [self.schedule.op_start(op_id) for op_id in ops]
        ends = [self.schedule.op_end(op_id) for op_id in ops]
        return (min(starts), max(ends))

    def breakdown(self, index: int) -> IterationBreakdown:
        """Per-phase wall-clock breakdown of iteration ``index`` (the Figure 7 metric)."""
        if self.precomputed_breakdowns is not None:
            return self.precomputed_breakdowns[index]
        start = self.iteration_start(index)
        forward_end = self.forward_end(index)
        backward_end = self.backward_end(index)
        ready = self.params_ready_time(index)
        return IterationBreakdown(
            forward_seconds=forward_end - start,
            backward_seconds=backward_end - forward_end,
            update_seconds=ready - backward_end,
        )

    def breakdowns(self) -> list[IterationBreakdown]:
        """Breakdowns of every simulated iteration."""
        if self.precomputed_breakdowns is not None:
            return list(self.precomputed_breakdowns)
        return [self.breakdown(index) for index in range(len(self.iterations))]

    # ------------------------------------------------------------------ traces

    def memory_timeline(self) -> MemoryTimeline:
        """GPU memory occupancy over the whole simulated window (Figure 3)."""
        return MemoryTimeline.from_schedule(self.schedule, initial_bytes=self.initial_gpu_bytes)

    def pcie_timeline(self, direction: str, resolution: float = 0.05) -> ThroughputTimeline:
        """PCIe throughput trace for "h2d" or "d2h" (Figure 4)."""
        kind = OpKind.H2D if direction == "h2d" else OpKind.D2H
        return ThroughputTimeline.from_schedule(self.schedule, kind, resolution=resolution)


def _iteration_compute_times(job: ResolvedJob) -> tuple[float, float, float, float]:
    """(forward compute, backward compute, forward allgather, backward collectives) seconds."""
    model = job.model
    microbatch = job.config.microbatch_size
    peak_flops = job.machine.gpu.fp16_flops
    forward = forward_compute_seconds(model, microbatch, peak_flops)
    backward = backward_compute_seconds(
        model,
        microbatch,
        peak_flops,
        activation_checkpointing=job.config.activation_checkpointing,
    )
    nvlink_bps = job.machine.nvlink.d2d_gbps * GB
    model_fp16_bytes = model.num_parameters() * DType.FP16.itemsize
    gather = allgather_seconds(model_fp16_bytes, job.data_parallel_degree, nvlink_bps)
    reduce = reduce_scatter_seconds(model_fp16_bytes, job.data_parallel_degree, nvlink_bps) + gather
    return forward, backward, gather, reduce


def build_iteration(
    engine: SimEngine,
    job: ResolvedJob,
    iteration_index: int,
    start_deps: tuple[int, ...] = (),
) -> IterationOps:
    """Submit the operations of one training iteration to ``engine``."""
    record = IterationOps(index=iteration_index)
    record.blocks_backward = job.strategy.flush_blocks_backward()
    forward_time, backward_time, gather_time, backward_collective_time = _iteration_compute_times(job)

    model = job.model
    footprint = job.footprint
    n_forward_chunks = min(job.config.forward_chunks, model.num_layers)
    activation_per_chunk = footprint.activation_bytes // n_forward_chunks

    # ------------------------------------------------------------------ forward
    previous_compute: int | None = None
    for chunk in range(n_forward_chunks):
        gather = SimOp(
            name=f"it{iteration_index}.fwd_allgather[{chunk}]",
            kind=OpKind.ALLGATHER,
            resource="nvlink",
            duration=gather_time / n_forward_chunks,
            deps=start_deps if chunk == 0 else (),
            phase="forward",
        )
        engine.submit(gather)
        compute_deps = [gather.op_id]
        if chunk == 0:
            compute_deps.extend(start_deps)
        compute = SimOp(
            name=f"it{iteration_index}.fwd_compute[{chunk}]",
            kind=OpKind.GPU_COMPUTE,
            resource="gpu.compute",
            duration=forward_time / n_forward_chunks,
            deps=tuple(compute_deps),
            phase="forward",
            gpu_mem_delta=activation_per_chunk,
        )
        engine.submit(compute)
        record.forward_ops.extend([gather.op_id, compute.op_id])
        record.forward_compute_ops.append(compute.op_id)
        previous_compute = compute.op_id

    # ------------------------------------------------------------------ backward
    num_subgroups = job.num_subgroups
    if num_subgroups == 0:
        raise ConfigurationError("cannot simulate an iteration with zero subgroups")
    activation_free_per_chunk = footprint.activation_bytes // num_subgroups
    grad_ready_deps: dict[int, int] = {}
    blocking_tail: int | None = None

    # Gradients are produced in reverse subgroup order (backprop walks the layers from
    # the output back to the input), which is why Deep Optimizer States can start
    # updating the highest-index subgroups while the backward pass is still running.
    for position, subgroup_index in enumerate(reversed(range(num_subgroups))):
        params = job.subgroup_params[subgroup_index]
        compute_deps = [previous_compute] if previous_compute is not None else []
        if record.blocks_backward and blocking_tail is not None:
            compute_deps.append(blocking_tail)
        compute = SimOp(
            name=f"it{iteration_index}.bwd_compute[{subgroup_index}]",
            kind=OpKind.GPU_COMPUTE,
            resource="gpu.compute",
            duration=backward_time / num_subgroups,
            deps=tuple(compute_deps),
            phase="backward",
            subgroup=subgroup_index,
            gpu_mem_delta=-activation_free_per_chunk + params * DType.FP16.itemsize,
        )
        engine.submit(compute)
        record.backward_compute_ops.append(compute.op_id)
        previous_compute = compute.op_id

        reduce = SimOp(
            name=f"it{iteration_index}.bwd_reduce_scatter[{subgroup_index}]",
            kind=OpKind.REDUCE_SCATTER,
            resource="nvlink",
            duration=backward_collective_time / num_subgroups,
            deps=(compute.op_id,),
            phase="backward",
            subgroup=subgroup_index,
        )
        engine.submit(reduce)

        flush = job.strategy.build_gradient_flush(
            engine,
            job.profile,
            {subgroup_index: params},
            {subgroup_index: reduce.op_id},
            job.plan,
        )
        record.flush.grad_ready_ops.update(flush.grad_ready_ops)
        record.flush.blocking_ops.update(flush.blocking_ops)
        record.flush.op_ids.extend(flush.op_ids)
        record.flush.d2h_bytes += flush.d2h_bytes
        grad_ready_deps.update(flush.grad_ready_ops)
        if record.blocks_backward:
            blocking_tail = flush.blocking_ops.get(subgroup_index, blocking_tail)

    # ------------------------------------------------------------------ update
    last_backward = record.backward_compute_ops[-1]
    record.update = job.strategy.build_update_phase(
        engine,
        job.profile,
        job.plan,
        job.subgroup_params,
        grad_ready_ops=grad_ready_deps,
        start_deps=(last_backward,),
        contention=job.contention,
        staged_subgroup_bytes=footprint.staged_subgroup_bytes,
    )
    return record


def build_iteration_rows(
    batch: OpBatch,
    job: ResolvedJob,
    iteration_index: int,
    start_deps: tuple[int, ...] = (),
) -> IterationOps:
    """Row-emitting twin of :func:`build_iteration` for the array-batched backend.

    Appends the iteration's operations to ``batch`` as row tuples — same names,
    kinds, durations, dependency tuples and id allocation order as the eager
    builder, with no per-op ``SimOp`` construction or per-subgroup strategy-call
    overhead.  The emitted stream must stay bit-identical to the eager one; the
    golden tests compare the two schedules field by field.
    """
    record = IterationOps(index=iteration_index)
    record.blocks_backward = job.strategy.flush_blocks_backward()
    forward_time, backward_time, gather_time, backward_collective_time = _iteration_compute_times(job)

    model = job.model
    footprint = job.footprint
    n_forward_chunks = min(job.config.forward_chunks, model.num_layers)
    activation_per_chunk = footprint.activation_bytes // n_forward_chunks
    rows_append = batch.rows.append
    new_id = next_op_id

    # ------------------------------------------------------------------ forward
    gather_duration = gather_time / n_forward_chunks
    forward_duration = forward_time / n_forward_chunks
    previous_compute: int | None = None
    for chunk in range(n_forward_chunks):
        gather_id = new_id()
        rows_append((f"it{iteration_index}.fwd_allgather[{chunk}]", OpKind.ALLGATHER,
                     "nvlink", gather_duration, start_deps if chunk == 0 else (),
                     "forward", None, 0, 0, gather_id))
        compute_id = new_id()
        compute_deps = (gather_id,) + start_deps if chunk == 0 else (gather_id,)
        rows_append((f"it{iteration_index}.fwd_compute[{chunk}]", OpKind.GPU_COMPUTE,
                     "gpu.compute", forward_duration, compute_deps, "forward", None,
                     0, activation_per_chunk, compute_id))
        record.forward_ops.extend([gather_id, compute_id])
        record.forward_compute_ops.append(compute_id)
        previous_compute = compute_id

    # ------------------------------------------------------------------ backward
    num_subgroups = job.num_subgroups
    if num_subgroups == 0:
        raise ConfigurationError("cannot simulate an iteration with zero subgroups")
    activation_free_per_chunk = footprint.activation_bytes // num_subgroups
    backward_duration = backward_time / num_subgroups
    reduce_duration = backward_collective_time / num_subgroups
    fp16 = DType.FP16.itemsize
    subgroup_params = job.subgroup_params
    emit_flush = job.strategy.flush_row_builder(batch, job.profile, job.plan)
    flush = record.flush
    blocks_backward = record.blocks_backward
    backward_append = record.backward_compute_ops.append
    grad_ready_deps: dict[int, int] = {}
    blocking_tail: int | None = None

    for subgroup_index in reversed(range(num_subgroups)):
        params = subgroup_params[subgroup_index]
        if previous_compute is not None:
            if blocks_backward and blocking_tail is not None:
                compute_deps = (previous_compute, blocking_tail)
            else:
                compute_deps = (previous_compute,)
        elif blocks_backward and blocking_tail is not None:
            compute_deps = (blocking_tail,)
        else:
            compute_deps = ()
        compute_id = new_id()
        rows_append((f"it{iteration_index}.bwd_compute[{subgroup_index}]",
                     OpKind.GPU_COMPUTE, "gpu.compute", backward_duration,
                     compute_deps, "backward", subgroup_index, 0,
                     -activation_free_per_chunk + params * fp16, compute_id))
        backward_append(compute_id)
        previous_compute = compute_id

        reduce_id = new_id()
        rows_append((f"it{iteration_index}.bwd_reduce_scatter[{subgroup_index}]",
                     OpKind.REDUCE_SCATTER, "nvlink", reduce_duration,
                     (compute_id,), "backward", subgroup_index, 0, 0, reduce_id))

        grad_ready, blocking = emit_flush(flush, subgroup_index, params, reduce_id)
        grad_ready_deps[subgroup_index] = grad_ready
        if blocks_backward and blocking is not None:
            blocking_tail = blocking

    # ------------------------------------------------------------------ update
    last_backward = record.backward_compute_ops[-1]
    record.update = job.strategy.build_update_phase_rows(
        batch,
        job.profile,
        job.plan,
        subgroup_params,
        grad_ready_ops=grad_ready_deps,
        start_deps=(last_backward,),
        contention=job.contention,
        staged_subgroup_bytes=footprint.staged_subgroup_bytes,
    )
    return record


# Strategies already warned about missing row builders (one warning per
# strategy per process; see OpBackendFallbackWarning).
_FALLBACK_WARNED: set[str] = set()


def reset_fallback_warnings() -> None:
    """Forget which strategies were warned about (used by tests)."""
    _FALLBACK_WARNED.clear()


def _deprecated_backend_kwarg(name: str, policy_field: str) -> None:
    warnings.warn(
        f"simulate_job({name}=...) is deprecated; pass "
        f"policy=ExecutionPolicy({policy_field}=...) or activate a "
        f"repro.configure({policy_field}=...) context instead",
        DeprecationWarning,
        stacklevel=3,
    )


def simulate_job(
    job: ResolvedJob,
    iterations: int = 1,
    *,
    policy: ExecutionPolicy | None = None,
    op_backend: str | None = None,
    scheduler_backend: str | None = None,
) -> SimulationResult:
    """Simulate ``iterations`` chained training iterations of ``job``.

    ``policy`` pins the execution policy for this call; ``None`` resolves one
    through the standard order (active ``repro.configure`` context, then
    ``REPRO_*`` environment variables, then defaults — see
    :meth:`repro.runtime.ExecutionPolicy.resolve`).  The policy decides:

    * the **op backend** — ``"batch"`` (array-batched rows, the default) or
      ``"objects"`` (eager per-``SimOp``).  Strategies without row builders
      fall back to the eager path; the downgrade is recorded in the result's
      ``resolved_policy`` and warned once per strategy.
    * the **scheduler backend** — ``"heap"``, ``"vector"``, or ``"auto"``
      (the default), which picks the vector kernel when the op count reaches
      ``policy.auto_vector_threshold`` and the heap below it.

    Every combination is schedule-identical (enforced by
    ``tests/test_opbatch_equivalence.py`` and the three-way differential
    harness in ``tests/test_engine_equivalence.py``), so the policy is purely
    a performance knob.  The legacy ``op_backend=`` / ``scheduler_backend=``
    keywords still work as deprecated shims over the same resolver and cannot
    be combined with ``policy=``.
    """
    if iterations <= 0:
        raise ConfigurationError("iterations must be positive")
    legacy: dict[str, str] = {}
    if op_backend is not None:
        _deprecated_backend_kwarg("op_backend", "op_backend")
        legacy["op_backend"] = op_backend
    if scheduler_backend is not None:
        _deprecated_backend_kwarg("scheduler_backend", "scheduler")
        legacy["scheduler"] = scheduler_backend
    if policy is None:
        # Only the simulation-relevant fields consult the environment: a
        # broken sweep-level variable must not fail a call that never reads it.
        policy = ExecutionPolicy.resolve(env_fields=SIMULATION_FIELDS, **legacy)
    elif legacy:
        raise ConfigurationError(
            "pass either policy= or the deprecated op_backend=/scheduler_backend= "
            "keywords, not both"
        )
    elif not isinstance(policy, ExecutionPolicy):
        raise ConfigurationError("policy must be an ExecutionPolicy")

    backend = policy.op_backend
    fallback = False
    fallback_reason = ""
    if backend == "batch" and not job.strategy.supports_op_batch():
        backend = "objects"
        fallback = True
        fallback_reason = (
            f"strategy {job.strategy.name!r} does not implement the op-batch "
            "row builders; simulated through the eager 'objects' path instead"
        )
        if job.strategy.name not in _FALLBACK_WARNED:
            _FALLBACK_WARNED.add(job.strategy.name)
            warnings.warn(
                fallback_reason + " (schedules are identical; this warning is "
                "emitted once per strategy)",
                OpBackendFallbackWarning,
                stacklevel=2,
            )
    engine = SimEngine(name=f"{job.model.name}-{job.strategy.name}")
    standard_resources(engine)
    effective_specs = effective_middleware_specs(policy)
    if effective_specs:
        # The engine seam: the policy's chain intercepts each run()/run_batch()/
        # run_vector() pass as a whole (see docs/middleware.md).
        engine.install_middleware(build_chain(effective_specs), policy=policy)

    if backend == "batch":
        prepared = prepare_simulation(job, iterations, policy=policy)
        scheduler = policy.select_scheduler(prepared.op_count)
        schedule = (
            engine.run_vector(prepared.batch)
            if scheduler == "vector"
            else engine.run_batch(prepared.batch)
        )
        return finalize_simulation(prepared, schedule, scheduler=scheduler)

    records: list[IterationOps] = []
    start_deps: tuple[int, ...] = ()
    for index in range(iterations):
        record = build_iteration(engine, job, index, start_deps)
        records.append(record)
        start_deps = tuple(record.update.params_ready_ops)
    op_count = engine.pending_ops
    scheduler = policy.select_scheduler(op_count)
    schedule = engine.run_vector() if scheduler == "vector" else engine.run()
    resolved = ResolvedExecution(
        policy=policy,
        op_backend=backend,
        scheduler=scheduler,
        op_count=op_count,
        op_backend_fallback=fallback,
        fallback_reason=fallback_reason,
    )
    return SimulationResult(
        job=job,
        schedule=schedule,
        iterations=records,
        initial_gpu_bytes=_initial_gpu_bytes(job),
        resolved_policy=resolved,
    )


def _initial_gpu_bytes(job: ResolvedJob) -> int:
    """GPU bytes already resident when the simulated window opens."""
    return (
        job.footprint.fp16_parameter_bytes
        + job.footprint.gpu_resident_optimizer_bytes
        + job.footprint.gathered_layer_workspace_bytes
    )


@dataclass
class PreparedSimulation:
    """The op-construction half of a batch-backend simulation, before scheduling.

    :func:`prepare_simulation` builds the op rows and the per-iteration
    bookkeeping; the schedule itself can then come from anywhere — the solo
    paths in :func:`simulate_job`, or one column of a shape-batched
    :class:`~repro.sim.shapebatch.StackedSchedule` when a sweep schedules many
    prepared scenarios at once.  :func:`finalize_simulation` reassembles the
    pieces into the exact :class:`SimulationResult` the solo path returns.
    """

    job: ResolvedJob
    policy: ExecutionPolicy
    batch: OpBatch
    records: list[IterationOps]
    op_count: int


def prepare_simulation(
    job: ResolvedJob,
    iterations: int,
    *,
    policy: ExecutionPolicy | None = None,
) -> PreparedSimulation:
    """Build the op rows of ``iterations`` chained iterations without scheduling.

    Only the ``"batch"`` op backend can be split this way; strategies without
    row builders (``supports_op_batch()`` false) raise
    :class:`~repro.common.errors.ConfigurationError` — callers that cannot
    guarantee support (the sweep batching adapter) must check first and fall
    back to :func:`simulate_job`.
    """
    if iterations <= 0:
        raise ConfigurationError("iterations must be positive")
    if policy is None:
        policy = ExecutionPolicy.resolve(env_fields=SIMULATION_FIELDS)
    if not job.strategy.supports_op_batch():
        raise ConfigurationError(
            f"strategy {job.strategy.name!r} does not implement the op-batch row "
            "builders; prepare_simulation only supports the 'batch' op backend"
        )
    batch = OpBatch()
    records: list[IterationOps] = []
    start_deps: tuple[int, ...] = ()
    for index in range(iterations):
        record = build_iteration_rows(batch, job, index, start_deps)
        records.append(record)
        start_deps = tuple(record.update.params_ready_ops)
    return PreparedSimulation(
        job=job,
        policy=policy,
        batch=batch,
        records=records,
        op_count=len(batch.rows),
    )


def finalize_simulation(
    prepared: PreparedSimulation,
    schedule: Schedule,
    *,
    scheduler: str = "vector",
    breakdowns: list[IterationBreakdown] | None = None,
) -> SimulationResult:
    """Assemble a :class:`SimulationResult` from a prepared batch and its schedule.

    ``scheduler`` names the backend that produced ``schedule`` (recorded in
    ``resolved_policy``); ``breakdowns`` optionally carries per-iteration
    breakdowns already computed elsewhere (the stacked sweep path), which
    :meth:`SimulationResult.breakdowns` then returns without touching the
    schedule.
    """
    resolved = ResolvedExecution(
        policy=prepared.policy,
        op_backend="batch",
        scheduler=scheduler,
        op_count=prepared.op_count,
        op_backend_fallback=False,
        fallback_reason="",
    )
    return SimulationResult(
        job=prepared.job,
        schedule=schedule,
        iterations=prepared.records,
        initial_gpu_bytes=_initial_gpu_bytes(prepared.job),
        resolved_policy=resolved,
        precomputed_breakdowns=breakdowns,
    )


# --------------------------------------------------------------------- stacked
# Vectorised breakdown computation for the shape-batched sweep path: instead of
# querying one schedule at a time, gather the relevant rows of the stacked
# (ops, scenarios) start/end matrices once and reduce across the op axis, so a
# group of S scenarios pays one numpy pass instead of S rounds of id lookups.


@dataclass(frozen=True)
class BreakdownIndexPlan:
    """Row indices feeding one iteration's breakdown, shared across a shape group.

    Valid for every scenario whose batch matches the plan's
    :class:`~repro.sim.shapebatch.ShapeKey` — key-matched batches share their
    relative id layout, so the row indices derived from one representative's
    bookkeeping apply to all columns of the stacked schedule.
    """

    start_rows: "np.ndarray"
    forward_rows: "np.ndarray"
    backward_rows: "np.ndarray"
    ready_rows: "np.ndarray"


def breakdown_index_plans(
    records: list[IterationOps],
    first_id: int,
    rel_ids,
) -> list[BreakdownIndexPlan]:
    """Translate per-iteration op-id bookkeeping into stacked row indices.

    ``first_id`` and ``rel_ids`` come from the representative scenario's batch
    and its :class:`~repro.sim.shapebatch.ShapePlan` (``rel_ids[row]`` is the
    row's op id minus ``first_id``).
    """
    rel_list = rel_ids.tolist() if hasattr(rel_ids, "tolist") else list(rel_ids)
    if rel_list == list(range(len(rel_list))):
        def row_of(op_id: int) -> int:
            return op_id - first_id
    else:
        lookup = {rel: row for row, rel in enumerate(rel_list)}

        def row_of(op_id: int) -> int:
            return lookup[op_id - first_id]

    plans: list[BreakdownIndexPlan] = []
    for record in records:
        backward = [row_of(op_id) for op_id in record.backward_compute_ops]
        if record.blocks_backward and record.flush.op_ids:
            backward.extend(row_of(op_id) for op_id in record.flush.op_ids)
        plans.append(
            BreakdownIndexPlan(
                start_rows=np.asarray(
                    [row_of(op_id) for op_id in record.forward_ops], dtype=np.intp
                ),
                forward_rows=np.asarray(
                    [row_of(op_id) for op_id in record.forward_compute_ops], dtype=np.intp
                ),
                backward_rows=np.asarray(backward, dtype=np.intp),
                ready_rows=np.asarray(
                    [row_of(op_id) for op_id in record.update.params_ready_ops],
                    dtype=np.intp,
                ),
            )
        )
    return plans


def stacked_breakdowns(
    plans: list[BreakdownIndexPlan],
    starts,
    ends,
) -> list[list[IterationBreakdown]]:
    """Per-scenario breakdowns from stacked ``(ops, scenarios)`` time matrices.

    Returns one list of :class:`IterationBreakdown` per scenario column,
    bit-identical to what :meth:`SimulationResult.breakdown` computes from the
    scenario's own schedule: the axis-0 min/max reductions see the same float
    values as the scalar query chains, and the phase subtractions are the same
    IEEE-754 double operations applied elementwise.
    """
    num_scenarios = starts.shape[1]
    phases = []
    for plan in plans:
        iteration_start = starts[plan.start_rows].min(axis=0)
        forward_end = ends[plan.forward_rows].max(axis=0)
        backward_end = ends[plan.backward_rows].max(axis=0)
        ready = ends[plan.ready_rows].max(axis=0)
        phases.append(
            (forward_end - iteration_start, backward_end - forward_end, ready - backward_end)
        )
    return [
        [
            IterationBreakdown(
                forward_seconds=float(forward[s]),
                backward_seconds=float(backward[s]),
                update_seconds=float(update[s]),
            )
            for forward, backward, update in phases
        ]
        for s in range(num_scenarios)
    ]
