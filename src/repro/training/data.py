"""Synthetic text corpus, tokenizer and data loading.

The paper fine-tunes on a 79K-record subset of OSCAR-en tokenized with the LLaMA-2
tokenizer.  The dataset's content has no effect on any reported metric (all metrics
are timings), so the reproduction ships a deterministic synthetic corpus with a
Zipf-distributed vocabulary and a simple word-level tokenizer.  The numeric training
examples use it to drive real forward/backward passes through the miniature model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng

_SYLLABLES = (
    "ba be bi bo bu da de di do du ka ke ki ko ku la le li lo lu "
    "ma me mi mo mu na ne ni no nu ra re ri ro ru sa se si so su "
    "ta te ti to tu va ve vi vo vu za ze zi zo zu"
).split()


@dataclass
class SyntheticCorpus:
    """A deterministic pseudo-natural-language corpus."""

    num_documents: int = 256
    words_per_document: int = 200
    vocabulary_size: int = 2000
    zipf_exponent: float = 1.1
    seed: int | None = None
    documents: list[str] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.num_documents <= 0 or self.words_per_document <= 0:
            raise ConfigurationError("corpus dimensions must be positive")
        if self.vocabulary_size < 10:
            raise ConfigurationError("vocabulary_size must be at least 10")
        if not self.documents:
            self.documents = self._generate()

    def _generate(self) -> list[str]:
        rng = make_rng(self.seed, stream="corpus")
        words = [self._word(index, rng) for index in range(self.vocabulary_size)]
        ranks = np.arange(1, self.vocabulary_size + 1, dtype=np.float64)
        probabilities = ranks**-self.zipf_exponent
        probabilities /= probabilities.sum()
        documents = []
        for _ in range(self.num_documents):
            indices = rng.choice(self.vocabulary_size, size=self.words_per_document, p=probabilities)
            documents.append(" ".join(words[i] for i in indices))
        return documents

    @staticmethod
    def _word(index: int, rng: np.random.Generator) -> str:
        length = 2 + index % 3
        picks = rng.integers(0, len(_SYLLABLES), size=length)
        return "".join(_SYLLABLES[int(p)] for p in picks) + str(index % 10)

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[str]:
        return iter(self.documents)


class WordTokenizer:
    """Whitespace tokenizer with a fixed-size vocabulary and special tokens."""

    PAD = "<pad>"
    UNK = "<unk>"
    BOS = "<bos>"
    EOS = "<eos>"

    def __init__(self, corpus: SyntheticCorpus | list[str], vocab_size: int = 512) -> None:
        if vocab_size < 8:
            raise ConfigurationError("vocab_size must be at least 8")
        documents = list(corpus)
        counts: dict[str, int] = {}
        for document in documents:
            for word in document.split():
                counts[word] = counts.get(word, 0) + 1
        specials = [self.PAD, self.UNK, self.BOS, self.EOS]
        most_common = sorted(counts, key=lambda word: (-counts[word], word))
        vocab = specials + most_common[: vocab_size - len(specials)]
        self.token_to_id = {token: index for index, token in enumerate(vocab)}
        self.id_to_token = {index: token for token, index in self.token_to_id.items()}

    @property
    def vocab_size(self) -> int:
        """Number of distinct token ids."""
        return len(self.token_to_id)

    @property
    def pad_id(self) -> int:
        """Id of the padding token."""
        return self.token_to_id[self.PAD]

    def encode(self, text: str, *, add_special: bool = True) -> list[int]:
        """Tokenize a document into ids (unknown words map to ``<unk>``)."""
        unk = self.token_to_id[self.UNK]
        ids = [self.token_to_id.get(word, unk) for word in text.split()]
        if add_special:
            return [self.token_to_id[self.BOS]] + ids + [self.token_to_id[self.EOS]]
        return ids

    def decode(self, ids: list[int]) -> str:
        """Map ids back to a whitespace-joined string."""
        return " ".join(self.id_to_token.get(int(i), self.UNK) for i in ids)


@dataclass
class TokenDataset:
    """A flat token stream chunked into fixed-length training sequences."""

    tokens: np.ndarray
    sequence_length: int

    @classmethod
    def from_corpus(
        cls, corpus: SyntheticCorpus, tokenizer: WordTokenizer, sequence_length: int
    ) -> "TokenDataset":
        """Tokenize and concatenate every document of ``corpus``."""
        if sequence_length < 2:
            raise ConfigurationError("sequence_length must be at least 2")
        stream: list[int] = []
        for document in corpus:
            stream.extend(tokenizer.encode(document))
        return cls(tokens=np.asarray(stream, dtype=np.int64), sequence_length=sequence_length)

    def __len__(self) -> int:
        return max(0, (self.tokens.size - 1) // self.sequence_length)

    def __getitem__(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        if not 0 <= index < len(self):
            raise IndexError(index)
        start = index * self.sequence_length
        chunk = self.tokens[start : start + self.sequence_length + 1]
        return chunk[:-1].copy(), chunk[1:].copy()


def make_dataloader(
    dataset: TokenDataset,
    batch_size: int,
    *,
    shuffle: bool = True,
    seed: int | None = None,
    drop_last: bool = True,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(tokens, targets)`` batches of shape ``(batch, sequence)``."""
    if batch_size <= 0:
        raise ConfigurationError("batch_size must be positive")
    indices = np.arange(len(dataset))
    if shuffle:
        make_rng(seed, stream="dataloader").shuffle(indices)
    batch_tokens, batch_targets = [], []
    for index in indices:
        tokens, targets = dataset[int(index)]
        batch_tokens.append(tokens)
        batch_targets.append(targets)
        if len(batch_tokens) == batch_size:
            yield np.stack(batch_tokens), np.stack(batch_targets)
            batch_tokens, batch_targets = [], []
    if batch_tokens and not drop_last:
        yield np.stack(batch_tokens), np.stack(batch_targets)
