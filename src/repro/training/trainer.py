"""High-level trainer for the simulated (paper-scale) execution path."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import OutOfMemoryError
from repro.model.flops import achieved_tflops
from repro.runtime import ExecutionPolicy
from repro.training.config import ResolvedJob, TrainingJobConfig
from repro.training.metrics import TrainingReport, average_breakdown
from repro.training.simulation import SimulationResult, simulate_job

# Number of chained iterations actually simulated; further iterations repeat the
# steady state, so the end-to-end time is extrapolated from the last simulated one.
DEFAULT_SIMULATED_ITERATIONS = 3


@dataclass
class Trainer:
    """Runs a (simulated) training job and produces a :class:`TrainingReport`.

    ``policy`` pins the :class:`~repro.runtime.ExecutionPolicy` the simulation
    runs under; ``None`` (the default) resolves one at simulation time through
    the standard order (``repro.configure`` context > ``REPRO_*`` environment >
    defaults), so a Trainer is policy-free unless a caller decides otherwise.
    """

    config: TrainingJobConfig
    simulated_iterations: int = DEFAULT_SIMULATED_ITERATIONS
    policy: ExecutionPolicy | None = None

    def run(self) -> TrainingReport:
        """Resolve the job, simulate it, and aggregate the paper's metrics.

        An out-of-memory condition (GPU or host) is reported in the returned report
        rather than raised, matching how the paper's Figure 13 presents the
        microbatch-16 OOM.
        """
        try:
            job = self.config.resolve()
        except OutOfMemoryError as exc:
            return self.oom_report(exc)
        result = self.simulate(job)
        return self.report_from_simulation(job, result)

    # ------------------------------------------------------------------ pieces

    def oom_report(self, exc: OutOfMemoryError) -> TrainingReport:
        """The report an out-of-memory resolution failure produces."""
        return TrainingReport(
            job=self._job_summary_fallback(),
            requested_iterations=self.config.iterations,
            oom=True,
            oom_reason=str(exc),
        )

    def simulate(self, job: ResolvedJob) -> SimulationResult:
        """Run the discrete-event simulation for a resolved job."""
        iterations = min(self.simulated_iterations, self.config.iterations)
        return simulate_job(job, iterations=max(1, iterations), policy=self.policy)

    def report_from_simulation(self, job: ResolvedJob, result: SimulationResult) -> TrainingReport:
        """Aggregate a simulation into the metrics the paper reports."""
        breakdowns = result.breakdowns()
        warmup = min(self.config.warmup_iterations, max(0, len(breakdowns) - 1))
        steady = average_breakdown(breakdowns[warmup:] or breakdowns)

        total_params = job.model.num_parameters()
        update_throughput = (
            total_params / steady.update_seconds if steady.update_seconds > 0 else float("inf")
        )
        tflops = achieved_tflops(job.model, self.config.microbatch_size, steady.total_seconds)

        simulated = len(breakdowns)
        simulated_total = sum(item.total_seconds for item in breakdowns)
        remaining = max(0, self.config.iterations - simulated)
        end_to_end = simulated_total + remaining * breakdowns[-1].total_seconds

        return TrainingReport(
            job=job.describe(),
            breakdowns=breakdowns,
            warmup_iterations=warmup,
            requested_iterations=self.config.iterations,
            update_throughput_pps=update_throughput,
            achieved_tflops=tflops,
            end_to_end_seconds=end_to_end,
        )

    def _job_summary_fallback(self) -> dict:
        """Job description used when resolution itself fails with OOM."""
        model = self.config.model if isinstance(self.config.model, str) else self.config.model.name
        machine = (
            self.config.machine if isinstance(self.config.machine, str) else self.config.machine.name
        )
        strategy = (
            self.config.strategy
            if isinstance(self.config.strategy, str)
            else self.config.strategy.name
        )
        return {
            "model": model,
            "machine": machine,
            "strategy": strategy,
            "microbatch_size": self.config.microbatch_size,
            "data_parallel_degree": self.config.data_parallel_degree,
        }


def run_job(
    config: TrainingJobConfig,
    *,
    simulated_iterations: int = DEFAULT_SIMULATED_ITERATIONS,
    policy: ExecutionPolicy | None = None,
) -> TrainingReport:
    """Convenience wrapper: build a trainer and run it."""
    return Trainer(config, simulated_iterations=simulated_iterations, policy=policy).run()


def compare_strategies(
    base_config: TrainingJobConfig,
    strategies: list[str],
    *,
    simulated_iterations: int = DEFAULT_SIMULATED_ITERATIONS,
    policy: ExecutionPolicy | None = None,
) -> dict[str, TrainingReport]:
    """Run the same job under several strategies (the basic experiment pattern)."""
    reports: dict[str, TrainingReport] = {}
    for strategy in strategies:
        config = TrainingJobConfig(
            model=base_config.model,
            machine=base_config.machine,
            strategy=strategy,
            data_parallel_degree=base_config.data_parallel_degree,
            microbatch_size=base_config.microbatch_size,
            subgroup_size=base_config.subgroup_size,
            activation_checkpointing=base_config.activation_checkpointing,
            static_gpu_fraction=base_config.static_gpu_fraction,
            update_stride=base_config.update_stride,
            cpu_cores_per_gpu=base_config.cpu_cores_per_gpu,
            iterations=base_config.iterations,
            warmup_iterations=base_config.warmup_iterations,
            model_contention=base_config.model_contention,
            check_memory=base_config.check_memory,
            forward_chunks=base_config.forward_chunks,
        )
        reports[strategy] = run_job(
            config, simulated_iterations=simulated_iterations, policy=policy
        )
    return reports
