"""NVML-style resource monitoring of simulated schedules.

The paper instruments its runs with the NVIDIA Management Library to obtain GPU
memory utilisation (Figure 3), PCIe throughput (Figure 4) and GPU/CPU utilisation
during the update phase (Figure 15).  :class:`ResourceMonitor` produces the same
quantities from a :class:`~repro.training.simulation.SimulationResult`.

The paper notes that NVML "reports active GPU utilisation even when no kernels are
running and only transfers are in progress" because the copy engines keep the GPU
busy; ``gpu_utilization`` therefore counts PCIe transfer time as GPU activity too,
matching that measurement artefact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import GB
from repro.sim.ops import OpKind
from repro.sim.trace import MemoryTimeline, ThroughputTimeline
from repro.training.simulation import SimulationResult


@dataclass(frozen=True)
class UtilizationSample:
    """Average utilisations over a time window (one bar group of Figure 15)."""

    window: tuple[float, float]
    gpu_utilization: float
    cpu_utilization: float
    pcie_h2d_gbps: float
    pcie_d2h_gbps: float


class ResourceMonitor:
    """Derives NVML-like measurements from a simulation result."""

    def __init__(self, result: SimulationResult) -> None:
        self.result = result
        self.schedule = result.schedule

    # ------------------------------------------------------------------ memory

    def gpu_memory_timeline(self) -> MemoryTimeline:
        """GPU memory occupancy over the simulated window (Figure 3)."""
        return self.result.memory_timeline()

    def peak_gpu_memory_bytes(self) -> int:
        """Peak GPU memory over the whole simulation."""
        return self.gpu_memory_timeline().peak_bytes

    # ------------------------------------------------------------------ PCIe

    def pcie_throughput(self, direction: str, resolution: float = 0.05) -> ThroughputTimeline:
        """PCIe bandwidth trace for one direction (Figure 4)."""
        return self.result.pcie_timeline(direction, resolution=resolution)

    def mean_pcie_gbps(self, direction: str, window: tuple[float, float]) -> float:
        """Average PCIe bandwidth (GB/s) over ``window``."""
        kind = OpKind.H2D if direction == "h2d" else OpKind.D2H
        moved = self.schedule.transferred_bytes(kind, window)
        span = window[1] - window[0]
        return 0.0 if span <= 0 else moved / span / GB

    # ------------------------------------------------------------------ utilisation

    def gpu_utilization(self, window: tuple[float, float]) -> float:
        """Fraction of ``window`` during which the GPU (SMs or copy engines) was active."""
        span = window[1] - window[0]
        if span <= 0:
            return 0.0
        busy = (
            self.schedule.busy_time("gpu.compute", window)
            + self.schedule.busy_time("pcie.h2d", window)
            + self.schedule.busy_time("pcie.d2h", window)
        )
        return min(1.0, busy / span)

    def cpu_utilization(self, window: tuple[float, float]) -> float:
        """Fraction of ``window`` during which the host CPU cores were busy."""
        return self.schedule.utilization("cpu", window)

    def update_phase_sample(self, iteration: int = 0) -> UtilizationSample:
        """Utilisations over the update phase of ``iteration`` (Figure 15)."""
        window = self.result.update_window(iteration)
        return UtilizationSample(
            window=window,
            gpu_utilization=self.gpu_utilization(window),
            cpu_utilization=self.cpu_utilization(window),
            pcie_h2d_gbps=self.mean_pcie_gbps("h2d", window),
            pcie_d2h_gbps=self.mean_pcie_gbps("d2h", window),
        )

    def phase_samples(self, iteration: int = 0) -> dict[str, UtilizationSample]:
        """Utilisation samples for the forward, backward and update windows."""
        start = self.result.iteration_start(iteration)
        forward_end = self.result.forward_end(iteration)
        backward_end = self.result.backward_end(iteration)
        ready = self.result.params_ready_time(iteration)
        windows = {
            "forward": (start, forward_end),
            "backward": (forward_end, backward_end),
            "update": (backward_end, ready),
        }
        return {
            phase: UtilizationSample(
                window=window,
                gpu_utilization=self.gpu_utilization(window),
                cpu_utilization=self.cpu_utilization(window),
                pcie_h2d_gbps=self.mean_pcie_gbps("h2d", window),
                pcie_d2h_gbps=self.mean_pcie_gbps("d2h", window),
            )
            for phase, window in windows.items()
        }
