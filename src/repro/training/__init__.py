"""Training runtime: job configuration, iteration simulation, metrics and monitoring.

The trainer composes the substrates (model memory/FLOPs model, ZeRO-3 sharding,
hardware profile) with an offloading strategy (ZeRO-3 offload, TwinFlow, or Deep
Optimizer States) into full training iterations.  Two execution paths share the same
configuration surface:

* the *simulated* path (:class:`Trainer`) reproduces the timing behaviour of the
  paper-scale models on the paper's testbed and backs every figure of the evaluation;
* the *numeric* path (:class:`MiniTrainer`) actually trains a miniature NumPy
  transformer end to end through the same sharded optimizer and scheduling code,
  proving that interleaved offloading does not change the learning dynamics.
"""

from repro.training.config import ResolvedJob, TrainingJobConfig
from repro.training.metrics import IterationBreakdown, TrainingReport
from repro.training.simulation import IterationOps, SimulationResult, simulate_job
from repro.training.trainer import Trainer
from repro.training.numeric import MiniTrainer, MiniTrainingResult
from repro.training.monitor import ResourceMonitor, UtilizationSample
from repro.training.data import SyntheticCorpus, TokenDataset, WordTokenizer, make_dataloader

__all__ = [
    "TrainingJobConfig",
    "ResolvedJob",
    "IterationBreakdown",
    "TrainingReport",
    "simulate_job",
    "SimulationResult",
    "IterationOps",
    "Trainer",
    "MiniTrainer",
    "MiniTrainingResult",
    "ResourceMonitor",
    "UtilizationSample",
    "SyntheticCorpus",
    "WordTokenizer",
    "TokenDataset",
    "make_dataloader",
]
