"""Optimizer subgroups: the unit of placement and scheduling.

A :class:`Subgroup` bundles, for one contiguous parameter slice:

* the FP16 working parameters (live on the GPU),
* the FP16 gradients produced by the backward pass (GPU) and the FP32 gradient buffer
  they are flushed into (host),
* the FP32 master parameters and optimizer state (momentum, variance, ...), which live
  on the host when the optimizer is offloaded, on the GPU when the subgroup is a
  static GPU resident (TwinFlow) or while it is dynamically staged there by Deep
  Optimizer States.

Subgroups can be *materialised* (NumPy buffers — used by the numeric execution path
and the miniature-model examples) or *virtual* (sizes only — used by the timing
simulation of paper-scale models).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.common.errors import ConfigurationError
from repro.optim.base import OptimizerRule, OptimizerState
from repro.precision.convert import downscale_fp32_to_fp16, upscale_fp16_to_fp32
from repro.precision.dtypes import DType
from repro.zero.partitioner import SubgroupSpec


class Placement(enum.Enum):
    """Where the FP32 optimizer state of a subgroup currently resides."""

    GPU = "gpu"
    HOST_PINNED = "host_pinned"
    HOST_PAGEABLE = "host_pageable"
    NVME = "nvme"

    @property
    def on_host(self) -> bool:
        """True for host-memory placements."""
        return self in (Placement.HOST_PINNED, Placement.HOST_PAGEABLE)


class Subgroup:
    """One schedulable unit of the sharded optimizer."""

    def __init__(
        self,
        spec: SubgroupSpec,
        placement: Placement = Placement.HOST_PINNED,
        *,
        static_gpu_resident: bool = False,
    ) -> None:
        self.spec = spec
        self.placement = Placement.GPU if static_gpu_resident else placement
        self.static_gpu_resident = static_gpu_resident
        self.fp32_params: np.ndarray | None = None
        self.fp16_params: np.ndarray | None = None
        self.fp32_grads: np.ndarray | None = None
        self.fp16_grads: np.ndarray | None = None
        self.state: OptimizerState = {}
        self.last_update_step = 0
        self.last_update_device: str | None = None

    # ------------------------------------------------------------------ identity

    @property
    def index(self) -> int:
        """Subgroup index within its rank (the index Algorithm 1 iterates over)."""
        return self.spec.index

    @property
    def num_params(self) -> int:
        """Number of parameters in this subgroup."""
        return self.spec.num_params

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Subgroup(rank={self.spec.rank}, index={self.index}, params={self.num_params}, "
            f"placement={self.placement.value}, static={self.static_gpu_resident})"
        )

    # ------------------------------------------------------------------ sizes

    def fp32_state_bytes(self) -> int:
        """Bytes of FP32 master parameters + optimizer state buffers."""
        buffers = 1 + (len(self.state) if self.state else 2)
        return self.num_params * DType.FP32.itemsize * buffers

    def fp16_param_bytes(self) -> int:
        """Bytes of the FP16 working copy of the parameters."""
        return self.num_params * DType.FP16.itemsize

    def fp32_grad_bytes(self) -> int:
        """Bytes of the FP32 gradient buffer."""
        return self.num_params * DType.FP32.itemsize

    def fp16_grad_bytes(self) -> int:
        """Bytes of the FP16 gradients."""
        return self.num_params * DType.FP16.itemsize

    def transfer_bytes_prefetch(self) -> int:
        """Bytes moved H2D to stage this subgroup on the GPU (FP32 p, m, v)."""
        return 3 * self.num_params * DType.FP32.itemsize

    def transfer_bytes_flush(self) -> int:
        """Bytes moved D2H to evict this subgroup's updated state (FP32 p, m, v)."""
        return 3 * self.num_params * DType.FP32.itemsize

    # ------------------------------------------------------------------ numerics

    @property
    def is_materialized(self) -> bool:
        """True when NumPy buffers are attached (numeric execution path)."""
        return self.fp32_params is not None

    def materialize(self, initial_fp32_params: np.ndarray, rule: OptimizerRule) -> None:
        """Attach NumPy buffers initialised from ``initial_fp32_params``."""
        values = np.asarray(initial_fp32_params, dtype=np.float32)
        if values.shape != (self.num_params,):
            raise ConfigurationError(
                f"expected {self.num_params} initial parameters, got shape {values.shape}"
            )
        self.fp32_params = values.copy()
        self.fp16_params = downscale_fp32_to_fp16(self.fp32_params)
        self.fp32_grads = np.zeros(self.num_params, dtype=np.float32)
        self.fp16_grads = np.zeros(self.num_params, dtype=np.float16)
        self.state = rule.init_state(self.num_params)

    def _require_materialized(self) -> None:
        if not self.is_materialized:
            raise ConfigurationError(f"subgroup {self.index} is not materialized")

    def set_fp16_gradients(self, grads: np.ndarray) -> None:
        """Store the FP16 gradients produced by the backward pass for this slice."""
        self._require_materialized()
        grads = np.asarray(grads)
        if grads.shape != (self.num_params,):
            raise ConfigurationError(
                f"expected {self.num_params} gradients, got shape {grads.shape}"
            )
        self.fp16_grads = grads.astype(np.float16)

    def flush_gradients_to_host(self) -> None:
        """Upscale the FP16 gradients into the FP32 host gradient buffer (exact)."""
        self._require_materialized()
        upscale_fp16_to_fp32(self.fp16_grads, out=self.fp32_grads)

    def apply_update(self, rule: OptimizerRule, step: int, device: str) -> None:
        """Run the optimizer rule on this subgroup's buffers (on ``device``).

        The device label only affects bookkeeping — the arithmetic is identical on the
        CPU and the GPU, which is precisely why interleaving preserves the training
        result; the property tests rely on this method being device-agnostic.
        """
        self._require_materialized()
        rule.apply(self.fp32_params, self.fp32_grads, self.state, step)
        downscale_fp32_to_fp16(self.fp32_params, out=self.fp16_params)
        self.last_update_step = step
        self.last_update_device = device

    def master_snapshot(self) -> dict[str, np.ndarray]:
        """Copies of the FP32 master buffers (used by equivalence tests)."""
        self._require_materialized()
        snapshot = {"params": self.fp32_params.copy()}
        for name, buffer in self.state.items():
            snapshot[name] = buffer.copy()
        return snapshot
