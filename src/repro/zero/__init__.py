"""ZeRO-3 substrate: parameter partitioning, optimizer subgroups and collectives.

DeepSpeed's ZeRO-3 partitions the model parameters, gradients and optimizer state
across data-parallel ranks and further splits each rank's share into fixed-size
*subgroups* (Figure 1(c) of the paper).  Deep Optimizer States relies on exactly two
properties of that layout, both implemented here:

* each rank owns a disjoint, contiguous slice of the flat parameter space, so its
  update phase needs no inter-process communication; and
* the slice is divided into subgroups that can be updated independently and out of
  order, which is what makes interleaved CPU/GPU scheduling legal.
"""

from repro.zero.partitioner import (
    SubgroupSpec,
    build_subgroups,
    partition_evenly,
    partition_model,
)
from repro.zero.subgroup import Placement, Subgroup
from repro.zero.offload import OffloadConfig, OffloadDevice
from repro.zero.collectives import (
    allgather,
    allgather_seconds,
    allreduce_mean,
    allreduce_seconds,
    reduce_scatter_mean,
    reduce_scatter_seconds,
)
from repro.zero.stage3 import ShardedMixedPrecisionOptimizer

__all__ = [
    "SubgroupSpec",
    "partition_evenly",
    "build_subgroups",
    "partition_model",
    "Placement",
    "Subgroup",
    "OffloadConfig",
    "OffloadDevice",
    "allreduce_mean",
    "allgather",
    "reduce_scatter_mean",
    "allgather_seconds",
    "reduce_scatter_seconds",
    "allreduce_seconds",
    "ShardedMixedPrecisionOptimizer",
]
