"""Numeric ZeRO-3 sharded mixed-precision optimizer.

This is the functional counterpart of DeepSpeed's stage-3 optimizer for the purposes
of this reproduction: it owns the FP32 master copy of a flat parameter vector,
partitioned across data-parallel ranks and split into subgroups, keeps the FP16
working copy in sync, and routes the actual per-subgroup updates through a pluggable
*executor* so that the baseline (all-CPU, in order) and Deep Optimizer States
(interleaved, out of order) strategies can be swapped without touching the numerics.

The executor is a callable ``executor(subgroups, rule, step)`` — see
:mod:`repro.core.numeric_executor` for the implementations.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.common.errors import ConfigurationError
from repro.optim.base import OptimizerRule
from repro.precision.convert import downscale_fp32_to_fp16
from repro.zero.offload import OffloadConfig, OffloadDevice
from repro.zero.partitioner import partition_model, validate_partition
from repro.zero.subgroup import Placement, Subgroup

UpdateExecutor = Callable[[list[Subgroup], OptimizerRule, int], None]


def _default_executor(subgroups: list[Subgroup], rule: OptimizerRule, step: int) -> None:
    """Baseline execution: update every subgroup in order on the CPU."""
    for subgroup in subgroups:
        subgroup.flush_gradients_to_host()
        subgroup.apply_update(rule, step, device="cpu")


class ShardedMixedPrecisionOptimizer:
    """ZeRO-3 style sharded optimizer over a flat FP32 parameter space."""

    def __init__(
        self,
        initial_params: np.ndarray,
        rule: OptimizerRule,
        *,
        data_parallel_degree: int = 1,
        offload: OffloadConfig | None = None,
    ) -> None:
        flat = np.asarray(initial_params, dtype=np.float32).ravel()
        if flat.size == 0:
            raise ConfigurationError("cannot shard an empty parameter vector")
        if data_parallel_degree <= 0:
            raise ConfigurationError("data_parallel_degree must be positive")
        self.rule = rule
        self.offload = offload or OffloadConfig()
        self.data_parallel_degree = data_parallel_degree
        self.num_params = flat.size
        self.step_count = 0

        partition = partition_model(flat.size, data_parallel_degree, self.offload.subgroup_size)
        validate_partition(partition, flat.size)
        placement = (
            Placement.GPU
            if not self.offload.offload_enabled
            else (Placement.HOST_PINNED if self.offload.pin_memory else Placement.HOST_PAGEABLE)
        )

        self._subgroups_by_rank: dict[int, list[Subgroup]] = {}
        for rank, specs in partition.items():
            statics = self.offload.static_resident_indices(len(specs))
            rank_subgroups: list[Subgroup] = []
            for spec in specs:
                subgroup = Subgroup(
                    spec,
                    placement=placement,
                    static_gpu_resident=spec.index in statics,
                )
                subgroup.materialize(flat[spec.slice], rule)
                rank_subgroups.append(subgroup)
            self._subgroups_by_rank[rank] = rank_subgroups

    # ------------------------------------------------------------------ access

    @property
    def ranks(self) -> list[int]:
        """Data-parallel rank ids."""
        return sorted(self._subgroups_by_rank)

    def subgroups(self, rank: int | None = None) -> list[Subgroup]:
        """Subgroups of one rank, or of every rank concatenated in rank order."""
        if rank is not None:
            if rank not in self._subgroups_by_rank:
                raise ConfigurationError(f"unknown rank {rank}")
            return list(self._subgroups_by_rank[rank])
        result: list[Subgroup] = []
        for rank_id in self.ranks:
            result.extend(self._subgroups_by_rank[rank_id])
        return result

    def num_subgroups(self, rank: int | None = None) -> int:
        """Number of subgroups (for one rank or in total)."""
        return len(self.subgroups(rank))

    def iter_rank_subgroups(self) -> Iterable[tuple[int, list[Subgroup]]]:
        """Iterate (rank, subgroups) pairs in rank order."""
        for rank in self.ranks:
            yield rank, list(self._subgroups_by_rank[rank])

    # ------------------------------------------------------------------ gradients

    def set_gradients(self, flat_grads: np.ndarray) -> None:
        """Distribute averaged gradients to every subgroup.

        The gradients are first cast to FP16 to mirror the precision in which the
        backward pass produces them on the GPU; each subgroup keeps that FP16 view
        (what gets flushed or converted) and its exact FP32 upscale.
        """
        grads = np.asarray(flat_grads).ravel()
        if grads.size != self.num_params:
            raise ConfigurationError(
                f"gradient vector has {grads.size} elements, expected {self.num_params}"
            )
        fp16_grads = grads.astype(np.float16)
        for subgroup in self.subgroups():
            subgroup.set_fp16_gradients(fp16_grads[subgroup.spec.slice])

    # ------------------------------------------------------------------ stepping

    def step(self, executor: UpdateExecutor | None = None) -> int:
        """Run one optimizer step on every rank's subgroups; returns the step number."""
        self.step_count += 1
        runner = executor or _default_executor
        for _, rank_subgroups in self.iter_rank_subgroups():
            runner(rank_subgroups, self.rule, self.step_count)
        return self.step_count

    # ------------------------------------------------------------------ parameter views

    def gathered_fp16_parameters(self) -> np.ndarray:
        """The full FP16 parameter vector the GPUs train with in the next iteration."""
        parts = [subgroup.fp16_params for subgroup in self.subgroups()]
        return np.concatenate(parts)

    def gathered_fp32_parameters(self) -> np.ndarray:
        """The full FP32 master parameter vector."""
        parts = [subgroup.fp32_params for subgroup in self.subgroups()]
        return np.concatenate(parts)

    def master_parameters(self) -> np.ndarray:
        """Alias of :meth:`gathered_fp32_parameters` (kept for API clarity)."""
        return self.gathered_fp32_parameters()

    # ------------------------------------------------------------------ checkpointing

    def state_dict(self) -> dict:
        """Serializable snapshot of the optimizer (used by the checkpointing example)."""
        subgroup_states = []
        for subgroup in self.subgroups():
            entry = {
                "rank": subgroup.spec.rank,
                "index": subgroup.index,
                "start": subgroup.spec.start,
                "stop": subgroup.spec.stop,
                "fp32_params": subgroup.fp32_params.copy(),
                "state": {name: buffer.copy() for name, buffer in subgroup.state.items()},
            }
            subgroup_states.append(entry)
        return {
            "step_count": self.step_count,
            "num_params": self.num_params,
            "data_parallel_degree": self.data_parallel_degree,
            "subgroups": subgroup_states,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        if state.get("num_params") != self.num_params:
            raise ConfigurationError("checkpoint does not match the current parameter count")
        if state.get("data_parallel_degree") != self.data_parallel_degree:
            raise ConfigurationError("checkpoint does not match the data-parallel degree")
        self.step_count = int(state["step_count"])
        by_key = {(entry["rank"], entry["index"]): entry for entry in state["subgroups"]}
        for subgroup in self.subgroups():
            key = (subgroup.spec.rank, subgroup.index)
            if key not in by_key:
                raise ConfigurationError(f"checkpoint is missing subgroup {key}")
            entry = by_key[key]
            subgroup.fp32_params[...] = entry["fp32_params"]
            for name, buffer in entry["state"].items():
                subgroup.state[name][...] = buffer
            downscale_fp32_to_fp16(subgroup.fp32_params, out=subgroup.fp16_params)

    # ------------------------------------------------------------------ description

    def describe(self) -> dict:
        """Summary used by examples and logging."""
        return {
            "num_params": self.num_params,
            "data_parallel_degree": self.data_parallel_degree,
            "subgroup_size": self.offload.subgroup_size,
            "subgroups_per_rank": {rank: len(subs) for rank, subs in self.iter_rank_subgroups()},
            "offload_device": self.offload.device.value,
            "static_gpu_fraction": self.offload.static_gpu_fraction,
        }


def offload_disabled_config(subgroup_size: int | None = None) -> OffloadConfig:
    """Convenience: a configuration with the optimizer kept entirely on the GPU."""
    return OffloadConfig(
        device=OffloadDevice.NONE,
        subgroup_size=subgroup_size or OffloadConfig().subgroup_size,
    )
