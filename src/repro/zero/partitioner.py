"""Partitioning of the flat parameter space across ranks and into subgroups."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class SubgroupSpec:
    """A contiguous slice of the flat parameter space owned by one rank.

    ``start``/``stop`` are global offsets into the flat parameter vector; ``index`` is
    the subgroup's position within its rank (the index used by Algorithm 1).
    """

    index: int
    rank: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.index < 0 or self.rank < 0:
            raise ConfigurationError("subgroup index and rank must be non-negative")
        if self.stop <= self.start:
            raise ConfigurationError(
                f"subgroup [{self.start}, {self.stop}) must contain at least one parameter"
            )

    @property
    def num_params(self) -> int:
        """Number of parameters in this subgroup."""
        return self.stop - self.start

    @property
    def slice(self) -> slice:
        """Slice object selecting this subgroup from the flat parameter vector."""
        return slice(self.start, self.stop)


def partition_evenly(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into ``parts`` contiguous ranges whose sizes differ by <= 1.

    The first ``total % parts`` ranges get one extra element, matching DeepSpeed's
    padding-free partitioning.  Ranges may be empty only when ``parts > total``.
    """
    if total < 0:
        raise ConfigurationError("total must be non-negative")
    if parts <= 0:
        raise ConfigurationError("parts must be positive")
    base = total // parts
    remainder = total % parts
    ranges: list[tuple[int, int]] = []
    start = 0
    for part in range(parts):
        size = base + (1 if part < remainder else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def build_subgroups(rank: int, rank_range: tuple[int, int], subgroup_size: int) -> list[SubgroupSpec]:
    """Split one rank's contiguous range into subgroups of at most ``subgroup_size``."""
    if subgroup_size <= 0:
        raise ConfigurationError("subgroup_size must be positive")
    start, stop = rank_range
    if stop < start:
        raise ConfigurationError("rank range is inverted")
    specs: list[SubgroupSpec] = []
    cursor = start
    index = 0
    while cursor < stop:
        upper = min(cursor + subgroup_size, stop)
        specs.append(SubgroupSpec(index=index, rank=rank, start=cursor, stop=upper))
        cursor = upper
        index += 1
    return specs


def partition_model(
    total_params: int, data_parallel_degree: int, subgroup_size: int
) -> dict[int, list[SubgroupSpec]]:
    """Full ZeRO-3 partitioning: rank ranges first, then subgroups within each rank."""
    if total_params <= 0:
        raise ConfigurationError("total_params must be positive")
    rank_ranges = partition_evenly(total_params, data_parallel_degree)
    result: dict[int, list[SubgroupSpec]] = {}
    for rank, rank_range in enumerate(rank_ranges):
        if rank_range[1] == rank_range[0]:
            result[rank] = []
        else:
            result[rank] = build_subgroups(rank, rank_range, subgroup_size)
    return result


def validate_partition(partition: dict[int, list[SubgroupSpec]], total_params: int) -> None:
    """Check that a partition covers ``[0, total_params)`` exactly once, in order."""
    covered = 0
    previous_stop = 0
    for rank in sorted(partition):
        for spec in partition[rank]:
            if spec.start != previous_stop:
                raise ConfigurationError(
                    f"subgroup {spec} does not start where the previous one stopped ({previous_stop})"
                )
            previous_stop = spec.stop
            covered += spec.num_params
    if covered != total_params:
        raise ConfigurationError(
            f"partition covers {covered} parameters, expected {total_params}"
        )
