"""Offloading configuration (the knobs DeepSpeed exposes in its JSON config).

``OffloadConfig`` captures the options relevant to the paper: whether the optimizer
state is offloaded to the host, the subgroup size ("sub_group_size" in DeepSpeed),
whether host buffers are pinned, and the TwinFlow-style "user-supplied ratio" of
optimizer subgroups statically resident on the GPU.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ConfigurationError

DEFAULT_SUBGROUP_SIZE = 100_000_000  # 100M trainable parameters per subgroup (Section 5.3)


class OffloadDevice(enum.Enum):
    """Target of optimizer-state offloading."""

    NONE = "none"
    CPU = "cpu"
    NVME = "nvme"


@dataclass(frozen=True)
class OffloadConfig:
    """Optimizer offloading options for one training run."""

    device: OffloadDevice = OffloadDevice.CPU
    subgroup_size: int = DEFAULT_SUBGROUP_SIZE
    pin_memory: bool = True
    static_gpu_fraction: float = 0.0
    static_residents_at_end: bool = False

    def __post_init__(self) -> None:
        if self.subgroup_size <= 0:
            raise ConfigurationError("subgroup_size must be positive")
        if not 0.0 <= self.static_gpu_fraction <= 1.0:
            raise ConfigurationError("static_gpu_fraction must be in [0, 1]")

    @property
    def offload_enabled(self) -> bool:
        """True when the optimizer state lives outside GPU memory."""
        return self.device != OffloadDevice.NONE

    def static_resident_count(self, num_subgroups: int) -> int:
        """Number of subgroups statically pinned to the GPU for ``num_subgroups`` total.

        Mirrors the paper's observation that the achievable static fraction is
        quantised by the subgroup size (Section 4.2): the count is the floor of
        ``fraction * num_subgroups``.
        """
        if num_subgroups < 0:
            raise ConfigurationError("num_subgroups must be non-negative")
        if not self.offload_enabled:
            return num_subgroups
        return int(self.static_gpu_fraction * num_subgroups)

    def static_resident_indices(self, num_subgroups: int) -> frozenset[int]:
        """Indices of the statically GPU-resident subgroups.

        TwinFlow pins the *first* subgroups; Deep Optimizer States proposes pinning
        the *last* ones so that their (absent) transfers overlap with the tail of the
        pipeline (Section 4.1) — controlled by ``static_residents_at_end``.
        """
        count = self.static_resident_count(num_subgroups)
        if count == 0:
            return frozenset()
        if self.static_residents_at_end:
            return frozenset(range(num_subgroups - count, num_subgroups))
        return frozenset(range(count))
