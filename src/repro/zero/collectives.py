"""Collective operations: functional (numeric) and analytic (cost-model) versions.

The numeric collectives operate on in-process lists of NumPy arrays, one per
data-parallel rank — they provide data parallelism for the miniature-model examples
and tests.  The analytic functions give the standard ring-algorithm cost of each
collective over the intra-node interconnect, which the timing simulation charges to
its ``nvlink`` resource (forward/backward allgathers and the gradient reduce-scatter
of ZeRO-3).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError


# ----------------------------------------------------------------------- numeric

def allreduce_mean(arrays: list[np.ndarray]) -> np.ndarray:
    """Element-wise mean across ranks (the gradient averaging of data parallelism)."""
    if not arrays:
        raise ConfigurationError("allreduce_mean needs at least one array")
    shapes = {array.shape for array in arrays}
    if len(shapes) != 1:
        raise ConfigurationError(f"rank arrays have mismatched shapes: {shapes}")
    stacked = np.stack([np.asarray(array, dtype=np.float32) for array in arrays])
    return stacked.mean(axis=0)


def reduce_scatter_mean(
    arrays: list[np.ndarray], partitions: list[tuple[int, int]]
) -> list[np.ndarray]:
    """Average across ranks, then return each rank's slice of the result."""
    if len(partitions) != len(arrays):
        raise ConfigurationError("need exactly one partition range per rank")
    mean = allreduce_mean(arrays)
    return [mean[start:stop].copy() for start, stop in partitions]


def allgather(shards: list[np.ndarray]) -> np.ndarray:
    """Concatenate per-rank shards back into the full flat vector."""
    if not shards:
        raise ConfigurationError("allgather needs at least one shard")
    return np.concatenate([np.asarray(shard) for shard in shards])


def broadcast(value: np.ndarray, num_ranks: int) -> list[np.ndarray]:
    """Give every rank its own copy of ``value``."""
    if num_ranks <= 0:
        raise ConfigurationError("num_ranks must be positive")
    return [np.asarray(value).copy() for _ in range(num_ranks)]


# ----------------------------------------------------------------------- cost model

def _ring_seconds(total_bytes: float, num_ranks: int, link_bytes_per_second: float) -> float:
    if total_bytes < 0:
        raise ConfigurationError("total_bytes must be non-negative")
    if num_ranks <= 0:
        raise ConfigurationError("num_ranks must be positive")
    if link_bytes_per_second <= 0:
        raise ConfigurationError("link bandwidth must be positive")
    if num_ranks == 1:
        return 0.0
    return total_bytes * (num_ranks - 1) / num_ranks / link_bytes_per_second


def allgather_seconds(total_bytes: float, num_ranks: int, link_bytes_per_second: float) -> float:
    """Ring all-gather time for ``total_bytes`` of gathered data."""
    return _ring_seconds(total_bytes, num_ranks, link_bytes_per_second)


def reduce_scatter_seconds(total_bytes: float, num_ranks: int, link_bytes_per_second: float) -> float:
    """Ring reduce-scatter time for ``total_bytes`` of reduced data."""
    return _ring_seconds(total_bytes, num_ranks, link_bytes_per_second)


def allreduce_seconds(total_bytes: float, num_ranks: int, link_bytes_per_second: float) -> float:
    """Ring all-reduce time (reduce-scatter followed by all-gather)."""
    return 2.0 * _ring_seconds(total_bytes, num_ranks, link_bytes_per_second)
