"""The schedule-pass family: gpipe, 1f1b and the zero-bubble zb pass.

A schedule pass is a pure function ``(stages, microbatches, timing=None) ->``
:class:`~repro.pipeline.ir.PipelineSchedule` emitting the per-stage compute
order (``F``/``B``/``W`` nodes only; communication nodes are derived later by
:func:`~repro.pipeline.ir.insert_comm_nodes`).  Passes are registered in
:data:`SCHEDULES`, the discoverable registry behind
``repro pipeline --list-schedules`` and the ``pipeline_schedule`` policy
field.

The three families:

* **gpipe** — all forwards, then all backwards.  The textbook baseline with
  the largest bubble (each stage idles while the whole forward wave passes).
* **1f1b** — warmup of ``stages - 1 - i`` forwards at stage ``i``, then
  strict one-forward-one-backward alternation.  ``W`` runs immediately after
  its ``B`` (the classic undecomposed backward), so every hop of the drain
  chain a waiting stage sits behind costs ``b + w``.
* **zb** — the zero-bubble decomposition: the backward splits into its
  input-gradient (``B``) and weight-gradient (``W``) halves, and a greedy
  timing-aware list scheduler builds each stage's order so that ``F``/``B``
  nodes run the moment their inputs arrive — the cross-stage gradient chain
  costs ``b`` per hop, never ``b + w`` — while ``W`` halves are placed only
  into gaps they provably fit (or after all F/B work is exhausted).  This is
  the scheduling move of the zero-bubble paper (Qi et al.), whose automatic
  scheduler likewise works from profiled ``f``/``b``/``w``/comm durations;
  ``timing=None`` falls back to unit compute durations and free links.

Only the ``zb`` pass reads ``timing`` — gpipe and 1f1b emit
timing-independent shapes — which is why the pass signature carries it
optionally rather than every caller constructing one.
"""

from __future__ import annotations

from repro.common.registry import Registry
from repro.pipeline.ir import PipelineSchedule, PipeOp, ScheduledNode
from repro.pipeline.timing import PipelineTiming

#: The discoverable registry of schedule passes.
SCHEDULES = Registry("pipeline schedule")


def available_schedules() -> list[str]:
    """Canonical schedule names, in registration order."""
    return SCHEDULES.names()


def build_schedule(
    name: str,
    stages: int,
    microbatches: int,
    timing: PipelineTiming | None = None,
) -> PipelineSchedule:
    """Run the named pass (aliases accepted) over a ``stages x microbatches`` grid."""
    return SCHEDULES.build(name, stages, microbatches, timing=timing)


def _node(op: PipeOp, stage: int, microbatch: int) -> ScheduledNode:
    return ScheduledNode(op=op, stage=stage, microbatch=microbatch)


def gpipe_pass(
    stages: int, microbatches: int, timing: PipelineTiming | None = None
) -> PipelineSchedule:
    """All-forwards-then-all-backwards (the GPipe fill/drain schedule)."""
    orders = []
    for stage in range(stages):
        order = [_node(PipeOp.F, stage, j) for j in range(microbatches)]
        for j in range(microbatches):
            order.append(_node(PipeOp.B, stage, j))
            order.append(_node(PipeOp.W, stage, j))
        orders.append(tuple(order))
    return PipelineSchedule(name="gpipe", stages=stages,
                            microbatches=microbatches, orders=tuple(orders))


def _one_f_one_b_skeleton(stage: int, stages: int, microbatches: int) -> list[tuple[PipeOp, int]]:
    """The (op, microbatch) F/B skeleton of 1F1B at one stage.

    Warmup of ``stages - 1 - stage`` forwards, then for each microbatch ``k``
    one more forward (while any remain) followed by backward ``k``.
    """
    warmup = min(microbatches, stages - 1 - stage)
    skeleton: list[tuple[PipeOp, int]] = [(PipeOp.F, j) for j in range(warmup)]
    for k in range(microbatches):
        if warmup + k < microbatches:
            skeleton.append((PipeOp.F, warmup + k))
        skeleton.append((PipeOp.B, k))
    return skeleton


def one_f_one_b_pass(
    stages: int, microbatches: int, timing: PipelineTiming | None = None
) -> PipelineSchedule:
    """Classic 1F1B with the undecomposed backward (``W`` right after its ``B``)."""
    orders = []
    for stage in range(stages):
        order = []
        for op, j in _one_f_one_b_skeleton(stage, stages, microbatches):
            order.append(_node(op, stage, j))
            if op is PipeOp.B:
                order.append(_node(PipeOp.W, stage, j))
        orders.append(tuple(order))
    return PipelineSchedule(name="1f1b", stages=stages,
                            microbatches=microbatches, orders=tuple(orders))


def zero_bubble_pass(
    stages: int, microbatches: int, timing: PipelineTiming | None = None
) -> PipelineSchedule:
    """Greedy zero-bubble schedule: split backward, fill gaps with ``W`` halves.

    A deterministic event-driven list scheduler over the stage graph.  Each
    stage keeps ascending F/B/W cursors; at every step the globally
    earliest-startable action runs, with priorities chosen so the splitting
    actually pays off:

    * a ready ``B`` beats everything (it unblocks the upstream stage — the
      whole point of carrying only the input-gradient half on the chain);
    * a ready ``F`` runs next (it feeds the downstream stage);
    * a deferred ``W`` is placed only when it *provably fits*: every pending
      F/B ready time at the stage is known and at least ``w`` away (or no F/B
      work remains).  A ``W`` therefore never delays the critical chain — it
      converts what would have been idle into useful work.

    Per-microbatch ``F -> B -> W`` order holds by construction (the cursors
    only advance in dependency order), which
    :func:`~repro.pipeline.ir.validate_schedule` and the property suite check.
    The engine re-simulates the emitted order under full FIFO/link semantics,
    so the greedy's internal clock is a construction device, not the result.
    """
    if timing is None:
        f_s = b_s = w_s = 1.0
        c_s = 0.0
    else:
        f_s, b_s, w_s = timing.f_seconds, timing.b_seconds, timing.w_seconds
        c_s = timing.comm_seconds
    p, m = stages, microbatches
    last = p - 1
    f_end = [[None] * m for _ in range(p)]
    b_end = [[None] * m for _ in range(p)]
    f_done = [0] * p
    b_done = [0] * p
    w_done = [0] * p
    clock = [0.0] * p
    orders: list[list[ScheduledNode]] = [[] for _ in range(p)]

    def candidates(i: int):
        """(ready_F, ready_B, pending_unknown) at stage ``i``.

        A ready time is ``None`` when that op kind has no next candidate or
        an op from *another* stage it needs is not placed yet;
        ``pending_unknown`` flags that latter case (F/B work remains whose
        ready time cannot be known yet).  A ``B`` whose own ``F`` is still
        unplaced is not "unknown" — it trails this stage's own cursor and can
        never be enabled by other stages' placements.
        """
        ready_f = ready_b = None
        unknown = False
        if f_done[i] < m:
            k = f_done[i]
            if i == 0:
                ready_f = 0.0
            elif f_end[i - 1][k] is not None:
                ready_f = f_end[i - 1][k] + c_s
            else:
                unknown = True
        if b_done[i] < m:
            k = b_done[i]
            if k < f_done[i]:
                if i == last:
                    ready_b = f_end[i][k]
                elif b_end[i + 1][k] is not None:
                    ready_b = max(b_end[i + 1][k] + c_s, f_end[i][k])
                else:
                    unknown = True
        return ready_f, ready_b, unknown

    def stage_action(i: int):
        """The stage's next ``(start, priority, op)`` or ``None`` if blocked.

        Committing a *future* start here is safe even while other ready times
        are unknown: the global loop places ops in non-decreasing start order,
        so any still-unknown op's producer with an earlier start gets placed
        (and re-evaluated against this stage) before this commitment wins the
        global minimum.  Only the W-fit test stays conservative — a W placed
        now could outlast an unknown arrival, so it requires every pending
        F/B ready time to be known.
        """
        ready_f, ready_b, unknown = candidates(i)
        now = clock[i]
        if ready_b is not None and ready_b <= now:
            return now, 0, PipeOp.B
        if ready_f is not None and ready_f <= now:
            return now, 1, PipeOp.F
        known = [r for r in (ready_f, ready_b) if r is not None]
        if w_done[i] < b_done[i]:
            if i == 0:
                # Stage 0's input gradients have no consumer: delaying a B to
                # run a W costs nothing downstream, so idle is filled
                # unconditionally.  (Fs cannot be delayed by this: at stage 0
                # they are always ready, so the branch above catches them.)
                return now, 2, PipeOp.W
            if not unknown and (not known or now + w_s <= min(known)):
                return now, 2, PipeOp.W
        if known:
            if ready_b is not None and (ready_f is None or ready_b <= ready_f):
                return min(known), 0, PipeOp.B
            return min(known), 1, PipeOp.F
        return None

    def place(i: int, start: float, op: PipeOp) -> None:
        if op is PipeOp.F:
            k = f_done[i]
            f_end[i][k] = start + f_s
            clock[i] = f_end[i][k]
            f_done[i] += 1
        elif op is PipeOp.B:
            k = b_done[i]
            b_end[i][k] = start + b_s
            clock[i] = b_end[i][k]
            b_done[i] += 1
        else:
            k = w_done[i]
            clock[i] = start + w_s
            w_done[i] += 1
        orders[i].append(_node(op, i, k))

    remaining = 3 * p * m
    while remaining:
        best = None
        for i in range(p):
            if f_done[i] == m and b_done[i] == m and w_done[i] == m:
                continue
            action = stage_action(i)
            if action is None:
                continue
            start, priority, op = action
            key = (start, priority, i)
            if best is None or key < best[0]:
                best = (key, i, start, op)
        if best is None:
            # Every actionable stage is waiting on an unplaced producer; fall
            # back to the earliest stage that can legally run a deferred W.
            for i in range(p):
                if w_done[i] < b_done[i]:
                    best = (None, i, clock[i], PipeOp.W)
                    break
            if best is None:  # pragma: no cover - the cursor order forbids this
                raise RuntimeError("zero-bubble pass deadlocked")
        _, i, start, op = best
        place(i, start, op)
        remaining -= 1

    return PipelineSchedule(name="zb", stages=stages, microbatches=microbatches,
                            orders=tuple(tuple(order) for order in orders))


SCHEDULES.register(
    "gpipe", gpipe_pass,
    aliases=("fill-drain",),
    description="all forwards then all backwards; the largest-bubble baseline",
)
SCHEDULES.register(
    "1f1b", one_f_one_b_pass,
    aliases=("one-f-one-b", "pipedream-flush"),
    description="one-forward-one-backward steady state with undecomposed backward",
)
SCHEDULES.register(
    "zb", zero_bubble_pass,
    aliases=("zero-bubble", "zb-h1"),
    description="zero-bubble: backward split into B/W, deferred W fills the drain bubble",
)
