"""Sweep-facing pipeline workers: :func:`run_pipeline` and :func:`pipeline_sweep`.

:func:`run_pipeline` is the module-level (hence picklable) worker behind
``repro sweep --worker pipeline`` and the serve worker registry.  It takes
every scenario knob explicitly — including the schedule family, whose default
here is fixed at ``"1f1b"`` rather than resolved from the ambient policy:
sweep results are cached by ``(worker, params)`` content address and the
execution policy deliberately never enters the key, so nothing
result-affecting may default from it.  (Single uncached runs through
:func:`~repro.pipeline.simulate.simulate_pipeline` *do* honour the policy's
``pipeline_schedule`` — the cache-correctness constraint is the sweep
worker's alone.)
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.pipeline.simulate import simulate_pipeline
from repro.pipeline.timing import DEFAULT_BACKWARD_SPLIT
from repro.runtime import ExecutionPolicy
from repro.sweep import SweepRunner, SweepSpec


def run_pipeline(
    *,
    schedule: str = "1f1b",
    stages: int = 4,
    microbatches: int = 8,
    model: str = "20B",
    machine: str = "jlse-4xh100",
    microbatch_size: int = 1,
    activation_checkpointing: bool = True,
    backward_split: float = DEFAULT_BACKWARD_SPLIT,
) -> dict:
    """Simulate one pipeline scenario; returns the flat JSON-able summary.

    The return value carries scenario identity and metrics only — no
    executor/scheduler provenance — so identical scenarios serialize
    byte-identically however they were computed.
    """
    return simulate_pipeline(
        schedule=schedule,
        stages=stages,
        microbatches=microbatches,
        model=model,
        machine=machine,
        microbatch_size=microbatch_size,
        activation_checkpointing=activation_checkpointing,
        backward_split=backward_split,
    ).to_dict()


def pipeline_sweep(
    axes: Mapping[str, Sequence[Any]],
    *,
    base: Mapping[str, Any] | None = None,
    jobs: int | None = None,
    use_cache: bool | None = None,
    cache_dir: Any = None,
    scheduler: str | None = None,
    policy: ExecutionPolicy | None = None,
) -> dict[tuple, dict]:
    """Run a declarative grid of :func:`run_pipeline` scenarios.

    The pipeline twin of :func:`repro.experiments.base.training_sweep`:
    ``axes`` maps :func:`run_pipeline` keyword names (``schedule``, ``stages``,
    ``microbatches``, ...) to candidate values, ``base`` holds fixed keywords,
    and results come back keyed by the axis-value tuple in declaration order
    (bare values for a single axis).
    """
    spec = SweepSpec.build(axes, base)
    runner = SweepRunner(
        run_pipeline, jobs=jobs, use_cache=use_cache, cache_dir=cache_dir,
        scheduler=scheduler, policy=policy,
    )
    return runner.run(spec).keyed(*spec.axis_names)
