"""Pipeline-parallel schedules as a first-class scenario family.

The package follows a compiler shape: a small stage-graph IR
(:mod:`repro.pipeline.ir`), a family of schedule passes emitting per-stage
node orders (:mod:`repro.pipeline.schedules` — ``gpipe``, ``1f1b`` and the
zero-bubble ``zb`` pass that splits the backward into its B/W halves), and a
lowering (:mod:`repro.pipeline.lowering`) onto the ordinary discrete-event
engine with per-stage compute and per-boundary link resources.  Strategies
(:mod:`repro.pipeline.strategy`) mirror the offload-strategy hook set, and
:func:`simulate_pipeline` / :func:`run_pipeline` surface the family through
the same policy, sweep, CLI and serve machinery as every other scenario.
See ``docs/pipeline.md``.
"""

from repro.pipeline.ir import (
    PipelineSchedule,
    PipeOp,
    ScheduledNode,
    insert_comm_nodes,
    validate_schedule,
)
from repro.pipeline.lowering import (
    LoweredPipeline,
    link_resource,
    lower_schedule,
    pipeline_resource_names,
    pipeline_resources,
    stage_resource,
)
from repro.pipeline.run import pipeline_sweep, run_pipeline
from repro.pipeline.schedules import SCHEDULES, available_schedules, build_schedule
from repro.pipeline.simulate import PipelineResult, simulate_pipeline
from repro.pipeline.strategy import (
    PipelineStrategy,
    SchedulePipelineStrategy,
    build_pipeline_strategy,
)
from repro.pipeline.timing import (
    DEFAULT_BACKWARD_SPLIT,
    PipelineTiming,
    timing_from_presets,
)

__all__ = [
    "DEFAULT_BACKWARD_SPLIT",
    "SCHEDULES",
    "LoweredPipeline",
    "PipeOp",
    "PipelineResult",
    "PipelineSchedule",
    "PipelineStrategy",
    "PipelineTiming",
    "SchedulePipelineStrategy",
    "ScheduledNode",
    "available_schedules",
    "build_pipeline_strategy",
    "build_schedule",
    "insert_comm_nodes",
    "link_resource",
    "lower_schedule",
    "pipeline_resource_names",
    "pipeline_resources",
    "pipeline_sweep",
    "run_pipeline",
    "simulate_pipeline",
    "stage_resource",
    "timing_from_presets",
    "validate_schedule",
]
