"""Per-node durations for lowering a pipeline schedule to timed operations.

A :class:`PipelineTiming` holds the four durations that parameterize every
pipeline scenario: the per-stage forward time of one microbatch, the two
halves of the per-stage backward time (input gradients ``B``, weight
gradients ``W`` — the zero-bubble decomposition), and the inter-stage
activation/gradient transfer time.  Tests construct it directly;
:func:`timing_from_presets` derives it from the same model/machine presets
and FLOPs model (:mod:`repro.model.flops`) the offload scenarios use, with
layers divided evenly across stages and transfers riding the NVLink
bandwidth of the machine preset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.hardware.presets import get_machine_preset
from repro.model.flops import backward_compute_seconds, forward_compute_seconds
from repro.model.presets import get_model_preset

#: Fraction of the backward pass attributed to the input-gradient half (``B``).
#: The zero-bubble paper measures the two halves as roughly equal; the split is
#: a scenario knob, not a constant of the decomposition.
DEFAULT_BACKWARD_SPLIT = 0.5

#: Bytes per activation element exchanged between stages (fp16).
_ACTIVATION_BYTES_PER_ELEMENT = 2


@dataclass(frozen=True)
class PipelineTiming:
    """Durations (seconds) of one microbatch's work at one stage."""

    f_seconds: float
    b_seconds: float
    w_seconds: float
    comm_seconds: float
    comm_bytes: int = 0

    def __post_init__(self) -> None:
        for name in ("f_seconds", "b_seconds", "w_seconds", "comm_seconds"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.comm_bytes < 0:
            raise ConfigurationError("comm_bytes must be non-negative")

    @property
    def backward_seconds(self) -> float:
        """The full backward duration (``B`` + ``W``)."""
        return self.b_seconds + self.w_seconds

    @property
    def stage_seconds(self) -> float:
        """Total compute of one microbatch at one stage (``F`` + ``B`` + ``W``)."""
        return self.f_seconds + self.backward_seconds


def timing_from_presets(
    model: str = "20B",
    machine: str = "jlse-4xh100",
    *,
    stages: int,
    microbatch_size: int = 1,
    activation_checkpointing: bool = True,
    backward_split: float = DEFAULT_BACKWARD_SPLIT,
) -> PipelineTiming:
    """Derive stage timings from the model/machine presets.

    The whole model's forward/backward compute (from the calibrated FLOPs
    model) is split evenly across ``stages``; the backward half-split follows
    ``backward_split`` (fraction of the backward pass spent on input
    gradients).  The inter-stage payload is one microbatch of fp16 boundary
    activations (``microbatch x sequence x hidden``) over the machine's
    NVLink device-to-device bandwidth.
    """
    if stages < 1:
        raise ConfigurationError("stages must be >= 1")
    if not 0.0 < backward_split < 1.0:
        raise ConfigurationError("backward_split must be strictly between 0 and 1")
    config = get_model_preset(model)
    spec = get_machine_preset(machine)
    peak_flops = spec.gpu.fp16_tflops * 1e12
    forward = forward_compute_seconds(config, microbatch_size, peak_flops) / stages
    backward = backward_compute_seconds(
        config, microbatch_size, peak_flops,
        activation_checkpointing=activation_checkpointing,
    ) / stages
    comm_bytes = (
        microbatch_size * config.sequence_length * config.hidden_size
        * _ACTIVATION_BYTES_PER_ELEMENT
    )
    comm_seconds = comm_bytes / (spec.nvlink.d2d_gbps * 1e9)
    return PipelineTiming(
        f_seconds=forward,
        b_seconds=backward * backward_split,
        w_seconds=backward * (1.0 - backward_split),
        comm_seconds=comm_seconds,
        comm_bytes=comm_bytes,
    )
