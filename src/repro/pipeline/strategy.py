"""`PipelineStrategy`: the pipeline twin of the offload-strategy interface.

The offload side of the codebase plugs scenario families into the simulation
through :class:`~repro.core.engine.OffloadStrategy`'s hook set — a
``build_plan`` producing the scheduling plan, row-emitting builder twins
gated by ``supports_op_batch()``, and a ``describe()`` for diagnostics.
:class:`PipelineStrategy` mirrors those hooks for the pipeline family, so the
two families present the same mechanism/policy seam: the *mechanism* (the
engine and its admission paths) never changes, the *policy* (which schedule
pass shapes the op DAG) is the pluggable part.

Concrete strategies are one per schedule family and come from the same
registry the passes live in (:data:`~repro.pipeline.schedules.SCHEDULES`),
so ``build_pipeline_strategy("zb")`` and friends stay enumerable.
"""

from __future__ import annotations

import abc

from repro.pipeline.ir import PipelineSchedule, validate_schedule
from repro.pipeline.lowering import LoweredPipeline, lower_schedule
from repro.pipeline.schedules import SCHEDULES, build_schedule
from repro.pipeline.timing import PipelineTiming


class PipelineStrategy(abc.ABC):
    """Interface implemented by every pipeline-schedule strategy.

    The hook names deliberately mirror :class:`~repro.core.engine.OffloadStrategy`:
    ``build_plan`` produces the (un-timed) scheduling plan,
    ``supports_op_batch`` gates the row-emitting path, and
    ``build_schedule_rows`` / ``build_schedule_ops`` are the batched/eager
    builder twins.
    """

    name: str = "pipeline-strategy"
    display_name: str = "pipeline strategy"

    @abc.abstractmethod
    def build_plan(
        self, stages: int, microbatches: int,
        timing: PipelineTiming | None = None,
    ) -> PipelineSchedule:
        """The schedule (per-stage node orders) for one ``stages x microbatches`` grid.

        ``timing`` parameterizes timing-aware passes (the greedy zero-bubble
        scheduler places deferred W halves by measured gap sizes); shape-only
        passes ignore it.
        """

    def supports_op_batch(self) -> bool:
        """True when the strategy provides the row-emitting builder (they all do)."""
        return True

    def build_schedule_rows(
        self, schedule: PipelineSchedule, timing: PipelineTiming
    ) -> LoweredPipeline:
        """Row-emitting builder: lower ``schedule`` to an :class:`~repro.sim.opbatch.OpBatch`."""
        return lower_schedule(schedule, timing)

    def build_schedule_ops(
        self, engine, schedule: PipelineSchedule, timing: PipelineTiming
    ) -> LoweredPipeline:
        """Eager builder twin: lower and submit ``SimOp`` objects to ``engine``.

        Produces the very rows of :meth:`build_schedule_rows` and expands them
        through :meth:`~repro.sim.opbatch.OpBatch.submit_to`, so the eager and
        batched admission paths see the identical DAG (ids included) — the
        property the differential harness checks.
        """
        lowered = self.build_schedule_rows(schedule, timing)
        lowered.batch.submit_to(engine)
        return lowered

    def describe(self) -> dict:
        """Diagnostic summary (mirrors ``OffloadStrategy.describe``)."""
        return {"name": self.name, "family": "pipeline",
                "supports_op_batch": self.supports_op_batch()}


class SchedulePipelineStrategy(PipelineStrategy):
    """A strategy backed by one registered schedule pass."""

    def __init__(self, schedule_name: str) -> None:
        entry = SCHEDULES.get(schedule_name)
        self.name = entry.name
        self.display_name = f"pipeline/{entry.name}"
        self._description = entry.description

    def build_plan(
        self, stages: int, microbatches: int,
        timing: PipelineTiming | None = None,
    ) -> PipelineSchedule:
        schedule = build_schedule(self.name, stages, microbatches, timing)
        validate_schedule(schedule)
        return schedule

    def describe(self) -> dict:
        described = super().describe()
        described["schedule"] = self.name
        described["description"] = self._description
        return described


def build_pipeline_strategy(name: str) -> PipelineStrategy:
    """Construct the strategy for a registered schedule name (aliases accepted)."""
    return SchedulePipelineStrategy(name)
