"""End-to-end pipeline simulation: schedule pass -> lowering -> engine -> metrics.

:func:`simulate_pipeline` is the pipeline twin of
:func:`repro.training.simulation.simulate_job`: it resolves an
:class:`~repro.runtime.ExecutionPolicy` (``pipeline_schedule`` supplies the
default schedule family), builds the schedule and its op rows through the
strategy hooks, runs them on the ordinary :class:`~repro.sim.engine.SimEngine`
(middleware chain installed at the engine seam, scheduler backend chosen by
the policy's ``auto`` rule) and derives the pipeline metrics — makespan,
per-stage busy time and the **bubble fraction**

    ``1 - total stage compute / (stages * makespan)``

that the figures plot.  Zero-duration RECV ops keep the stage clocks honest
without counting as compute, so the bubble fraction measures exactly the
idle the schedule family leaves on the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.middleware import build_chain, effective_middleware_specs
from repro.pipeline.lowering import LoweredPipeline, pipeline_resources
from repro.pipeline.strategy import PipelineStrategy, build_pipeline_strategy
from repro.pipeline.timing import DEFAULT_BACKWARD_SPLIT, PipelineTiming, timing_from_presets
from repro.runtime import ExecutionPolicy
from repro.runtime.policy import PIPELINE_FIELDS, ResolvedExecution
from repro.sim.engine import Schedule, SimEngine


@dataclass(frozen=True)
class PipelineResult:
    """Metrics of one simulated pipeline iteration."""

    schedule: str
    stages: int
    microbatches: int
    model: str
    machine: str
    microbatch_size: int
    timing: PipelineTiming
    makespan_seconds: float
    bubble_fraction: float
    stage_busy_seconds: tuple[float, ...]
    comm_busy_seconds: float
    op_count: int
    resolved: ResolvedExecution = field(repr=False)
    sim_schedule: Schedule = field(repr=False)

    @property
    def ideal_seconds(self) -> float:
        """Bubble-free lower bound: each stage's serial compute."""
        return self.microbatches * self.timing.stage_seconds

    def to_dict(self) -> dict:
        """Flat JSON-able summary (the sweep-worker return value).

        Deliberately excludes *how* the result was computed (scheduler
        backend, executor): identical scenarios must serialize byte-identically
        across heap/vector schedulers and serial/pool/cluster executors.
        """
        utilizations = [
            busy / self.makespan_seconds if self.makespan_seconds > 0 else 0.0
            for busy in self.stage_busy_seconds
        ]
        return {
            "schedule": self.schedule,
            "stages": self.stages,
            "microbatches": self.microbatches,
            "model": self.model,
            "machine": self.machine,
            "microbatch_size": self.microbatch_size,
            "op_count": self.op_count,
            "makespan_s": self.makespan_seconds,
            "ideal_s": self.ideal_seconds,
            "bubble_fraction": self.bubble_fraction,
            "f_s": self.timing.f_seconds,
            "b_s": self.timing.b_seconds,
            "w_s": self.timing.w_seconds,
            "comm_s": self.timing.comm_seconds,
            "stage_busy_total_s": sum(self.stage_busy_seconds),
            "comm_busy_s": self.comm_busy_seconds,
            "min_stage_utilization": min(utilizations, default=0.0),
            "max_stage_utilization": max(utilizations, default=0.0),
        }


def simulate_pipeline(
    *,
    schedule: str | None = None,
    stages: int = 4,
    microbatches: int = 8,
    model: str = "20B",
    machine: str = "jlse-4xh100",
    microbatch_size: int = 1,
    activation_checkpointing: bool = True,
    backward_split: float = DEFAULT_BACKWARD_SPLIT,
    timing: PipelineTiming | None = None,
    strategy: PipelineStrategy | None = None,
    policy: ExecutionPolicy | None = None,
) -> PipelineResult:
    """Simulate one pipeline-parallel iteration.

    ``schedule=None`` resolves the family from the policy's
    ``pipeline_schedule`` field (arg > context > ``$REPRO_PIPELINE_SCHEDULE``
    > default), mirroring how every other execution decision resolves.  An
    explicit ``timing`` bypasses the preset-derived durations (tests and the
    property suite use this); ``strategy`` likewise bypasses the registry.
    """
    if policy is None:
        policy = ExecutionPolicy.resolve(env_fields=PIPELINE_FIELDS)
    schedule_name = schedule if schedule is not None else policy.pipeline_schedule
    if strategy is None:
        strategy = build_pipeline_strategy(schedule_name)
    if timing is None:
        timing = timing_from_presets(
            model, machine,
            stages=stages,
            microbatch_size=microbatch_size,
            activation_checkpointing=activation_checkpointing,
            backward_split=backward_split,
        )
    plan = strategy.build_plan(stages, microbatches, timing)

    engine = SimEngine("pipeline")
    pipeline_resources(engine, stages)
    chain = build_chain(effective_middleware_specs(policy))
    if chain is not None:
        engine.install_middleware(chain, policy=policy)

    lowered: LoweredPipeline
    if policy.op_backend == "batch" and strategy.supports_op_batch():
        effective_backend = "batch"
        lowered = strategy.build_schedule_rows(plan, timing)
        scheduler = policy.select_scheduler(lowered.op_count)
        if scheduler == "vector":
            sim_schedule = engine.run_vector(lowered.batch)
        else:
            sim_schedule = engine.run_batch(lowered.batch)
    else:
        effective_backend = "objects"
        lowered = strategy.build_schedule_ops(engine, plan, timing)
        scheduler = policy.select_scheduler(lowered.op_count)
        if scheduler == "vector":
            sim_schedule = engine.run_vector()
        else:
            sim_schedule = engine.run()

    makespan = sim_schedule.makespan
    stage_busy = tuple(
        sim_schedule.busy_time(resource) for resource in lowered.stage_resources()
    )
    bubble = 0.0
    if makespan > 0:
        bubble = 1.0 - sum(stage_busy) / (stages * makespan)
    comm_busy = sum(
        sim_schedule.busy_time(resource)
        for resource in lowered.resource_names
        if resource.startswith("link")
    )
    resolved = ResolvedExecution(
        policy=policy,
        op_backend=effective_backend,
        scheduler=scheduler,
        op_count=lowered.op_count,
    )
    return PipelineResult(
        schedule=lowered.schedule.name,
        stages=stages,
        microbatches=microbatches,
        model=model,
        machine=machine,
        microbatch_size=microbatch_size,
        timing=timing,
        makespan_seconds=makespan,
        bubble_fraction=bubble,
        stage_busy_seconds=stage_busy,
        comm_busy_seconds=comm_busy,
        op_count=lowered.op_count,
        resolved=resolved,
        sim_schedule=sim_schedule,
    )
