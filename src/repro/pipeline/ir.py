"""Stage-graph IR for pipeline-parallel schedules.

The IR follows the shape of sail-sg/zero-bubble's runtime description: a
schedule is, per pipeline stage, an ordered list of :class:`ScheduledNode`
records over ``stages x microbatches``, where each node is one of five op
kinds (:class:`PipeOp`):

* ``F`` — the forward pass of one microbatch through one stage;
* ``B`` — the *input-gradient* half of the backward pass (the part the
  upstream stage waits for);
* ``W`` — the *weight-gradient* half of the backward pass (local work that
  can be deferred to fill bubbles — the zero-bubble decomposition);
* ``SEND``/``RECV`` — the activation/gradient transfer between adjacent
  stages over the inter-stage link.

Schedule passes (:mod:`repro.pipeline.schedules`) emit only the compute nodes
(``F``/``B``/``W``); :func:`insert_comm_nodes` derives the communication
nodes deterministically from the stage topology, so every pass stays a pure
statement of *compute order* and the comm protocol lives in one place.

The IR is deliberately simulation-free: node records carry no times.  Lowering
to timed op rows for the discrete-event engine happens in
:mod:`repro.pipeline.lowering`; :func:`validate_schedule` checks the
IR-level invariants (completeness, per-microbatch F->B->W order, comm-node
pairing) that the hypothesis property suite exercises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ConfigurationError


class PipeOp(enum.Enum):
    """Op kinds of the pipeline stage graph."""

    F = "F"
    B = "B"
    W = "W"
    SEND = "SEND"
    RECV = "RECV"

    @property
    def is_compute(self) -> bool:
        """True for the stage-local compute kinds (F/B/W)."""
        return self in (PipeOp.F, PipeOp.B, PipeOp.W)


@dataclass(frozen=True)
class ScheduledNode:
    """One node of the stage graph.

    ``stage``/``microbatch`` locate the node; for ``SEND``/``RECV`` nodes
    ``peer`` names the other end of the transfer and ``payload`` is the
    compute kind whose tensor moves (``F`` for activations flowing forward,
    ``B`` for input gradients flowing backward).
    """

    op: PipeOp
    stage: int
    microbatch: int
    peer: int = -1
    payload: PipeOp | None = None

    def __str__(self) -> str:
        if self.op.is_compute:
            return f"{self.op.value}{self.microbatch}@{self.stage}"
        return (f"{self.op.value}[{self.payload.value}]{self.microbatch}"
                f"@{self.stage}->{self.peer}")


@dataclass(frozen=True)
class PipelineSchedule:
    """A complete schedule: one ordered node tuple per stage.

    ``orders[i]`` is the execution order of stage ``i``.  Compute-only
    schedules (straight out of a pass) contain ``F``/``B``/``W`` nodes;
    :func:`insert_comm_nodes` returns the communication-complete form the
    lowering consumes.
    """

    name: str
    stages: int
    microbatches: int
    orders: tuple[tuple[ScheduledNode, ...], ...]

    @property
    def has_comm_nodes(self) -> bool:
        """True once SEND/RECV nodes have been inserted."""
        return any(
            not node.op.is_compute for order in self.orders for node in order
        )

    def compute_nodes(self, stage: int) -> list[ScheduledNode]:
        """The F/B/W nodes of one stage, in order."""
        return [node for node in self.orders[stage] if node.op.is_compute]


def insert_comm_nodes(schedule: PipelineSchedule) -> PipelineSchedule:
    """Derive SEND/RECV nodes from the stage topology.

    For every ``F`` at stage ``i < stages-1`` a ``SEND`` of the activations to
    stage ``i+1`` follows the producer, and the consuming ``F`` at stage
    ``i+1`` is preceded by the matching ``RECV``.  Input gradients mirror
    this: every ``B`` at stage ``i > 0`` sends to stage ``i-1``, whose ``B``
    is preceded by the ``RECV``.  Placement next to the producer/consumer
    preserves the pass's compute order exactly, so the feasibility of the
    compute schedule carries over to the communication-complete one.
    """
    if schedule.has_comm_nodes:
        return schedule
    last = schedule.stages - 1
    orders: list[tuple[ScheduledNode, ...]] = []
    for stage, order in enumerate(schedule.orders):
        full: list[ScheduledNode] = []
        for node in order:
            if node.op is PipeOp.F and stage > 0:
                full.append(ScheduledNode(PipeOp.RECV, stage, node.microbatch,
                                          peer=stage - 1, payload=PipeOp.F))
            if node.op is PipeOp.B and stage < last:
                full.append(ScheduledNode(PipeOp.RECV, stage, node.microbatch,
                                          peer=stage + 1, payload=PipeOp.B))
            full.append(node)
            if node.op is PipeOp.F and stage < last:
                full.append(ScheduledNode(PipeOp.SEND, stage, node.microbatch,
                                          peer=stage + 1, payload=PipeOp.F))
            if node.op is PipeOp.B and stage > 0:
                full.append(ScheduledNode(PipeOp.SEND, stage, node.microbatch,
                                          peer=stage - 1, payload=PipeOp.B))
        orders.append(tuple(full))
    return PipelineSchedule(
        name=schedule.name,
        stages=schedule.stages,
        microbatches=schedule.microbatches,
        orders=tuple(orders),
    )


def validate_schedule(schedule: PipelineSchedule) -> None:
    """Check the IR invariants; raises :class:`ConfigurationError` on violation.

    * every stage executes exactly one ``F``, one ``B`` and one ``W`` per
      microbatch, and nothing else computes;
    * within a stage, each microbatch's ``F`` precedes its ``B`` precedes its
      ``W`` (the F->B->W dependency order);
    * communication nodes (when present) pair up: every cross-stage edge has
      exactly one ``SEND`` at the producer and one ``RECV`` at the consumer,
      with the ``RECV`` preceding its consuming compute node.
    """
    if schedule.stages < 1 or schedule.microbatches < 1:
        raise ConfigurationError(
            f"schedule {schedule.name!r} needs >=1 stage and >=1 microbatch"
        )
    if len(schedule.orders) != schedule.stages:
        raise ConfigurationError(
            f"schedule {schedule.name!r} has {len(schedule.orders)} stage "
            f"orders for {schedule.stages} stages"
        )
    for stage, order in enumerate(schedule.orders):
        position: dict[tuple[PipeOp, int], int] = {}
        for index, node in enumerate(order):
            if node.stage != stage:
                raise ConfigurationError(
                    f"{node} appears in stage {stage}'s order"
                )
            if not 0 <= node.microbatch < schedule.microbatches:
                raise ConfigurationError(f"{node} has an out-of-range microbatch")
            key = (node.op, node.microbatch)
            if node.op.is_compute:
                if key in position:
                    raise ConfigurationError(f"duplicate compute node {node}")
                position[key] = index
        for microbatch in range(schedule.microbatches):
            try:
                f = position[(PipeOp.F, microbatch)]
                b = position[(PipeOp.B, microbatch)]
                w = position[(PipeOp.W, microbatch)]
            except KeyError as exc:
                raise ConfigurationError(
                    f"stage {stage} is missing a compute node for microbatch "
                    f"{microbatch}: {exc}"
                ) from None
            if not f < b < w:
                raise ConfigurationError(
                    f"stage {stage} microbatch {microbatch} violates F->B->W "
                    f"order (positions F={f}, B={b}, W={w})"
                )
        extra = len([n for n in order if n.op.is_compute]) - 3 * schedule.microbatches
        if extra:
            raise ConfigurationError(
                f"stage {stage} schedules {extra} surplus compute nodes"
            )
    if schedule.has_comm_nodes:
        _validate_comm_nodes(schedule)


def _validate_comm_nodes(schedule: PipelineSchedule) -> None:
    """Pairing and placement checks for SEND/RECV nodes."""
    sends: set[tuple[int, int, int, PipeOp]] = set()
    recvs: set[tuple[int, int, int, PipeOp]] = set()
    for stage, order in enumerate(schedule.orders):
        for index, node in enumerate(order):
            if node.op is PipeOp.SEND:
                sends.add((node.stage, node.peer, node.microbatch, node.payload))
            elif node.op is PipeOp.RECV:
                recvs.add((node.peer, node.stage, node.microbatch, node.payload))
                # The consuming compute node must follow its RECV.
                consumer = next(
                    (later for later in order[index + 1:]
                     if later.op is node.payload
                     and later.microbatch == node.microbatch),
                    None,
                )
                if consumer is None:
                    raise ConfigurationError(
                        f"{node} has no downstream consumer in stage {stage}"
                    )
    expected: set[tuple[int, int, int, PipeOp]] = set()
    for microbatch in range(schedule.microbatches):
        for stage in range(schedule.stages - 1):
            expected.add((stage, stage + 1, microbatch, PipeOp.F))
            expected.add((stage + 1, stage, microbatch, PipeOp.B))
    for label, present in (("SEND", sends), ("RECV", recvs)):
        if present != expected:
            missing = sorted(expected - present)[:3]
            surplus = sorted(present - expected)[:3]
            raise ConfigurationError(
                f"schedule {schedule.name!r} has mismatched {label} nodes "
                f"(missing {missing}, surplus {surplus})"
            )
