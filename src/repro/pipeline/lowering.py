"""Lowering: pipeline schedules -> timed op rows for the discrete-event engine.

The lowering maps the stage graph onto the engine's FIFO-resource model:

* each stage owns a compute resource (``stage0.compute``, ``stage1.compute``,
  ...) executing its F/B/W nodes in the schedule's local order;
* each adjacent stage pair owns two directed link resources
  (``link0.fwd`` carries stage 0 -> 1 activations, ``link0.bwd`` carries
  stage 1 -> 0 input gradients) so forward and backward traffic overlap the
  way full-duplex interconnects do;
* ``SEND`` nodes become transfer ops on the link (duration = the timing's
  ``comm_seconds``, dependency = the producing compute op);
* ``RECV`` nodes become zero-duration synchronisation ops *on the consuming
  stage's compute resource*, placed immediately before their consumer —
  the stage blocks exactly while the transfer is in flight, and because the
  op takes no time, stage busy-time (and hence the bubble fraction) counts
  compute only.

Rows are emitted stage-major in each stage's schedule order, so per-resource
FIFO order matches the schedule by construction; dependencies may point at
rows emitted later (a ``RECV`` of gradients references the downstream
stage's ``SEND``), which the engine's blocked-head machinery handles.  The
same rows feed all three scheduler backends byte-identically — the property
the differential harness enforces for pipeline-shaped DAGs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.pipeline.ir import PipelineSchedule, PipeOp, ScheduledNode, insert_comm_nodes
from repro.pipeline.timing import PipelineTiming
from repro.sim.opbatch import OpBatch
from repro.sim.ops import OpKind, next_op_id

#: Engine op kinds of each pipeline node kind.  F/B/W are stage compute;
#: SEND rides the inter-stage link as a device-to-device transfer; RECV is a
#: zero-duration barrier on the consuming stage.
_OP_KINDS = {
    PipeOp.F: OpKind.GPU_COMPUTE,
    PipeOp.B: OpKind.GPU_COMPUTE,
    PipeOp.W: OpKind.GPU_COMPUTE,
    PipeOp.SEND: OpKind.D2D,
    PipeOp.RECV: OpKind.BARRIER,
}


def stage_resource(stage: int) -> str:
    """Compute-resource name of one pipeline stage."""
    return f"stage{stage}.compute"


def link_resource(from_stage: int, to_stage: int) -> str:
    """Directed link-resource name between adjacent stages."""
    if to_stage == from_stage + 1:
        return f"link{from_stage}.fwd"
    if to_stage == from_stage - 1:
        return f"link{to_stage}.bwd"
    raise ConfigurationError(
        f"stages {from_stage} and {to_stage} are not adjacent"
    )


def pipeline_resource_names(stages: int) -> tuple[str, ...]:
    """Registration order of the pipeline resources (compute first, then links)."""
    names = [stage_resource(stage) for stage in range(stages)]
    for stage in range(stages - 1):
        names.append(f"link{stage}.fwd")
        names.append(f"link{stage}.bwd")
    return tuple(names)


def pipeline_resources(engine, stages: int) -> None:
    """Register per-stage compute and per-boundary link resources on ``engine``."""
    for stage in range(stages):
        engine.add_resource(stage_resource(stage),
                            f"pipeline stage {stage} compute (F/B/W)")
    for stage in range(stages - 1):
        engine.add_resource(f"link{stage}.fwd",
                            f"activations link stage {stage} -> {stage + 1}")
        engine.add_resource(f"link{stage}.bwd",
                            f"gradient link stage {stage + 1} -> {stage}")


def _node_key(node: ScheduledNode) -> tuple:
    """Id-map key of a node: comm nodes need the payload (a middle stage both
    sends activations and sends gradients for the same microbatch)."""
    return (node.op, node.payload, node.stage, node.microbatch)


@dataclass
class LoweredPipeline:
    """The op rows of one schedule plus the bookkeeping analyses need."""

    schedule: PipelineSchedule
    timing: PipelineTiming
    batch: OpBatch
    resource_names: tuple[str, ...]
    #: ``(op, payload, stage, microbatch)`` -> op id, for every node incl. comm.
    node_ids: dict[tuple, int] = field(default_factory=dict)

    def op_id(self, op: PipeOp, stage: int, microbatch: int,
              payload: PipeOp | None = None) -> int:
        """Op id of one node (compute nodes have no payload)."""
        return self.node_ids[(op, payload, stage, microbatch)]

    @property
    def op_count(self) -> int:
        return len(self.batch.rows)

    def stage_resources(self) -> tuple[str, ...]:
        """The compute resources, in stage order (bubble accounting reads these)."""
        return tuple(stage_resource(s) for s in range(self.schedule.stages))


def _durations(timing: PipelineTiming) -> dict[PipeOp, float]:
    return {
        PipeOp.F: timing.f_seconds,
        PipeOp.B: timing.b_seconds,
        PipeOp.W: timing.w_seconds,
        PipeOp.SEND: timing.comm_seconds,
        PipeOp.RECV: 0.0,
    }


def lower_schedule(schedule: PipelineSchedule, timing: PipelineTiming) -> LoweredPipeline:
    """Emit the op rows of ``schedule`` under ``timing``.

    Communication nodes are inserted if the schedule is compute-only.  Ids are
    pre-assigned in one pass over all stages so that dependency references to
    later-emitted rows (gradient RECVs waiting on downstream SENDs) resolve;
    the rows themselves follow in the same stage-major order, keeping ids
    consecutive in row order for the vector kernel's fast lookup.
    """
    full = insert_comm_nodes(schedule)
    durations = _durations(timing)
    node_ids: dict[tuple, int] = {}
    for order in full.orders:
        for node in order:
            node_ids[_node_key(node)] = next_op_id()
    last = full.stages - 1

    def deps_of(node: ScheduledNode) -> tuple[int, ...]:
        stage, mb = node.stage, node.microbatch
        if node.op is PipeOp.F:
            if stage == 0:
                return ()
            return (node_ids[(PipeOp.RECV, PipeOp.F, stage, mb)],)
        if node.op is PipeOp.B:
            deps = [node_ids[(PipeOp.F, None, stage, mb)]]
            if stage < last:
                deps.append(node_ids[(PipeOp.RECV, PipeOp.B, stage, mb)])
            return tuple(deps)
        if node.op is PipeOp.W:
            return (node_ids[(PipeOp.B, None, stage, mb)],)
        if node.op is PipeOp.SEND:
            return (node_ids[(node.payload, None, stage, mb)],)
        # RECV: waits on the peer stage's SEND of the same payload.
        return (node_ids[(PipeOp.SEND, node.payload, node.peer, mb)],)

    batch = OpBatch()
    rows = batch.rows
    for order in full.orders:
        for node in order:
            if node.op is PipeOp.SEND:
                resource = link_resource(node.stage, node.peer)
                payload_bytes = timing.comm_bytes
            else:
                resource = stage_resource(node.stage)
                payload_bytes = 0
            rows.append((
                str(node),
                _OP_KINDS[node.op],
                resource,
                durations[node.op],
                deps_of(node),
                node.op.value,
                node.microbatch,
                payload_bytes,
                0,
                node_ids[_node_key(node)],
            ))
    return LoweredPipeline(
        schedule=full,
        timing=timing,
        batch=batch,
        resource_names=pipeline_resource_names(full.stages),
        node_ids=node_ids,
    )
