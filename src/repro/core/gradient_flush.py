"""Gradient-flush paths of the backward pass (Figure 6).

During the backward pass, the FP16 gradients produced on the GPU must reach the FP32
gradient buffer of the host-resident optimizer:

* **Baseline (DeepSpeed ZeRO-3)** — for every subgroup, allocate an unpinned FP16
  staging buffer on the host, D2H-copy the FP16 gradients into it at the slow
  pageable rate, then upscale FP16->FP32 on the host.  The three steps run
  sequentially and *block the backward pass* (the ~90 ms gaps of Figure 6, top).
* **Deep Optimizer States** — convert FP16->FP32 chunk-wise on the GPU (Table 1:
  1.2 TB/s), then D2H-copy the FP32 chunk straight into the pre-pinned host buffer at
  the fast pinned rate, asynchronously (the ~7 ms transfers of Figure 6, bottom).
  Subgroups whose update is scheduled on the GPU skip the D2H copy entirely and keep
  their gradients in GPU memory (design principle 3).

Both builders submit operations to a :class:`~repro.sim.engine.SimEngine` and return
the per-subgroup "gradient ready" operations the update phase must depend on.

Each eager builder has a row-emitting twin (``make_*_flush_rows``) used by the
array-batched fast path of :func:`repro.training.simulation.simulate_job`: instead of
constructing ``SimOp`` objects it appends row tuples to an
:class:`~repro.sim.opbatch.OpBatch`, one subgroup per call, producing bit-identical
operations (same names, ids, durations and dependency tuples).  The golden tests in
``tests/test_opbatch_equivalence.py`` hold the two implementations together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scheduler import UpdatePlan, UpdateTarget
from repro.hardware.throughput import ThroughputProfile
from repro.precision.dtypes import DType
from repro.sim.engine import SimEngine
from repro.sim.opbatch import OpBatch
from repro.sim.ops import OpKind, SimOp, next_op_id


@dataclass
class GradientFlushOps:
    """Handles returned by the flush builders."""

    grad_ready_ops: dict[int, int] = field(default_factory=dict)
    blocking_ops: dict[int, int] = field(default_factory=dict)
    op_ids: list[int] = field(default_factory=list)
    d2h_bytes: int = 0

    @property
    def last_op_id(self) -> int | None:
        """Id of the last submitted flush op (None when nothing was submitted)."""
        return self.op_ids[-1] if self.op_ids else None


def build_baseline_gradient_flush(
    engine: SimEngine,
    profile: ThroughputProfile,
    subgroup_params: dict[int, int],
    compute_deps: dict[int, int],
    *,
    phase: str = "backward",
) -> GradientFlushOps:
    """Submit the slow unpinned-FP16 flush path for every subgroup.

    ``compute_deps`` maps each subgroup index to the backward-compute op that produced
    its gradients.  The returned ``blocking_ops`` give, per subgroup, the op the *next*
    backward compute chunk must wait for (this is what serialises the baseline).
    """
    result = GradientFlushOps()
    for index in sorted(subgroup_params):
        params = subgroup_params[index]
        deps = [compute_deps[index]] if index in compute_deps else []
        alloc = SimOp(
            name=f"host_alloc_grad[{index}]",
            kind=OpKind.HOST_ALLOC,
            resource="cpu",
            duration=params / profile.host_unpinned_alloc_pps,
            deps=tuple(deps),
            phase=phase,
            subgroup=index,
        )
        engine.submit(alloc)
        copy = SimOp(
            name=f"d2h_grad_fp16[{index}]",
            kind=OpKind.D2H,
            resource="pcie.d2h",
            duration=params / profile.unpinned_d2h_fp16_pps,
            deps=(alloc.op_id,),
            phase=phase,
            subgroup=index,
            payload_bytes=params * DType.FP16.itemsize,
            gpu_mem_delta=-params * DType.FP16.itemsize,
        )
        engine.submit(copy)
        upscale = SimOp(
            name=f"host_upscale_grad[{index}]",
            kind=OpKind.CPU_UPSCALE,
            resource="cpu",
            duration=params / profile.host_upscale_pps,
            deps=(copy.op_id,),
            phase=phase,
            subgroup=index,
        )
        engine.submit(upscale)
        result.grad_ready_ops[index] = upscale.op_id
        result.blocking_ops[index] = upscale.op_id
        result.op_ids.extend([alloc.op_id, copy.op_id, upscale.op_id])
        result.d2h_bytes += copy.payload_bytes
    return result


def build_overlapped_gradient_flush(
    engine: SimEngine,
    profile: ThroughputProfile,
    subgroup_params: dict[int, int],
    compute_deps: dict[int, int],
    *,
    plan: UpdatePlan | None = None,
    phase: str = "backward",
) -> GradientFlushOps:
    """Submit the Deep Optimizer States flush path (on-GPU upscale + pinned FP32 D2H).

    Gradients of subgroups whose update is GPU-scheduled (according to ``plan``) stay
    on the GPU: only the on-device conversion is charged, no PCIe traffic.  No flush
    operation blocks the backward compute chain (``blocking_ops`` stays empty).
    """
    result = GradientFlushOps()
    for index in sorted(subgroup_params):
        params = subgroup_params[index]
        deps = [compute_deps[index]] if index in compute_deps else []
        convert = SimOp(
            name=f"gpu_upscale_grad[{index}]",
            kind=OpKind.GPU_CONVERT,
            resource="gpu.compute",
            duration=params / profile.gpu_convert_pps,
            deps=tuple(deps),
            phase=phase,
            subgroup=index,
        )
        engine.submit(convert)
        result.op_ids.append(convert.op_id)

        keep_on_gpu = plan is not None and plan.target_of(index) == UpdateTarget.GPU
        if keep_on_gpu:
            result.grad_ready_ops[index] = convert.op_id
            continue

        copy = SimOp(
            name=f"d2h_grad_fp32_pinned[{index}]",
            kind=OpKind.D2H,
            resource="pcie.d2h",
            duration=params / profile.pinned_d2h_pps,
            deps=(convert.op_id,),
            phase=phase,
            subgroup=index,
            payload_bytes=params * DType.FP32.itemsize,
            gpu_mem_delta=-params * DType.FP16.itemsize,
        )
        engine.submit(copy)
        result.grad_ready_ops[index] = copy.op_id
        result.op_ids.append(copy.op_id)
        result.d2h_bytes += copy.payload_bytes
    return result


# --------------------------------------------------------------------- row twins


def make_baseline_flush_rows(
    batch: OpBatch,
    profile: ThroughputProfile,
    *,
    skip_residents: frozenset[int] = frozenset(),
    phase: str = "backward",
):
    """Row-emitting twin of :func:`build_baseline_gradient_flush`, one subgroup per call.

    Returns ``emit(flush, index, params, compute_dep) -> (grad_ready_id, blocking_id)``
    which appends the subgroup's flush rows to ``batch`` and aggregates the same
    bookkeeping into ``flush`` (a shared :class:`GradientFlushOps`) that the eager
    path accumulates per-subgroup.  ``skip_residents`` reproduces TwinFlow's
    behaviour: statically GPU-resident subgroups skip the flush entirely and their
    gradients are ready with the backward collective (``blocking_id`` is ``None``).
    """
    rows_append = batch.rows.append
    new_id = next_op_id
    alloc_pps = profile.host_unpinned_alloc_pps
    d2h_pps = profile.unpinned_d2h_fp16_pps
    upscale_pps = profile.host_upscale_pps
    fp16 = DType.FP16.itemsize

    def emit(flush: GradientFlushOps, index: int, params: int, compute_dep: int):
        if index in skip_residents:
            flush.grad_ready_ops[index] = compute_dep
            return compute_dep, None
        alloc_id = new_id()
        rows_append((f"host_alloc_grad[{index}]", OpKind.HOST_ALLOC, "cpu",
                     params / alloc_pps, (compute_dep,), phase, index, 0, 0, alloc_id))
        payload = params * fp16
        copy_id = new_id()
        rows_append((f"d2h_grad_fp16[{index}]", OpKind.D2H, "pcie.d2h",
                     params / d2h_pps, (alloc_id,), phase, index, payload, -payload, copy_id))
        upscale_id = new_id()
        rows_append((f"host_upscale_grad[{index}]", OpKind.CPU_UPSCALE, "cpu",
                     params / upscale_pps, (copy_id,), phase, index, 0, 0, upscale_id))
        flush.grad_ready_ops[index] = upscale_id
        flush.blocking_ops[index] = upscale_id
        flush.op_ids.extend((alloc_id, copy_id, upscale_id))
        flush.d2h_bytes += payload
        return upscale_id, upscale_id

    return emit


def make_overlapped_flush_rows(
    batch: OpBatch,
    profile: ThroughputProfile,
    plan: UpdatePlan | None = None,
    *,
    phase: str = "backward",
):
    """Row-emitting twin of :func:`build_overlapped_gradient_flush`, one subgroup per call.

    Same contract as :func:`make_baseline_flush_rows`; ``blocking_id`` is always
    ``None`` because the Deep Optimizer States flush never blocks the backward pass.
    GPU-scheduled subgroups (per ``plan``) keep their gradients on the GPU and only
    pay the on-device conversion.
    """
    rows_append = batch.rows.append
    new_id = next_op_id
    convert_pps = profile.gpu_convert_pps
    pinned_pps = profile.pinned_d2h_pps
    fp16 = DType.FP16.itemsize
    fp32 = DType.FP32.itemsize
    keep_on_gpu = (
        [item.target == UpdateTarget.GPU for item in plan.assignments]
        if plan is not None
        else None
    )

    def emit(flush: GradientFlushOps, index: int, params: int, compute_dep: int):
        convert_id = new_id()
        rows_append((f"gpu_upscale_grad[{index}]", OpKind.GPU_CONVERT, "gpu.compute",
                     params / convert_pps, (compute_dep,), phase, index, 0, 0, convert_id))
        flush.op_ids.append(convert_id)
        if keep_on_gpu is not None and keep_on_gpu[index]:
            flush.grad_ready_ops[index] = convert_id
            return convert_id, None
        copy_id = new_id()
        payload = params * fp32
        rows_append((f"d2h_grad_fp32_pinned[{index}]", OpKind.D2H, "pcie.d2h",
                     params / pinned_pps, (convert_id,), phase, index,
                     payload, -(params * fp16), copy_id))
        flush.grad_ready_ops[index] = copy_id
        flush.op_ids.append(copy_id)
        flush.d2h_bytes += payload
        return copy_id, None

    return emit


def baseline_flush_seconds(profile: ThroughputProfile, params: int) -> float:
    """Analytic duration of the baseline flush of one subgroup (Figure 6 top zoom)."""
    return (
        params / profile.host_unpinned_alloc_pps
        + params / profile.unpinned_d2h_fp16_pps
        + params / profile.host_upscale_pps
    )


def overlapped_flush_seconds(profile: ThroughputProfile, params: int) -> float:
    """Analytic duration of the Deep Optimizer States flush of one subgroup (Figure 6 bottom)."""
    return params / profile.gpu_convert_pps + params / profile.pinned_d2h_pps
