"""Deep Optimizer States: the paper's core contribution.

The subpackage is organised around the four design principles of Section 4:

* :mod:`repro.core.performance_model` — Equation 1, which picks the "update stride"
  (how often a subgroup update is scheduled on the GPU) from the machine's measured
  throughputs.
* :mod:`repro.core.scheduler` — Algorithm 1, which turns the stride and the set of
  statically GPU-resident subgroups into an :class:`UpdatePlan`.
* :mod:`repro.core.numeric_executor` — executes an update plan against real NumPy
  subgroup buffers (correctness path; bit-identical to the all-CPU baseline).
* :mod:`repro.core.sim_executor` and :mod:`repro.core.gradient_flush` — build the
  overlapped operation graphs of Figures 5 and 6 on the discrete-event simulator
  (performance path).
* :mod:`repro.core.engine` — the :class:`DeepOptimizerStates` middleware facade,
  configured through a single JSON-able config object, mirroring the paper's
  packaging as a DeepSpeed extension.
"""

from repro.core.performance_model import (
    PerformanceModel,
    cpu_to_gpu_update_ratio,
    optimal_update_stride,
)
from repro.core.scheduler import (
    SubgroupAssignment,
    UpdatePlan,
    UpdateTarget,
    build_update_plan,
)
from repro.core.numeric_executor import (
    InterleavedNumericExecutor,
    SequentialCpuExecutor,
    UpdateLogEntry,
)
from repro.core.engine import DeepOptimizerStates, DeepOptimizerStatesConfig

__all__ = [
    "cpu_to_gpu_update_ratio",
    "optimal_update_stride",
    "PerformanceModel",
    "UpdateTarget",
    "SubgroupAssignment",
    "UpdatePlan",
    "build_update_plan",
    "InterleavedNumericExecutor",
    "SequentialCpuExecutor",
    "UpdateLogEntry",
    "DeepOptimizerStates",
    "DeepOptimizerStatesConfig",
]
