"""Numeric executors: run an update plan against materialised subgroup buffers.

These executors are plugged into
:meth:`repro.zero.stage3.ShardedMixedPrecisionOptimizer.step`.  They perform exactly
the data movement the paper describes — gradient upscaling, per-subgroup Adam updates
on the assigned device, FP32->FP16 downscaling — but on NumPy buffers, so the claim
that interleaved scheduling leaves the training result untouched can be tested
bit-for-bit against the sequential all-CPU baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SchedulingError
from repro.core.scheduler import UpdatePlan, UpdateTarget, build_cpu_only_plan, build_update_plan
from repro.optim.base import OptimizerRule
from repro.zero.subgroup import Subgroup


@dataclass(frozen=True)
class UpdateLogEntry:
    """Record of one executed subgroup update."""

    subgroup_index: int
    device: str
    step: int
    num_params: int


@dataclass
class SequentialCpuExecutor:
    """The DeepSpeed ZeRO-3 offload baseline: update every subgroup on the CPU, in order."""

    log: list[UpdateLogEntry] = field(default_factory=list)

    def __call__(self, subgroups: list[Subgroup], rule: OptimizerRule, step: int) -> None:
        """Execute one rank's update phase."""
        for subgroup in subgroups:
            device = "gpu" if subgroup.static_gpu_resident else "cpu"
            subgroup.flush_gradients_to_host()
            subgroup.apply_update(rule, step, device=device)
            self.log.append(
                UpdateLogEntry(subgroup.index, device, step, subgroup.num_params)
            )


@dataclass
class InterleavedNumericExecutor:
    """Deep Optimizer States execution of an update plan.

    ``stride`` and ``static residents`` produce the plan via Algorithm 1 unless an
    explicit plan is supplied.  GPU-scheduled subgroups are processed *out of order*
    (all stride hits first, mirroring the fact that on real hardware they complete on
    a different device and stream than the CPU ones) to demonstrate that ordering does
    not affect the result.
    """

    stride: int = 2
    plan: UpdatePlan | None = None
    gpu_first: bool = True
    log: list[UpdateLogEntry] = field(default_factory=list)

    def plan_for(self, subgroups: list[Subgroup]) -> UpdatePlan:
        """Build (or reuse) the update plan for one rank's subgroup list."""
        if self.plan is not None and self.plan.num_subgroups == len(subgroups):
            return self.plan
        static = frozenset(s.index for s in subgroups if s.static_gpu_resident)
        if self.stride >= 1 and len(subgroups) > 0:
            return build_update_plan(len(subgroups), self.stride, static)
        return build_cpu_only_plan(len(subgroups), static)

    def __call__(self, subgroups: list[Subgroup], rule: OptimizerRule, step: int) -> None:
        """Execute one rank's update phase according to the interleaved plan."""
        plan = self.plan_for(subgroups)
        if plan.num_subgroups != len(subgroups):
            raise SchedulingError(
                f"plan covers {plan.num_subgroups} subgroups, rank has {len(subgroups)}"
            )
        by_index = {subgroup.index: subgroup for subgroup in subgroups}
        gpu_order = plan.gpu_indices()
        cpu_order = plan.cpu_indices()
        execution_order = gpu_order + cpu_order if self.gpu_first else cpu_order + gpu_order

        for index in execution_order:
            subgroup = by_index[index]
            target = plan.target_of(index)
            device = "gpu" if target == UpdateTarget.GPU else "cpu"
            # On the GPU path the FP16 gradients are upscaled *on the device* before
            # the D2H flush (Figure 6); on the CPU path they are upscaled on the host.
            # Both are exact, which is what keeps the two paths equivalent.
            subgroup.flush_gradients_to_host()
            subgroup.apply_update(rule, step, device=device)
            self.log.append(UpdateLogEntry(index, device, step, subgroup.num_params))

    # ------------------------------------------------------------------ reporting

    def devices_used(self) -> dict[str, int]:
        """Count of executed subgroup updates per device (for tests/inspection)."""
        counts: dict[str, int] = {}
        for entry in self.log:
            counts[entry.device] = counts.get(entry.device, 0) + 1
        return counts
