"""Algorithm 1: the interleaved optimizer-update scheduling plan.

The scheduler decides, for every subgroup index ``i`` of one rank, whether its update
runs on the GPU or on the CPU:

* statically GPU-resident subgroups (the TwinFlow-style "user ratio", placed at the
  *end* of the index range by Deep Optimizer States) always update on the GPU;
* every ``k``-th dynamically scheduled subgroup (``(i + 1) % k == 0`` with the paper's
  0-indexed subgroups and 1-indexed stride) is staged onto the GPU, updated there and
  flushed back;
* everything else updates on the CPU and its downscaled FP16 parameters are copied to
  the GPU asynchronously.

The resulting :class:`UpdatePlan` is consumed by both the numeric executor (which
proves the schedule does not change the training result) and the simulation executor
(which measures how much faster it is).
"""

from __future__ import annotations

import enum
from bisect import bisect_left
from dataclasses import dataclass, field
from functools import cached_property

from repro.common.errors import ConfigurationError, SchedulingError


class UpdateTarget(enum.Enum):
    """Where a subgroup's update is executed."""

    CPU = "cpu"
    GPU = "gpu"


class AssignmentReason(enum.Enum):
    """Why a subgroup received its target."""

    STATIC_RESIDENT = "static_resident"
    STRIDE = "stride"
    CPU_DEFAULT = "cpu_default"


@dataclass(frozen=True)
class SubgroupAssignment:
    """The scheduling decision for one subgroup."""

    index: int
    target: UpdateTarget
    reason: AssignmentReason

    @property
    def on_gpu(self) -> bool:
        """True when the update runs on the GPU."""
        return self.target == UpdateTarget.GPU


@dataclass(frozen=True)
class UpdatePlan:
    """A complete update-phase schedule for one rank."""

    assignments: tuple[SubgroupAssignment, ...]
    stride: int
    static_residents: frozenset[int] = field(default_factory=frozenset)

    # ------------------------------------------------------------------ queries

    @property
    def num_subgroups(self) -> int:
        """Number of subgroups covered by the plan."""
        return len(self.assignments)

    def target_of(self, index: int) -> UpdateTarget:
        """Scheduling target of subgroup ``index``."""
        return self.assignments[index].target

    def gpu_indices(self) -> list[int]:
        """Indices updated on the GPU (static residents and stride hits), in order."""
        return [item.index for item in self.assignments if item.on_gpu]

    def cpu_indices(self) -> list[int]:
        """Indices updated on the CPU, in order."""
        return [item.index for item in self.assignments if not item.on_gpu]

    @cached_property
    def _dynamic_gpu(self) -> tuple[int, ...]:
        """Sorted, cached tuple of dynamically GPU-scheduled indices.

        ``cached_property`` writes straight into the instance ``__dict__``, which
        works on a frozen (non-slots) dataclass.
        """
        return tuple(
            item.index
            for item in self.assignments
            if item.on_gpu and item.reason == AssignmentReason.STRIDE
        )

    def dynamic_gpu_indices(self) -> list[int]:
        """GPU-scheduled indices that require staging (i.e. are not static residents)."""
        return list(self._dynamic_gpu)

    def gpu_fraction(self) -> float:
        """Fraction of all subgroups updated on the GPU."""
        if not self.assignments:
            return 0.0
        return len(self.gpu_indices()) / self.num_subgroups

    def prev_on_gpu(self, index: int) -> int | None:
        """The closest dynamically GPU-scheduled index strictly before ``index``."""
        dynamic = self._dynamic_gpu
        position = bisect_left(dynamic, index)
        return dynamic[position - 1] if position else None

    def next_on_gpu(self, index: int) -> int | None:
        """The closest dynamically GPU-scheduled index at or after ``index``."""
        dynamic = self._dynamic_gpu
        position = bisect_left(dynamic, index)
        return dynamic[position] if position < len(dynamic) else None

    # ------------------------------------------------------------------ validation

    def validate(self) -> None:
        """Check the Algorithm 1 invariants; raises :class:`SchedulingError` on violation."""
        indices = [item.index for item in self.assignments]
        if indices != list(range(len(indices))):
            raise SchedulingError("plan indices must be 0..n-1 in order, each exactly once")
        for resident in self.static_residents:
            if resident >= len(indices) or resident < 0:
                raise SchedulingError(f"static resident {resident} outside the plan")
            if not self.assignments[resident].on_gpu:
                raise SchedulingError(f"static resident {resident} is not scheduled on the GPU")
        if self.stride < 1:
            raise SchedulingError("stride must be >= 1")
        for item in self.assignments:
            expected_stride_hit = (item.index + 1) % self.stride == 0
            if item.index in self.static_residents:
                continue
            if expected_stride_hit and not item.on_gpu:
                raise SchedulingError(f"subgroup {item.index} should be a stride hit on the GPU")
            if not expected_stride_hit and item.on_gpu:
                raise SchedulingError(f"subgroup {item.index} is on the GPU but is not a stride hit")

    def describe(self) -> dict:
        """Summary used by logging and the Figure 5 experiment."""
        return {
            "num_subgroups": self.num_subgroups,
            "stride": self.stride,
            "static_residents": sorted(self.static_residents),
            "gpu_indices": self.gpu_indices(),
            "cpu_indices": self.cpu_indices(),
            "gpu_fraction": round(self.gpu_fraction(), 4),
        }


def build_update_plan(
    num_subgroups: int,
    stride: int,
    static_residents: frozenset[int] | set[int] | tuple[int, ...] = (),
) -> UpdatePlan:
    """Construct the Algorithm 1 plan for ``num_subgroups`` subgroups.

    ``stride`` is the CPU-to-GPU interleaving stride from the performance model
    (Equation 1): every subgroup whose 1-based position is a multiple of ``stride`` is
    updated on the GPU.  ``static_residents`` are the indices whose optimizer state
    permanently lives on the GPU (the TwinFlow ratio); they always update on the GPU.
    """
    if num_subgroups < 0:
        raise ConfigurationError("num_subgroups must be non-negative")
    if stride < 1:
        raise ConfigurationError("stride must be >= 1")
    residents = frozenset(int(i) for i in static_residents)
    for resident in residents:
        if not 0 <= resident < num_subgroups:
            raise ConfigurationError(f"static resident index {resident} out of range")

    assignments: list[SubgroupAssignment] = []
    for index in range(num_subgroups):
        if index in residents:
            assignments.append(
                SubgroupAssignment(index, UpdateTarget.GPU, AssignmentReason.STATIC_RESIDENT)
            )
        elif (index + 1) % stride == 0:
            assignments.append(SubgroupAssignment(index, UpdateTarget.GPU, AssignmentReason.STRIDE))
        else:
            assignments.append(
                SubgroupAssignment(index, UpdateTarget.CPU, AssignmentReason.CPU_DEFAULT)
            )
    plan = UpdatePlan(assignments=tuple(assignments), stride=stride, static_residents=residents)
    plan.validate()
    return plan


def build_cpu_only_plan(num_subgroups: int, static_residents: frozenset[int] | set[int] = frozenset()) -> UpdatePlan:
    """Plan of the blocking baselines: only static residents run on the GPU.

    With an empty resident set this is DeepSpeed ZeRO-3 CPU offload; with a non-empty
    set it is TwinFlow.  Implemented as a stride larger than the subgroup count so no
    dynamic GPU scheduling happens.
    """
    if num_subgroups < 0:
        raise ConfigurationError("num_subgroups must be non-negative")
    residents = frozenset(int(i) for i in static_residents)
    stride = num_subgroups + 1 if num_subgroups else 1
    return build_update_plan(num_subgroups, stride, residents)
