"""Deep Optimizer States middleware facade and strategy interface.

The paper packages its contribution as a middleware that plugs into DeepSpeed and is
"enabled and configured through a single JSON entry".  This module provides the same
surface for the reproduction:

* :class:`DeepOptimizerStatesConfig` — the JSON-able configuration block;
* :class:`OffloadStrategy` — the interface every offloading strategy implements
  (the two baselines live in :mod:`repro.baselines`);
* :class:`DeepOptimizerStates` — the interleaved-offloading strategy itself, which
  knows how to pick its stride from the performance model, build Algorithm 1 plans,
  drive the numeric executor, and emit the overlapped operation graphs used by the
  timing simulation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.serialization import from_dict, to_dict
from repro.core.gradient_flush import (
    GradientFlushOps,
    build_baseline_gradient_flush,
    build_overlapped_gradient_flush,
    make_overlapped_flush_rows,
)
from repro.core.numeric_executor import InterleavedNumericExecutor, SequentialCpuExecutor
from repro.core.performance_model import PerformanceModel, optimal_update_stride
from repro.core.scheduler import UpdatePlan, build_cpu_only_plan, build_update_plan
from repro.core.sim_executor import (
    UpdatePhaseOps,
    build_blocking_offload_update,
    build_interleaved_update,
    build_interleaved_update_rows,
)
from repro.hardware.contention import HostContentionModel
from repro.hardware.throughput import ThroughputProfile
from repro.zero.offload import OffloadConfig, OffloadDevice
from repro.zero.stage3 import ShardedMixedPrecisionOptimizer


@dataclass(frozen=True)
class DeepOptimizerStatesConfig:
    """The single configuration block of the middleware (JSON-serialisable)."""

    enabled: bool = True
    subgroup_size: int = 100_000_000
    update_stride: int = 0  # 0 = derive from the performance model (Equation 1)
    min_update_stride: int = 2
    max_update_stride: int = 8
    static_gpu_fraction: float = 0.0
    static_residents_at_end: bool = True
    pin_host_memory: bool = True
    keep_gpu_scheduled_gradients_on_gpu: bool = True

    def __post_init__(self) -> None:
        if self.subgroup_size <= 0:
            raise ConfigurationError("subgroup_size must be positive")
        if self.update_stride < 0:
            raise ConfigurationError("update_stride must be >= 0 (0 selects automatic)")
        if self.min_update_stride < 1 or self.max_update_stride < self.min_update_stride:
            raise ConfigurationError("invalid stride bounds")
        if not 0.0 <= self.static_gpu_fraction <= 1.0:
            raise ConfigurationError("static_gpu_fraction must be in [0, 1]")

    def to_json_dict(self) -> dict:
        """The dictionary a user would paste into the training-runtime JSON config."""
        return {"deep_optimizer_states": to_dict(self)}

    @classmethod
    def from_json_dict(cls, data: dict) -> "DeepOptimizerStatesConfig":
        """Parse a configuration block (accepts both wrapped and bare dictionaries)."""
        block = data.get("deep_optimizer_states", data)
        return from_dict(cls, block)


class OffloadStrategy(abc.ABC):
    """Interface implemented by every optimizer-offloading strategy."""

    name: str = "strategy"
    display_name: str = "strategy"

    @property
    @abc.abstractmethod
    def static_gpu_fraction(self) -> float:
        """Fraction of the optimizer state statically resident on the GPU."""

    @abc.abstractmethod
    def offload_config(self, subgroup_size: int) -> OffloadConfig:
        """The ZeRO offload configuration to shard the optimizer with."""

    @abc.abstractmethod
    def build_plan(self, num_subgroups: int, profile: ThroughputProfile) -> UpdatePlan:
        """Scheduling plan for one rank's subgroups."""

    @abc.abstractmethod
    def flush_blocks_backward(self) -> bool:
        """Whether the gradient flush serialises the backward pass (baseline behaviour)."""

    @abc.abstractmethod
    def stages_subgroup_on_gpu(self) -> bool:
        """Whether the strategy dynamically stages optimizer subgroups on the GPU."""

    @abc.abstractmethod
    def build_gradient_flush(
        self,
        engine,
        profile: ThroughputProfile,
        subgroup_params: dict[int, int],
        compute_deps: dict[int, int],
        plan: UpdatePlan,
    ) -> GradientFlushOps:
        """Submit the backward-pass gradient-flush operations."""

    @abc.abstractmethod
    def build_update_phase(
        self,
        engine,
        profile: ThroughputProfile,
        plan: UpdatePlan,
        subgroup_params: dict[int, int],
        *,
        grad_ready_ops: dict[int, int],
        start_deps: tuple[int, ...],
        contention: HostContentionModel | None,
        staged_subgroup_bytes: int = 0,
    ) -> UpdatePhaseOps:
        """Submit the update-phase operations."""

    @abc.abstractmethod
    def numeric_executor(self, num_subgroups: int, profile: ThroughputProfile | None = None):
        """Executor for :meth:`ShardedMixedPrecisionOptimizer.step` (numeric path)."""

    # ------------------------------------------------------------------ op batching
    #
    # The array-batched fast path of ``simulate_job`` asks the strategy for
    # row-emitting twins of the two builders above.  Strategies that do not
    # implement them keep working: ``supports_op_batch()`` defaults to False and
    # the simulation falls back to eager ``SimOp`` submission.

    def supports_op_batch(self) -> bool:
        """True when the strategy provides the row-emitting builder twins."""
        return False

    def flush_row_builder(self, batch, profile: ThroughputProfile, plan: UpdatePlan):
        """Per-subgroup flush row emitter (see :mod:`repro.core.gradient_flush`)."""
        raise NotImplementedError(f"{self.name} does not support op batching")

    def build_update_phase_rows(
        self,
        batch,
        profile: ThroughputProfile,
        plan: UpdatePlan,
        subgroup_params: dict[int, int],
        *,
        grad_ready_ops: dict[int, int],
        start_deps: tuple[int, ...],
        contention: HostContentionModel | None,
        staged_subgroup_bytes: int = 0,
    ) -> UpdatePhaseOps:
        """Row-emitting twin of :meth:`build_update_phase`."""
        raise NotImplementedError(f"{self.name} does not support op batching")

    def describe(self) -> dict:
        """Human-readable summary."""
        return {"strategy": self.name, "static_gpu_fraction": self.static_gpu_fraction}


class DeepOptimizerStates(OffloadStrategy):
    """The paper's strategy: interleaved, overlapped CPU-GPU optimizer updates."""

    name = "deep-optimizer-states"
    display_name = "Deep Optimizer States"

    def __init__(self, config: DeepOptimizerStatesConfig | None = None) -> None:
        self.config = config or DeepOptimizerStatesConfig()
        if not self.config.enabled:
            raise ConfigurationError(
                "DeepOptimizerStates instantiated with enabled=False; use a baseline strategy instead"
            )

    # ------------------------------------------------------------------ planning

    @property
    def static_gpu_fraction(self) -> float:
        return self.config.static_gpu_fraction

    def offload_config(self, subgroup_size: int | None = None) -> OffloadConfig:
        return OffloadConfig(
            device=OffloadDevice.CPU,
            subgroup_size=subgroup_size or self.config.subgroup_size,
            pin_memory=self.config.pin_host_memory,
            static_gpu_fraction=self.config.static_gpu_fraction,
            static_residents_at_end=self.config.static_residents_at_end,
        )

    def update_stride(self, profile: ThroughputProfile) -> int:
        """The interleaving stride: explicit from the config, or Equation 1 otherwise."""
        if self.config.update_stride:
            return self.config.update_stride
        return optimal_update_stride(
            profile,
            min_stride=self.config.min_update_stride,
            max_stride=self.config.max_update_stride,
        )

    def performance_model(self, profile: ThroughputProfile) -> PerformanceModel:
        """The performance model parameterised with this configuration's bounds."""
        return PerformanceModel(
            profile=profile,
            min_stride=self.config.min_update_stride,
            max_stride=self.config.max_update_stride,
        )

    def build_plan(self, num_subgroups: int, profile: ThroughputProfile) -> UpdatePlan:
        offload = self.offload_config(self.config.subgroup_size)
        residents = offload.static_resident_indices(num_subgroups)
        return build_update_plan(num_subgroups, self.update_stride(profile), residents)

    # ------------------------------------------------------------------ simulation

    def flush_blocks_backward(self) -> bool:
        return False

    def stages_subgroup_on_gpu(self) -> bool:
        return True

    def build_gradient_flush(self, engine, profile, subgroup_params, compute_deps, plan):
        return build_overlapped_gradient_flush(
            engine, profile, subgroup_params, compute_deps, plan=plan
        )

    def build_update_phase(
        self,
        engine,
        profile,
        plan,
        subgroup_params,
        *,
        grad_ready_ops,
        start_deps,
        contention,
        staged_subgroup_bytes: int = 0,
    ):
        return build_interleaved_update(
            engine,
            profile,
            plan,
            subgroup_params,
            grad_ready_ops=grad_ready_ops,
            start_deps=start_deps,
            contention=contention,
            gradients_on_gpu=self.config.keep_gpu_scheduled_gradients_on_gpu,
            staged_subgroup_bytes=staged_subgroup_bytes,
        )

    # ------------------------------------------------------------------ op batching

    def supports_op_batch(self) -> bool:
        return True

    def flush_row_builder(self, batch, profile, plan):
        return make_overlapped_flush_rows(batch, profile, plan)

    def build_update_phase_rows(
        self,
        batch,
        profile,
        plan,
        subgroup_params,
        *,
        grad_ready_ops,
        start_deps,
        contention,
        staged_subgroup_bytes: int = 0,
    ):
        return build_interleaved_update_rows(
            batch,
            profile,
            plan,
            subgroup_params,
            grad_ready_ops=grad_ready_ops,
            start_deps=start_deps,
            contention=contention,
            gradients_on_gpu=self.config.keep_gpu_scheduled_gradients_on_gpu,
            staged_subgroup_bytes=staged_subgroup_bytes,
        )

    # ------------------------------------------------------------------ numeric path

    def numeric_executor(self, num_subgroups: int, profile: ThroughputProfile | None = None):
        stride = self.config.update_stride or (
            self.update_stride(profile) if profile is not None else self.config.min_update_stride
        )
        return InterleavedNumericExecutor(stride=stride)

    def attach(
        self, optimizer: ShardedMixedPrecisionOptimizer, profile: ThroughputProfile | None = None
    ) -> InterleavedNumericExecutor:
        """Return the executor to pass to ``optimizer.step`` for every iteration."""
        num_subgroups = optimizer.num_subgroups(optimizer.ranks[0]) if optimizer.ranks else 0
        return self.numeric_executor(num_subgroups, profile)

    # ------------------------------------------------------------------ reporting

    def describe(self) -> dict:
        summary = super().describe()
        summary.update(
            {
                "subgroup_size": self.config.subgroup_size,
                "update_stride": self.config.update_stride or "auto (Equation 1)",
                "static_residents_at_end": self.config.static_residents_at_end,
                "keep_gpu_scheduled_gradients_on_gpu": self.config.keep_gpu_scheduled_gradients_on_gpu,
            }
        )
        return summary


# Convenience alias matching the name used in the experiments and examples.
DeepOptimizerStatesStrategy = DeepOptimizerStates


def sequential_cpu_executor() -> SequentialCpuExecutor:
    """Executor reproducing the baseline all-CPU update order (numeric path)."""
    return SequentialCpuExecutor()


def cpu_only_plan(num_subgroups: int, static_residents=frozenset()) -> UpdatePlan:
    """Re-export of the baseline plan builder for symmetry with :func:`build_update_plan`."""
    return build_cpu_only_plan(num_subgroups, static_residents)
