"""Performance model for the optimal CPU-to-GPU update interleaving (Section 4.2).

Equation 1 of the paper balances, for one "interleave group" of ``k`` CPU-updated
subgroups plus one GPU-updated subgroup of ``S`` parameters each:

* the CPU-side work: ``k * (S / U_c + S / D_c)`` (update + FP32->FP16 downscale);
* against the GPU-side cycle: the larger of the D2H and H2D transfer budgets
  (``3S/B`` to evict the previous staged subgroup, ``3S/B + k*S/(2B)`` to prefetch the
  next one and ship the ``k`` CPU-updated FP16 parameter slices) plus the GPU update
  itself ``S / U_g``.

Solving for ``k`` gives the closed form implemented by :func:`cpu_to_gpu_update_ratio`.
A noteworthy property (tested) is that ``k`` does not depend on the subgroup size
``S``.  The paper then uses ``k`` as the *stride* of Algorithm 1 — every ``k``-th
subgroup is scheduled on the GPU ("k = 2, i.e. every alternate subgroup should be
updated on the GPU") — so :func:`optimal_update_stride` rounds and clamps the ratio to
an integer stride >= 2 (the GPU can stage only one subgroup at a time, so a stride of
1 would leave no CPU work to overlap the swap transfers with).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.hardware.throughput import ThroughputProfile

MIN_UPDATE_STRIDE = 2


def cpu_to_gpu_update_ratio(profile: ThroughputProfile) -> float:
    """Equation 1: the raw (real-valued) CPU-to-GPU update ratio ``k``.

    Larger values mean the CPU is comparatively fast (schedule the GPU rarely);
    values below 1 mean the PCIe link and GPU could absorb more than half of the
    updates if memory allowed it.
    """
    transfer = 3.0 / profile.pcie_pps
    numerator = transfer + 1.0 / profile.gpu_update_pps
    denominator = (
        1.0 / profile.cpu_update_pps
        + 1.0 / profile.cpu_downscale_pps
        - 1.0 / (2.0 * profile.pcie_pps)
    )
    if denominator <= 0:
        raise ConfigurationError(
            "Equation 1 is undefined: CPU update + downscale is faster than the H2D "
            "budget it must hide; offloading to the CPU is never the bottleneck here"
        )
    return numerator / denominator


def optimal_update_stride(
    profile: ThroughputProfile,
    *,
    min_stride: int = MIN_UPDATE_STRIDE,
    max_stride: int | None = None,
) -> int:
    """The integer "update stride" used by Algorithm 1 (every k-th subgroup on the GPU)."""
    if min_stride < 1:
        raise ConfigurationError("min_stride must be >= 1")
    ratio = cpu_to_gpu_update_ratio(profile)
    stride = max(min_stride, int(round(ratio)))
    if max_stride is not None:
        if max_stride < min_stride:
            raise ConfigurationError("max_stride must be >= min_stride")
        stride = min(stride, max_stride)
    return stride


@dataclass(frozen=True)
class UpdatePhaseEstimate:
    """Analytic estimate of one rank's update-phase composition."""

    total_seconds: float
    cpu_busy_seconds: float
    gpu_busy_seconds: float
    h2d_busy_seconds: float
    d2h_busy_seconds: float
    gpu_scheduled_subgroups: int
    cpu_scheduled_subgroups: int

    @property
    def update_throughput_pps(self) -> float:
        """Parameters updated per second implied by this estimate (needs num_params)."""
        return 0.0 if self.total_seconds == 0 else float("nan")


@dataclass(frozen=True)
class PerformanceModel:
    """Bundles a throughput profile with stride selection and analytic time estimates."""

    profile: ThroughputProfile
    min_stride: int = MIN_UPDATE_STRIDE
    max_stride: int | None = None

    @property
    def ratio(self) -> float:
        """Raw Equation 1 ratio."""
        return cpu_to_gpu_update_ratio(self.profile)

    @property
    def stride(self) -> int:
        """Clamped integer update stride."""
        return optimal_update_stride(
            self.profile, min_stride=self.min_stride, max_stride=self.max_stride
        )

    def gpu_fraction(self) -> float:
        """Fraction of dynamically scheduled subgroups that run on the GPU (1/stride)."""
        return 1.0 / self.stride

    # ------------------------------------------------------------------ estimates

    def estimate_blocking_offload(
        self, num_subgroups: int, subgroup_params: int, *, static_gpu_resident: int = 0
    ) -> UpdatePhaseEstimate:
        """Update time of the blocking baseline (ZeRO-3 offload / TwinFlow).

        The baseline updates the static GPU residents first (CPU idle), then runs
        update -> downscale -> blocking H2D for every CPU subgroup in sequence.
        """
        self._check_workload(num_subgroups, subgroup_params, static_gpu_resident)
        profile = self.profile
        size = subgroup_params
        cpu_subgroups = num_subgroups - static_gpu_resident
        gpu_seconds = static_gpu_resident * size / profile.gpu_update_pps
        per_cpu_subgroup = (
            size / profile.cpu_update_pps
            + size / profile.cpu_downscale_pps
            + size / (2.0 * profile.pcie_pps)
        )
        cpu_seconds = cpu_subgroups * (size / profile.cpu_update_pps + size / profile.cpu_downscale_pps)
        h2d_seconds = cpu_subgroups * size / (2.0 * profile.pcie_pps)
        total = gpu_seconds + cpu_subgroups * per_cpu_subgroup
        return UpdatePhaseEstimate(
            total_seconds=total,
            cpu_busy_seconds=cpu_seconds,
            gpu_busy_seconds=gpu_seconds,
            h2d_busy_seconds=h2d_seconds,
            d2h_busy_seconds=0.0,
            gpu_scheduled_subgroups=static_gpu_resident,
            cpu_scheduled_subgroups=cpu_subgroups,
        )

    def estimate_interleaved(
        self,
        num_subgroups: int,
        subgroup_params: int,
        *,
        stride: int | None = None,
        static_gpu_resident: int = 0,
    ) -> UpdatePhaseEstimate:
        """Update time of the interleaved (Deep Optimizer States) schedule.

        The phase is modelled as a pipeline whose steady-state rate is limited by the
        busiest resource: the CPU (updates + downscales of the CPU share), the GPU
        (updates of the GPU share), or the PCIe directions (subgroup swaps plus
        FP16 parameter copies).
        """
        self._check_workload(num_subgroups, subgroup_params, static_gpu_resident)
        stride = stride if stride is not None else self.stride
        if stride < 1:
            raise ConfigurationError("stride must be >= 1")
        profile = self.profile
        size = subgroup_params

        dynamic = num_subgroups - static_gpu_resident
        gpu_dynamic = dynamic // stride
        cpu_subgroups = dynamic - gpu_dynamic
        gpu_subgroups = gpu_dynamic + static_gpu_resident

        cpu_busy = cpu_subgroups * (size / profile.cpu_update_pps + size / profile.cpu_downscale_pps)
        gpu_busy = gpu_subgroups * size / profile.gpu_update_pps
        h2d_busy = (
            gpu_dynamic * 3.0 * size / profile.pcie_pps
            + cpu_subgroups * size / (2.0 * profile.pcie_pps)
        )
        d2h_busy = gpu_dynamic * 3.0 * size / profile.pcie_pps

        # Pipeline fill/drain: the first GPU subgroup's prefetch and the last flush
        # cannot be hidden behind CPU work.
        startup = 3.0 * size / profile.pcie_pps if gpu_dynamic else 0.0
        total = max(cpu_busy, gpu_busy, h2d_busy, d2h_busy) + startup + size / profile.gpu_update_pps
        total = max(total, gpu_busy + (startup if gpu_dynamic else 0.0))
        return UpdatePhaseEstimate(
            total_seconds=total,
            cpu_busy_seconds=cpu_busy,
            gpu_busy_seconds=gpu_busy,
            h2d_busy_seconds=h2d_busy,
            d2h_busy_seconds=d2h_busy,
            gpu_scheduled_subgroups=gpu_subgroups,
            cpu_scheduled_subgroups=cpu_subgroups,
        )

    def best_stride_by_estimate(
        self, num_subgroups: int, subgroup_params: int, candidates: list[int] | None = None
    ) -> int:
        """Pick the candidate stride with the lowest estimated interleaved update time."""
        candidates = candidates or [2, 3, 4, 5]
        best_stride = candidates[0]
        best_time = float("inf")
        for candidate in candidates:
            estimate = self.estimate_interleaved(num_subgroups, subgroup_params, stride=candidate)
            if estimate.total_seconds < best_time:
                best_time = estimate.total_seconds
                best_stride = candidate
        return best_stride

    @staticmethod
    def _check_workload(num_subgroups: int, subgroup_params: int, static_gpu_resident: int) -> None:
        if num_subgroups <= 0:
            raise ConfigurationError("num_subgroups must be positive")
        if subgroup_params <= 0:
            raise ConfigurationError("subgroup_params must be positive")
        if not 0 <= static_gpu_resident <= num_subgroups:
            raise ConfigurationError("static_gpu_resident out of range")
