"""Update-phase operation graphs (Figure 5) built on the discrete-event simulator.

Two builders are provided:

* :func:`build_blocking_offload_update` — the state-of-the-art behaviour (DeepSpeed
  ZeRO-3 offload and TwinFlow, Figure 5 top): static GPU residents first (CPU idle),
  then for every CPU subgroup a *blocking* sequence of CPU update, FP32->FP16
  downscale and H2D copy of the updated parameters.
* :func:`build_interleaved_update` — Deep Optimizer States (Figure 5 bottom,
  Algorithm 1): every ``stride``-th subgroup is prefetched to the GPU (H2D of FP32
  parameters/momentum/variance), updated there and flushed back (D2H), fully
  overlapped with CPU updates, asynchronous downscales and FP16 parameter copies, and
  exploiting both PCIe directions concurrently.

Both return the operations after which every subgroup's updated FP16 parameters are
available on the GPU — the dependencies of the next iteration's forward pass.

Each eager builder has a row-emitting twin (``build_*_update_rows``) that appends
row tuples to an :class:`~repro.sim.opbatch.OpBatch` instead of constructing
``SimOp`` objects — the array-batched fast path of
:func:`repro.training.simulation.simulate_job`.  The twins must emit bit-identical
operations in the same order (ids are drawn from the shared global counter), which
``tests/test_opbatch_equivalence.py`` verifies end-to-end for every strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.core.scheduler import AssignmentReason, UpdatePlan
from repro.hardware.contention import HostContentionModel
from repro.hardware.throughput import ThroughputProfile
from repro.precision.dtypes import DType
from repro.sim.engine import SimEngine
from repro.sim.opbatch import OpBatch
from repro.sim.ops import OpKind, SimOp, next_op_id

FP32 = DType.FP32.itemsize
FP16 = DType.FP16.itemsize


@dataclass
class UpdatePhaseOps:
    """Handles returned by the update-phase builders."""

    op_ids: list[int] = field(default_factory=list)
    params_ready_ops: list[int] = field(default_factory=list)
    per_subgroup_done: dict[int, int] = field(default_factory=dict)
    h2d_bytes: int = 0
    d2h_bytes: int = 0

    def record(self, op: SimOp) -> SimOp:
        """Track an op id and its transfer payload."""
        self.op_ids.append(op.op_id)
        if op.kind == OpKind.H2D:
            self.h2d_bytes += op.payload_bytes
        if op.kind == OpKind.D2H:
            self.d2h_bytes += op.payload_bytes
        return op


def _check_inputs(plan: UpdatePlan, subgroup_params: dict[int, int]) -> None:
    if plan.num_subgroups != len(subgroup_params):
        raise ConfigurationError(
            f"plan covers {plan.num_subgroups} subgroups, sizes given for {len(subgroup_params)}"
        )
    for index in range(plan.num_subgroups):
        if index not in subgroup_params:
            raise ConfigurationError(f"missing size for subgroup {index}")
        if subgroup_params[index] <= 0:
            raise ConfigurationError(f"subgroup {index} has non-positive size")


def build_blocking_offload_update(
    engine: SimEngine,
    profile: ThroughputProfile,
    plan: UpdatePlan,
    subgroup_params: dict[int, int],
    *,
    grad_ready_ops: dict[int, int] | None = None,
    start_deps: tuple[int, ...] = (),
    phase: str = "update",
) -> UpdatePhaseOps:
    """Figure 5 (top): static residents on the GPU, everything else blocking on the CPU."""
    _check_inputs(plan, subgroup_params)
    grad_ready_ops = grad_ready_ops or {}
    result = UpdatePhaseOps()
    blocking_tail: int | None = None

    # Static GPU residents are updated first; the CPU sits idle while they run.
    for index in sorted(plan.static_residents):
        params = subgroup_params[index]
        deps = list(start_deps)
        if index in grad_ready_ops:
            deps.append(grad_ready_ops[index])
        update = result.record(SimOp(
            name=f"gpu_update[{index}]",
            kind=OpKind.GPU_UPDATE,
            resource="gpu.compute",
            duration=params / profile.gpu_update_pps,
            deps=tuple(deps),
            phase=phase,
            subgroup=index,
        ))
        engine.submit(update)
        convert = result.record(SimOp(
            name=f"gpu_downscale[{index}]",
            kind=OpKind.GPU_CONVERT,
            resource="gpu.compute",
            duration=params / profile.gpu_convert_pps,
            deps=(update.op_id,),
            phase=phase,
            subgroup=index,
        ))
        engine.submit(convert)
        blocking_tail = convert.op_id
        result.params_ready_ops.append(convert.op_id)
        result.per_subgroup_done[index] = convert.op_id

    # CPU-scheduled subgroups: update -> downscale -> blocking H2D, strictly in order.
    for index in plan.cpu_indices():
        params = subgroup_params[index]
        deps = list(start_deps)
        if blocking_tail is not None:
            deps.append(blocking_tail)
        if index in grad_ready_ops:
            deps.append(grad_ready_ops[index])
        update = result.record(SimOp(
            name=f"cpu_update[{index}]",
            kind=OpKind.CPU_UPDATE,
            resource="cpu",
            duration=params / profile.cpu_update_pps,
            deps=tuple(deps),
            phase=phase,
            subgroup=index,
        ))
        engine.submit(update)
        downscale = result.record(SimOp(
            name=f"cpu_downscale[{index}]",
            kind=OpKind.CPU_DOWNSCALE,
            resource="cpu",
            duration=params / profile.cpu_downscale_pps,
            deps=(update.op_id,),
            phase=phase,
            subgroup=index,
        ))
        engine.submit(downscale)
        copy = result.record(SimOp(
            name=f"h2d_params_fp16[{index}]",
            kind=OpKind.H2D,
            resource="pcie.h2d",
            duration=params / (2.0 * profile.pcie_pps),
            deps=(downscale.op_id,),
            phase=phase,
            subgroup=index,
            payload_bytes=params * FP16,
        ))
        engine.submit(copy)
        blocking_tail = copy.op_id
        result.params_ready_ops.append(copy.op_id)
        result.per_subgroup_done[index] = copy.op_id

    return result


def build_interleaved_update(
    engine: SimEngine,
    profile: ThroughputProfile,
    plan: UpdatePlan,
    subgroup_params: dict[int, int],
    *,
    grad_ready_ops: dict[int, int] | None = None,
    start_deps: tuple[int, ...] = (),
    phase: str = "update",
    contention: HostContentionModel | None = None,
    gradients_on_gpu: bool = True,
    staged_subgroup_bytes: int = 0,
) -> UpdatePhaseOps:
    """Figure 5 (bottom) / Algorithm 1: interleaved and overlapped CPU-GPU updates."""
    _check_inputs(plan, subgroup_params)
    grad_ready_ops = grad_ready_ops or {}
    result = UpdatePhaseOps()

    cpu_update_pps = profile.cpu_update_pps
    pcie_pps = profile.pcie_pps
    if contention is not None:
        has_dynamic = bool(plan.dynamic_gpu_indices())
        cpu_update_pps = contention.effective_cpu_update_pps(
            cpu_update_pps, transfers_overlap=has_dynamic
        )
        pcie_pps = contention.effective_pcie_pps(pcie_pps, bidirectional=has_dynamic)

    dynamic_gpu = plan.dynamic_gpu_indices()
    gpu_update_ops: dict[int, int] = {}
    prefetch_ops: dict[int, int] = {}

    def submit_prefetch(position: int, index: int) -> None:
        """H2D staging of subgroup ``index`` (FP32 p/m/v, plus gradients if flushed)."""
        params = subgroup_params[index]
        payload_params = 3 * params + (0 if gradients_on_gpu else params)
        deps = list(start_deps)
        if position >= 1:
            previous = dynamic_gpu[position - 1]
            deps.append(gpu_update_ops[previous])
        prefetch = result.record(SimOp(
            name=f"prefetch_in[{index}]",
            kind=OpKind.H2D,
            resource="pcie.h2d",
            duration=payload_params / pcie_pps,
            deps=tuple(deps),
            phase=phase,
            subgroup=index,
            payload_bytes=payload_params * FP32,
            gpu_mem_delta=staged_subgroup_bytes,
        ))
        engine.submit(prefetch)
        prefetch_ops[index] = prefetch.op_id

    def submit_gpu_update(index: int, extra_deps: tuple[int, ...] = ()) -> tuple[int, int]:
        """GPU update + on-device FP32->FP16 downscale of subgroup ``index``."""
        params = subgroup_params[index]
        deps = list(start_deps) + list(extra_deps)
        if index in grad_ready_ops:
            deps.append(grad_ready_ops[index])
        update = result.record(SimOp(
            name=f"gpu_update[{index}]",
            kind=OpKind.GPU_UPDATE,
            resource="gpu.compute",
            duration=params / profile.gpu_update_pps,
            deps=tuple(deps),
            phase=phase,
            subgroup=index,
        ))
        engine.submit(update)
        convert = result.record(SimOp(
            name=f"gpu_downscale[{index}]",
            kind=OpKind.GPU_CONVERT,
            resource="gpu.compute",
            duration=params / profile.gpu_convert_pps,
            deps=(update.op_id,),
            phase=phase,
            subgroup=index,
        ))
        engine.submit(convert)
        return update.op_id, convert.op_id

    # The first staged subgroup is prefetched right at the start of the update phase,
    # overlapping the CPU updates of the leading subgroups (Figure 5 bottom).
    if dynamic_gpu:
        submit_prefetch(0, dynamic_gpu[0])

    previous_cpu_op: int | None = None
    for index in range(plan.num_subgroups):
        assignment = plan.assignments[index]
        params = subgroup_params[index]

        if assignment.reason == AssignmentReason.STRIDE:
            position = dynamic_gpu.index(index)
            update_id, convert_id = submit_gpu_update(index, (prefetch_ops[index],))
            gpu_update_ops[index] = update_id
            result.params_ready_ops.append(convert_id)
            result.per_subgroup_done[index] = convert_id
            flush = result.record(SimOp(
                name=f"flush_out[{index}]",
                kind=OpKind.D2H,
                resource="pcie.d2h",
                duration=3 * params / pcie_pps,
                deps=(update_id,),
                phase=phase,
                subgroup=index,
                payload_bytes=3 * params * FP32,
                gpu_mem_delta=-staged_subgroup_bytes,
            ))
            engine.submit(flush)
            # Prefetch the next staged subgroup as soon as this one's update finished
            # (the staging buffers are double-buffered, so the H2D can overlap the
            # D2H flush on the other copy engine — full-duplex PCIe).
            if position + 1 < len(dynamic_gpu):
                submit_prefetch(position + 1, dynamic_gpu[position + 1])
            continue

        if assignment.reason == AssignmentReason.STATIC_RESIDENT:
            # Static residents (placed last by Deep Optimizer States) run after the
            # dynamically staged subgroups have been issued.
            extra = tuple(gpu_update_ops[i] for i in dynamic_gpu if i < index)
            _, convert_id = submit_gpu_update(index, extra[-1:] if extra else ())
            result.params_ready_ops.append(convert_id)
            result.per_subgroup_done[index] = convert_id
            continue

        # CPU-scheduled subgroup: update, asynchronous downscale, asynchronous H2D.
        deps = list(start_deps)
        if previous_cpu_op is not None:
            deps.append(previous_cpu_op)
        if index in grad_ready_ops:
            deps.append(grad_ready_ops[index])
        update = result.record(SimOp(
            name=f"cpu_update[{index}]",
            kind=OpKind.CPU_UPDATE,
            resource="cpu",
            duration=params / cpu_update_pps,
            deps=tuple(deps),
            phase=phase,
            subgroup=index,
        ))
        engine.submit(update)
        downscale = result.record(SimOp(
            name=f"cpu_downscale[{index}]",
            kind=OpKind.CPU_DOWNSCALE,
            resource="cpu",
            duration=params / profile.cpu_downscale_pps,
            deps=(update.op_id,),
            phase=phase,
            subgroup=index,
        ))
        engine.submit(downscale)
        copy = result.record(SimOp(
            name=f"h2d_params_fp16[{index}]",
            kind=OpKind.H2D,
            resource="pcie.h2d",
            duration=params / (2.0 * pcie_pps),
            deps=(downscale.op_id,),
            phase=phase,
            subgroup=index,
            payload_bytes=params * FP16,
        ))
        engine.submit(copy)
        previous_cpu_op = update.op_id
        result.params_ready_ops.append(copy.op_id)
        result.per_subgroup_done[index] = copy.op_id

    return result


# --------------------------------------------------------------------- row twins


def build_blocking_offload_update_rows(
    batch: OpBatch,
    profile: ThroughputProfile,
    plan: UpdatePlan,
    subgroup_params: dict[int, int],
    *,
    grad_ready_ops: dict[int, int] | None = None,
    start_deps: tuple[int, ...] = (),
    phase: str = "update",
) -> UpdatePhaseOps:
    """Row-emitting twin of :func:`build_blocking_offload_update` (same op stream)."""
    _check_inputs(plan, subgroup_params)
    grad_ready_ops = grad_ready_ops or {}
    result = UpdatePhaseOps()
    op_ids_append = result.op_ids.append
    ready_append = result.params_ready_ops.append
    rows_append = batch.rows.append
    new_id = next_op_id
    gpu_update_pps = profile.gpu_update_pps
    gpu_convert_pps = profile.gpu_convert_pps
    cpu_update_pps = profile.cpu_update_pps
    cpu_downscale_pps = profile.cpu_downscale_pps
    pcie_pps = profile.pcie_pps
    h2d_bytes = 0
    blocking_tail: int | None = None

    for index in sorted(plan.static_residents):
        params = subgroup_params[index]
        deps = start_deps
        if index in grad_ready_ops:
            deps += (grad_ready_ops[index],)
        update_id = new_id()
        rows_append((f"gpu_update[{index}]", OpKind.GPU_UPDATE, "gpu.compute",
                     params / gpu_update_pps, deps, phase, index, 0, 0, update_id))
        op_ids_append(update_id)
        convert_id = new_id()
        rows_append((f"gpu_downscale[{index}]", OpKind.GPU_CONVERT, "gpu.compute",
                     params / gpu_convert_pps, (update_id,), phase, index, 0, 0, convert_id))
        op_ids_append(convert_id)
        blocking_tail = convert_id
        ready_append(convert_id)
        result.per_subgroup_done[index] = convert_id

    for index in plan.cpu_indices():
        params = subgroup_params[index]
        deps = start_deps
        if blocking_tail is not None:
            deps += (blocking_tail,)
        if index in grad_ready_ops:
            deps += (grad_ready_ops[index],)
        update_id = new_id()
        rows_append((f"cpu_update[{index}]", OpKind.CPU_UPDATE, "cpu",
                     params / cpu_update_pps, deps, phase, index, 0, 0, update_id))
        op_ids_append(update_id)
        downscale_id = new_id()
        rows_append((f"cpu_downscale[{index}]", OpKind.CPU_DOWNSCALE, "cpu",
                     params / cpu_downscale_pps, (update_id,), phase, index, 0, 0, downscale_id))
        op_ids_append(downscale_id)
        copy_id = new_id()
        payload = params * FP16
        rows_append((f"h2d_params_fp16[{index}]", OpKind.H2D, "pcie.h2d",
                     params / (2.0 * pcie_pps), (downscale_id,), phase, index,
                     payload, 0, copy_id))
        op_ids_append(copy_id)
        h2d_bytes += payload
        blocking_tail = copy_id
        ready_append(copy_id)
        result.per_subgroup_done[index] = copy_id

    result.h2d_bytes = h2d_bytes
    return result


def build_interleaved_update_rows(
    batch: OpBatch,
    profile: ThroughputProfile,
    plan: UpdatePlan,
    subgroup_params: dict[int, int],
    *,
    grad_ready_ops: dict[int, int] | None = None,
    start_deps: tuple[int, ...] = (),
    phase: str = "update",
    contention: HostContentionModel | None = None,
    gradients_on_gpu: bool = True,
    staged_subgroup_bytes: int = 0,
) -> UpdatePhaseOps:
    """Row-emitting twin of :func:`build_interleaved_update` (same op stream).

    The per-subgroup scans of the eager builder (``dynamic_gpu.index(...)`` and the
    trailing-resident dependency search) are replaced with a precomputed position
    map and :meth:`UpdatePlan.prev_on_gpu`, which change the complexity from
    O(n^2) to O(n log n) without changing a single emitted operation.
    """
    _check_inputs(plan, subgroup_params)
    grad_ready_ops = grad_ready_ops or {}
    result = UpdatePhaseOps()
    op_ids_append = result.op_ids.append
    ready_append = result.params_ready_ops.append
    rows_append = batch.rows.append
    new_id = next_op_id
    gpu_update_pps = profile.gpu_update_pps
    gpu_convert_pps = profile.gpu_convert_pps
    cpu_downscale_pps = profile.cpu_downscale_pps
    h2d_bytes = 0
    d2h_bytes = 0

    cpu_update_pps = profile.cpu_update_pps
    pcie_pps = profile.pcie_pps
    dynamic_gpu = plan.dynamic_gpu_indices()
    if contention is not None:
        has_dynamic = bool(dynamic_gpu)
        cpu_update_pps = contention.effective_cpu_update_pps(
            cpu_update_pps, transfers_overlap=has_dynamic
        )
        pcie_pps = contention.effective_pcie_pps(pcie_pps, bidirectional=has_dynamic)

    position_of = {index: position for position, index in enumerate(dynamic_gpu)}
    gpu_update_ops: dict[int, int] = {}
    prefetch_ops: dict[int, int] = {}

    def emit_prefetch(position: int, index: int) -> None:
        params = subgroup_params[index]
        payload_params = 3 * params + (0 if gradients_on_gpu else params)
        deps = start_deps
        if position >= 1:
            deps += (gpu_update_ops[dynamic_gpu[position - 1]],)
        prefetch_id = new_id()
        payload = payload_params * FP32
        rows_append((f"prefetch_in[{index}]", OpKind.H2D, "pcie.h2d",
                     payload_params / pcie_pps, deps, phase, index,
                     payload, staged_subgroup_bytes, prefetch_id))
        op_ids_append(prefetch_id)
        prefetch_ops[index] = prefetch_id
        nonlocal h2d_bytes
        h2d_bytes += payload

    def emit_gpu_update(index: int, extra_deps: tuple[int, ...] = ()) -> tuple[int, int]:
        params = subgroup_params[index]
        deps = start_deps + extra_deps
        if index in grad_ready_ops:
            deps += (grad_ready_ops[index],)
        update_id = new_id()
        rows_append((f"gpu_update[{index}]", OpKind.GPU_UPDATE, "gpu.compute",
                     params / gpu_update_pps, deps, phase, index, 0, 0, update_id))
        op_ids_append(update_id)
        convert_id = new_id()
        rows_append((f"gpu_downscale[{index}]", OpKind.GPU_CONVERT, "gpu.compute",
                     params / gpu_convert_pps, (update_id,), phase, index, 0, 0, convert_id))
        op_ids_append(convert_id)
        return update_id, convert_id

    if dynamic_gpu:
        emit_prefetch(0, dynamic_gpu[0])

    assignments = plan.assignments
    previous_cpu_op: int | None = None
    for index in range(plan.num_subgroups):
        reason = assignments[index].reason
        params = subgroup_params[index]

        if reason == AssignmentReason.STRIDE:
            position = position_of[index]
            update_id, convert_id = emit_gpu_update(index, (prefetch_ops[index],))
            gpu_update_ops[index] = update_id
            ready_append(convert_id)
            result.per_subgroup_done[index] = convert_id
            flush_id = new_id()
            payload = 3 * params * FP32
            rows_append((f"flush_out[{index}]", OpKind.D2H, "pcie.d2h",
                         3 * params / pcie_pps, (update_id,), phase, index,
                         payload, -staged_subgroup_bytes, flush_id))
            op_ids_append(flush_id)
            d2h_bytes += payload
            if position + 1 < len(dynamic_gpu):
                emit_prefetch(position + 1, dynamic_gpu[position + 1])
            continue

        if reason == AssignmentReason.STATIC_RESIDENT:
            previous_dynamic = plan.prev_on_gpu(index)
            extra = (gpu_update_ops[previous_dynamic],) if previous_dynamic is not None else ()
            _, convert_id = emit_gpu_update(index, extra)
            ready_append(convert_id)
            result.per_subgroup_done[index] = convert_id
            continue

        deps = start_deps
        if previous_cpu_op is not None:
            deps += (previous_cpu_op,)
        if index in grad_ready_ops:
            deps += (grad_ready_ops[index],)
        update_id = new_id()
        rows_append((f"cpu_update[{index}]", OpKind.CPU_UPDATE, "cpu",
                     params / cpu_update_pps, deps, phase, index, 0, 0, update_id))
        op_ids_append(update_id)
        downscale_id = new_id()
        rows_append((f"cpu_downscale[{index}]", OpKind.CPU_DOWNSCALE, "cpu",
                     params / cpu_downscale_pps, (update_id,), phase, index, 0, 0, downscale_id))
        op_ids_append(downscale_id)
        copy_id = new_id()
        payload = params * FP16
        rows_append((f"h2d_params_fp16[{index}]", OpKind.H2D, "pcie.h2d",
                     params / (2.0 * pcie_pps), (downscale_id,), phase, index,
                     payload, 0, copy_id))
        op_ids_append(copy_id)
        h2d_bytes += payload
        previous_cpu_op = update_id
        ready_append(copy_id)
        result.per_subgroup_done[index] = copy_id

    result.h2d_bytes = h2d_bytes
    result.d2h_bytes = d2h_bytes
    return result
