"""Testbed presets.

``JLSE_H100_NODE`` is the primary machine of the paper (Section 5.1); the GPU/CPU
update throughputs and PCIe bandwidths come directly from the text ("the 4xH100 GPUs
update ~100 Billion parameters of the model per second, while the 192 CPUs update the
model at ~8 Billion P/s", "~55 GB/s unidirectional D2H and H2D throughput for pinned
host memory", "133 GB/s unidirectional D2D").  ``LAMBDA_V100_NODE`` is the secondary
machine used to validate the performance model in Section 5.4.  ``POLARIS_A100_NODE``
and ``AWS_P3DN`` are the additional configurations the paper cites when motivating the
CPU-per-GPU sweep (Figure 14).
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.hardware.specs import (
    CpuSpec,
    GpuSpec,
    HostMemorySpec,
    MachineSpec,
    NvlinkSpec,
    PcieLinkSpec,
)

JLSE_H100_NODE = MachineSpec(
    name="jlse-4xh100",
    num_gpus=4,
    gpu=GpuSpec(
        name="NVIDIA H100 80GB HBM3",
        memory_gib=80.0,
        fp16_tflops=989.0,
        hbm_gbps=3350.0,
        adam_update_pps=25.0e9,
        onchip_convert_gbps=1200.0,
    ),
    cpu=CpuSpec(
        name="2x Intel Xeon Platinum 8468",
        sockets=2,
        cores_per_socket=48,
        threads_per_core=2,
        adam_update_pps_per_core=83.0e6,
        convert_gbps=62.0,
        unpinned_alloc_gbps=4.0,
        dram_gbps=300.0,
    ),
    pcie=PcieLinkSpec(
        generation=5,
        h2d_gbps_pinned=55.0,
        d2h_gbps_pinned=55.0,
        h2d_gbps_pageable=9.0,
        d2h_gbps_pageable=16.0,
    ),
    nvlink=NvlinkSpec(d2d_gbps=133.0),
    host_memory=HostMemorySpec(capacity_gib=512.0, numa_domains=2),
    description="ALCF JLSE testbed: 4x H100 80GB, 2x Xeon 8468, PCIe Gen5, 512 GB DDR5.",
)

LAMBDA_V100_NODE = MachineSpec(
    name="4xv100",
    num_gpus=4,
    gpu=GpuSpec(
        name="NVIDIA V100 32GB",
        memory_gib=32.0,
        fp16_tflops=112.0,
        hbm_gbps=900.0,
        adam_update_pps=35.0e9,
        onchip_convert_gbps=700.0,
    ),
    cpu=CpuSpec(
        name="2x Intel Xeon Gold 6152",
        sockets=2,
        cores_per_socket=22,
        threads_per_core=2,
        adam_update_pps_per_core=182.0e6,
        convert_gbps=35.0,
        unpinned_alloc_gbps=3.0,
        dram_gbps=180.0,
    ),
    pcie=PcieLinkSpec(
        generation=3,
        h2d_gbps_pinned=12.0,
        d2h_gbps_pinned=12.0,
        h2d_gbps_pageable=6.0,
        d2h_gbps_pageable=8.0,
    ),
    nvlink=NvlinkSpec(d2d_gbps=75.0),
    host_memory=HostMemorySpec(capacity_gib=192.0, numa_domains=2),
    description="Secondary validation machine of §5.4: 4x V100 32GB, 88 cores, 192 GB DRAM.",
)

POLARIS_A100_NODE = MachineSpec(
    name="polaris-4xa100",
    num_gpus=4,
    gpu=GpuSpec(
        name="NVIDIA A100 40GB",
        memory_gib=40.0,
        fp16_tflops=312.0,
        hbm_gbps=1555.0,
        adam_update_pps=20.0e9,
        onchip_convert_gbps=1000.0,
    ),
    cpu=CpuSpec(
        name="AMD EPYC Milan 7543P",
        sockets=1,
        cores_per_socket=32,
        threads_per_core=2,
        adam_update_pps_per_core=95.0e6,
        convert_gbps=45.0,
        unpinned_alloc_gbps=4.0,
        dram_gbps=200.0,
    ),
    pcie=PcieLinkSpec(
        generation=4,
        h2d_gbps_pinned=25.0,
        d2h_gbps_pinned=25.0,
        h2d_gbps_pageable=8.0,
        d2h_gbps_pageable=12.0,
    ),
    nvlink=NvlinkSpec(d2d_gbps=100.0),
    host_memory=HostMemorySpec(capacity_gib=512.0, numa_domains=4),
    description="ALCF Polaris node: 4x A100 40GB and 32 CPU cores (Figure 14 motivation).",
)

AWS_P3DN = MachineSpec(
    name="aws-p3dn-24xlarge",
    num_gpus=8,
    gpu=GpuSpec(
        name="NVIDIA V100 32GB",
        memory_gib=32.0,
        fp16_tflops=112.0,
        hbm_gbps=900.0,
        adam_update_pps=18.0e9,
        onchip_convert_gbps=700.0,
    ),
    cpu=CpuSpec(
        name="Intel Xeon Platinum 8175M (96 vCPU)",
        sockets=2,
        cores_per_socket=24,
        threads_per_core=2,
        adam_update_pps_per_core=70.0e6,
        convert_gbps=40.0,
        unpinned_alloc_gbps=3.0,
        dram_gbps=180.0,
    ),
    pcie=PcieLinkSpec(
        generation=3,
        h2d_gbps_pinned=12.0,
        d2h_gbps_pinned=12.0,
        h2d_gbps_pageable=6.0,
        d2h_gbps_pageable=8.0,
    ),
    nvlink=NvlinkSpec(d2d_gbps=50.0),
    host_memory=HostMemorySpec(capacity_gib=768.0, numa_domains=2),
    description="AWS p3dn.24xlarge: 8x V100, 96 vCPUs (Figure 14 motivation).",
)

_PRESETS = {
    preset.name: preset
    for preset in (JLSE_H100_NODE, LAMBDA_V100_NODE, POLARIS_A100_NODE, AWS_P3DN)
}


def list_machine_presets() -> list[str]:
    """Names of the available machine presets."""
    return sorted(_PRESETS)


def get_machine_preset(name: str) -> MachineSpec:
    """Look up a machine preset by name."""
    try:
        return _PRESETS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown machine preset {name!r}; available: {list_machine_presets()}"
        ) from exc
