"""Host-side resource contention model.

Figure 15 of the paper shows that when 50 % of the subgroup updates are scheduled on
the GPU, CPU utilisation drops from ~70 % to ~60 % because the CPU Adam kernel and the
concurrent PCIe DMA engines compete for DRAM bandwidth, and Figure 14 shows that
beyond ~38 CPU cores per GPU the iteration time stops improving for the same reason.

The simulator captures this with a simple multiplicative model: while a strategy keeps
the PCIe link busy concurrently with CPU compute, the effective CPU throughput is
scaled by ``cpu_efficiency_under_transfer``; bidirectional (full-duplex) PCIe traffic
is likewise derated by ``pcie_duplex_efficiency``.  These are documented approximations
calibrated against the utilisation numbers reported in Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class HostContentionModel:
    """Multiplicative derating factors for overlapping CPU compute and PCIe DMA."""

    cpu_efficiency_under_transfer: float = 0.85
    pcie_duplex_efficiency: float = 0.92
    dram_saturation_cores: int = 38

    def __post_init__(self) -> None:
        if not 0 < self.cpu_efficiency_under_transfer <= 1:
            raise ConfigurationError("cpu_efficiency_under_transfer must be in (0, 1]")
        if not 0 < self.pcie_duplex_efficiency <= 1:
            raise ConfigurationError("pcie_duplex_efficiency must be in (0, 1]")
        if self.dram_saturation_cores <= 0:
            raise ConfigurationError("dram_saturation_cores must be positive")

    def effective_cpu_update_pps(self, base_pps: float, *, transfers_overlap: bool) -> float:
        """CPU Adam throughput accounting for concurrent PCIe DMA."""
        if transfers_overlap:
            return base_pps * self.cpu_efficiency_under_transfer
        return base_pps

    def effective_pcie_pps(self, base_pps: float, *, bidirectional: bool) -> float:
        """PCIe throughput accounting for simultaneous H2D + D2H traffic."""
        if bidirectional:
            return base_pps * self.pcie_duplex_efficiency
        return base_pps

    def effective_cores(self, requested_cores: int) -> int:
        """Cores that actually contribute to CPU update throughput.

        Past ``dram_saturation_cores`` the CPU Adam kernel is DRAM-bandwidth bound, so
        additional cores do not help (the plateau of Figure 14).
        """
        if requested_cores <= 0:
            raise ConfigurationError("requested_cores must be positive")
        return min(requested_cores, self.dram_saturation_cores)
