"""Throughput profiles: the bridge between machine specs and the performance model.

Equation 1 of the paper is expressed in *parameters per second*:

* ``B``  — PCIe transfer throughput for FP32 parameters (both directions assumed equal),
* ``U_g`` — GPU Adam update throughput,
* ``U_c`` — CPU Adam update throughput of the cores owned by one training process,
* ``D_c`` — CPU FP32->FP16 downscale throughput.

:class:`ThroughputProfile` packages these four rates plus a few auxiliary rates needed
by the simulator (gradient-flush paths of Figure 6, NVLink collectives) and knows how
to derive itself from a :class:`repro.hardware.specs.MachineSpec`.  This module also
reproduces Table 1 (transfer and conversion throughputs across devices and data types).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError
from repro.common.units import GB
from repro.hardware.specs import MachineSpec
from repro.precision.dtypes import DType


class TransferKind(enum.Enum):
    """The transfer/conversion categories of Table 1."""

    G32_G16 = "G32<->G16"
    H32_H16 = "H32<->H16"
    H16_G16 = "H16<->G16"
    H32_G16 = "H32->G16"
    G16_H32 = "G16->H32"


def transfer_table(machine: MachineSpec) -> dict[TransferKind, float]:
    """Return the Table 1 throughputs (GB/s) implied by a machine spec.

    * ``G32<->G16``: on-GPU conversion, HBM-bandwidth bound.
    * ``H32<->H16``: on-host conversion, DRAM-bandwidth bound.
    * ``H16<->G16``: pinned PCIe transfer of same-precision data.
    * ``H32->G16`` and ``G16->H32``: mixed-precision transfers that require an
      intermediate conversion plus an unpinned staging buffer — the slow paths the
      paper measures at 8 GB/s and 4 GB/s and that Deep Optimizer States avoids.
    """
    pcie_pinned = min(machine.pcie.h2d_gbps_pinned, machine.pcie.d2h_gbps_pinned)
    return {
        TransferKind.G32_G16: machine.gpu.onchip_convert_gbps,
        TransferKind.H32_H16: machine.cpu.convert_gbps,
        TransferKind.H16_G16: pcie_pinned * 0.95,
        TransferKind.H32_G16: _mixed_precision_path_gbps(
            machine.pcie.h2d_gbps_pageable, machine.cpu.convert_gbps
        ),
        TransferKind.G16_H32: _mixed_precision_path_gbps(
            machine.pcie.d2h_gbps_pageable,
            machine.cpu.convert_gbps,
            alloc_gbps=machine.cpu.unpinned_alloc_gbps,
        ),
    }


def _mixed_precision_path_gbps(
    pcie_pageable_gbps: float, convert_gbps: float, alloc_gbps: float | None = None
) -> float:
    """Effective throughput of a transfer that changes precision across the PCIe link.

    The path is sequential (Figure 6, top): optionally allocate an unpinned staging
    buffer, copy across PCIe at the pageable rate, then convert on the host.  The
    effective rate is the harmonic composition of the three stages.
    """
    stages = [pcie_pageable_gbps, convert_gbps]
    if alloc_gbps is not None:
        stages.append(alloc_gbps)
    inverse = sum(1.0 / rate for rate in stages)
    return 1.0 / inverse


@dataclass(frozen=True)
class ThroughputProfile:
    """Per-process throughputs in parameters per second, the inputs of Equation 1."""

    pcie_pps: float
    gpu_update_pps: float
    cpu_update_pps: float
    cpu_downscale_pps: float
    # Auxiliary rates used by the simulator, not by Equation 1 itself.
    gpu_convert_pps: float = 200.0e9
    pcie_fp16_pps: float = 0.0
    pinned_d2h_pps: float = 0.0
    unpinned_d2h_fp16_pps: float = 0.0
    host_unpinned_alloc_pps: float = 0.0
    host_upscale_pps: float = 0.0
    nvlink_pps: float = 0.0

    def __post_init__(self) -> None:
        for name in ("pcie_pps", "gpu_update_pps", "cpu_update_pps", "cpu_downscale_pps"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    # ------------------------------------------------------------------ factories

    @classmethod
    def from_machine(cls, machine: MachineSpec, cores_per_gpu: int | None = None) -> "ThroughputProfile":
        """Derive the per-process profile of ``machine``.

        One training process drives one GPU and owns ``cores_per_gpu`` CPU cores
        (default: an even share of the node's cores).  The host-side conversion
        bandwidth is shared by all processes of the node, hence the division by
        ``num_gpus``.
        """
        cores = cores_per_gpu if cores_per_gpu is not None else machine.cpu_cores_per_gpu
        if cores <= 0:
            raise ConfigurationError("cores_per_gpu must be positive")
        fp32_bytes = DType.FP32.itemsize
        fp16_bytes = DType.FP16.itemsize
        pcie_pinned_gbps = min(machine.pcie.h2d_gbps_pinned, machine.pcie.d2h_gbps_pinned)
        convert_share_gbps = machine.cpu.convert_gbps / machine.num_gpus
        # A conversion reads the source precision and writes the target precision, so
        # each converted parameter moves itemsize(src) + itemsize(dst) bytes of DRAM.
        downscale_pps = convert_share_gbps * GB / (fp32_bytes + fp16_bytes)
        upscale_pps = convert_share_gbps * GB / (fp32_bytes + fp16_bytes)
        return cls(
            pcie_pps=pcie_pinned_gbps * GB / fp32_bytes,
            gpu_update_pps=machine.gpu.adam_update_pps,
            cpu_update_pps=machine.cpu.adam_update_pps(cores),
            cpu_downscale_pps=downscale_pps,
            gpu_convert_pps=machine.gpu.onchip_convert_gbps * GB / (fp32_bytes + fp16_bytes),
            pcie_fp16_pps=pcie_pinned_gbps * GB / fp16_bytes,
            pinned_d2h_pps=machine.pcie.d2h_gbps_pinned * GB / fp32_bytes,
            unpinned_d2h_fp16_pps=machine.pcie.d2h_gbps_pageable * GB / fp16_bytes,
            host_unpinned_alloc_pps=machine.cpu.unpinned_alloc_gbps * GB / fp16_bytes,
            host_upscale_pps=upscale_pps,
            nvlink_pps=machine.nvlink.d2d_gbps * GB / fp16_bytes,
        )

    @classmethod
    def from_paper_v100(cls) -> "ThroughputProfile":
        """The throughputs the paper reports for its secondary 4xV100 machine (§5.4).

        B = 3 B params/s, U_g = 35 B params/s, U_c = 2 B params/s, D_c = 8.7 B params/s;
        plugging them into Equation 1 gives k ~= 2.29, i.e. an update stride of 2.
        """
        return cls(
            pcie_pps=3.0e9,
            gpu_update_pps=35.0e9,
            cpu_update_pps=2.0e9,
            cpu_downscale_pps=8.7e9,
            gpu_convert_pps=150.0e9,
            pcie_fp16_pps=6.0e9,
            pinned_d2h_pps=3.0e9,
            unpinned_d2h_fp16_pps=4.0e9,
            host_unpinned_alloc_pps=2.0e9,
            host_upscale_pps=8.7e9,
            nvlink_pps=25.0e9,
        )

    # ------------------------------------------------------------------ helpers

    def scaled_cpu(self, factor: float) -> "ThroughputProfile":
        """Return a profile with CPU update throughput scaled by ``factor``.

        Used by the contention model (DRAM traffic from concurrent PCIe DMA slows the
        CPU Adam kernel down) and by the Figure 14 CPU-core sweep.
        """
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return replace(self, cpu_update_pps=self.cpu_update_pps * factor)

    def seconds_for_update(self, params: int, device: str) -> float:
        """Time to run an Adam update of ``params`` parameters on ``device``."""
        rate = self.gpu_update_pps if device == "gpu" else self.cpu_update_pps
        return params / rate

    def seconds_for_downscale(self, params: int) -> float:
        """Time to downscale ``params`` FP32 parameters to FP16 on the CPU."""
        return params / self.cpu_downscale_pps

    def seconds_for_transfer(self, params: int, dtype: DType = DType.FP32) -> float:
        """Time to move ``params`` parameters of ``dtype`` across the PCIe link."""
        if dtype == DType.FP32:
            return params / self.pcie_pps
        return params * dtype.itemsize / (self.pcie_pps * DType.FP32.itemsize)
