"""Memory pools for simulated devices and the host.

The paper's key observation (Section 3, Figure 3) is that GPU memory utilisation
fluctuates between phases — activations fill the GPU during the forward pass, are
freed during the backward pass, and the update phase only needs the FP16 parameters
plus room for one staged optimizer subgroup.  :class:`DeviceMemoryPool` tracks named
allocations against a capacity, raising :class:`OutOfMemoryError` exactly where the
real runtime would (e.g. Figure 13's microbatch-16 OOM), and records a peak/timeline
that the monitor samples to reproduce Figure 3.

:class:`HostMemoryPool` additionally distinguishes pinned from pageable regions since
pinned buffers are what enables the fast DMA path of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.common.units import format_bytes


@dataclass
class MemoryRegion:
    """One named allocation inside a pool."""

    name: str
    num_bytes: int
    pinned: bool = False
    tag: str = ""


class DeviceMemoryPool:
    """Tracks named allocations against a fixed capacity (one GPU's HBM)."""

    def __init__(self, capacity_bytes: int, name: str = "gpu") -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        self.name = name
        self.capacity_bytes = int(capacity_bytes)
        self._regions: dict[str, MemoryRegion] = {}
        self._used = 0
        self._peak = 0

    # ------------------------------------------------------------------ queries

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Bytes still available."""
        return self.capacity_bytes - self._used

    @property
    def peak_bytes(self) -> int:
        """High-water mark of the pool since creation (or the last reset)."""
        return self._peak

    def regions(self) -> list[MemoryRegion]:
        """Snapshot of the live allocations."""
        return list(self._regions.values())

    def usage_by_tag(self) -> dict[str, int]:
        """Aggregate live bytes per allocation tag (parameters, activations, ...)."""
        usage: dict[str, int] = {}
        for region in self._regions.values():
            usage[region.tag or region.name] = usage.get(region.tag or region.name, 0) + region.num_bytes
        return usage

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    # ------------------------------------------------------------------ mutation

    def allocate(self, name: str, num_bytes: int, *, pinned: bool = False, tag: str = "") -> MemoryRegion:
        """Allocate ``num_bytes`` under ``name``; raises :class:`OutOfMemoryError` on overflow."""
        if num_bytes < 0:
            raise ConfigurationError("allocation size must be non-negative")
        if name in self._regions:
            raise ConfigurationError(f"allocation {name!r} already exists in pool {self.name!r}")
        if num_bytes > self.free_bytes:
            raise OutOfMemoryError(
                f"{self.name}: cannot allocate {format_bytes(num_bytes)} "
                f"({format_bytes(self.free_bytes)} free of {format_bytes(self.capacity_bytes)})",
                requested_bytes=num_bytes,
                available_bytes=self.free_bytes,
            )
        region = MemoryRegion(name=name, num_bytes=int(num_bytes), pinned=pinned, tag=tag)
        self._regions[name] = region
        self._used += region.num_bytes
        self._peak = max(self._peak, self._used)
        return region

    def free(self, name: str) -> int:
        """Free the allocation ``name`` and return its size."""
        try:
            region = self._regions.pop(name)
        except KeyError as exc:
            raise ConfigurationError(f"no allocation named {name!r} in pool {self.name!r}") from exc
        self._used -= region.num_bytes
        return region.num_bytes

    def free_all(self, tag: str | None = None) -> int:
        """Free every allocation (optionally only those with ``tag``); return bytes freed."""
        names = [
            name
            for name, region in self._regions.items()
            if tag is None or region.tag == tag
        ]
        return sum(self.free(name) for name in names)

    def reset_peak(self) -> None:
        """Reset the high-water mark to the current usage."""
        self._peak = self._used

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DeviceMemoryPool({self.name!r}, used={format_bytes(self._used)}, "
            f"capacity={format_bytes(self.capacity_bytes)})"
        )


class HostMemoryPool(DeviceMemoryPool):
    """Host DRAM pool with a cap on the pinned fraction.

    The OS cannot pin an unbounded amount of memory; the paper pre-pins the host-side
    optimizer buffers at initialisation.  ``pinned_limit_bytes`` models that cap.
    """

    def __init__(self, capacity_bytes: int, pinned_limit_bytes: int | None = None, name: str = "host") -> None:
        super().__init__(capacity_bytes, name=name)
        self.pinned_limit_bytes = (
            int(pinned_limit_bytes) if pinned_limit_bytes is not None else int(capacity_bytes * 0.9)
        )
        self._pinned_used = 0

    @property
    def pinned_bytes(self) -> int:
        """Bytes currently held in pinned allocations."""
        return self._pinned_used

    def allocate(self, name: str, num_bytes: int, *, pinned: bool = False, tag: str = "") -> MemoryRegion:
        if pinned and self._pinned_used + num_bytes > self.pinned_limit_bytes:
            raise OutOfMemoryError(
                f"{self.name}: pinned allocation of {format_bytes(num_bytes)} exceeds the "
                f"pinned limit ({format_bytes(self.pinned_limit_bytes)})",
                requested_bytes=num_bytes,
                available_bytes=self.pinned_limit_bytes - self._pinned_used,
            )
        region = super().allocate(name, num_bytes, pinned=pinned, tag=tag)
        if pinned:
            self._pinned_used += region.num_bytes
        return region

    def free(self, name: str) -> int:
        region = self._regions.get(name)
        pinned = region.pinned if region else False
        size = super().free(name)
        if pinned:
            self._pinned_used -= size
        return size


@dataclass
class MemoryPlan:
    """A static memory budget for one training process (one GPU + its host share).

    Built by the trainer from the model configuration; used both to pre-flight OOM
    checks (Figure 13) and to drive the Figure 3 memory-trace reconstruction.
    """

    fp16_parameters: int = 0
    fp16_gradients: int = 0
    activations: int = 0
    activation_checkpoints: int = 0
    gpu_resident_optimizer: int = 0
    staged_subgroup: int = 0
    workspace: int = 0
    host_optimizer_state: int = 0
    host_gradient_buffer: int = 0

    def gpu_total(self, *, include_activations: bool, include_staged_subgroup: bool) -> int:
        """Peak GPU bytes for a phase of the iteration."""
        total = self.fp16_parameters + self.fp16_gradients + self.gpu_resident_optimizer + self.workspace
        if include_activations:
            total += self.activations + self.activation_checkpoints
        else:
            total += self.activation_checkpoints
        if include_staged_subgroup:
            total += self.staged_subgroup
        return total

    def host_total(self) -> int:
        """Host bytes required by the offloaded optimizer state and gradient buffers."""
        return self.host_optimizer_state + self.host_gradient_buffer

    field_names = (
        "fp16_parameters",
        "fp16_gradients",
        "activations",
        "activation_checkpoints",
        "gpu_resident_optimizer",
        "staged_subgroup",
        "workspace",
        "host_optimizer_state",
        "host_gradient_buffer",
    )
