"""Machine specification dataclasses.

All bandwidths are expressed in decimal GB/s (the unit used throughout the paper) and
all capacities in binary GiB (the unit GPU vendors label "GB").  The conversion into
per-parameter rates used by the performance model happens in
:mod:`repro.hardware.throughput`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.units import GB, GIB


@dataclass(frozen=True)
class GpuSpec:
    """A single GPU device.

    ``adam_update_pps`` is the measured throughput (parameters per second) of a fused
    mixed-precision Adam step on this GPU — the paper reports ~25 B params/s per H100
    ("the 4xH100 GPUs update ~100 Billion parameters of the model per second").
    ``onchip_convert_gbps`` is the G32<->G16 conversion bandwidth from Table 1.
    """

    name: str
    memory_gib: float
    fp16_tflops: float
    hbm_gbps: float
    adam_update_pps: float
    onchip_convert_gbps: float = 1200.0
    copy_engines: int = 2

    def __post_init__(self) -> None:
        if self.memory_gib <= 0 or self.fp16_tflops <= 0:
            raise ConfigurationError("GPU memory and compute must be positive")
        if self.adam_update_pps <= 0:
            raise ConfigurationError("adam_update_pps must be positive")

    @property
    def memory_bytes(self) -> int:
        """Usable HBM capacity in bytes."""
        return int(self.memory_gib * GIB)

    @property
    def fp16_flops(self) -> float:
        """Peak FP16 throughput in FLOP/s."""
        return self.fp16_tflops * 1e12


@dataclass(frozen=True)
class CpuSpec:
    """The host CPUs of a node (all sockets combined).

    ``adam_update_pps_per_core`` is the per-core throughput of the (vectorised,
    DeepSpeed-style) CPU Adam kernel; the aggregate node throughput reported in the
    paper (~8 B params/s for 2x Xeon 8468) divided by the core count gives the default
    values used by the presets.  ``convert_gbps`` is the H32<->H16 conversion bandwidth
    of Table 1 (memory-bandwidth bound, shared by the processes of a node).
    """

    name: str
    sockets: int
    cores_per_socket: int
    threads_per_core: int = 2
    adam_update_pps_per_core: float = 83.0e6
    convert_gbps: float = 62.0
    unpinned_alloc_gbps: float = 4.0
    dram_gbps: float = 300.0

    def __post_init__(self) -> None:
        if self.sockets <= 0 or self.cores_per_socket <= 0:
            raise ConfigurationError("CPU core counts must be positive")

    @property
    def total_cores(self) -> int:
        """Physical cores across all sockets."""
        return self.sockets * self.cores_per_socket

    @property
    def total_threads(self) -> int:
        """Hardware threads across all sockets."""
        return self.total_cores * self.threads_per_core

    @property
    def aggregate_adam_update_pps(self) -> float:
        """Node-wide CPU Adam throughput in parameters per second."""
        return self.total_cores * self.adam_update_pps_per_core

    def adam_update_pps(self, cores: int) -> float:
        """CPU Adam throughput for a subset of ``cores`` cores."""
        if cores <= 0:
            raise ConfigurationError("cores must be positive")
        return min(cores, self.total_cores) * self.adam_update_pps_per_core


@dataclass(frozen=True)
class PcieLinkSpec:
    """A PCIe link between one GPU and the host.

    The paper's JLSE testbed uses PCIe Gen5 (~55 GB/s unidirectional for pinned host
    memory); pageable memory is dramatically slower and asymmetric, which is exactly
    what makes the baseline gradient-flush path of Figure 6 slow.
    """

    generation: int
    h2d_gbps_pinned: float
    d2h_gbps_pinned: float
    h2d_gbps_pageable: float
    d2h_gbps_pageable: float
    full_duplex: bool = True

    def __post_init__(self) -> None:
        for value in (
            self.h2d_gbps_pinned,
            self.d2h_gbps_pinned,
            self.h2d_gbps_pageable,
            self.d2h_gbps_pageable,
        ):
            if value <= 0:
                raise ConfigurationError("PCIe bandwidths must be positive")

    def bandwidth_gbps(self, direction: str, pinned: bool = True) -> float:
        """Return the bandwidth for ``direction`` ("h2d" or "d2h")."""
        if direction == "h2d":
            return self.h2d_gbps_pinned if pinned else self.h2d_gbps_pageable
        if direction == "d2h":
            return self.d2h_gbps_pinned if pinned else self.d2h_gbps_pageable
        raise ConfigurationError(f"unknown PCIe direction: {direction!r}")


@dataclass(frozen=True)
class NvlinkSpec:
    """GPU-to-GPU interconnect inside the node (NVLink/NVSwitch)."""

    d2d_gbps: float
    links_per_gpu: int = 18

    def __post_init__(self) -> None:
        if self.d2d_gbps <= 0:
            raise ConfigurationError("NVLink bandwidth must be positive")


@dataclass(frozen=True)
class HostMemorySpec:
    """Host DRAM capacity and layout."""

    capacity_gib: float
    numa_domains: int = 2
    pinned_fraction_limit: float = 0.9

    def __post_init__(self) -> None:
        if self.capacity_gib <= 0:
            raise ConfigurationError("host memory capacity must be positive")
        if not 0 < self.pinned_fraction_limit <= 1:
            raise ConfigurationError("pinned_fraction_limit must be in (0, 1]")

    @property
    def capacity_bytes(self) -> int:
        """Host DRAM capacity in bytes."""
        return int(self.capacity_gib * GIB)


@dataclass(frozen=True)
class MachineSpec:
    """A complete single-node testbed description."""

    name: str
    num_gpus: int
    gpu: GpuSpec
    cpu: CpuSpec
    pcie: PcieLinkSpec
    nvlink: NvlinkSpec
    host_memory: HostMemorySpec
    description: str = ""
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ConfigurationError("num_gpus must be positive")

    @property
    def total_gpu_memory_bytes(self) -> int:
        """Aggregated HBM across the node's GPUs."""
        return self.num_gpus * self.gpu.memory_bytes

    @property
    def cpu_cores_per_gpu(self) -> int:
        """Physical cores available to each training process (one process per GPU)."""
        return max(1, self.cpu.total_cores // self.num_gpus)

    def with_cpu_cores_per_gpu(self, cores_per_gpu: int) -> "MachineSpec":
        """Return a copy of this machine restricted to ``cores_per_gpu`` cores per GPU.

        Used by the Figure 14 experiment ("Scaling the CPU Cores per GPU").
        """
        if cores_per_gpu <= 0:
            raise ConfigurationError("cores_per_gpu must be positive")
        total = cores_per_gpu * self.num_gpus
        sockets = self.cpu.sockets
        cores_per_socket = max(1, total // sockets)
        cpu = CpuSpec(
            name=self.cpu.name,
            sockets=sockets,
            cores_per_socket=cores_per_socket,
            threads_per_core=self.cpu.threads_per_core,
            adam_update_pps_per_core=self.cpu.adam_update_pps_per_core,
            convert_gbps=self.cpu.convert_gbps,
            unpinned_alloc_gbps=self.cpu.unpinned_alloc_gbps,
            dram_gbps=self.cpu.dram_gbps,
        )
        return MachineSpec(
            name=f"{self.name}-{cores_per_gpu}cores",
            num_gpus=self.num_gpus,
            gpu=self.gpu,
            cpu=cpu,
            pcie=self.pcie,
            nvlink=self.nvlink,
            host_memory=self.host_memory,
            description=self.description,
            extra=dict(self.extra),
        )

    def with_num_gpus(self, num_gpus: int) -> "MachineSpec":
        """Return a copy of this machine exposing only ``num_gpus`` GPUs.

        Used by the Figure 17 experiment (scaling the data-parallel degree).  The CPU,
        PCIe and host-memory resources of the node are unchanged; each remaining GPU
        therefore sees a larger share of CPU cores, exactly as on the real testbed.
        """
        if num_gpus <= 0:
            raise ConfigurationError("num_gpus must be positive")
        return MachineSpec(
            name=f"{self.name}-{num_gpus}gpu",
            num_gpus=num_gpus,
            gpu=self.gpu,
            cpu=self.cpu,
            pcie=self.pcie,
            nvlink=self.nvlink,
            host_memory=self.host_memory,
            description=self.description,
            extra=dict(self.extra),
        )

    # Convenience aggregate rates -------------------------------------------------

    @property
    def aggregate_gpu_update_pps(self) -> float:
        """Node-wide GPU Adam throughput in parameters per second."""
        return self.num_gpus * self.gpu.adam_update_pps

    @property
    def pcie_h2d_bps(self) -> float:
        """Pinned H2D bandwidth of one link in bytes per second."""
        return self.pcie.h2d_gbps_pinned * GB

    @property
    def pcie_d2h_bps(self) -> float:
        """Pinned D2H bandwidth of one link in bytes per second."""
        return self.pcie.d2h_gbps_pinned * GB
