"""Hardware substrate: testbed descriptions, throughput profiles and memory pools.

The paper evaluates on a 4xH100 node of ALCF's JLSE testbed and validates its
performance model on a second 4xV100 machine.  Since this reproduction runs without
GPUs, the hardware is described by explicit specification dataclasses whose numbers
come straight from Section 5.1 and Table 1 of the paper; every simulated duration in
:mod:`repro.sim` and every input of the performance model (Equation 1) is derived from
these specs.
"""

from repro.hardware.specs import (
    CpuSpec,
    GpuSpec,
    HostMemorySpec,
    MachineSpec,
    NvlinkSpec,
    PcieLinkSpec,
)
from repro.hardware.throughput import ThroughputProfile, TransferKind, transfer_table
from repro.hardware.presets import (
    AWS_P3DN,
    JLSE_H100_NODE,
    LAMBDA_V100_NODE,
    POLARIS_A100_NODE,
    get_machine_preset,
    list_machine_presets,
)
from repro.hardware.memory import DeviceMemoryPool, HostMemoryPool, MemoryRegion
from repro.hardware.contention import HostContentionModel

__all__ = [
    "GpuSpec",
    "CpuSpec",
    "PcieLinkSpec",
    "NvlinkSpec",
    "HostMemorySpec",
    "MachineSpec",
    "ThroughputProfile",
    "TransferKind",
    "transfer_table",
    "JLSE_H100_NODE",
    "LAMBDA_V100_NODE",
    "POLARIS_A100_NODE",
    "AWS_P3DN",
    "get_machine_preset",
    "list_machine_presets",
    "DeviceMemoryPool",
    "HostMemoryPool",
    "MemoryRegion",
    "HostContentionModel",
]
