"""Precision conversion primitives.

Two conversion paths matter for the paper:

* ``upscale_fp16_to_fp32`` — exact widening used when gradients produced by the
  backward pass in FP16 are consumed by the FP32 optimizer.  Deep Optimizer States
  performs this conversion chunk-wise on the GPU (1.2 TB/s in Table 1) before the D2H
  flush, instead of after an unpinned FP16 transfer on the host (the slow baseline
  path of Figure 6).
* ``downscale_fp32_to_fp16`` — lossy narrowing of updated master parameters back to
  the training precision, performed on the CPU for CPU-updated subgroups (throughput
  ``D_c`` in Equation 1) and on the GPU for GPU-updated subgroups.

Both are implemented for NumPy buffers (the numeric execution path) and both report
the number of elements converted so that the simulator can charge the corresponding
time against the right resource.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.common.errors import ConfigurationError


def upscale_fp16_to_fp32(values: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Exactly widen an FP16 (or FP32) array to FP32.

    Every finite float16 value is exactly representable in float32, therefore this
    conversion is lossless; the property tests assert it.
    """
    source = np.asarray(values)
    if out is None:
        return source.astype(np.float32)
    if out.shape != source.shape:
        raise ConfigurationError(
            f"output shape {out.shape} does not match input shape {source.shape}"
        )
    np.copyto(out, source.astype(np.float32, copy=False))
    return out


def downscale_fp32_to_fp16(values: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Narrow an FP32 array to FP16 using round-to-nearest-even (NumPy default cast)."""
    source = np.asarray(values, dtype=np.float32)
    if out is None:
        return source.astype(np.float16)
    if out.shape != source.shape:
        raise ConfigurationError(
            f"output shape {out.shape} does not match input shape {source.shape}"
        )
    np.copyto(out, source.astype(np.float16, copy=False))
    return out


def iter_chunks(total: int, chunk_size: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` index pairs covering ``[0, total)`` in ``chunk_size`` steps."""
    if chunk_size <= 0:
        raise ConfigurationError("chunk_size must be positive")
    start = 0
    while start < total:
        stop = min(start + chunk_size, total)
        yield start, stop
        start = stop


def chunked_convert(
    values: np.ndarray,
    target_dtype: np.dtype | type,
    chunk_elems: int,
) -> np.ndarray:
    """Convert ``values`` to ``target_dtype`` chunk by chunk.

    This mirrors the paper's "chunk-wise in-place on-the-fly conversion" which bounds
    the temporary memory needed during conversion to one chunk.  The result is
    bit-identical to a whole-array cast (verified by property tests), so chunking is a
    pure memory/scheduling optimisation.
    """
    flat = np.asarray(values).reshape(-1)
    result = np.empty(flat.shape[0], dtype=target_dtype)
    for start, stop in iter_chunks(flat.shape[0], chunk_elems):
        result[start:stop] = flat[start:stop].astype(target_dtype)
    return result.reshape(np.asarray(values).shape)


def conversion_bytes(num_elements: int, source_itemsize: int, target_itemsize: int) -> int:
    """Total bytes read plus written by converting ``num_elements`` elements.

    Used by the hardware model to translate the GB/s conversion throughputs of Table 1
    into per-parameter rates.
    """
    if num_elements < 0:
        raise ConfigurationError("num_elements must be non-negative")
    return num_elements * (source_itemsize + target_itemsize)
