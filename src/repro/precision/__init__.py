"""Mixed-precision substrate: dtype descriptors, conversions and loss scaling.

Mixed-precision training (Micikevicius et al.) keeps the model parameters and
activations on the GPU in 16-bit precision while the optimizer state (master
parameters, momentum, variance) stays in 32-bit precision.  Deep Optimizer States
relies on two properties of this scheme that this subpackage implements and tests:

* FP16 -> FP32 upscaling is exact, so converting gradients on the GPU before the D2H
  flush (the paper's Figure 6 optimisation) cannot change the training result.
* FP32 -> FP16 downscaling of updated parameters is a pure element-wise cast whose
  throughput on the CPU (``D_c`` in Equation 1) is one of the inputs of the
  performance model.
"""

from repro.precision.dtypes import DType, dtype_size, to_numpy_dtype
from repro.precision.convert import (
    chunked_convert,
    downscale_fp32_to_fp16,
    upscale_fp16_to_fp32,
)
from repro.precision.loss_scaler import DynamicLossScaler, StaticLossScaler

__all__ = [
    "DType",
    "dtype_size",
    "to_numpy_dtype",
    "upscale_fp16_to_fp32",
    "downscale_fp32_to_fp16",
    "chunked_convert",
    "StaticLossScaler",
    "DynamicLossScaler",
]
