"""Loss scaling for mixed-precision training.

FP16 gradients underflow easily; production runtimes (DeepSpeed, Megatron-LM) multiply
the loss by a scale factor before the backward pass and divide the gradients by the
same factor before the optimizer step.  The reproduction implements both the static
and the dynamic (overflow-adaptive) variants so that the miniature-model training
examples follow the same numerical recipe as the paper's runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError


@dataclass
class StaticLossScaler:
    """Constant loss scale, the simplest variant."""

    scale: float = 2.0**16

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError("loss scale must be positive")

    def scale_loss(self, loss: float) -> float:
        """Return the loss multiplied by the current scale."""
        return loss * self.scale

    def unscale_gradients(self, gradients: np.ndarray) -> np.ndarray:
        """Return gradients divided by the current scale (in FP32)."""
        return np.asarray(gradients, dtype=np.float32) / self.scale

    def update(self, found_overflow: bool) -> bool:
        """Static scaling never skips steps; returns True (step should be applied)."""
        return not found_overflow

    @staticmethod
    def has_overflow(gradients: np.ndarray) -> bool:
        """Check an FP16/FP32 gradient buffer for inf/NaN."""
        return not bool(np.isfinite(np.asarray(gradients, dtype=np.float32)).all())


@dataclass
class DynamicLossScaler(StaticLossScaler):
    """DeepSpeed-style dynamic loss scaling.

    The scale is halved whenever an overflow is detected (and the step skipped) and
    doubled after ``growth_interval`` consecutive overflow-free steps.
    """

    scale: float = 2.0**16
    growth_factor: float = 2.0
    backoff_factor: float = 0.5
    growth_interval: int = 1000
    min_scale: float = 1.0
    max_scale: float = 2.0**24
    _good_steps: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 < self.backoff_factor < 1:
            raise ConfigurationError("backoff_factor must be in (0, 1)")
        if self.growth_factor <= 1:
            raise ConfigurationError("growth_factor must be > 1")
        if self.growth_interval <= 0:
            raise ConfigurationError("growth_interval must be positive")

    def update(self, found_overflow: bool) -> bool:
        """Adjust the scale given the overflow status of the last step.

        Returns True when the optimizer step should be applied (no overflow), False
        when the step must be skipped.
        """
        if found_overflow:
            self.scale = max(self.min_scale, self.scale * self.backoff_factor)
            self._good_steps = 0
            return False
        self._good_steps += 1
        if self._good_steps >= self.growth_interval:
            self.scale = min(self.max_scale, self.scale * self.growth_factor)
            self._good_steps = 0
        return True
