"""Floating-point dtype descriptors used across the reproduction.

The paper's memory accounting (Table 2, Section 5.3) is entirely determined by the
per-parameter byte counts of the FP16 model/gradients and the FP32 optimizer state,
so the descriptors here are the single source of truth for those sizes.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.common.errors import ConfigurationError


class DType(enum.Enum):
    """Floating point formats relevant to mixed-precision LLM training."""

    FP16 = "fp16"
    BF16 = "bf16"
    FP32 = "fp32"
    FP64 = "fp64"

    @property
    def itemsize(self) -> int:
        """Size of one element in bytes."""
        return _ITEMSIZE[self]

    @property
    def is_low_precision(self) -> bool:
        """True for the 16-bit formats used for parameters/gradients on the GPU."""
        return self in (DType.FP16, DType.BF16)


_ITEMSIZE = {
    DType.FP16: 2,
    DType.BF16: 2,
    DType.FP32: 4,
    DType.FP64: 8,
}

_NUMPY_DTYPES = {
    DType.FP16: np.float16,
    # NumPy has no native bfloat16; float32 storage preserves all bfloat16 values and is
    # only used for the numeric (miniature-model) execution path, never for sizing.
    DType.BF16: np.float32,
    DType.FP32: np.float32,
    DType.FP64: np.float64,
}


def dtype_size(dtype: DType) -> int:
    """Return the per-element size in bytes of ``dtype``."""
    return dtype.itemsize


def to_numpy_dtype(dtype: DType) -> np.dtype:
    """Return the NumPy dtype used to materialise tensors of ``dtype``."""
    return np.dtype(_NUMPY_DTYPES[dtype])


def parse_dtype(name: str | DType) -> DType:
    """Parse a dtype name (``"fp16"``, ``"bf16"``, ``"fp32"``, ``"fp64"``)."""
    if isinstance(name, DType):
        return name
    try:
        return DType(name.lower())
    except ValueError as exc:
        raise ConfigurationError(f"unknown dtype name: {name!r}") from exc


# Per-parameter byte counts used by the ZeRO-Infinity style memory model (Section 2,
# Table 2): FP16 parameters + FP16 gradients on the GPU, FP32 parameters + momentum +
# variance (+ FP32 gradients while updating) on the host.
FP16_PARAM_BYTES = DType.FP16.itemsize
FP16_GRAD_BYTES = DType.FP16.itemsize
FP32_PARAM_BYTES = DType.FP32.itemsize
FP32_MOMENTUM_BYTES = DType.FP32.itemsize
FP32_VARIANCE_BYTES = DType.FP32.itemsize
FP32_GRAD_BYTES = DType.FP32.itemsize

OPTIMIZER_STATE_BYTES_PER_PARAM = (
    FP32_PARAM_BYTES + FP32_MOMENTUM_BYTES + FP32_VARIANCE_BYTES
)
OPTIMIZER_STATE_WITH_GRADS_BYTES_PER_PARAM = (
    OPTIMIZER_STATE_BYTES_PER_PARAM + FP32_GRAD_BYTES
)
