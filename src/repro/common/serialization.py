"""Lightweight JSON (de)serialization helpers for configuration dataclasses.

The paper packages Deep Optimizer States as "a Python module that can be enabled and
configured through a single JSON entry in the configuration file given to the training
runtime".  The helpers here provide the same ergonomics for our configuration
dataclasses without pulling in a schema library.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any, Mapping, Type, TypeVar

from repro.common.errors import ConfigurationError

T = TypeVar("T")


def to_dict(config: Any) -> dict:
    """Recursively convert a dataclass (possibly nested) to plain JSON-able types."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return {
            field.name: to_dict(getattr(config, field.name))
            for field in dataclasses.fields(config)
        }
    if isinstance(config, enum.Enum):
        return config.value
    if isinstance(config, dict):
        return {key: to_dict(value) for key, value in config.items()}
    if isinstance(config, (list, tuple)):
        return [to_dict(value) for value in config]
    return config


def from_dict(cls: Type[T], data: Mapping[str, Any]) -> T:
    """Build a dataclass of type ``cls`` from a mapping, recursing into nested dataclasses.

    Unknown keys raise :class:`ConfigurationError` so that typos in JSON configuration
    files fail loudly instead of being silently ignored.
    """
    if not dataclasses.is_dataclass(cls):
        raise ConfigurationError(f"{cls!r} is not a dataclass")
    field_map = {field.name: field for field in dataclasses.fields(cls)}
    unknown = set(data) - set(field_map)
    if unknown:
        raise ConfigurationError(
            f"unknown configuration keys for {cls.__name__}: {sorted(unknown)}"
        )
    kwargs: dict[str, Any] = {}
    for name, value in data.items():
        field = field_map[name]
        field_type = field.type
        resolved = _resolve_type(cls, field_type)
        if dataclasses.is_dataclass(resolved) and isinstance(value, Mapping):
            kwargs[name] = from_dict(resolved, value)
        elif isinstance(resolved, type) and issubclass(resolved, enum.Enum):
            kwargs[name] = resolved(value)
        else:
            kwargs[name] = value
    return cls(**kwargs)


def _resolve_type(owner: type, annotation: Any) -> Any:
    """Resolve string annotations (from ``from __future__ import annotations``)."""
    if not isinstance(annotation, str):
        return annotation
    import sys
    import typing

    module = sys.modules.get(owner.__module__)
    namespace = vars(module) if module else {}
    try:
        return eval(annotation, dict(vars(typing)), dict(namespace))  # noqa: S307
    except Exception:  # pragma: no cover - defensive; annotation stays opaque
        return annotation


def dump_json(config: Any, path: str | Path) -> None:
    """Write a dataclass configuration to ``path`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(to_dict(config), indent=2, sort_keys=True))


def load_json(cls: Type[T], path: str | Path) -> T:
    """Load a dataclass configuration of type ``cls`` from a JSON file."""
    data = json.loads(Path(path).read_text())
    return from_dict(cls, data)
