"""Exception hierarchy used across the repro package."""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is inconsistent or out of range."""


class OutOfMemoryError(ReproError):
    """Raised when a simulated device cannot satisfy a memory allocation.

    This mirrors the CUDA out-of-memory errors the paper reports when the microbatch
    size grows past the GPU capacity (Figure 13).
    """

    def __init__(self, message: str, requested_bytes: int = 0, available_bytes: int = 0):
        super().__init__(message)
        self.requested_bytes = requested_bytes
        self.available_bytes = available_bytes


class SimulationError(ReproError):
    """Raised when the discrete-event simulator detects an inconsistent schedule."""


class SchedulingError(ReproError):
    """Raised when an update plan violates the scheduling invariants of Algorithm 1."""
