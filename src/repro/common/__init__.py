"""Shared utilities: units, errors, configuration helpers and deterministic RNG.

These helpers are intentionally small and dependency-free; every other subpackage of
:mod:`repro` builds on them.
"""

from repro.common.errors import (
    ConfigurationError,
    OutOfMemoryError,
    ReproError,
    SchedulingError,
    SimulationError,
)
from repro.common.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    TB,
    bytes_to_gb,
    bytes_to_gib,
    format_bytes,
    format_duration,
    format_throughput,
    gb,
    gib,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "OutOfMemoryError",
    "SimulationError",
    "SchedulingError",
    "KB",
    "MB",
    "GB",
    "TB",
    "KIB",
    "MIB",
    "GIB",
    "gb",
    "gib",
    "bytes_to_gb",
    "bytes_to_gib",
    "format_bytes",
    "format_duration",
    "format_throughput",
]
