"""Deterministic random-number helpers.

All stochastic components of the reproduction (synthetic datasets, miniature model
initialisation, property-test workloads) derive their randomness from
:func:`make_rng` so that experiments are reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 20241202  # MIDDLEWARE'24 conference start date, used as the project seed.


def make_rng(seed: int | None = None, *, stream: str = "") -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded deterministically.

    ``stream`` lets callers derive independent generators from the same seed (e.g. one
    for weight init and one for data shuffling) without the streams being correlated.
    """
    base = DEFAULT_SEED if seed is None else int(seed)
    if stream:
        mix = np.frombuffer(stream.encode("utf-8"), dtype=np.uint8)
        base = int(np.uint64(base) ^ np.uint64(int(mix.sum()) * 0x9E3779B1))
    return np.random.default_rng(base)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent child generators from ``rng``."""
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]
