"""A small discoverable registry for named, pluggable families.

Two layers used to hard-code their family members: the offload strategies
lived in an ``if``-ladder inside :mod:`repro.baselines.registry` and the CLI
repeated the names in its ``--strategies`` default.  With the pipeline
subsystem adding a second family (schedule passes), the names move into
registries instead: a family is a :class:`Registry` of :class:`Entry` records
(canonical name, aliases, one-line description, builder), and every surface
that enumerates members — ``repro pipeline --list-schedules``,
``repro list-presets``, the serve handlers, the policy validators — reads the
registry rather than repeating a list.

Entries are matched case-insensitively on the canonical name or any alias,
with ``-``/``_`` treated as equivalent, mirroring how the strategy names have
always been parsed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import ConfigurationError


def _canonical(name: str) -> str:
    """The lookup key of a name: lower-cased, ``_`` folded into ``-``."""
    return name.strip().lower().replace("_", "-")


@dataclass(frozen=True)
class Entry:
    """One registered family member."""

    name: str
    builder: Callable[..., Any]
    aliases: tuple[str, ...] = ()
    description: str = ""
    metadata: dict = field(default_factory=dict)


class Registry:
    """Named members of one pluggable family (insertion-ordered)."""

    def __init__(self, family: str) -> None:
        self.family = family
        self._entries: dict[str, Entry] = {}
        self._lookup: dict[str, str] = {}

    def register(
        self,
        name: str,
        builder: Callable[..., Any],
        *,
        aliases: tuple[str, ...] = (),
        description: str = "",
        **metadata: Any,
    ) -> Entry:
        """Add one member; canonical names and aliases must be unique."""
        name = _canonical(name)
        entry = Entry(name=name, builder=builder, aliases=tuple(aliases),
                      description=description, metadata=dict(metadata))
        if name in self._entries:
            raise ConfigurationError(
                f"{self.family} {name!r} is already registered"
            )
        for key in (name,) + entry.aliases:
            folded = _canonical(key)
            if folded in self._lookup:
                raise ConfigurationError(
                    f"{self.family} name {key!r} already maps to "
                    f"{self._lookup[folded]!r}"
                )
            self._lookup[folded] = name
        self._entries[name] = entry
        return entry

    def names(self) -> list[str]:
        """Canonical member names, in registration order."""
        return list(self._entries)

    def entries(self) -> list[Entry]:
        """All entries, in registration order."""
        return list(self._entries.values())

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and _canonical(name) in self._lookup

    def get(self, name: str) -> Entry:
        """Resolve a name or alias to its entry, or raise with the valid names."""
        if not isinstance(name, str):
            raise ConfigurationError(
                f"{self.family} name must be a string, got {name!r}"
            )
        canonical = self._lookup.get(_canonical(name))
        if canonical is None:
            raise ConfigurationError(
                f"unknown {self.family} {name!r}; available: {self.names()}"
            )
        return self._entries[canonical]

    def build(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Look up ``name`` and invoke its builder."""
        return self.get(name).builder(*args, **kwargs)
