"""Units and human-readable formatting helpers.

Bandwidths in the paper are expressed in decimal gigabytes per second (GB/s) while
memory capacities are expressed in binary gibibytes (labelled "GB" in the paper, as is
customary for GPU HBM sizes).  To avoid ambiguity this module exposes both families of
constants and converters; the hardware specs state explicitly which one they use.
"""

from __future__ import annotations

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

KIB = 1024
MIB = 1024**2
GIB = 1024**3
TIB = 1024**4


def gb(value: float) -> float:
    """Convert decimal gigabytes to bytes."""
    return value * GB


def gib(value: float) -> float:
    """Convert binary gibibytes to bytes."""
    return value * GIB


def bytes_to_gb(value: float) -> float:
    """Convert bytes to decimal gigabytes."""
    return value / GB


def bytes_to_gib(value: float) -> float:
    """Convert bytes to binary gibibytes."""
    return value / GIB


def format_bytes(value: float) -> str:
    """Format a byte count with a binary suffix (KiB/MiB/GiB/TiB)."""
    magnitude = abs(value)
    if magnitude >= TIB:
        return f"{value / TIB:.2f} TiB"
    if magnitude >= GIB:
        return f"{value / GIB:.2f} GiB"
    if magnitude >= MIB:
        return f"{value / MIB:.2f} MiB"
    if magnitude >= KIB:
        return f"{value / KIB:.2f} KiB"
    return f"{value:.0f} B"


def format_duration(seconds: float) -> str:
    """Format a duration in a human-friendly unit (ns/us/ms/s/min)."""
    magnitude = abs(seconds)
    if magnitude >= 60.0:
        minutes = int(seconds // 60)
        return f"{minutes}m {seconds - 60 * minutes:.1f}s"
    if magnitude >= 1.0:
        return f"{seconds:.3f} s"
    if magnitude >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    if magnitude >= 1e-6:
        return f"{seconds * 1e6:.2f} us"
    return f"{seconds * 1e9:.1f} ns"


def format_throughput(bytes_per_second: float) -> str:
    """Format a bandwidth in GB/s (decimal), the unit used throughout the paper."""
    return f"{bytes_per_second / GB:.2f} GB/s"


def format_param_throughput(params_per_second: float) -> str:
    """Format an update throughput in billions of parameters per second."""
    return f"{params_per_second / 1e9:.2f} B params/s"
