"""Deep Optimizer States reproduction.

A Python library reproducing "Deep Optimizer States: Towards Scalable Training of
Transformer Models Using Interleaved Offloading" (MIDDLEWARE 2024): interleaved
CPU-GPU scheduling of ZeRO-3 optimizer subgroup updates, the Equation 1 performance
model that picks the interleaving stride, the accelerated gradient-flush path, the
DeepSpeed ZeRO-3 / TwinFlow baselines, and the discrete-event testbed simulation plus
numeric miniature-model path used to regenerate every figure and table of the paper's
evaluation.

Quickstart::

    from repro import TrainingJobConfig, Trainer

    report = Trainer(TrainingJobConfig(model="20B", strategy="deep-optimizer-states")).run()
    print(report.as_row())
"""

from repro.core.engine import DeepOptimizerStates, DeepOptimizerStatesConfig, OffloadStrategy
from repro.core.performance_model import (
    PerformanceModel,
    cpu_to_gpu_update_ratio,
    optimal_update_stride,
)
from repro.core.scheduler import UpdatePlan, UpdateTarget, build_update_plan
from repro.baselines import TwinFlowBaseline, Zero3OffloadBaseline, build_strategy
from repro.hardware import (
    JLSE_H100_NODE,
    LAMBDA_V100_NODE,
    MachineSpec,
    ThroughputProfile,
    get_machine_preset,
)
from repro.model import TransformerConfig, get_model_preset, list_model_presets
from repro.optim import AdamConfig, AdamRule, build_optimizer
from repro.pipeline import (
    PipelineResult,
    PipelineStrategy,
    PipelineTiming,
    build_schedule,
    pipeline_sweep,
    simulate_pipeline,
)
from repro.runtime import ExecutionPolicy, ResolvedExecution, configure
from repro.training import (
    MiniTrainer,
    Trainer,
    TrainingJobConfig,
    TrainingReport,
    simulate_job,
)
from repro.zero import OffloadConfig, ShardedMixedPrecisionOptimizer

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DeepOptimizerStates",
    "DeepOptimizerStatesConfig",
    "OffloadStrategy",
    "PerformanceModel",
    "cpu_to_gpu_update_ratio",
    "optimal_update_stride",
    "UpdatePlan",
    "UpdateTarget",
    "build_update_plan",
    "Zero3OffloadBaseline",
    "TwinFlowBaseline",
    "build_strategy",
    "MachineSpec",
    "ThroughputProfile",
    "JLSE_H100_NODE",
    "LAMBDA_V100_NODE",
    "get_machine_preset",
    "TransformerConfig",
    "get_model_preset",
    "list_model_presets",
    "AdamRule",
    "AdamConfig",
    "build_optimizer",
    "PipelineResult",
    "PipelineStrategy",
    "PipelineTiming",
    "build_schedule",
    "pipeline_sweep",
    "simulate_pipeline",
    "ExecutionPolicy",
    "ResolvedExecution",
    "configure",
    "OffloadConfig",
    "ShardedMixedPrecisionOptimizer",
    "TrainingJobConfig",
    "Trainer",
    "TrainingReport",
    "MiniTrainer",
    "simulate_job",
]
