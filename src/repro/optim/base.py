"""Optimizer rule interface.

A rule owns no tensors; it receives the FP32 master parameters, the FP32 gradients and
a dictionary of FP32 state buffers (all flat, all the same length) and mutates them in
place.  The per-subgroup buffers themselves are owned by :class:`repro.zero.Subgroup`
so that they can be placed on (simulated) host or GPU memory independently of the
update rule.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError

OptimizerState = dict[str, np.ndarray]


@dataclass(frozen=True)
class OptimizerConfig:
    """Hyper-parameters shared by every rule."""

    learning_rate: float = 1e-4
    weight_decay: float = 0.0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.weight_decay < 0:
            raise ConfigurationError("weight_decay must be non-negative")


class OptimizerRule(abc.ABC):
    """An embarrassingly parallel per-parameter update rule."""

    #: Names of the FP32 state buffers this rule needs (e.g. momentum / variance).
    state_names: tuple[str, ...] = ()

    def __init__(self, config: OptimizerConfig) -> None:
        self.config = config

    def init_state(self, num_params: int) -> OptimizerState:
        """Allocate zero-initialised state buffers for ``num_params`` parameters."""
        if num_params < 0:
            raise ConfigurationError("num_params must be non-negative")
        return {name: np.zeros(num_params, dtype=np.float32) for name in self.state_names}

    @abc.abstractmethod
    def apply(
        self,
        params: np.ndarray,
        grads: np.ndarray,
        state: OptimizerState,
        step: int,
    ) -> None:
        """Update ``params`` and ``state`` in place using ``grads`` at optimizer ``step``."""

    def validate_buffers(self, params: np.ndarray, grads: np.ndarray, state: OptimizerState) -> None:
        """Common shape/dtype checks shared by the concrete rules."""
        if params.shape != grads.shape:
            raise ConfigurationError(
                f"parameter shape {params.shape} does not match gradient shape {grads.shape}"
            )
        for name in self.state_names:
            if name not in state:
                raise ConfigurationError(f"missing optimizer state buffer {name!r}")
            if state[name].shape != params.shape:
                raise ConfigurationError(
                    f"state buffer {name!r} shape {state[name].shape} does not match parameters"
                )

    @property
    def state_bytes_per_param(self) -> int:
        """FP32 bytes of optimizer state per parameter (used by the memory model)."""
        return 4 * len(self.state_names)
