"""Mixed-precision Adam / AdamW rule.

This is the update rule at the heart of the paper: the FP32 master parameters,
momentum and variance live (mostly) in host memory, the FP16 gradients produced on
the GPU are upscaled to FP32, and the rule is applied one subgroup at a time either
on the CPU or on the GPU.  The implementation is vectorised NumPy operating in place
on flat float32 buffers, plus a float64 reference used by the numerical tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.optim.base import OptimizerConfig, OptimizerRule, OptimizerState


@dataclass(frozen=True)
class AdamConfig(OptimizerConfig):
    """Adam hyper-parameters (defaults follow DeepSpeed's CPU Adam)."""

    learning_rate: float = 1e-4
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8
    weight_decay: float = 0.0
    bias_correction: bool = True
    adamw_mode: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.beta1 < 1.0 or not 0.0 <= self.beta2 < 1.0:
            raise ConfigurationError("betas must be in [0, 1)")
        if self.eps <= 0:
            raise ConfigurationError("eps must be positive")


class AdamRule(OptimizerRule):
    """Adam with optional decoupled weight decay (AdamW)."""

    state_names = ("momentum", "variance")

    def __init__(self, config: AdamConfig | None = None) -> None:
        super().__init__(config or AdamConfig())
        self.config: AdamConfig

    def apply(
        self,
        params: np.ndarray,
        grads: np.ndarray,
        state: OptimizerState,
        step: int,
    ) -> None:
        """One Adam step over a flat FP32 slice, in place."""
        if step < 1:
            raise ConfigurationError("optimizer step numbers are 1-based")
        self.validate_buffers(params, grads, state)
        cfg = self.config
        momentum = state["momentum"]
        variance = state["variance"]
        grads = np.asarray(grads, dtype=np.float32)

        if cfg.weight_decay and not cfg.adamw_mode:
            grads = grads + cfg.weight_decay * params

        momentum *= cfg.beta1
        momentum += (1.0 - cfg.beta1) * grads
        variance *= cfg.beta2
        variance += (1.0 - cfg.beta2) * np.square(grads)

        if cfg.bias_correction:
            bias1 = 1.0 - cfg.beta1**step
            bias2 = 1.0 - cfg.beta2**step
        else:
            bias1 = bias2 = 1.0

        denom = np.sqrt(variance / bias2) + cfg.eps
        update = (momentum / bias1) / denom
        if cfg.weight_decay and cfg.adamw_mode:
            update = update + cfg.weight_decay * params
        params -= cfg.learning_rate * update


def adam_reference_update(
    params: np.ndarray,
    grads: np.ndarray,
    momentum: np.ndarray,
    variance: np.ndarray,
    step: int,
    config: AdamConfig,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Float64 out-of-place Adam used as the ground truth in numerical tests."""
    p = np.asarray(params, dtype=np.float64).copy()
    g = np.asarray(grads, dtype=np.float64).copy()
    m = np.asarray(momentum, dtype=np.float64).copy()
    v = np.asarray(variance, dtype=np.float64).copy()

    if config.weight_decay and not config.adamw_mode:
        g = g + config.weight_decay * p
    m = config.beta1 * m + (1.0 - config.beta1) * g
    v = config.beta2 * v + (1.0 - config.beta2) * g**2
    if config.bias_correction:
        bias1 = 1.0 - config.beta1**step
        bias2 = 1.0 - config.beta2**step
    else:
        bias1 = bias2 = 1.0
    update = (m / bias1) / (np.sqrt(v / bias2) + config.eps)
    if config.weight_decay and config.adamw_mode:
        update = update + config.weight_decay * p
    p = p - config.learning_rate * update
    return p, m, v
