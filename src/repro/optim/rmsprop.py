"""RMSProp rule (Graves/Hinton), one of the adaptive optimizers the paper cites."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.optim.base import OptimizerConfig, OptimizerRule, OptimizerState


@dataclass(frozen=True)
class RMSPropConfig(OptimizerConfig):
    """RMSProp hyper-parameters."""

    learning_rate: float = 1e-3
    alpha: float = 0.99
    eps: float = 1e-8
    weight_decay: float = 0.0
    momentum: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.alpha < 1.0:
            raise ConfigurationError("alpha must be in [0, 1)")
        if self.eps <= 0:
            raise ConfigurationError("eps must be positive")
        if self.momentum < 0:
            raise ConfigurationError("momentum must be non-negative")


class RMSPropRule(OptimizerRule):
    """Exponential moving average of squared gradients with optional momentum."""

    state_names = ("square_avg", "momentum_buffer")

    def __init__(self, config: RMSPropConfig | None = None) -> None:
        super().__init__(config or RMSPropConfig())
        self.config: RMSPropConfig

    def apply(
        self,
        params: np.ndarray,
        grads: np.ndarray,
        state: OptimizerState,
        step: int,
    ) -> None:
        """One RMSProp step over a flat FP32 slice, in place."""
        if step < 1:
            raise ConfigurationError("optimizer step numbers are 1-based")
        self.validate_buffers(params, grads, state)
        cfg = self.config
        grads = np.asarray(grads, dtype=np.float32)
        if cfg.weight_decay:
            grads = grads + cfg.weight_decay * params
        square_avg = state["square_avg"]
        square_avg *= cfg.alpha
        square_avg += (1.0 - cfg.alpha) * np.square(grads)
        scaled = grads / (np.sqrt(square_avg) + cfg.eps)
        if cfg.momentum > 0:
            buffer = state["momentum_buffer"]
            buffer *= cfg.momentum
            buffer += scaled
            params -= cfg.learning_rate * buffer
        else:
            params -= cfg.learning_rate * scaled
