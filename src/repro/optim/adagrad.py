"""Adagrad rule (Duchi et al.), one of the adaptive optimizers the paper cites."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.optim.base import OptimizerConfig, OptimizerRule, OptimizerState


@dataclass(frozen=True)
class AdagradConfig(OptimizerConfig):
    """Adagrad hyper-parameters."""

    learning_rate: float = 1e-2
    eps: float = 1e-10
    weight_decay: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.eps <= 0:
            raise ConfigurationError("eps must be positive")


class AdagradRule(OptimizerRule):
    """Accumulates squared gradients and scales the learning rate per parameter."""

    state_names = ("accumulator",)

    def __init__(self, config: AdagradConfig | None = None) -> None:
        super().__init__(config or AdagradConfig())
        self.config: AdagradConfig

    def apply(
        self,
        params: np.ndarray,
        grads: np.ndarray,
        state: OptimizerState,
        step: int,
    ) -> None:
        """One Adagrad step over a flat FP32 slice, in place."""
        if step < 1:
            raise ConfigurationError("optimizer step numbers are 1-based")
        self.validate_buffers(params, grads, state)
        cfg = self.config
        grads = np.asarray(grads, dtype=np.float32)
        if cfg.weight_decay:
            grads = grads + cfg.weight_decay * params
        accumulator = state["accumulator"]
        accumulator += np.square(grads)
        params -= cfg.learning_rate * grads / (np.sqrt(accumulator) + cfg.eps)
