"""Adaptive-learning-rate optimizers operating on flat FP32 buffers.

The paper's offloading machinery is optimizer-agnostic as long as the update rule is
embarrassingly parallel per parameter; it names Adam, Adagrad and RMSProp explicitly.
All three are implemented here as *rules* that update a flat FP32 parameter slice plus
its state buffers in place, because that is exactly the shape of a ZeRO-3 subgroup:
the same rule instance is invoked for CPU-scheduled and GPU-scheduled subgroups, so
interleaving cannot change the numerics (a property the test suite checks).
"""

from repro.optim.base import OptimizerConfig, OptimizerRule, OptimizerState
from repro.optim.adam import AdamConfig, AdamRule, adam_reference_update
from repro.optim.adagrad import AdagradConfig, AdagradRule
from repro.optim.rmsprop import RMSPropConfig, RMSPropRule

__all__ = [
    "OptimizerConfig",
    "OptimizerRule",
    "OptimizerState",
    "AdamConfig",
    "AdamRule",
    "adam_reference_update",
    "AdagradConfig",
    "AdagradRule",
    "RMSPropConfig",
    "RMSPropRule",
]


def build_optimizer(name: str, **overrides) -> OptimizerRule:
    """Construct an optimizer rule by name ("adam", "adagrad", "rmsprop")."""
    from repro.common.errors import ConfigurationError

    name = name.lower()
    if name in ("adam", "adamw"):
        return AdamRule(AdamConfig(**overrides))
    if name == "adagrad":
        return AdagradRule(AdagradConfig(**overrides))
    if name == "rmsprop":
        return RMSPropRule(RMSPropConfig(**overrides))
    raise ConfigurationError(f"unknown optimizer {name!r}")
