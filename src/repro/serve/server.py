"""The ``repro serve`` daemon: simulation-as-a-service on the dispatch fabric.

One asyncio server, one port, two wire protocols, told apart by the first
byte of a connection: a length-prefixed frame's length prefix starts with a
zero byte (any payload under 16 MiB — request frames are small JSON), while
an HTTP method line starts with an uppercase ASCII letter.  Framed clients
(:class:`~repro.serve.client.ServeClient`) get a persistent multi-request
connection; HTTP clients get one request per connection through
:mod:`repro.serve.http`.

**Request path** — identical for both fronts:

1. parse into ``(method, params, policy overrides, client id)``;
2. merge overrides onto the server's policy
   (:func:`~repro.serve.handlers.resolve_request_policy`; client > server,
   ``cache_dir`` excluded);
3. run the *server's* middleware chain at the ``serve`` seam — admission
   control (``quota:limit=...``, ``concurrency:limit=...``) is server policy
   a client cannot override away;
4. inside the chain, coalesce: identical in-flight requests (keyed on the
   sweep cache's content-addressed entry names plus the resolved policy)
   share one computation through :class:`~repro.serve.coalesce.CoalescingMap`;
5. the computation runs on the event loop's thread pool through the ordinary
   ``SweepRunner``/executor stack, cache and all.

Values are the byte-identity invariant everywhere else in the stack, and the
serve layer preserves it: a ``sweep`` response body serialized by the HTTP
front equals the ``repro sweep --json`` export of the same grid byte for
byte.

**Security model**: inherited from ``docs/dispatch.md`` — the daemon trusts
its network.  Nothing authenticates requests, and a sweep request makes the
server import the named worker and burn CPU.  One hardening over the cluster
wire: serve clients speak JSON only; nothing a client sends is ever
unpickled.  Bind to loopback or a private network, never the open internet.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Mapping

from repro.common.errors import ConfigurationError
from repro.dispatch.cluster import parse_bind
from repro.dispatch.framing import (
    ConnectionClosed,
    FramingError,
    make_error_response,
    make_response,
    parse_request,
    read_frame,
    write_frame,
)
from repro.middleware import (
    SEAM_SERVE,
    MiddlewareContext,
    build_chain,
    effective_middleware_specs,
    middleware_metrics,
)
from repro.obs.metrics import REGISTRY as OBS_REGISTRY
from repro.middleware.builtin import ConcurrencyLimitError, QuotaExceededError
from repro.runtime import ExecutionPolicy
from repro.serve.coalesce import CoalescingMap
from repro.serve.handlers import HANDLERS, UnknownMethodError, resolve_request_policy
from repro.serve.http import HttpError, HttpRequest, format_response, read_http_request

#: Version reported by ``health``; bump on incompatible request-frame changes.
SERVE_PROTOCOL_VERSION = 1

#: Methods answered by the server itself, without a handler or the chain.
_INTROSPECTION_METHODS = ("health", "metrics")


def error_status(exc: BaseException) -> int:
    """Map an exception to the transport status both fronts report."""
    if isinstance(exc, UnknownMethodError):
        return 404
    if isinstance(exc, QuotaExceededError):
        return 429
    if isinstance(exc, ConcurrencyLimitError):
        return 503
    if isinstance(exc, (ConfigurationError, FramingError)):
        return 400
    return 500


def _json_body(payload: Any) -> bytes:
    # The exact serialization of SweepResult.save_json, so an HTTP sweep
    # response is byte-identical to the CLI's --json export.
    return json.dumps(payload, indent=2, sort_keys=True).encode()


class ReproServer:
    """The serve daemon.  Start with :meth:`start` inside a running loop.

    ``policy`` is the server's resolved :class:`ExecutionPolicy` (default:
    resolve through the standard order, so ``$REPRO_MIDDLEWARE`` and
    ``repro.configure`` contexts apply); its ``middleware`` field becomes the
    serve-seam admission chain.  ``on_event`` receives lifecycle dicts
    (listening, request, error) on whatever thread emits them.
    """

    def __init__(self, bind: str = "127.0.0.1:0", *,
                 policy: ExecutionPolicy | None = None,
                 on_event=None) -> None:
        self._host, self._port = parse_bind(bind)
        if policy is None:
            policy = ExecutionPolicy.resolve()
        if not isinstance(policy, ExecutionPolicy):
            raise ConfigurationError("policy must be an ExecutionPolicy")
        self.policy = policy
        self._chain = build_chain(effective_middleware_specs(policy))
        self.coalescer = CoalescingMap()
        self.address: tuple[str, int] | None = None
        self.requests_total = 0
        self.errors_total = 0
        self._started = time.monotonic()
        self._server: asyncio.base_events.Server | None = None
        self._on_event = on_event

    def _event(self, kind: str, **payload: Any) -> None:
        if self._on_event is not None:
            event = {"event": kind}
            event.update(payload)
            self._on_event(event)

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(self._handle, self._host, self._port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._event("serve-listening", host=self.address[0], port=self.address[1])
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------ execution

    async def execute(self, method: str, params: Mapping[str, Any] | None = None,
                      policy: Mapping[str, Any] | None = None,
                      client: str = "local") -> Any:
        """Run one request exactly as a remote caller would (tests use this).

        Raises on error; both fronts translate exceptions through
        :func:`error_status` into their wire's error shape.
        """
        self.requests_total += 1
        self._event("request", method=method, client=client)
        if method == "health":
            return self._health()
        if method == "metrics":
            return self._metrics()
        handler = HANDLERS.get(method)
        if handler is None:
            known = sorted(HANDLERS) + list(_INTROSPECTION_METHODS)
            raise UnknownMethodError(
                f"unknown method {method!r}; expected one of {', '.join(known)}"
            )
        request_policy = resolve_request_policy(self.policy, policy)
        key, thunk = handler.prepare(dict(params or {}), request_policy)

        def call() -> Any:
            # Chain outside, coalescing inside: quotas and timing count every
            # request (followers included); the computation itself runs once.
            guarded = thunk if key is None else \
                (lambda: self.coalescer.run(key, thunk))
            if self._chain is None:
                return guarded()
            context = MiddlewareContext(
                seam=SEAM_SERVE,
                name=method,
                policy=request_policy,
                payload={"method": method, "client": client},
            )
            return self._chain.run(context, guarded)

        # Handlers block (SweepRunner, pool executors); the loop's default
        # thread pool keeps the server responsive while they run.  Coalescing
        # cannot deadlock the pool: a follower only ever waits once it holds
        # a thread, and its leader by definition already holds one.
        return await asyncio.get_running_loop().run_in_executor(None, call)

    def _health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "protocol": SERVE_PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "requests_total": self.requests_total,
            "errors_total": self.errors_total,
            "methods": sorted(HANDLERS) + list(_INTROSPECTION_METHODS),
            "policy": self.policy.describe(),
        }

    def _metrics(self) -> dict[str, Any]:
        # middleware_metrics() is the process-wide per-seam registry fed by
        # TimingMiddleware — what the CI serve job reads to prove coalescing
        # (serve-seam count = requests, dispatch-seam count = computations).
        return {
            "requests_total": self.requests_total,
            "errors_total": self.errors_total,
            "coalescing": self.coalescer.stats(),
            "middleware": middleware_metrics(),
        }

    # -------------------------------------------------- connection handling

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            initial = await reader.readexactly(1)
        except (asyncio.IncompleteReadError, OSError):
            self._close_writer(writer)
            return
        try:
            if initial[0] == 0:
                # A frame header's first length byte: zero for any payload
                # under 16 MiB, which every request frame is.
                await self._serve_framed(initial, reader, writer)
            elif 0x41 <= initial[0] <= 0x5A:
                # An uppercase ASCII letter: an HTTP method line.
                await self._serve_http(initial, reader, writer)
            # Anything else is neither protocol: drop the connection.
        except (ConnectionClosed, FramingError, OSError,
                asyncio.IncompleteReadError, ConnectionResetError):
            pass
        finally:
            self._close_writer(writer)

    @staticmethod
    def _close_writer(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except RuntimeError:  # pragma: no cover - loop tearing down
            pass

    @staticmethod
    def _peer_host(writer: asyncio.StreamWriter) -> str:
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if peer else "unknown"

    # ----------------------------------------------------------- framed front

    async def _serve_framed(self, initial: bytes, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        """A persistent framed connection: request frames in, responses out."""
        default_client = self._peer_host(writer)
        frame = await read_frame(reader, prefix=initial)
        while True:
            try:
                request_id, method, params, overrides, client = parse_request(frame)
            except FramingError as exc:
                self.errors_total += 1
                response = make_error_response(None, type(exc).__name__,
                                               str(exc), error_status(exc))
            else:
                response = await self._respond(request_id, method, params,
                                               overrides, client or default_client)
            await write_frame(writer, response)
            try:
                frame = await read_frame(reader)
            except ConnectionClosed:
                return

    async def _respond(self, request_id: Any, method: str, params: dict,
                       overrides: dict, client: str) -> dict:
        try:
            result = await self.execute(method, params, overrides, client)
        except Exception as exc:
            self.errors_total += 1
            self._event("request-error", method=method, client=client,
                        error=type(exc).__name__)
            return make_error_response(request_id, type(exc).__name__,
                                       str(exc), error_status(exc))
        return make_response(request_id, result)

    # ------------------------------------------------------------- HTTP front

    async def _serve_http(self, initial: bytes, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        """One HTTP request, one JSON response, connection closed."""
        try:
            request = await read_http_request(reader, prefix=initial)
        except HttpError as exc:
            self.errors_total += 1
            status, payload = exc.status, self._error_payload(exc, exc.status)
        else:
            if request.method == "GET" and request.path == "/metrics" \
                    and self._wants_prometheus(request):
                # Content negotiation: a Prometheus scraper (Accept names
                # text/plain or openmetrics) gets the text exposition of the
                # obs registry; everything else keeps the JSON body.
                self.requests_total += 1
                body = OBS_REGISTRY.render_prometheus().encode()
                writer.write(format_response(
                    200, body, content_type="text/plain; version=0.0.4; charset=utf-8"))
                await writer.drain()
                return
            status, payload = await self._http_dispatch(request,
                                                        self._peer_host(writer))
        writer.write(format_response(status, _json_body(payload)))
        await writer.drain()

    @staticmethod
    def _wants_prometheus(request: HttpRequest) -> bool:
        accept = str(request.headers.get("accept", "")).lower()
        return "text/plain" in accept or "openmetrics" in accept

    @staticmethod
    def _error_payload(exc: BaseException, status: int) -> dict:
        return {"error": {"type": type(exc).__name__, "message": str(exc),
                          "status": status}}

    async def _http_dispatch(self, request: HttpRequest,
                             default_client: str) -> tuple[int, Any]:
        if request.method == "GET" and request.path in ("/", "/health"):
            return 200, await self.execute("health", client=default_client)
        if request.method == "GET" and request.path == "/metrics":
            return 200, await self.execute("metrics", client=default_client)
        if request.path.startswith("/v1/"):
            if request.method != "POST":
                return 405, {"error": {"type": "HttpError",
                                       "message": "method endpoints take POST",
                                       "status": 405}}
            method = request.path[len("/v1/"):]
            try:
                body = json.loads(request.body) if request.body else {}
            except json.JSONDecodeError as exc:
                self.errors_total += 1
                return 400, self._error_payload(
                    ConfigurationError(f"request body is not JSON: {exc}"), 400)
            if not isinstance(body, dict):
                self.errors_total += 1
                return 400, self._error_payload(
                    ConfigurationError("request body must be a JSON object"), 400)
            client = request.headers.get("x-repro-client") \
                or body.get("client") or default_client
            try:
                result = await self.execute(method, body.get("params"),
                                            body.get("policy"), str(client))
            except Exception as exc:
                self.errors_total += 1
                status = error_status(exc)
                self._event("request-error", method=method, client=str(client),
                            error=type(exc).__name__)
                return status, self._error_payload(exc, status)
            return 200, result
        return 404, {"error": {"type": "HttpError",
                               "message": f"no route for {request.method} {request.path}",
                               "status": 404}}


class ServerThread:
    """Run a :class:`ReproServer` on a background event-loop thread.

    The in-process harness used by tests, notebooks and scripts::

        with ServerThread(policy=policy) as running:
            client = ServeClient(running.address)
            ...

    ``__exit__`` follows the same stop-join-close discipline as
    :meth:`repro.dispatch.cluster.ClusterExecutor.close`: stop the loop,
    join the thread, close the loop unconditionally.
    """

    def __init__(self, bind: str = "127.0.0.1:0", *,
                 policy: ExecutionPolicy | None = None, on_event=None) -> None:
        self.server = ReproServer(bind, policy=policy, on_event=on_event)
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "ServerThread":
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        try:
            self.address = asyncio.run_coroutine_threadsafe(
                self.server.start(), self._loop).result(timeout=10.0)
        except BaseException:
            self._teardown()
            raise
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop).result(timeout=10.0)
        except BaseException:
            pass
        self._teardown()

    def _teardown(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        try:
            self._loop.close()
        except RuntimeError:  # pragma: no cover - wedged thread
            pass
