"""A blocking framed client for the serve daemon.

The efficient counterpart to the HTTP front: one persistent TCP connection,
length-prefixed JSON frames (:mod:`repro.dispatch.framing`), many requests
per connection.  Synchronous by design — callers are scripts, tests and
notebooks, and a blocking ``request()`` composes with whatever concurrency
they already have (threads in the differential tests, nothing in a script).

Errors the *server* reports come back as :class:`ServeRequestError` carrying
the server-side exception type and the same status code the HTTP front would
have used; transport-level trouble (connection refused, dropped mid-frame)
raises the underlying ``OSError``/``FramingError`` unchanged.
"""

from __future__ import annotations

import socket
from typing import Any, Mapping

from repro.common.errors import ReproError
from repro.dispatch.cluster import parse_bind
from repro.dispatch.framing import (
    MSG_RESPONSE,
    FramingError,
    make_request,
    recv_message,
    send_message,
)


class ServeRequestError(ReproError):
    """A request the server rejected; mirrors the wire's error object."""

    def __init__(self, message: str, *, error_type: str = "",
                 status: int = 500) -> None:
        super().__init__(message)
        self.error_type = error_type
        self.status = status


class ServeClient:
    """Blocking request/response client over one framed connection.

    ``address`` is a ``HOST:PORT`` string (IPv6 bracketed, as everywhere in
    the dispatch layer) or an already-parsed ``(host, port)`` tuple.
    ``client_id`` names this client to the server's quota middleware; it
    defaults to the connection's peer identity on the server side.
    """

    def __init__(self, address: str | tuple, *, client_id: str | None = None,
                 timeout: float = 60.0) -> None:
        host, port = parse_bind(address) if isinstance(address, str) else address
        self._client_id = client_id
        self._next_id = 0
        self._sock = socket.create_connection((host, port), timeout=timeout)

    def request(self, method: str, params: Mapping[str, Any] | None = None,
                policy: Mapping[str, Any] | None = None) -> Any:
        """Send one request and block for its response.

        Returns the method's result object, or raises
        :class:`ServeRequestError` with the server's error type and status.
        """
        self._next_id += 1
        request_id = self._next_id
        send_message(self._sock, make_request(
            request_id, method,
            params=dict(params) if params else None,
            policy=dict(policy) if policy else None,
            client=self._client_id,
        ))
        response = recv_message(self._sock)
        if not isinstance(response, dict) or response.get("type") != MSG_RESPONSE:
            raise FramingError(f"expected a response frame, got {response!r}")
        if response.get("id") != request_id:
            raise FramingError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}"
            )
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise ServeRequestError(
            str(error.get("message", "request failed")),
            error_type=str(error.get("type", "")),
            status=int(error.get("status", 500)),
        )

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
