"""``repro.serve`` — simulation-as-a-service on the dispatch fabric.

A long-lived daemon (``repro serve --bind HOST:PORT``) exposing the
simulation stack — ``simulate``, ``compare``, ``sweep`` — over two wire
protocols on one port: the dispatch layer's length-prefixed JSON frames for
efficient persistent clients, and a minimal stdlib HTTP/JSON front for
``curl``/``urllib``.  Requests resolve an :class:`~repro.runtime.ExecutionPolicy`
per call (client overrides on the server's defaults), run through the
ordinary ``SweepRunner``/executor stack, and coalesce when identical
requests are already in flight.  See ``docs/serve.md``.
"""

from repro.serve.client import ServeClient, ServeRequestError
from repro.serve.coalesce import CoalescingMap
from repro.serve.handlers import (
    CLIENT_POLICY_FIELDS,
    HANDLERS,
    SWEEP_WORKERS,
    UnknownMethodError,
    resolve_request_policy,
)
from repro.serve.server import (
    SERVE_PROTOCOL_VERSION,
    ReproServer,
    ServerThread,
    error_status,
)

__all__ = [
    "CLIENT_POLICY_FIELDS",
    "CoalescingMap",
    "HANDLERS",
    "ReproServer",
    "SERVE_PROTOCOL_VERSION",
    "SWEEP_WORKERS",
    "ServeClient",
    "ServeRequestError",
    "ServerThread",
    "UnknownMethodError",
    "error_status",
    "resolve_request_policy",
]
