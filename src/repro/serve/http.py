"""A minimal HTTP/1.1 front for the serve daemon (stdlib only, no framework).

Just enough HTTP for ``curl`` and ``urllib``: one request per connection
(``Connection: close``), a bounded head, a ``Content-Length``-delimited body.
Chunked uploads, keep-alive and multipart are deliberately out of scope — the
framed protocol (:mod:`repro.dispatch.framing`) is the efficient interface;
this front exists so a sweep can be driven from anything that speaks HTTP.

Response bodies are serialized by the server with ``indent=2, sort_keys=True``
— the exact bytes of :meth:`repro.sweep.SweepResult.save_json` — so piping a
``/v1/sweep`` response to a file yields the CLI's export format verbatim.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.common.errors import ReproError

#: Bound on the request line + headers; a head larger than this is not a
#: sweep request, it is abuse or a confused client.
MAX_HEAD_BYTES = 64 * 1024

#: Bound on the request body.  Grids are small JSON; 16 MiB is generous.
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Content Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ReproError):
    """A request that cannot be parsed or accepted; carries its status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request: method, path, lower-cased headers, raw body."""

    method: str
    path: str
    headers: dict
    body: bytes


async def read_http_request(reader: asyncio.StreamReader, *,
                            prefix: bytes = b"") -> HttpRequest:
    """Parse one HTTP/1.1 request from the stream.

    ``prefix`` replays bytes the protocol sniffer already consumed.  Raises
    :class:`HttpError` with the appropriate status on anything malformed or
    over the bounds.
    """
    head = bytearray(prefix)
    while b"\r\n\r\n" not in head:
        if len(head) > MAX_HEAD_BYTES:
            raise HttpError(431, f"request head exceeds {MAX_HEAD_BYTES} bytes")
        chunk = await reader.read(4096)
        if not chunk:
            raise HttpError(400, "connection closed before the request head completed")
        head.extend(chunk)
    head_bytes, _, rest = bytes(head).partition(b"\r\n\r\n")
    try:
        lines = head_bytes.decode("latin-1").split("\r\n")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes any byte
        raise HttpError(400, "undecodable request head") from None
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, path, _version = parts
    headers: dict = {}
    for line in lines[1:]:
        name, separator, value = line.partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(400, "malformed Content-Length header") from None
    if length < 0:
        raise HttpError(400, "negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = bytearray(rest)
    while len(body) < length:
        chunk = await reader.read(min(1 << 16, length - len(body)))
        if not chunk:
            raise HttpError(400, "connection closed mid-body")
        body.extend(chunk)
    return HttpRequest(method=method, path=path, headers=headers,
                       body=bytes(body[:length]))


def format_response(status: int, body: bytes,
                    content_type: str = "application/json") -> bytes:
    """Serialize one complete response (head + body) ready for the socket."""
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body
