"""In-flight request coalescing: identical concurrent work runs once.

The sweep cache already deduplicates *completed* work — a scenario's value is
content-addressed by the entry name :meth:`repro.sweep.SweepRunner.cache_entry_name`
builds.  What it cannot deduplicate is two identical requests arriving while
the first is still computing: both would miss and both would compute.  The
:class:`CoalescingMap` closes that window for the serve layer by keying
in-flight computations on the same identity the cache uses: the second
request parks on the first's :class:`threading.Event` and shares its result
(or its exception — a failure is delivered to every waiter, not retried
behind their backs).

Scope is deliberately *in-flight only*: the moment the leader finishes, the
entry is dropped and the next identical request goes to the cache like any
other.  Persisting results here would duplicate the cache's job with a
second, unsynchronized store.

Thread-safe by construction — serve request handlers run on a thread pool —
and free of any executor coupling: ``run`` takes a plain zero-argument
callable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

_UNSET = object()


@dataclass
class _Entry:
    """One in-flight computation: the leader fills it, followers wait on it."""

    done: threading.Event = field(default_factory=threading.Event)
    result: Any = _UNSET
    error: BaseException | None = None


class CoalescingMap:
    """Share one computation among identical concurrent calls.

    ``run(key, compute)`` either *leads* (no entry for ``key`` yet: register
    one, run ``compute``, publish) or *follows* (an identical call is in
    flight: block until the leader publishes, return its result or re-raise
    its exception).  Keys are opaque strings; the serve layer derives them
    from the sweep cache's content-addressed entry names, so "identical"
    means exactly "would have produced the same cache entries".
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[str, _Entry] = {}
        self._leaders_total = 0
        self._followers_total = 0

    def run(self, key: str, compute: Callable[[], Any]) -> Any:
        with self._lock:
            entry = self._inflight.get(key)
            leading = entry is None
            if leading:
                entry = _Entry()
                self._inflight[key] = entry
                self._leaders_total += 1
            else:
                self._followers_total += 1
        if not leading:
            entry.done.wait()
            if entry.error is not None:
                raise entry.error
            return entry.result
        try:
            entry.result = compute()
            return entry.result
        except BaseException as exc:
            entry.error = exc
            raise
        finally:
            # Unregister *before* waking followers: a new identical request
            # arriving after the leader finished must lead its own (cache-hit)
            # run, never park on a published entry.
            with self._lock:
                self._inflight.pop(key, None)
            entry.done.set()

    def stats(self) -> dict[str, int]:
        """JSON-ready counters: in-flight entries, lifetime leaders/followers."""
        with self._lock:
            return {
                "inflight": len(self._inflight),
                "leaders_total": self._leaders_total,
                "followers_total": self._followers_total,
            }
