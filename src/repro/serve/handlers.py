"""The serve methods: request validation, policy merging, coalescing keys.

Each handler turns one validated request into ``(key, thunk)``: ``key`` is
the coalescing identity (``None`` opts out) and ``thunk`` the blocking
computation the server runs on its thread pool.  The split matters: keys are
derived *before* execution from the same content-addressed identities the
sweep cache uses, so two requests coalesce exactly when they would have
written the same cache entries.

**Policy merging.**  Every request may carry a ``policy`` object of
:class:`~repro.runtime.ExecutionPolicy` field overrides, applied on top of
the server's resolved policy (client > server defaults — the same precedence
the CLI gives explicit flags).  ``cache_dir`` is the one field clients cannot
touch: the cache is the server's storage, and letting a request point it at
an arbitrary path would turn a compute service into a file-write service.
The server's middleware chain is likewise built from the *server's* policy
only — a client override can change how its sweep executes, never which
quotas it is admitted through.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.baselines.registry import available_strategies
from repro.common.errors import ConfigurationError, ReproError
from repro.common.serialization import to_dict
from repro.dispatch.base import resolve_worker_spec
from repro.experiments.base import run_training, training_sweep
from repro.runtime import ExecutionPolicy, policy_context
from repro.runtime.policy import POLICY_FIELDS
from repro.sweep import SweepRunner, SweepSpec


class UnknownMethodError(ReproError):
    """The request names no serve method (mapped to HTTP 404)."""


#: Policy fields a request may override.  Everything in POLICY_FIELDS except
#: ``cache_dir`` and ``trace_out`` — both name server-side filesystem paths,
#: and letting a request point them at arbitrary locations would turn a
#: compute service into a file-write service.  (``trace`` *is* allowed: a
#: request asking for spans changes only what the server records, not what
#: it writes; the sweep method's ``trace`` parameter returns the export
#: in-band instead.)
CLIENT_POLICY_FIELDS = tuple(
    name for name in POLICY_FIELDS if name not in ("cache_dir", "trace_out")
)

#: Named sweep workers, mirroring ``repro sweep --worker``.  Any other value
#: must be an explicit ``module:qualname`` reference resolvable on the server.
SWEEP_WORKERS = {
    "training": "repro.experiments.base:run_training",
    "numeric": "repro.training.numeric:run_numeric_training",
    "pipeline": "repro.pipeline.run:run_pipeline",
}


def resolve_request_policy(
    server_policy: ExecutionPolicy, overrides: Mapping[str, Any] | None
) -> ExecutionPolicy:
    """Merge client policy overrides onto the server's policy (client wins)."""
    if not overrides:
        return server_policy
    if not isinstance(overrides, Mapping):
        raise ConfigurationError(
            "request policy must be a JSON object of execution-policy field overrides"
        )
    unknown = set(overrides) - set(CLIENT_POLICY_FIELDS)
    if unknown:
        raise ConfigurationError(
            f"policy field(s) {sorted(unknown)!r} cannot be set per request; "
            f"clients may override {', '.join(CLIENT_POLICY_FIELDS)}"
        )
    return server_policy.with_overrides(**overrides)


def _reject_unknown_params(method: str, params: Mapping[str, Any],
                           known: tuple[str, ...]) -> None:
    unknown = set(params) - set(known)
    if unknown:
        raise ConfigurationError(
            f"unknown parameter(s) {sorted(unknown)!r} for method {method!r}; "
            f"expected one of {', '.join(known)}"
        )


def _digest(*parts: Any) -> str:
    """One stable hash over JSON-able parts (Paths and tuples via default=str)."""
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(json.dumps(part, sort_keys=True, separators=(",", ":"),
                                 default=str).encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()[:32]


def _policy_key(policy: ExecutionPolicy) -> dict[str, Any]:
    """The policy identity folded into coalescing keys.

    Execution-only fields (jobs, executor, scheduler...) are byte-identity
    invariants — they never change values — but they *do* change cost and
    placement, and a client that explicitly asked for ``jobs=8`` should not
    silently receive a ``jobs=1`` run's result object (the exports differ in
    the recorded ``jobs`` field).  Folding the whole policy in keeps
    coalescing conservative: only requests that are identical in every
    observable way share a computation.
    """
    return {name: str(value) for name, value in policy.as_dict().items()}


@dataclass(frozen=True)
class Handler:
    """One serve method: ``prepare(params, policy) -> (coalesce_key, thunk)``."""

    name: str
    prepare: Callable[[Mapping[str, Any], ExecutionPolicy],
                      tuple[str | None, Callable[[], Any]]]


# -------------------------------------------------------------------- methods


def _resolve_sweep_worker(name: Any) -> Callable[..., Any]:
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"sweep worker must be a name or module:qualname string, got {name!r}"
        )
    spec = SWEEP_WORKERS.get(name, name)
    if ":" not in spec:
        raise ConfigurationError(
            f"unknown sweep worker {name!r}; expected "
            f"{', '.join(sorted(SWEEP_WORKERS))} or a module:qualname reference"
        )
    return resolve_worker_spec(spec)


def _prepare_sweep(params: Mapping[str, Any],
                   policy: ExecutionPolicy) -> tuple[str, Callable[[], Any]]:
    """A sweep request: the exact computation behind ``repro sweep --json``.

    Returns :meth:`~repro.sweep.SweepResult.to_dict` verbatim, so a response
    serialized with ``indent=2, sort_keys=True`` is byte-identical to the CLI
    export of the same grid (the differential tests and the CI serve job both
    assert this).  ``trace: true`` additionally runs the sweep under span
    tracing and attaches the Chrome trace-event export as a sibling ``trace``
    key — the result object itself stays byte-identical; the trace flag rides
    in the resolved policy, so traced and untraced requests never coalesce.
    """
    _reject_unknown_params("sweep", params, ("worker", "axes", "base", "trace"))
    trace_requested = params.get("trace", False)
    if not isinstance(trace_requested, bool):
        raise ConfigurationError("sweep 'trace' must be a boolean")
    if trace_requested:
        policy = policy.with_overrides(trace=True)
    worker = _resolve_sweep_worker(params.get("worker", "training"))
    axes = params.get("axes")
    if not isinstance(axes, Mapping) or not axes:
        raise ConfigurationError(
            "sweep request needs an 'axes' object mapping parameter names to value lists"
        )
    normalized = {
        name: tuple(values) if isinstance(values, (list, tuple)) else (values,)
        for name, values in axes.items()
    }
    base = params.get("base") or {}
    if not isinstance(base, Mapping):
        raise ConfigurationError("sweep 'base' must be a JSON object")
    spec = SweepSpec.build(normalized, dict(base))
    runner = SweepRunner(worker, policy=policy)
    key = "sweep:" + _digest(
        [runner.cache_entry_name(scenario) for scenario in spec.scenarios()],
        _policy_key(policy),
    )
    if not trace_requested:
        return key, lambda: runner.run(spec).to_dict()

    def traced() -> Any:
        # Root the request's spans under one id so take_trace() lifts exactly
        # this sweep's trace, leaving concurrent traced requests untouched.
        from repro.obs.trace import span, take_trace, trace_events

        with span("sweep", seam="serve", attrs={"method": "sweep"}) as root:
            result = runner.run(spec).to_dict()
        payload = dict(result)
        payload["trace"] = trace_events(take_trace(root["trace_id"]))
        return payload

    return key, traced


def _prepare_simulate(params: Mapping[str, Any],
                      policy: ExecutionPolicy) -> tuple[str, Callable[[], Any]]:
    """One :func:`~repro.experiments.base.run_training` call under the policy."""
    key = "simulate:" + _digest(dict(params), _policy_key(policy))

    def thunk() -> Any:
        with policy_context(policy):
            try:
                report = run_training(**params)
            except TypeError as exc:
                # Bad keywords surface as TypeError from the signature; to a
                # remote caller that is a malformed request, not a server bug.
                raise ConfigurationError(f"bad simulate parameter(s): {exc}") from exc
        return to_dict(report)

    return key, thunk


def _prepare_compare(params: Mapping[str, Any],
                     policy: ExecutionPolicy) -> tuple[str, Callable[[], Any]]:
    """Strategy comparison on one job — the ``repro compare`` semantics.

    Same defaults as the CLI: all registered strategies, 10 iterations,
    steady state averaged over ``min(2, iterations - 1)`` warmup iterations.
    """
    _reject_unknown_params("compare", params, (
        "model", "machine", "microbatch_size", "data_parallel_degree",
        "static_gpu_fraction", "iterations", "strategies",
    ))
    strategies = params.get("strategies") or available_strategies()
    if not isinstance(strategies, (list, tuple)) or \
            not all(isinstance(name, str) for name in strategies):
        raise ConfigurationError("compare 'strategies' must be a list of strategy names")
    iterations = params.get("iterations", 10)
    if not isinstance(iterations, int) or isinstance(iterations, bool) or iterations < 1:
        raise ConfigurationError("compare 'iterations' must be a positive integer")
    base = {
        "model": params.get("model", "20B"),
        "machine": params.get("machine", "jlse-4xh100"),
        "microbatch_size": params.get("microbatch_size", 1),
        "data_parallel_degree": params.get("data_parallel_degree"),
        "static_gpu_fraction": params.get("static_gpu_fraction", 0.0),
        "iterations": iterations,
        "warmup_iterations": min(2, iterations - 1),
    }
    key = "compare:" + _digest({"strategies": list(strategies), "base": base},
                               _policy_key(policy))

    def thunk() -> Any:
        reports = training_sweep({"strategy": tuple(strategies)}, base=base,
                                 policy=policy)
        return {name: to_dict(report) for name, report in reports.items()}

    return key, thunk


def _prepare_ping(params: Mapping[str, Any],
                  policy: ExecutionPolicy) -> tuple[None, Callable[[], Any]]:
    """Liveness probe through the full request path (chain included)."""
    _reject_unknown_params("ping", params, ())
    return None, lambda: {"pong": True}


HANDLERS: dict[str, Handler] = {
    "sweep": Handler("sweep", _prepare_sweep),
    "simulate": Handler("simulate", _prepare_simulate),
    "compare": Handler("compare", _prepare_compare),
    "ping": Handler("ping", _prepare_ping),
}
