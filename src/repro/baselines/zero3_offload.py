"""DeepSpeed ZeRO-3 CPU-offload baseline (all updates on the CPU, blocking)."""

from __future__ import annotations

from repro.core.engine import OffloadStrategy
from repro.core.gradient_flush import (
    GradientFlushOps,
    build_baseline_gradient_flush,
    make_baseline_flush_rows,
)
from repro.core.numeric_executor import SequentialCpuExecutor
from repro.core.scheduler import UpdatePlan, build_cpu_only_plan
from repro.core.sim_executor import (
    UpdatePhaseOps,
    build_blocking_offload_update,
    build_blocking_offload_update_rows,
)
from repro.hardware.contention import HostContentionModel
from repro.hardware.throughput import ThroughputProfile
from repro.zero.offload import OffloadConfig, OffloadDevice


class Zero3OffloadBaseline(OffloadStrategy):
    """The paper's primary baseline: optimizer state fully offloaded to host memory."""

    name = "zero3-offload"
    display_name = "DeepSpeed ZeRO-3"

    def __init__(self, *, pin_memory: bool = True) -> None:
        self.pin_memory = pin_memory

    @property
    def static_gpu_fraction(self) -> float:
        return 0.0

    def offload_config(self, subgroup_size: int) -> OffloadConfig:
        return OffloadConfig(
            device=OffloadDevice.CPU,
            subgroup_size=subgroup_size,
            pin_memory=self.pin_memory,
            static_gpu_fraction=0.0,
        )

    def build_plan(self, num_subgroups: int, profile: ThroughputProfile) -> UpdatePlan:
        return build_cpu_only_plan(num_subgroups)

    def flush_blocks_backward(self) -> bool:
        return True

    def stages_subgroup_on_gpu(self) -> bool:
        return False

    def build_gradient_flush(
        self,
        engine,
        profile: ThroughputProfile,
        subgroup_params: dict[int, int],
        compute_deps: dict[int, int],
        plan: UpdatePlan,
    ) -> GradientFlushOps:
        return build_baseline_gradient_flush(engine, profile, subgroup_params, compute_deps)

    def build_update_phase(
        self,
        engine,
        profile: ThroughputProfile,
        plan: UpdatePlan,
        subgroup_params: dict[int, int],
        *,
        grad_ready_ops: dict[int, int],
        start_deps: tuple[int, ...],
        contention: HostContentionModel | None,
        staged_subgroup_bytes: int = 0,
    ) -> UpdatePhaseOps:
        return build_blocking_offload_update(
            engine,
            profile,
            plan,
            subgroup_params,
            grad_ready_ops=grad_ready_ops,
            start_deps=start_deps,
        )

    def numeric_executor(self, num_subgroups: int, profile: ThroughputProfile | None = None):
        return SequentialCpuExecutor()

    # ------------------------------------------------------------------ op batching

    def supports_op_batch(self) -> bool:
        return True

    def flush_row_builder(self, batch, profile, plan):
        return make_baseline_flush_rows(batch, profile)

    def build_update_phase_rows(
        self,
        batch,
        profile,
        plan,
        subgroup_params,
        *,
        grad_ready_ops,
        start_deps,
        contention,
        staged_subgroup_bytes: int = 0,
    ):
        return build_blocking_offload_update_rows(
            batch,
            profile,
            plan,
            subgroup_params,
            grad_ready_ops=grad_ready_ops,
            start_deps=start_deps,
        )
