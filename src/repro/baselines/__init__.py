"""Baseline offloading strategies the paper compares against.

* :class:`Zero3OffloadBaseline` — DeepSpeed ZeRO-3 with the optimizer state fully
  offloaded to host memory: every subgroup is updated on the CPU, the gradient flush
  uses the slow unpinned FP16 path and blocks the backward pass, and the H2D copy of
  every updated parameter slice blocks the CPU.
* :class:`TwinFlowBaseline` — DeepSpeed ZeRO-Offload++ / TwinFlow: a user-supplied
  fraction of the optimizer subgroups resides statically on the GPU (updated there at
  the start of the update phase), the remainder behaves exactly like the ZeRO-3
  baseline.
"""

from repro.baselines.zero3_offload import Zero3OffloadBaseline
from repro.baselines.twinflow import TwinFlowBaseline
from repro.baselines.registry import available_strategies, build_strategy

__all__ = [
    "Zero3OffloadBaseline",
    "TwinFlowBaseline",
    "available_strategies",
    "build_strategy",
]
