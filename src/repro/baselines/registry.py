"""Strategy registry used by the trainer, experiments and examples."""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.core.engine import DeepOptimizerStates, DeepOptimizerStatesConfig, OffloadStrategy
from repro.baselines.twinflow import TwinFlowBaseline
from repro.baselines.zero3_offload import Zero3OffloadBaseline


def available_strategies() -> list[str]:
    """Names accepted by :func:`build_strategy`."""
    return ["zero3-offload", "twinflow", "deep-optimizer-states"]


def build_strategy(
    name: str,
    *,
    static_gpu_fraction: float = 0.0,
    subgroup_size: int = 100_000_000,
    update_stride: int = 0,
) -> OffloadStrategy:
    """Construct one of the three strategies the paper evaluates.

    ``static_gpu_fraction`` is the TwinFlow "user-supplied ratio"; for Deep Optimizer
    States it pins the same fraction of subgroups (at the end of the index range) in
    addition to the dynamic interleaving.  ``update_stride`` forces a stride instead
    of deriving it from Equation 1 (0 keeps the automatic choice).
    """
    key = name.strip().lower()
    if key in ("zero3", "zero3-offload", "deepspeed-zero3", "zero-3"):
        return Zero3OffloadBaseline()
    if key in ("twinflow", "zero-offload++", "zero_offloadpp"):
        return TwinFlowBaseline(static_gpu_fraction=static_gpu_fraction)
    if key in ("deep-optimizer-states", "dos", "deep_optimizer_states"):
        config = DeepOptimizerStatesConfig(
            subgroup_size=subgroup_size,
            update_stride=update_stride,
            static_gpu_fraction=static_gpu_fraction,
        )
        return DeepOptimizerStates(config)
    raise ConfigurationError(
        f"unknown strategy {name!r}; available: {available_strategies()}"
    )
