"""Strategy registry used by the trainer, experiments and examples.

The three offload strategies live in :data:`STRATEGIES`, an instance of the
same :class:`~repro.common.registry.Registry` the pipeline schedule passes
use, so both scenario families are discoverable through one mechanism
(``repro pipeline --list-schedules`` prints both).  :func:`build_strategy`
keeps its historical signature and alias set on top.
"""

from __future__ import annotations

from repro.common.registry import Registry
from repro.core.engine import DeepOptimizerStates, DeepOptimizerStatesConfig, OffloadStrategy
from repro.baselines.twinflow import TwinFlowBaseline
from repro.baselines.zero3_offload import Zero3OffloadBaseline

#: The discoverable registry of offload strategies.
STRATEGIES = Registry("offload strategy")


def _build_zero3(
    *, static_gpu_fraction: float = 0.0, subgroup_size: int = 100_000_000,
    update_stride: int = 0,
) -> OffloadStrategy:
    return Zero3OffloadBaseline()


def _build_twinflow(
    *, static_gpu_fraction: float = 0.0, subgroup_size: int = 100_000_000,
    update_stride: int = 0,
) -> OffloadStrategy:
    return TwinFlowBaseline(static_gpu_fraction=static_gpu_fraction)


def _build_deep_optimizer_states(
    *, static_gpu_fraction: float = 0.0, subgroup_size: int = 100_000_000,
    update_stride: int = 0,
) -> OffloadStrategy:
    config = DeepOptimizerStatesConfig(
        subgroup_size=subgroup_size,
        update_stride=update_stride,
        static_gpu_fraction=static_gpu_fraction,
    )
    return DeepOptimizerStates(config)


STRATEGIES.register(
    "zero3-offload", _build_zero3,
    aliases=("zero3", "deepspeed-zero3", "zero-3"),
    description="DeepSpeed ZeRO-3 with full optimizer-state offload (the paper's floor)",
)
STRATEGIES.register(
    "twinflow", _build_twinflow,
    aliases=("zero-offload++", "zero-offloadpp"),
    description="ZeRO-Offload++ twin-flow static CPU/GPU split baseline",
)
STRATEGIES.register(
    "deep-optimizer-states", _build_deep_optimizer_states,
    aliases=("dos",),
    description="the paper's interleaved offloading with dynamic subgroup placement",
)


def available_strategies() -> list[str]:
    """Names accepted by :func:`build_strategy`."""
    return STRATEGIES.names()


def build_strategy(
    name: str,
    *,
    static_gpu_fraction: float = 0.0,
    subgroup_size: int = 100_000_000,
    update_stride: int = 0,
) -> OffloadStrategy:
    """Construct one of the three strategies the paper evaluates.

    ``static_gpu_fraction`` is the TwinFlow "user-supplied ratio"; for Deep Optimizer
    States it pins the same fraction of subgroups (at the end of the index range) in
    addition to the dynamic interleaving.  ``update_stride`` forces a stride instead
    of deriving it from Equation 1 (0 keeps the automatic choice).
    """
    return STRATEGIES.build(
        name,
        static_gpu_fraction=static_gpu_fraction,
        subgroup_size=subgroup_size,
        update_stride=update_stride,
    )
