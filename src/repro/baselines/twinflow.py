"""DeepSpeed TwinFlow (ZeRO-Offload++) baseline: static hybrid optimizer placement."""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.core.engine import OffloadStrategy
from repro.core.gradient_flush import (
    GradientFlushOps,
    build_baseline_gradient_flush,
    make_baseline_flush_rows,
)
from repro.core.numeric_executor import SequentialCpuExecutor
from repro.core.scheduler import UpdatePlan, build_cpu_only_plan
from repro.core.sim_executor import (
    UpdatePhaseOps,
    build_blocking_offload_update,
    build_blocking_offload_update_rows,
)
from repro.hardware.contention import HostContentionModel
from repro.hardware.throughput import ThroughputProfile
from repro.zero.offload import OffloadConfig, OffloadDevice


class TwinFlowBaseline(OffloadStrategy):
    """Static partial GPU residency driven by a user-supplied ratio.

    The statically GPU-resident subgroups (the *first* ones, matching TwinFlow's
    behaviour) are updated on the GPU while the CPU sits idle; the remaining
    subgroups follow the blocking CPU path of the ZeRO-3 baseline.
    """

    name = "twinflow"
    display_name = "DeepSpeed TwinFlow"

    def __init__(self, static_gpu_fraction: float = 0.2, *, pin_memory: bool = True) -> None:
        if not 0.0 <= static_gpu_fraction <= 1.0:
            raise ConfigurationError("static_gpu_fraction must be in [0, 1]")
        self._static_gpu_fraction = static_gpu_fraction
        self.pin_memory = pin_memory

    @property
    def static_gpu_fraction(self) -> float:
        return self._static_gpu_fraction

    def offload_config(self, subgroup_size: int) -> OffloadConfig:
        return OffloadConfig(
            device=OffloadDevice.CPU,
            subgroup_size=subgroup_size,
            pin_memory=self.pin_memory,
            static_gpu_fraction=self._static_gpu_fraction,
            static_residents_at_end=False,
        )

    def build_plan(self, num_subgroups: int, profile: ThroughputProfile) -> UpdatePlan:
        offload = self.offload_config(subgroup_size=1)  # subgroup size irrelevant here
        residents = offload.static_resident_indices(num_subgroups)
        return build_cpu_only_plan(num_subgroups, residents)

    def flush_blocks_backward(self) -> bool:
        return True

    def stages_subgroup_on_gpu(self) -> bool:
        return False

    def build_gradient_flush(
        self,
        engine,
        profile: ThroughputProfile,
        subgroup_params: dict[int, int],
        compute_deps: dict[int, int],
        plan: UpdatePlan,
    ) -> GradientFlushOps:
        # TwinFlow keeps the gradients of its static GPU residents on the GPU; only the
        # CPU-updated subgroups go through the slow flush path.
        cpu_subgroups = {
            index: params
            for index, params in subgroup_params.items()
            if index not in plan.static_residents
        }
        cpu_deps = {index: op for index, op in compute_deps.items() if index in cpu_subgroups}
        result = build_baseline_gradient_flush(engine, profile, cpu_subgroups, cpu_deps)
        # Gradients of static residents are ready as soon as their backward chunk ran.
        for index in plan.static_residents:
            if index in compute_deps:
                result.grad_ready_ops[index] = compute_deps[index]
        return result

    def build_update_phase(
        self,
        engine,
        profile: ThroughputProfile,
        plan: UpdatePlan,
        subgroup_params: dict[int, int],
        *,
        grad_ready_ops: dict[int, int],
        start_deps: tuple[int, ...],
        contention: HostContentionModel | None,
        staged_subgroup_bytes: int = 0,
    ) -> UpdatePhaseOps:
        return build_blocking_offload_update(
            engine,
            profile,
            plan,
            subgroup_params,
            grad_ready_ops=grad_ready_ops,
            start_deps=start_deps,
        )

    def numeric_executor(self, num_subgroups: int, profile: ThroughputProfile | None = None):
        return SequentialCpuExecutor()

    # ------------------------------------------------------------------ op batching

    def supports_op_batch(self) -> bool:
        return True

    def flush_row_builder(self, batch, profile, plan):
        # Static residents skip the flush; their gradients are ready with the
        # backward collective (the filtered path of build_gradient_flush above).
        return make_baseline_flush_rows(batch, profile, skip_residents=plan.static_residents)

    def build_update_phase_rows(
        self,
        batch,
        profile,
        plan,
        subgroup_params,
        *,
        grad_ready_ops,
        start_deps,
        contention,
        staged_subgroup_bytes: int = 0,
    ):
        return build_blocking_offload_update_rows(
            batch,
            profile,
            plan,
            subgroup_params,
            grad_ready_ops=grad_ready_ops,
            start_deps=start_deps,
        )
