"""Experiment harness: one runner per table/figure of the paper's evaluation.

Every module exposes ``run(...) -> ExperimentResult``; the result carries the rows or
series the corresponding paper artifact reports, the paper's own headline values for
comparison, and a text rendering.  The ``benchmarks/`` directory wraps each runner in
a pytest-benchmark target, and EXPERIMENTS.md records paper-vs-measured values.
"""

from repro.experiments.base import ExperimentResult, model_sweep, run_experiment

EXPERIMENT_MODULES = {
    "table1": "repro.experiments.table1_throughputs",
    "table2": "repro.experiments.table2_models",
    "eq1": "repro.experiments.eq1_performance_model",
    "fig2": "repro.experiments.fig02_subgroup_sizes",
    "fig3": "repro.experiments.fig03_gpu_memory",
    "fig4": "repro.experiments.fig04_pcie_utilization",
    "fig5": "repro.experiments.fig05_update_timeline",
    "fig6": "repro.experiments.fig06_gradient_flush",
    "fig7": "repro.experiments.fig07_iteration_breakdown",
    "fig8": "repro.experiments.fig08_update_throughput",
    "fig9": "repro.experiments.fig09_end_to_end",
    "fig10": "repro.experiments.fig10_twinflow_update",
    "fig11": "repro.experiments.fig11_twinflow_iteration",
    "fig12": "repro.experiments.fig12_twinflow20_models",
    "fig13": "repro.experiments.fig13_microbatch",
    "fig14": "repro.experiments.fig14_cpu_scaling",
    "fig15": "repro.experiments.fig15_resource_utilization",
    "fig16": "repro.experiments.fig16_perf_model_validation",
    "fig17": "repro.experiments.fig17_weak_scaling",
    "pipe1": "repro.experiments.pipe1_bubble_fraction",
    "pipe2": "repro.experiments.pipe2_schedule_grid",
}

__all__ = ["ExperimentResult", "run_experiment", "model_sweep", "EXPERIMENT_MODULES"]
