"""Figure 13: impact of increasing the microbatch size (20B model)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, training_sweep

PAPER_OOM_MICROBATCH = 16
PAPER_SPEEDUP_BAND = (1.6, 2.5)


def run(model: str = "20B", microbatches: tuple[int, ...] = (1, 2, 4, 8, 16)) -> ExperimentResult:
    """Sweep the microbatch size; out-of-memory configurations are reported, not raised."""
    reports = training_sweep(
        {"microbatch_size": microbatches, "strategy": ("zero3-offload", "deep-optimizer-states")},
        base={"model": model},
    )
    rows = []
    for microbatch in microbatches:
        zero3 = reports[(microbatch, "zero3-offload")]
        dos = reports[(microbatch, "deep-optimizer-states")]
        row: dict = {"microbatch": microbatch}
        if zero3.oom or dos.oom:
            row.update({"zero3_iteration_s": "OOM", "dos_iteration_s": "OOM", "speedup": None,
                        "zero3_tflops": None, "dos_tflops": None})
        else:
            row.update(
                {
                    "zero3_iteration_s": round(zero3.iteration_seconds, 2),
                    "dos_iteration_s": round(dos.iteration_seconds, 2),
                    "speedup": round(dos.speedup_over(zero3), 2),
                    "zero3_tflops": round(zero3.achieved_tflops, 1),
                    "dos_tflops": round(dos.achieved_tflops, 1),
                }
            )
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig13",
        title="Microbatch-size scaling for the 20B model (Figure 13)",
        rows=rows,
        paper_reference={
            "oom_microbatch": PAPER_OOM_MICROBATCH,
            "speedup_band": PAPER_SPEEDUP_BAND,
        },
        notes=(
            "Iteration time grows sub-linearly with the microbatch size (so achieved TFLOPs "
            "rise), Deep Optimizer States stays 1.6x-2.5x faster, and microbatch 16 exceeds "
            "the 80 GB HBM budget — the OOM point the paper reports."
        ),
    )
