"""pipe2: schedule-family comparison across pipeline depths.

Deeper pipelines widen the fill/drain bubble linearly in the stage count, and
the schedule families separate: gpipe pays the full wave, 1F1B overlaps the
steady state, and the zero-bubble schedule strictly improves on 1F1B by
keeping weight-gradient halves off the inter-stage critical chain.  The grid
reports bubble fraction, makespan and the zb-over-1f1b speedup per depth.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.pipeline import available_schedules, pipeline_sweep


def run(
    stages: tuple[int, ...] = (2, 4, 8),
    microbatches: int = 16,
    schedules: tuple[str, ...] | None = None,
    model: str = "20B",
    machine: str = "jlse-4xh100",
) -> ExperimentResult:
    """Sweep pipeline depths for every schedule family at a fixed microbatch count."""
    names = tuple(schedules) if schedules is not None else tuple(available_schedules())
    results = pipeline_sweep(
        {"stages": tuple(stages), "schedule": names},
        base={"microbatches": microbatches, "model": model, "machine": machine},
    )
    rows = []
    for depth in stages:
        row: dict = {"stages": depth}
        for name in names:
            summary = results[(depth, name)]
            row[f"{name}_bubble"] = round(summary["bubble_fraction"], 4)
            row[f"{name}_makespan_s"] = round(summary["makespan_s"], 4)
        if "1f1b" in names and "zb" in names:
            speedup = (
                results[(depth, "1f1b")]["makespan_s"] / results[(depth, "zb")]["makespan_s"]
            )
            row["zb_speedup"] = round(speedup, 4)
        rows.append(row)
    series = {
        f"{name}_bubble": [row[f"{name}_bubble"] for row in rows] for name in names
    }
    return ExperimentResult(
        experiment_id="pipe2",
        title=f"Pipeline schedule families across depths ({microbatches} microbatches)",
        rows=rows,
        series=series,
        paper_reference={"schedules": list(available_schedules())},
        notes=(
            "Bubble grows with depth for every family; the zb rows stay strictly "
            "below 1f1b at each depth because the greedy zero-bubble pass fills "
            "fill/drain idle with deferred W halves without delaying the B chain."
        ),
    )
