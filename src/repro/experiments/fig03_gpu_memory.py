"""Figure 3: GPU memory utilisation across training phases (with/without act. ckpt)."""

from __future__ import annotations

from repro.common.units import GIB
from repro.experiments.base import ExperimentResult
from repro.training.config import TrainingJobConfig
from repro.training.monitor import ResourceMonitor
from repro.training.simulation import simulate_job

PAPER_FIG3_PEAK_GIB = {"full_activations": 60.0, "activation_checkpointing": 20.0}


def run(model: str = "20B", machine: str = "jlse-4xh100") -> ExperimentResult:
    """Reconstruct the per-phase GPU memory profile of the ZeRO-3 offload baseline."""
    rows = []
    series: dict[str, list] = {}
    for label, checkpointing in (("full_activations", False), ("activation_checkpointing", True)):
        config = TrainingJobConfig(
            model=model,
            machine=machine,
            strategy="zero3-offload",
            activation_checkpointing=checkpointing,
            iterations=1,
            warmup_iterations=0,
            check_memory=False,  # storing all activations of the 20B model may exceed HBM
        )
        job = config.resolve()
        result = simulate_job(job, iterations=1)
        monitor = ResourceMonitor(result)
        timeline = monitor.gpu_memory_timeline()

        start = result.iteration_start(0)
        forward_end = result.forward_end(0)
        backward_end = result.backward_end(0)
        ready = result.params_ready_time(0)
        forward_peak = max(
            (used for t, used in zip(timeline.times, timeline.used_bytes) if t <= forward_end),
            default=0,
        )
        update_level = timeline.at((backward_end + ready) / 2.0)
        rows.append(
            {
                "configuration": label,
                "forward_peak_gib": round(forward_peak / GIB, 1),
                "update_phase_gib": round(update_level / GIB, 1),
                "paper_peak_gib": PAPER_FIG3_PEAK_GIB[label],
                "memory_freed_by_backward_gib": round((forward_peak - update_level) / GIB, 1),
                "forward_end_s": round(forward_end - start, 2),
                "backward_end_s": round(backward_end - start, 2),
                "update_end_s": round(ready - start, 2),
            }
        )
        grid, values = timeline.sample(resolution=0.25, end_time=ready)
        series[label] = [round(v / GIB, 2) for v in values]
        series[f"{label}_times"] = [round(float(t), 2) for t in grid]
    return ExperimentResult(
        experiment_id="fig3",
        title="GPU memory utilisation without/with activation checkpointing (Figure 3)",
        rows=rows,
        series=series,
        paper_reference=PAPER_FIG3_PEAK_GIB,
        notes=(
            "The forward pass fills GPU memory with activations (or the much smaller "
            "checkpoints), the backward pass releases them, and the update phase keeps "
            "only the FP16 parameters — the fluctuation Deep Optimizer States exploits "
            "to stage optimizer subgroups on the GPU."
        ),
    )
