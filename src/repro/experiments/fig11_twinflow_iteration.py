"""Figure 11: iteration breakdown vs static GPU-resident fraction (20B model)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, training_sweep

PAPER_FIG11_ITERATION_S = {
    0.0: {"twinflow": 7.3, "deep-optimizer-states": 3.0},
    0.1: {"twinflow": 6.6, "deep-optimizer-states": 2.7},
    0.2: {"twinflow": 5.9, "deep-optimizer-states": 2.6},
    0.3: {"twinflow": 5.3, "deep-optimizer-states": 2.5},
    0.4: {"twinflow": 4.8, "deep-optimizer-states": 2.3},
    0.5: {"twinflow": 4.3, "deep-optimizer-states": 2.2},
}


def run(model: str = "20B", fractions: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)) -> ExperimentResult:
    """Sweep the static GPU-resident ratio and report full iteration breakdowns."""
    reports = training_sweep(
        {"static_gpu_fraction": fractions, "strategy": ("twinflow", "deep-optimizer-states")},
        base={"model": model},
    )
    rows = []
    dos_at_zero = None
    twinflow_at_half = None
    for fraction in fractions:
        twinflow = reports[(fraction, "twinflow")]
        dos = reports[(fraction, "deep-optimizer-states")]
        if fraction == 0.0:
            dos_at_zero = dos.iteration_seconds
        if round(fraction, 1) == 0.5:
            twinflow_at_half = twinflow.iteration_seconds
        paper = PAPER_FIG11_ITERATION_S.get(round(fraction, 1), {})
        rows.append(
            {
                "static_gpu_fraction": fraction,
                "twinflow_iteration_s": round(twinflow.iteration_seconds, 2),
                "twinflow_update_s": round(twinflow.steady_state.update_seconds, 2),
                "dos_iteration_s": round(dos.iteration_seconds, 2),
                "dos_update_s": round(dos.steady_state.update_seconds, 2),
                "speedup": round(twinflow.iteration_seconds / dos.iteration_seconds, 2),
                "paper_twinflow_s": paper.get("twinflow"),
                "paper_dos_s": paper.get("deep-optimizer-states"),
            }
        )
    notes = (
        "Deep Optimizer States stays ~2x faster than TwinFlow even when 50% of the "
        "optimizer state is pinned to the GPU."
    )
    if dos_at_zero is not None and twinflow_at_half is not None:
        notes += (
            f"  At 0% GPU residency it completes iterations in {dos_at_zero:.2f} s versus "
            f"{twinflow_at_half:.2f} s for TwinFlow at 50% residency — i.e. faster while using "
            "tens of GiB less GPU memory per device, the paper's headline memory-saving claim."
        )
    return ExperimentResult(
        experiment_id="fig11",
        title="Iteration breakdown vs static GPU-resident fraction, 20B model (Figure 11)",
        rows=rows,
        paper_reference=PAPER_FIG11_ITERATION_S,
        notes=notes,
    )
