"""pipe1: pipeline bubble fraction vs microbatch count per schedule family.

The pipeline-parallel counterpart of the paper's utilization figures: for a
fixed stage count, more in-flight microbatches amortize the fill/drain bubble
(``~ (stages-1)/(microbatches + stages-1)``), and the zero-bubble schedule
sits strictly below 1F1B at every grid point because its deferred
weight-gradient halves convert bubble into useful work (Qi et al.,
"Zero Bubble Pipeline Parallelism" — the schedule family, applied to this
reproduction's simulated timing model).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.pipeline import available_schedules, pipeline_sweep

#: The asymptotic behaviour the figure checks: bubble -> 0 as microbatches grow.
PAPER_BUBBLE_LIMIT = 0.0


def run(
    stages: int = 4,
    microbatches: tuple[int, ...] = (2, 4, 8, 16, 32),
    schedules: tuple[str, ...] | None = None,
    model: str = "20B",
    machine: str = "jlse-4xh100",
) -> ExperimentResult:
    """Sweep microbatch counts for every schedule family at a fixed stage count."""
    names = tuple(schedules) if schedules is not None else tuple(available_schedules())
    results = pipeline_sweep(
        {"microbatches": tuple(microbatches), "schedule": names},
        base={"stages": stages, "model": model, "machine": machine},
    )
    rows = []
    for count in microbatches:
        row: dict = {"microbatches": count}
        for name in names:
            summary = results[(count, name)]
            row[f"{name}_bubble"] = round(summary["bubble_fraction"], 4)
            row[f"{name}_makespan_s"] = round(summary["makespan_s"], 4)
        if "1f1b" in names and "zb" in names:
            gain = results[(count, "1f1b")]["makespan_s"] - results[(count, "zb")]["makespan_s"]
            row["zb_saving_s"] = round(gain, 4)
        rows.append(row)
    series = {
        f"{name}_bubble": [row[f"{name}_bubble"] for row in rows] for name in names
    }
    return ExperimentResult(
        experiment_id="pipe1",
        title=f"Pipeline bubble fraction vs microbatch count ({stages} stages)",
        rows=rows,
        series=series,
        paper_reference={"bubble_limit": PAPER_BUBBLE_LIMIT},
        notes=(
            "The bubble fraction decays toward zero as microbatches amortize the "
            "fill/drain phases; splitting the backward pass (zb) keeps the "
            "gradient chain light and fills the residual bubble with deferred "
            "weight-gradient work, so its curve sits strictly below 1F1B."
        ),
    )
