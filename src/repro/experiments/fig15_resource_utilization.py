"""Figure 15: GPU, CPU and PCIe utilisation during the update phase (20B model)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.flops import achieved_tflops
from repro.training.config import TrainingJobConfig
from repro.training.monitor import ResourceMonitor
from repro.training.simulation import simulate_job

PAPER_FIG15 = {
    "0%": {"gpu_util": 0.08, "cpu_util": 0.70, "tflops": 30.4},
    "50%": {"gpu_util": 1.00, "cpu_util": 0.60, "tflops": 75.7},
    "33%": {"gpu_util": None, "cpu_util": None, "tflops": 71.8},
    "25%": {"gpu_util": None, "cpu_util": None, "tflops": 71.2},
}

# Fraction of updates on the GPU -> (strategy, forced update stride).
CONFIGURATIONS = {
    "0%": ("zero3-offload", 0),
    "50%": ("deep-optimizer-states", 2),
    "33%": ("deep-optimizer-states", 3),
    "25%": ("deep-optimizer-states", 4),
}


def run(model: str = "20B", machine: str = "jlse-4xh100") -> ExperimentResult:
    """Measure update-phase utilisation for varying fractions of GPU-scheduled updates."""
    rows = []
    for label, (strategy, stride) in CONFIGURATIONS.items():
        config = TrainingJobConfig(
            model=model,
            machine=machine,
            strategy=strategy,
            update_stride=stride,
            iterations=2,
            warmup_iterations=0,
        )
        job = config.resolve()
        result = simulate_job(job, iterations=2)
        monitor = ResourceMonitor(result)
        sample = monitor.update_phase_sample(iteration=1)
        iteration_seconds = result.breakdown(1).total_seconds
        rows.append(
            {
                "gpu_update_fraction": label,
                "gpu_utilization": round(sample.gpu_utilization, 2),
                "cpu_utilization": round(sample.cpu_utilization, 2),
                "pcie_h2d_gbps": round(sample.pcie_h2d_gbps, 1),
                "pcie_d2h_gbps": round(sample.pcie_d2h_gbps, 1),
                "tflops": round(achieved_tflops(job.model, 1, iteration_seconds), 1),
                "paper_tflops": PAPER_FIG15[label]["tflops"],
            }
        )
    return ExperimentResult(
        experiment_id="fig15",
        title="Resource utilisation during the update phase (Figure 15)",
        rows=rows,
        paper_reference=PAPER_FIG15,
        notes=(
            "With no GPU-scheduled updates the GPU and PCIe sit nearly idle and only the CPU "
            "works; scheduling 50% of the updates on the GPU drives GPU utilisation to its "
            "peak, uses a large fraction of both PCIe directions, slightly lowers CPU "
            "utilisation (DRAM contention), and yields the best achieved TFLOPs — with 33% "
            "and 25% close behind, as in the paper."
        ),
    )
