"""Figure 7: per-iteration phase breakdown, ZeRO-3 vs Deep Optimizer States, 5 models."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, model_sweep
from repro.model.presets import PAPER_MODEL_ORDER

PAPER_FIG7_ITERATION_S = {
    "7B": {"zero3-offload": 3.1, "deep-optimizer-states": 1.6},
    "8.3B": {"zero3-offload": 4.7, "deep-optimizer-states": 2.4},
    "10B": {"zero3-offload": 4.5, "deep-optimizer-states": 2.2},
    "13B": {"zero3-offload": 5.7, "deep-optimizer-states": 2.3},
    "20B": {"zero3-offload": 7.3, "deep-optimizer-states": 2.9},
}
PAPER_SPEEDUP_BAND = (2.0, 2.5)


def run(models: tuple[str, ...] = PAPER_MODEL_ORDER, iterations: int = 4) -> ExperimentResult:
    """Run both strategies on every model with the optimizer fully offloaded."""
    reports = model_sweep(["zero3-offload", "deep-optimizer-states"], models=models, iterations=iterations)
    rows = []
    for model in models:
        zero3 = reports[(model, "zero3-offload")]
        dos = reports[(model, "deep-optimizer-states")]
        speedup = dos.speedup_over(zero3)
        paper = PAPER_FIG7_ITERATION_S[model]
        rows.append(
            {
                "model": model,
                "zero3_forward_s": round(zero3.steady_state.forward_seconds, 2),
                "zero3_backward_s": round(zero3.steady_state.backward_seconds, 2),
                "zero3_update_s": round(zero3.steady_state.update_seconds, 2),
                "zero3_iteration_s": round(zero3.iteration_seconds, 2),
                "dos_forward_s": round(dos.steady_state.forward_seconds, 2),
                "dos_backward_s": round(dos.steady_state.backward_seconds, 2),
                "dos_update_s": round(dos.steady_state.update_seconds, 2),
                "dos_iteration_s": round(dos.iteration_seconds, 2),
                "speedup": round(speedup, 2),
                "paper_zero3_s": paper["zero3-offload"],
                "paper_dos_s": paper["deep-optimizer-states"],
                "paper_speedup": round(paper["zero3-offload"] / paper["deep-optimizer-states"], 2),
            }
        )
    return ExperimentResult(
        experiment_id="fig7",
        title="Average iteration time breakdown per model (Figure 7)",
        rows=rows,
        paper_reference=PAPER_FIG7_ITERATION_S,
        notes=(
            "The paper reports 2x-2.5x faster iterations for Deep Optimizer States across "
            "all model sizes (backward-pass overlap contributes ~1.9x, the interleaved "
            "update phase the rest); the simulation reproduces the same ordering and band."
        ),
    )
