"""Figure 2: iteration time is insensitive to the ZeRO-3 subgroup size."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, training_sweep
from repro.model.presets import PAPER_MODEL_ORDER

PAPER_FIG2_SECONDS = {
    "7B": {0.1e9: 3.1, 0.2e9: 3.0, 0.5e9: 3.1, 1.0e9: 3.1},
    "20B": {0.1e9: 7.3, 0.2e9: 7.4, 0.5e9: 7.3, 1.0e9: 7.3},
}
SUBGROUP_SIZES = (100_000_000, 200_000_000, 500_000_000, 1_000_000_000)


def run(models: tuple[str, ...] = PAPER_MODEL_ORDER, iterations: int = 3) -> ExperimentResult:
    """Sweep subgroup sizes for the ZeRO-3 offload baseline."""
    reports = training_sweep(
        {"model": models, "subgroup_size": SUBGROUP_SIZES},
        base={"strategy": "zero3-offload", "iterations": iterations},
    )
    rows = []
    for model in models:
        times = {
            subgroup_size: reports[(model, subgroup_size)].iteration_seconds
            for subgroup_size in SUBGROUP_SIZES
        }
        base = times[SUBGROUP_SIZES[0]]
        row = {"model": model}
        for subgroup_size in SUBGROUP_SIZES:
            row[f"iter_s@{subgroup_size // 1_000_000}M"] = round(times[subgroup_size], 3)
        row["max_relative_spread"] = round(
            (max(times.values()) - min(times.values())) / base, 4
        )
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig2",
        title="Iteration time vs subgroup size (Figure 2)",
        rows=rows,
        paper_reference=PAPER_FIG2_SECONDS,
        notes=(
            "The paper observes <= 4% variation when scaling subgroups from 100M to 1B "
            "parameters; the simulated spread stays within the same few-percent band "
            "(differences come only from uneven partitioning of the last subgroup)."
        ),
    )
