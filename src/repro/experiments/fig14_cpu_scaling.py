"""Figure 14: varying the number of CPU cores available per GPU (20B model).

The experiment declares a (machine × cores-per-GPU × strategy) grid through the
sweep subsystem: the paper motivates the sweep with machines whose CPU-per-GPU
ratios differ widely (JLSE's 48, Polaris' 8, AWS p3dn's 12), so the reproduction
runs the core sweep on more than one machine preset by default.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, training_sweep

PAPER_MAX_SPEEDUP_LOW_CPU = 3.0
PAPER_PLATEAU_CORES = 38

DEFAULT_MACHINES = ("jlse-4xh100", "polaris-4xa100")


def run(
    model: str = "20B",
    cores: tuple[int, ...] = (10, 20, 30, 38, 44, 48),
    machines: tuple[str, ...] = DEFAULT_MACHINES,
) -> ExperimentResult:
    """Sweep CPU cores per GPU with the optimizer fully offloaded to the host."""
    if isinstance(machines, str):  # --set machines=<one-preset> arrives as a bare string
        machines = (machines,)
    reports = training_sweep(
        {
            "machine": machines,
            "cpu_cores_per_gpu": cores,
            "strategy": ("zero3-offload", "deep-optimizer-states"),
        },
        base={"model": model},
    )
    rows = []
    for machine in machines:
        for cores_per_gpu in cores:
            zero3 = reports[(machine, cores_per_gpu, "zero3-offload")]
            dos = reports[(machine, cores_per_gpu, "deep-optimizer-states")]
            rows.append(
                {
                    "machine": machine,
                    "cpu_cores_per_gpu": cores_per_gpu,
                    "zero3_iteration_s": round(zero3.iteration_seconds, 2),
                    "dos_iteration_s": round(dos.iteration_seconds, 2),
                    "speedup": round(dos.speedup_over(zero3), 2),
                    "zero3_tflops": round(zero3.achieved_tflops, 1),
                    "dos_tflops": round(dos.achieved_tflops, 1),
                }
            )
    return ExperimentResult(
        experiment_id="fig14",
        title="Varying CPU cores per GPU for the 20B model (Figure 14)",
        rows=rows,
        paper_reference={
            "max_speedup_low_cpu": PAPER_MAX_SPEEDUP_LOW_CPU,
            "plateau_cores": PAPER_PLATEAU_CORES,
        },
        notes=(
            "With few CPU cores the CPU-bound baseline suffers most (the paper reports up "
            "to ~3x speedup there); in this reproduction the speedup stays above 2x across "
            "core counts and the baseline's iteration time is far more sensitive to the "
            "core count than Deep Optimizer States'.  Beyond ~38 cores per GPU both "
            "approaches plateau because the update phase becomes host-DRAM- and PCIe-bound. "
            "The same shape holds on every machine preset in the grid; slower-PCIe machines "
            "plateau at proportionally lower throughput."
        ),
    )
