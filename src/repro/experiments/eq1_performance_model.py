"""Equation 1: stride selection on the paper's two testbeds (Section 4.2 / 5.4)."""

from __future__ import annotations

from repro.core.performance_model import PerformanceModel, cpu_to_gpu_update_ratio
from repro.experiments.base import ExperimentResult
from repro.hardware.presets import get_machine_preset
from repro.hardware.throughput import ThroughputProfile

PAPER_V100_INPUTS = {"B": 3.0e9, "Ug": 35.0e9, "Uc": 2.0e9, "Dc": 8.7e9}
PAPER_OPTIMAL_STRIDE = 2
PAPER_V100_THROUGHPUTS = {2: None, 3: 1.67e9, 4: 1.62e9, 5: 1.28e9}


def run(num_subgroups: int = 40, subgroup_params: int = 100_000_000) -> ExperimentResult:
    """Evaluate Equation 1 on both testbeds and sweep candidate strides."""
    rows = []

    profiles = {
        "jlse-4xh100": ThroughputProfile.from_machine(get_machine_preset("jlse-4xh100")),
        "4xv100 (paper-reported rates)": ThroughputProfile.from_paper_v100(),
    }
    for machine, profile in profiles.items():
        model = PerformanceModel(profile)
        ratio = cpu_to_gpu_update_ratio(profile)
        for stride in (2, 3, 4, 5):
            estimate = model.estimate_interleaved(num_subgroups, subgroup_params, stride=stride)
            throughput = num_subgroups * subgroup_params / estimate.total_seconds
            rows.append(
                {
                    "machine": machine,
                    "eq1_ratio": round(ratio, 2),
                    "selected_stride": model.stride,
                    "candidate_stride": stride,
                    "estimated_update_s": round(estimate.total_seconds, 3),
                    "update_throughput_bpps": round(throughput / 1e9, 2),
                    "is_selected": stride == model.stride,
                }
            )
    return ExperimentResult(
        experiment_id="eq1",
        title="Performance model (Equation 1): stride selection",
        rows=rows,
        paper_reference={
            "paper_v100_inputs": PAPER_V100_INPUTS,
            "paper_optimal_stride": PAPER_OPTIMAL_STRIDE,
            "paper_v100_throughput_by_stride": PAPER_V100_THROUGHPUTS,
        },
        notes=(
            "The paper reports k ~= 2.29 for the V100 machine and selects k = 2 on both "
            "machines ('every alternate subgroup should be updated on the GPU').  On the "
            "H100 testbed the estimated update throughput decreases monotonically for larger "
            "strides (matching Figure 16's 50% > 33% > 25% ordering); on the slower-PCIe V100 "
            "machine strides 2 and 3 are nearly equivalent, consistent with the raw Equation 1 "
            "ratio of 2.29 falling between them."
        ),
    )
