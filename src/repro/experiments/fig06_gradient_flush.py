"""Figure 6: forward/backward timeline and the gradient-flush optimisation."""

from __future__ import annotations

from repro.core.gradient_flush import baseline_flush_seconds, overlapped_flush_seconds
from repro.experiments.base import ExperimentResult, run_training
from repro.hardware.presets import get_machine_preset
from repro.hardware.throughput import ThroughputProfile

PAPER_BASELINE_FLUSH_MS = 90.0
PAPER_DOS_FLUSH_MS = 9.0  # ~7 ms D2H + ~2 ms on-GPU conversion per 0.1B subgroup


def run(
    machine: str = "jlse-4xh100",
    subgroup_params: int = 100_000_000,
    model: str = "20B",
) -> ExperimentResult:
    """Compare the two gradient-flush paths per subgroup and their end-to-end effect."""
    profile = ThroughputProfile.from_machine(get_machine_preset(machine))
    baseline_ms = baseline_flush_seconds(profile, subgroup_params) * 1e3
    overlapped_ms = overlapped_flush_seconds(profile, subgroup_params) * 1e3

    zero3 = run_training(model=model, strategy="zero3-offload", iterations=3)
    dos = run_training(model=model, strategy="deep-optimizer-states", iterations=3)

    rows = [
        {
            "path": "baseline (unpinned FP16 D2H + host upscale)",
            "per_subgroup_ms": round(baseline_ms, 1),
            "paper_per_subgroup_ms": PAPER_BASELINE_FLUSH_MS,
            "blocks_backward": True,
            "backward_phase_s": round(zero3.steady_state.backward_seconds, 2),
        },
        {
            "path": "deep-optimizer-states (on-GPU upscale + pinned FP32 D2H)",
            "per_subgroup_ms": round(overlapped_ms, 1),
            "paper_per_subgroup_ms": PAPER_DOS_FLUSH_MS,
            "blocks_backward": False,
            "backward_phase_s": round(dos.steady_state.backward_seconds, 2),
        },
    ]
    return ExperimentResult(
        experiment_id="fig6",
        title="Gradient flush paths during the backward pass (Figure 6)",
        rows=rows,
        paper_reference={
            "baseline_ms_per_0.1B": PAPER_BASELINE_FLUSH_MS,
            "dos_ms_per_0.1B": PAPER_DOS_FLUSH_MS,
        },
        notes=(
            f"Per 0.1B-parameter subgroup the baseline flush costs {baseline_ms:.0f} ms and "
            f"serialises the backward pass, while the pinned FP32 path costs {overlapped_ms:.1f} ms "
            "and runs asynchronously — roughly the order-of-magnitude gap of Figure 6."
        ),
    )
