"""Figure 5: update-phase timeline of TwinFlow vs Deep Optimizer States (8 subgroups)."""

from __future__ import annotations

from repro.core.scheduler import build_cpu_only_plan, build_update_plan
from repro.core.sim_executor import build_blocking_offload_update, build_interleaved_update
from repro.experiments.base import ExperimentResult
from repro.hardware.contention import HostContentionModel
from repro.hardware.presets import get_machine_preset
from repro.hardware.throughput import ThroughputProfile
from repro.sim.engine import SimEngine, standard_resources


def _simulate(strategy: str, profile, num_subgroups: int, subgroup_params: int, stride: int):
    engine = SimEngine(name=f"fig5-{strategy}")
    standard_resources(engine)
    sizes = {i: subgroup_params for i in range(num_subgroups)}
    if strategy == "twinflow":
        plan = build_cpu_only_plan(num_subgroups, static_residents={0, 1})
        ops = build_blocking_offload_update(engine, profile, plan, sizes)
    else:
        plan = build_update_plan(num_subgroups, stride, static_residents={num_subgroups - 2, num_subgroups - 1})
        ops = build_interleaved_update(
            engine, profile, plan, sizes, contention=HostContentionModel()
        )
    schedule = engine.run()
    ready = max(schedule.by_id(op).end for op in ops.params_ready_ops)
    return plan, schedule, ops, ready


def run(
    machine: str = "jlse-4xh100",
    num_subgroups: int = 8,
    subgroup_params: int = 100_000_000,
    stride: int = 3,
) -> ExperimentResult:
    """Reproduce the illustrative 8-subgroup update timeline (2 static GPU residents)."""
    profile = ThroughputProfile.from_machine(get_machine_preset(machine))
    rows = []
    series: dict[str, list] = {}
    results = {}
    for strategy in ("twinflow", "deep-optimizer-states"):
        plan, schedule, ops, ready = _simulate(strategy, profile, num_subgroups, subgroup_params, stride)
        results[strategy] = ready
        rows.append(
            {
                "strategy": strategy,
                "update_complete_s": round(ready, 3),
                "gpu_scheduled_subgroups": len(plan.gpu_indices()),
                "cpu_scheduled_subgroups": len(plan.cpu_indices()),
                "cpu_busy_s": round(schedule.busy_time("cpu"), 3),
                "gpu_busy_s": round(schedule.busy_time("gpu.compute"), 3),
                "h2d_busy_s": round(schedule.busy_time("pcie.h2d"), 3),
                "d2h_busy_s": round(schedule.busy_time("pcie.d2h"), 3),
            }
        )
        series[strategy] = [
            {
                "op": item.op.name,
                "resource": item.op.resource,
                "start": round(item.start, 4),
                "end": round(item.end, 4),
            }
            for item in schedule.ops
        ]
    speedup = results["twinflow"] / results["deep-optimizer-states"]
    return ExperimentResult(
        experiment_id="fig5",
        title="Update-phase timeline: TwinFlow vs Deep Optimizer States (Figure 5)",
        rows=rows,
        series=series,
        paper_reference={
            "illustration": "8 subgroups per GPU, 2 statically GPU-resident, 33% of updates on the GPU",
        },
        notes=(
            f"Interleaving finishes the illustrated update phase {speedup:.2f}x faster than the "
            "blocking TwinFlow schedule by overlapping CPU updates, GPU updates and "
            "full-duplex PCIe transfers."
        ),
    )
