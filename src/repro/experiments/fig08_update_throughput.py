"""Figure 8: optimizer update throughput (billions of parameters per second)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, model_sweep
from repro.model.presets import PAPER_MODEL_ORDER

PAPER_FIG8_BPPS = {
    "7B": {"zero3-offload": 7.9, "deep-optimizer-states": 14.2},
    "8.3B": {"zero3-offload": 6.0, "deep-optimizer-states": 10.7},
    "10B": {"zero3-offload": 6.7, "deep-optimizer-states": 11.9},
    "13B": {"zero3-offload": 7.7, "deep-optimizer-states": 13.6},
    "20B": {"zero3-offload": 8.8, "deep-optimizer-states": 15.4},
}
PAPER_AVERAGE_IMPROVEMENT = 1.7  # "70% higher than ZeRO-3 on average"


def run(models: tuple[str, ...] = PAPER_MODEL_ORDER, iterations: int = 4) -> ExperimentResult:
    """Measure update throughput for both strategies on every model."""
    reports = model_sweep(["zero3-offload", "deep-optimizer-states"], models=models, iterations=iterations)
    rows = []
    for model in models:
        zero3 = reports[(model, "zero3-offload")]
        dos = reports[(model, "deep-optimizer-states")]
        improvement = dos.update_throughput_pps / zero3.update_throughput_pps
        rows.append(
            {
                "model": model,
                "zero3_bpps": round(zero3.update_throughput_pps / 1e9, 2),
                "dos_bpps": round(dos.update_throughput_pps / 1e9, 2),
                "improvement": round(improvement, 2),
                "paper_zero3_bpps": PAPER_FIG8_BPPS[model]["zero3-offload"],
                "paper_dos_bpps": PAPER_FIG8_BPPS[model]["deep-optimizer-states"],
            }
        )
    return ExperimentResult(
        experiment_id="fig8",
        title="Update throughput per model (Figure 8)",
        rows=rows,
        paper_reference=PAPER_FIG8_BPPS,
        notes=(
            "Deep Optimizer States sustains ~70% higher update throughput than ZeRO-3 on "
            "average in the paper; the simulated improvement falls in the same band and, "
            "as in the paper, is nearly uniform across model sizes."
        ),
    )
