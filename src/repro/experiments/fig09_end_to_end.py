"""Figure 9: end-to-end training time for 100 iterations."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, training_sweep
from repro.model.presets import PAPER_MODEL_ORDER

PAPER_FIG9_SECONDS = {
    "7B": {"zero3-offload": 295.4, "deep-optimizer-states": 148.4},
    "8.3B": {"zero3-offload": 440.1, "deep-optimizer-states": 218.3},
    "10B": {"zero3-offload": 441.5, "deep-optimizer-states": 215.4},
    "13B": {"zero3-offload": 536.3, "deep-optimizer-states": 230.4},
    "20B": {"zero3-offload": 710.0, "deep-optimizer-states": 290.6},
}
TRAINING_ITERATIONS = 100


def run(models: tuple[str, ...] = PAPER_MODEL_ORDER) -> ExperimentResult:
    """Extrapolate 100-iteration training time from chained steady-state iterations."""
    reports = training_sweep(
        {"model": models, "strategy": ("zero3-offload", "deep-optimizer-states")},
        base={"iterations": TRAINING_ITERATIONS},
    )
    rows = []
    for model in models:
        zero3 = reports[(model, "zero3-offload")]
        dos = reports[(model, "deep-optimizer-states")]
        paper = PAPER_FIG9_SECONDS[model]
        rows.append(
            {
                "model": model,
                "zero3_total_s": round(zero3.end_to_end_seconds, 1),
                "dos_total_s": round(dos.end_to_end_seconds, 1),
                "speedup": round(zero3.end_to_end_seconds / dos.end_to_end_seconds, 2),
                "per_iteration_speedup": round(dos.speedup_over(zero3), 2),
                "paper_zero3_s": paper["zero3-offload"],
                "paper_dos_s": paper["deep-optimizer-states"],
                "paper_speedup": round(paper["zero3-offload"] / paper["deep-optimizer-states"], 2),
            }
        )
    return ExperimentResult(
        experiment_id="fig9",
        title="End-to-end training time, 100 iterations (Figure 9)",
        rows=rows,
        paper_reference=PAPER_FIG9_SECONDS,
        notes=(
            "The end-to-end speedup matches the per-iteration speedup, confirming that the "
            "asynchronous optimizer-state movements spilling into the next iteration do not "
            "accumulate I/O stalls; as in the paper, training the 20B model with Deep "
            "Optimizer States costs about as much as the 7B model on the baseline."
        ),
    )
