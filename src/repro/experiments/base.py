"""Shared infrastructure for the experiment runners.

Grid-shaped experiments declare their (model × strategy × knob) grids through the
sweep subsystem (:func:`training_sweep` / :func:`model_sweep`) instead of hand-rolled
nested loops, so every figure/table inherits process parallelism and result caching
from :class:`~repro.sweep.runner.SweepRunner` without any per-module code.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.model.presets import PAPER_MODEL_ORDER
from repro.runtime import SIMULATION_FIELDS, ExecutionPolicy, policy_context
from repro.sim.engine import STANDARD_RESOURCE_NAMES
from repro.sweep import Scenario, SweepRunner, SweepSpec
from repro.sweep.batching import PreparedCase, register_batchable
from repro.training.config import TrainingJobConfig
from repro.training.metrics import TrainingReport, format_table
from repro.training.simulation import (
    breakdown_index_plans,
    finalize_simulation,
    prepare_simulation,
    stacked_breakdowns,
)
from repro.training.trainer import Trainer

# The paper's fast-iteration defaults: DP = 4 GPUs, microbatch 1, 100M-parameter
# subgroups, activation checkpointing on.
DEFAULT_ITERATIONS = 4
DEFAULT_WARMUP = 1


@dataclass
class ExperimentResult:
    """Structured output of one experiment."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    series: dict[str, list] = field(default_factory=dict)
    paper_reference: dict = field(default_factory=dict)
    notes: str = ""

    def format(self, columns: list[str] | None = None) -> str:
        """Render the rows as an aligned text table (plus notes)."""
        header = f"[{self.experiment_id}] {self.title}"
        body = format_table(self.rows, columns) if self.rows else "(series-only experiment)"
        parts = [header, body]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def column(self, name: str) -> list:
        """Extract one column across all rows."""
        return [row.get(name) for row in self.rows]


def run_experiment(
    experiment_id: str, *, policy: ExecutionPolicy | None = None, **kwargs
) -> ExperimentResult:
    """Run an experiment by its id (e.g. ``"fig7"``).

    ``policy`` pins the :class:`~repro.runtime.ExecutionPolicy` for everything
    the experiment runs (its internal sweeps resolve at the context level);
    ``None`` leaves resolution to the ambient context/environment, keeping the
    experiment modules themselves policy-free.
    """
    from repro.experiments import EXPERIMENT_MODULES

    if experiment_id not in EXPERIMENT_MODULES:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENT_MODULES)}"
        )
    module = importlib.import_module(EXPERIMENT_MODULES[experiment_id])
    if policy is None:
        return module.run(**kwargs)
    with policy_context(policy):
        return module.run(**kwargs)


def _training_trainer(
    *,
    model: str = "20B",
    strategy: str = "deep-optimizer-states",
    machine: str = "jlse-4xh100",
    static_gpu_fraction: float = 0.0,
    microbatch_size: int = 1,
    subgroup_size: int = 100_000_000,
    data_parallel_degree: int | None = None,
    cpu_cores_per_gpu: int | None = None,
    update_stride: int = 0,
    iterations: int = DEFAULT_ITERATIONS,
    warmup_iterations: int | None = None,
    check_memory: bool = True,
) -> Trainer:
    """The :class:`Trainer` behind one :func:`run_training` scenario."""
    if warmup_iterations is None:
        warmup_iterations = min(DEFAULT_WARMUP, iterations - 1)
    config = TrainingJobConfig(
        model=model,
        machine=machine,
        strategy=strategy,
        data_parallel_degree=data_parallel_degree,
        microbatch_size=microbatch_size,
        subgroup_size=subgroup_size,
        activation_checkpointing=True,
        static_gpu_fraction=static_gpu_fraction,
        update_stride=update_stride,
        cpu_cores_per_gpu=cpu_cores_per_gpu,
        iterations=iterations,
        warmup_iterations=warmup_iterations,
        check_memory=check_memory,
    )
    return Trainer(config, simulated_iterations=min(3, iterations))


def run_training(
    *,
    model: str = "20B",
    strategy: str = "deep-optimizer-states",
    machine: str = "jlse-4xh100",
    static_gpu_fraction: float = 0.0,
    microbatch_size: int = 1,
    subgroup_size: int = 100_000_000,
    data_parallel_degree: int | None = None,
    cpu_cores_per_gpu: int | None = None,
    update_stride: int = 0,
    iterations: int = DEFAULT_ITERATIONS,
    warmup_iterations: int | None = None,
    check_memory: bool = True,
) -> TrainingReport:
    """Run one simulated training job with the paper's default runtime settings."""
    return _training_trainer(
        model=model,
        strategy=strategy,
        machine=machine,
        static_gpu_fraction=static_gpu_fraction,
        microbatch_size=microbatch_size,
        subgroup_size=subgroup_size,
        data_parallel_degree=data_parallel_degree,
        cpu_cores_per_gpu=cpu_cores_per_gpu,
        update_stride=update_stride,
        iterations=iterations,
        warmup_iterations=warmup_iterations,
        check_memory=check_memory,
    ).run()


# --------------------------------------------------------------- shape batching
# The sweep-batching adapter for run_training: prepare builds the op rows
# without scheduling them, finalize_group turns one stacked schedule back into
# per-scenario TrainingReports.  Registered at the bottom of this module, so
# any process that can import run_training (pool workers, cluster daemons)
# rediscovers the adapter automatically.


def _prepare_training_case(**params):
    """Prepare one :func:`run_training` scenario for shape-batched scheduling.

    Returns a :class:`~repro.sweep.batching.PreparedCase`, or — for scenarios
    the stacked path cannot or should not serve (OOM at resolution, a policy
    pinning the eager op backend, a strategy without row builders) — the
    finished :class:`~repro.training.metrics.TrainingReport` itself, computed
    exactly as :func:`run_training` would.
    """
    trainer = _training_trainer(**params)
    try:
        job = trainer.config.resolve()
    except OutOfMemoryError as exc:
        return trainer.oom_report(exc)
    policy = ExecutionPolicy.resolve(env_fields=SIMULATION_FIELDS)
    if policy.op_backend != "batch" or not job.strategy.supports_op_batch():
        return trainer.report_from_simulation(job, trainer.simulate(job))
    iterations = max(1, min(trainer.simulated_iterations, trainer.config.iterations))
    prepared = prepare_simulation(job, iterations, policy=policy)
    # The shape key only fingerprints op topology; the salt pre-partitions
    # groups by everything else that must match for one compiled plan to
    # serve all members (bookkeeping structure follows strategy + iteration
    # count; the op count is a cheap extra guard).
    salt = f"{job.strategy.name}|{iterations}|{prepared.op_count}"
    batch = prepared.batch
    # Hand the batch to the group runner via the case only: the payload must
    # not pin it, so each scenario's row tuples can be collected as soon as
    # their duration column is extracted (see PreparedCase).
    prepared.batch = None
    return PreparedCase(
        batch=batch,
        resource_names=STANDARD_RESOURCE_NAMES,
        salt=salt,
        payload=(trainer, job, prepared),
    )


def _finalize_training_group(payloads, stacked):
    """Per-scenario :class:`TrainingReport` values from one stacked schedule.

    Breakdowns are computed for the whole group in one vectorised pass (the
    per-iteration row indices are shared across a shape group), then each
    scenario's report aggregates them exactly like the per-scenario path —
    same floats, same JSON.
    """
    _, _, representative = payloads[0]
    plans = breakdown_index_plans(
        representative.records,
        stacked.first_ids[0],
        stacked.plan.rel_ids,
    )
    group_breakdowns = stacked_breakdowns(plans, stacked.starts, stacked.ends)
    reports = []
    for scenario_index, (trainer, job, prepared) in enumerate(payloads):
        schedule = stacked.schedule_for(scenario_index)
        result = finalize_simulation(
            prepared,
            schedule,
            scheduler="vector",
            breakdowns=group_breakdowns[scenario_index],
        )
        reports.append(trainer.report_from_simulation(job, result))
    return reports


def training_sweep(
    axes: Mapping[str, Sequence[Any]],
    *,
    base: Mapping[str, Any] | None = None,
    jobs: int | None = None,
    use_cache: bool | None = None,
    cache_dir: Any = None,
    scheduler: str | None = None,
    policy: ExecutionPolicy | None = None,
) -> dict[tuple, TrainingReport]:
    """Run a declarative grid of :func:`run_training` scenarios.

    ``axes`` maps :func:`run_training` keyword names to candidate values; ``base``
    holds fixed keywords shared by every scenario.  Returns reports keyed by the
    tuple of axis values in declaration order (bare values for a single axis).
    Parallelism, caching and the simulation backends follow the resolved
    :class:`~repro.runtime.ExecutionPolicy` unless overridden (``policy=``
    whole, or the individual keywords).
    """
    spec = SweepSpec.build(axes, base)
    runner = SweepRunner(
        run_training, jobs=jobs, use_cache=use_cache, cache_dir=cache_dir,
        scheduler=scheduler, policy=policy,
    )
    return runner.run(spec).keyed(*spec.axis_names)


def numeric_sweep(
    axes: Mapping[str, Sequence[Any]],
    *,
    base: Mapping[str, Any] | None = None,
    jobs: int | None = None,
    use_cache: bool | None = None,
    cache_dir: Any = None,
    policy: ExecutionPolicy | None = None,
) -> dict[tuple, dict]:
    """Run a declarative grid of numeric (tiny-model) training runs.

    The sweep twin of :func:`training_sweep` for the numeric execution path:
    ``axes``/``base`` map :func:`repro.training.numeric.run_numeric_training`
    keywords, values are its JSON summaries keyed by axis values.  Sweeping
    ``strategy`` with a fixed ``seed`` demonstrates the paper's numerical
    equivalence claim grid-wide (identical losses for every strategy).
    """
    from repro.training.numeric import run_numeric_training

    spec = SweepSpec.build(axes, base)
    runner = SweepRunner(
        run_numeric_training, jobs=jobs, use_cache=use_cache, cache_dir=cache_dir,
        policy=policy,
    )
    return runner.run(spec).keyed(*spec.axis_names)


def model_sweep(
    strategies: list[str],
    *,
    models: tuple[str, ...] = PAPER_MODEL_ORDER,
    static_gpu_fraction: float = 0.0,
    iterations: int = DEFAULT_ITERATIONS,
    data_parallel_degree: int | None = None,
    jobs: int | None = None,
    use_cache: bool | None = None,
    policy: ExecutionPolicy | None = None,
) -> dict[tuple[str, str], TrainingReport]:
    """Run every (model, strategy) combination; keys are ``(model, strategy)``.

    The static GPU fraction is forced to zero for the fully-offloaded ZeRO-3
    baseline, so the grid is built as an explicit scenario list rather than a pure
    cartesian spec.
    """
    scenarios = [
        Scenario.from_params(
            {
                "model": model,
                "strategy": strategy,
                "static_gpu_fraction": static_gpu_fraction if strategy != "zero3-offload" else 0.0,
                "iterations": iterations,
                "data_parallel_degree": data_parallel_degree,
            }
        )
        for model in models
        for strategy in strategies
    ]
    runner = SweepRunner(run_training, jobs=jobs, use_cache=use_cache, policy=policy)
    result = runner.run(scenarios)
    return {
        (record.scenario.get("model"), record.scenario.get("strategy")): record.value
        for record in result.records
    }


register_batchable(
    run_training,
    prepare=_prepare_training_case,
    finalize_group=_finalize_training_group,
)
