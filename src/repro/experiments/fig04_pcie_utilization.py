"""Figure 4: PCIe link utilisation across the training phases of the baseline."""

from __future__ import annotations

from repro.common.units import GB
from repro.experiments.base import ExperimentResult
from repro.training.config import TrainingJobConfig
from repro.training.monitor import ResourceMonitor
from repro.training.simulation import simulate_job

PAPER_PEAK_PCIE_GBPS = 50.0
PAPER_OBSERVED_FRACTION = 0.10  # "<10% of the peak transfer throughput"


def run(model: str = "20B", machine: str = "jlse-4xh100") -> ExperimentResult:
    """Measure simulated H2D/D2H bandwidth per training phase for ZeRO-3 offload."""
    config = TrainingJobConfig(
        model=model,
        machine=machine,
        strategy="zero3-offload",
        iterations=1,
        warmup_iterations=0,
    )
    job = config.resolve()
    result = simulate_job(job, iterations=1)
    monitor = ResourceMonitor(result)
    samples = monitor.phase_samples(0)

    peak_gbps = min(job.machine.pcie.h2d_gbps_pinned, job.machine.pcie.d2h_gbps_pinned)
    rows = []
    for phase, sample in samples.items():
        rows.append(
            {
                "phase": phase,
                "h2d_gbps": round(sample.pcie_h2d_gbps, 2),
                "d2h_gbps": round(sample.pcie_d2h_gbps, 2),
                "h2d_fraction_of_peak": round(sample.pcie_h2d_gbps / peak_gbps, 3),
                "d2h_fraction_of_peak": round(sample.pcie_d2h_gbps / peak_gbps, 3),
            }
        )

    h2d = result.pcie_timeline("h2d", resolution=0.2)
    d2h = result.pcie_timeline("d2h", resolution=0.2)
    series = {
        "times": [round(float(t), 2) for t in h2d.times],
        "h2d_gbps": [round(v / GB, 2) for v in h2d.bytes_per_second],
        "d2h_gbps": [round(v / GB, 2) for v in d2h.bytes_per_second],
    }
    return ExperimentResult(
        experiment_id="fig4",
        title="PCIe link utilisation at different training phases (Figure 4)",
        rows=rows,
        series=series,
        paper_reference={
            "peak_gbps": PAPER_PEAK_PCIE_GBPS,
            "observed_fraction": PAPER_OBSERVED_FRACTION,
        },
        notes=(
            "Both PCIe directions stay far below the ~50 GB/s pinned peak throughout the "
            "baseline's iteration: D2H traffic during backward comes from gradient flushes, "
            "H2D traffic during the update phase from fetching CPU-updated parameters — "
            "the idle bandwidth Deep Optimizer States uses for interleaved staging."
        ),
    )
