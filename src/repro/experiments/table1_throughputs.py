"""Table 1: transfer and conversion throughputs across devices and data types."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.hardware.presets import get_machine_preset
from repro.hardware.throughput import TransferKind, transfer_table
from repro.sweep import SweepRunner, SweepSpec

PAPER_TABLE1_GBPS = {
    TransferKind.G32_G16: 1200.0,
    TransferKind.H32_H16: 62.0,
    TransferKind.H16_G16: 52.0,
    TransferKind.H32_G16: 8.0,
    TransferKind.G16_H32: 4.0,
}


def measure_transfer(*, machine: str, transfer: str) -> float:
    """Sweep worker: throughput (GB/s) of one transfer kind on one machine preset."""
    spec = get_machine_preset(machine)
    return transfer_table(spec)[TransferKind(transfer)]


def run(machine: str = "jlse-4xh100") -> ExperimentResult:
    """Reproduce Table 1 for the given machine preset."""
    spec = SweepSpec.build(
        {"transfer": tuple(kind.value for kind in TransferKind)},
        base={"machine": machine},
    )
    measured = SweepRunner(measure_transfer).run(spec).keyed("transfer")
    rows = []
    for kind in TransferKind:
        paper = PAPER_TABLE1_GBPS.get(kind)
        value = measured[kind.value]
        rows.append(
            {
                "transfer": kind.value,
                "measured_gbps": round(value, 1),
                "paper_gbps": paper,
                "ratio_vs_paper": round(value / paper, 2) if paper else None,
            }
        )
    return ExperimentResult(
        experiment_id="table1",
        title="Transfer and conversion throughputs (Table 1)",
        rows=rows,
        paper_reference={kind.value: value for kind, value in PAPER_TABLE1_GBPS.items()},
        notes=(
            "Mixed-precision cross-device paths (H32->G16, G16->H32) are an order of "
            "magnitude slower than same-precision pinned transfers because they serialise "
            "an unpinned staging allocation, a pageable PCIe copy and a host-side conversion."
        ),
    )
