"""Figure 12: TwinFlow ratio fixed at 20%, sweeping the model size."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, training_sweep
from repro.model.presets import PAPER_MODEL_ORDER

PAPER_FIG12_ITERATION_S = {
    "7B": {"twinflow": 2.6, "deep-optimizer-states": 1.5},
    "8.3B": {"twinflow": 4.1, "deep-optimizer-states": 2.3},
    "10B": {"twinflow": 4.1, "deep-optimizer-states": 2.1},
    "13B": {"twinflow": 4.5, "deep-optimizer-states": 2.3},
    "20B": {"twinflow": 6.0, "deep-optimizer-states": 2.6},
}
PAPER_SPEEDUP_BAND = (1.7, 2.3)
STATIC_FRACTION = 0.2


def run(models: tuple[str, ...] = PAPER_MODEL_ORDER) -> ExperimentResult:
    """Compare TwinFlow (20% static residency) and Deep Optimizer States across models."""
    reports = training_sweep(
        {"model": models, "strategy": ("twinflow", "deep-optimizer-states")},
        base={"static_gpu_fraction": STATIC_FRACTION},
    )
    rows = []
    for model in models:
        twinflow = reports[(model, "twinflow")]
        dos = reports[(model, "deep-optimizer-states")]
        paper = PAPER_FIG12_ITERATION_S[model]
        rows.append(
            {
                "model": model,
                "twinflow_iteration_s": round(twinflow.iteration_seconds, 2),
                "twinflow_update_s": round(twinflow.steady_state.update_seconds, 2),
                "dos_iteration_s": round(dos.iteration_seconds, 2),
                "dos_update_s": round(dos.steady_state.update_seconds, 2),
                "speedup": round(twinflow.iteration_seconds / dos.iteration_seconds, 2),
                "paper_twinflow_s": paper["twinflow"],
                "paper_dos_s": paper["deep-optimizer-states"],
            }
        )
    return ExperimentResult(
        experiment_id="fig12",
        title="TwinFlow ratio = 20% across model sizes (Figure 12)",
        rows=rows,
        paper_reference=PAPER_FIG12_ITERATION_S,
        notes=(
            "With 20% of the subgroups statically on the GPU (the largest ratio that still "
            "fits 40 GB GPUs), Deep Optimizer States outperforms TwinFlow by 1.7x-2.3x for "
            "every model size in the paper; the simulation reproduces that band."
        ),
    )
