"""Figure 16: update throughput vs fraction of updates scheduled on the GPU.

Section 5.4 validates the Equation 1 performance model on *both* testbeds, so the
experiment declares a (machine × model × strategy/stride) grid and routes it through
the sweep subsystem as an explicit scenario list (the stride axis is ragged: the
ZeRO-3 baseline has no stride).  The paper's reference numbers exist only for the
H100 machine; rows for other machines report the measured ordering without paper
columns.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, run_training
from repro.model.presets import PAPER_MODEL_ORDER
from repro.sweep import Scenario, SweepRunner

PAPER_FIG16_BPPS = {
    "7B": {"zero3": 22.5, "50%": 39.9, "33%": 38.8, "25%": 36.3},
    "8.3B": {"zero3": 14.5, "50%": 25.7, "33%": 25.5, "25%": 24.0},
    "10B": {"zero3": 13.5, "50%": 23.8, "33%": 23.8, "25%": 21.2},
    "13B": {"zero3": 11.9, "50%": 21.0, "33%": 20.3, "25%": 18.8},
    "20B": {"zero3": 8.8, "50%": 15.4, "33%": 14.9, "25%": 14.3},
}
STRIDES = {"50%": 2, "33%": 3, "25%": 4}

#: The H100 testbed plus the §5.4 validation machine.
DEFAULT_MACHINES = ("jlse-4xh100", "4xv100")
PAPER_MACHINE = "jlse-4xh100"


def run(
    models: tuple[str, ...] = PAPER_MODEL_ORDER,
    machines: tuple[str, ...] = DEFAULT_MACHINES,
) -> ExperimentResult:
    """Validate that the Equation 1 choice (50% on the GPU) maximises update throughput."""
    if isinstance(machines, str):  # --set machines=<one-preset> arrives as a bare string
        machines = (machines,)
    if isinstance(models, str):
        models = (models,)
    scenarios = []
    for machine in machines:
        for model in models:
            scenarios.append(Scenario.from_params(
                {"machine": machine, "model": model, "strategy": "zero3-offload",
                 "update_stride": 0}
            ))
            for stride in STRIDES.values():
                scenarios.append(Scenario.from_params(
                    {"machine": machine, "model": model,
                     "strategy": "deep-optimizer-states", "update_stride": stride}
                ))
    reports = SweepRunner(run_training).run(scenarios).keyed(
        "machine", "model", "strategy", "update_stride"
    )

    rows = []
    for machine in machines:
        for model in models:
            zero3 = reports[(machine, model, "zero3-offload", 0)]
            row = {
                "machine": machine,
                "model": model,
                "zero3_bpps": "OOM" if zero3.oom else round(zero3.update_throughput_pps / 1e9, 2),
            }
            if machine == PAPER_MACHINE:
                row["paper_zero3_bpps"] = PAPER_FIG16_BPPS[model]["zero3"]
            throughputs = {}
            for label, stride in STRIDES.items():
                report = reports[(machine, model, "deep-optimizer-states", stride)]
                if report.oom:
                    row[f"dos_{label}_bpps"] = "OOM"
                else:
                    throughputs[label] = report.update_throughput_pps
                    row[f"dos_{label}_bpps"] = round(report.update_throughput_pps / 1e9, 2)
                if machine == PAPER_MACHINE:
                    row[f"paper_{label}_bpps"] = PAPER_FIG16_BPPS[model][label]
            row["best_fraction"] = (
                max(throughputs, key=throughputs.get) if throughputs else "OOM"
            )
            rows.append(row)
    return ExperimentResult(
        experiment_id="fig16",
        title="Update throughput vs fraction of GPU-scheduled updates (Figure 16)",
        rows=rows,
        paper_reference=PAPER_FIG16_BPPS,
        notes=(
            "Scheduling every alternate subgroup on the GPU (50%, the Equation 1 optimum) "
            "gives the highest update throughput for every model size on the H100 testbed, "
            "with 33% and 25% trailing in that order — the ordering the paper uses to "
            "validate its performance model.  On the slower-PCIe V100 machine the 50% and "
            "33% fractions are nearly equivalent, consistent with its Equation 1 ratio of "
            "~2.29 falling between strides 2 and 3."
        ),
    )
