"""Figure 16: update throughput vs fraction of updates scheduled on the GPU."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, run_training
from repro.model.presets import PAPER_MODEL_ORDER

PAPER_FIG16_BPPS = {
    "7B": {"zero3": 22.5, "50%": 39.9, "33%": 38.8, "25%": 36.3},
    "8.3B": {"zero3": 14.5, "50%": 25.7, "33%": 25.5, "25%": 24.0},
    "10B": {"zero3": 13.5, "50%": 23.8, "33%": 23.8, "25%": 21.2},
    "13B": {"zero3": 11.9, "50%": 21.0, "33%": 20.3, "25%": 18.8},
    "20B": {"zero3": 8.8, "50%": 15.4, "33%": 14.9, "25%": 14.3},
}
STRIDES = {"50%": 2, "33%": 3, "25%": 4}


def run(models: tuple[str, ...] = PAPER_MODEL_ORDER) -> ExperimentResult:
    """Validate that the Equation 1 choice (50% on the GPU) maximises update throughput."""
    rows = []
    for model in models:
        zero3 = run_training(model=model, strategy="zero3-offload")
        row = {
            "model": model,
            "zero3_bpps": round(zero3.update_throughput_pps / 1e9, 2),
            "paper_zero3_bpps": PAPER_FIG16_BPPS[model]["zero3"],
        }
        throughputs = {}
        for label, stride in STRIDES.items():
            report = run_training(model=model, strategy="deep-optimizer-states", update_stride=stride)
            throughputs[label] = report.update_throughput_pps
            row[f"dos_{label}_bpps"] = round(report.update_throughput_pps / 1e9, 2)
            row[f"paper_{label}_bpps"] = PAPER_FIG16_BPPS[model][label]
        row["best_fraction"] = max(throughputs, key=throughputs.get)
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig16",
        title="Update throughput vs fraction of GPU-scheduled updates (Figure 16)",
        rows=rows,
        paper_reference=PAPER_FIG16_BPPS,
        notes=(
            "Scheduling every alternate subgroup on the GPU (50%, the Equation 1 optimum) "
            "gives the highest update throughput for every model size, with 33% and 25% "
            "trailing in that order — the ordering the paper uses to validate its "
            "performance model."
        ),
    )
