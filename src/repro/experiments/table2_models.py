"""Table 2: configuration and memory footprint of the evaluated models."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.presets import MODEL_PRESETS, PAPER_MODEL_ORDER

PAPER_TABLE2 = {
    "7B": {"layers": 32, "hidden": 4096, "heads": 32, "fp16_gb": 24, "fp32_opt_gb": 96},
    "8.3B": {"layers": 72, "hidden": 3072, "heads": 24, "fp16_gb": 30, "fp32_opt_gb": 121},
    "10B": {"layers": 50, "hidden": 4096, "heads": 32, "fp16_gb": 37, "fp32_opt_gb": 150},
    "13B": {"layers": 40, "hidden": 5120, "heads": 40, "fp16_gb": 46, "fp32_opt_gb": 188},
    "20B": {"layers": 48, "hidden": 6144, "heads": 64, "fp16_gb": 73, "fp32_opt_gb": 294},
}


def run() -> ExperimentResult:
    """Reproduce Table 2 from the analytic model-size formulas."""
    rows = []
    for name in PAPER_MODEL_ORDER:
        config = MODEL_PRESETS[name]
        paper = PAPER_TABLE2[name]
        rows.append(
            {
                "model": name,
                "layers": config.num_layers,
                "hidden": config.hidden_size,
                "heads": config.num_attention_heads,
                "params_B": round(config.billions_of_parameters, 2),
                "fp16_model_gib": round(config.fp16_model_state_gib(), 1),
                "paper_fp16_gb": paper["fp16_gb"],
                "fp32_optimizer_gib": round(config.fp32_optimizer_state_gib(), 1),
                "paper_fp32_opt_gb": paper["fp32_opt_gb"],
            }
        )
    return ExperimentResult(
        experiment_id="table2",
        title="Model configurations and state sizes (Table 2)",
        rows=rows,
        paper_reference=PAPER_TABLE2,
        notes=(
            "FP16 model state = parameters + gradients at 2 bytes each; FP32 optimizer "
            "state = parameters + momentum + variance + gradients at 4 bytes each "
            "(ZeRO-Infinity accounting).  The 20B preset counts slightly more parameters "
            "than the paper's GPT-NeoX-derived figure, hence the larger byte sizes."
        ),
    )
