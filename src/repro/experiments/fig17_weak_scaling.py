"""Figure 17: weak scaling of the data-parallel degree (iteration speedup vs ZeRO-3)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, training_sweep
from repro.model.presets import PAPER_MODEL_ORDER

PAPER_FIG17_SPEEDUP = {
    "7B": {1: 3.7, 2: 2.4, 4: 2.0},
    "8.3B": {1: 3.3, 2: 2.5, 4: 2.0},
    "10B": {1: 3.9, 2: 2.7, 4: 2.2},
    "13B": {1: 4.1, 2: 2.8, 4: 2.4},
    "20B": {1: 4.4, 2: 2.9, 4: 2.5},
}


def run(
    models: tuple[str, ...] = PAPER_MODEL_ORDER, degrees: tuple[int, ...] = (1, 2, 4)
) -> ExperimentResult:
    """Measure the Deep Optimizer States speedup over ZeRO-3 at DP = 1, 2 and 4."""
    reports = training_sweep(
        {
            "model": models,
            "data_parallel_degree": degrees,
            "strategy": ("zero3-offload", "deep-optimizer-states"),
        },
        base={"iterations": 3},
    )
    rows = []
    for model in models:
        row: dict = {"model": model}
        for degree in degrees:
            zero3 = reports[(model, degree, "zero3-offload")]
            dos = reports[(model, degree, "deep-optimizer-states")]
            speedup = dos.speedup_over(zero3)
            row[f"speedup_dp{degree}"] = round(speedup, 2)
            row[f"paper_dp{degree}"] = PAPER_FIG17_SPEEDUP[model][degree]
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig17",
        title="Weak scaling of data parallelism (Figure 17)",
        rows=rows,
        paper_reference=PAPER_FIG17_SPEEDUP,
        notes=(
            "At DP = 1 each rank owns the whole optimizer state and the CPU bottleneck is "
            "most severe, so Deep Optimizer States gains the most (up to ~4.4x in the "
            "paper); with growing data parallelism the all-gather-heavy forward/backward "
            "passes dilute the gain, but it stays at ~2-2.5x at DP = 4."
        ),
    )
