"""Figure 10: update time vs fraction of statically GPU-resident optimizer subgroups."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, training_sweep

PAPER_FIG10_UPDATE_S = {
    0.0: {"twinflow": 2.3, "deep-optimizer-states": 1.3},
    0.1: {"twinflow": 2.0, "deep-optimizer-states": 1.1},
    0.2: {"twinflow": 1.8, "deep-optimizer-states": 1.0},
    0.3: {"twinflow": 1.6, "deep-optimizer-states": 0.9},
    0.4: {"twinflow": 1.4, "deep-optimizer-states": 0.8},
    0.5: {"twinflow": 1.2, "deep-optimizer-states": 0.7},
}
PAPER_MIN_SPEEDUP = 1.7


def run(model: str = "20B", fractions: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)) -> ExperimentResult:
    """Sweep the static GPU-resident ratio for TwinFlow and Deep Optimizer States."""
    reports = training_sweep(
        {"static_gpu_fraction": fractions, "strategy": ("twinflow", "deep-optimizer-states")},
        base={"model": model},
    )
    rows = []
    for fraction in fractions:
        twinflow = reports[(fraction, "twinflow")]
        dos = reports[(fraction, "deep-optimizer-states")]
        paper = PAPER_FIG10_UPDATE_S.get(round(fraction, 1), {})
        rows.append(
            {
                "static_gpu_fraction": fraction,
                "twinflow_update_s": round(twinflow.steady_state.update_seconds, 2),
                "dos_update_s": round(dos.steady_state.update_seconds, 2),
                "speedup": round(
                    twinflow.steady_state.update_seconds / dos.steady_state.update_seconds, 2
                ),
                "paper_twinflow_s": paper.get("twinflow"),
                "paper_dos_s": paper.get("deep-optimizer-states"),
            }
        )
    return ExperimentResult(
        experiment_id="fig10",
        title="Update time vs static GPU-resident fraction, 20B model (Figure 10)",
        rows=rows,
        paper_reference=PAPER_FIG10_UPDATE_S,
        notes=(
            "Both approaches speed up as more optimizer state is pinned to the GPU, but "
            "Deep Optimizer States stays at least ~1.7x faster than TwinFlow at every ratio."
        ),
    )
