"""FLOPs model and achieved-TFLOPs metric.

The paper reports "TFLOPs achieved" (Figures 13, 14, 15) computed from the standard
model-FLOPs formula (6 * parameters * tokens per iteration, not counting activation
recomputation) divided by the iteration time — the same convention as Megatron-LM.
The *compute efficiency* (fraction of peak FLOP/s the GPU sustains during the forward
and backward kernels) grows with the microbatch size, which is what makes larger
microbatches report higher TFLOPs in Figure 13; we model that saturation explicitly.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.model.config import TransformerConfig

# Compute-efficiency saturation model: eff(mb) = MAX_EFFICIENCY * mb / (mb + HALF_SATURATION).
# Calibrated so that microbatch 1 sustains ~11% of peak (matching the ~0.7-0.8 s forward
# pass of the 20B model in Figure 3) and large microbatches approach ~50% of peak.
MAX_COMPUTE_EFFICIENCY = 0.50
HALF_SATURATION_MICROBATCH = 3.5


def transformer_flops_per_token(config: TransformerConfig, *, backward: bool = False) -> float:
    """FLOPs per token of a forward (or backward) pass.

    Forward ~ 2 * P (+ attention term proportional to sequence length); backward is
    twice the forward cost.
    """
    params = config.num_parameters()
    attention_term = 2.0 * config.num_layers * config.sequence_length * config.hidden_size
    forward = 2.0 * params + attention_term
    return 2.0 * forward if backward else forward


def iteration_model_flops(config: TransformerConfig, microbatch_size: int) -> float:
    """Model FLOPs of one iteration on one GPU (6 * P * tokens convention)."""
    if microbatch_size <= 0:
        raise ConfigurationError("microbatch_size must be positive")
    tokens = microbatch_size * config.sequence_length
    return 6.0 * config.num_parameters() * tokens


def compute_efficiency(microbatch_size: int) -> float:
    """Sustained fraction of peak GPU FLOP/s during forward/backward kernels."""
    if microbatch_size <= 0:
        raise ConfigurationError("microbatch_size must be positive")
    return MAX_COMPUTE_EFFICIENCY * microbatch_size / (microbatch_size + HALF_SATURATION_MICROBATCH)


def forward_compute_seconds(
    config: TransformerConfig,
    microbatch_size: int,
    peak_flops: float,
    efficiency: float | None = None,
) -> float:
    """Duration of the forward-pass compute on one GPU."""
    if peak_flops <= 0:
        raise ConfigurationError("peak_flops must be positive")
    eff = compute_efficiency(microbatch_size) if efficiency is None else efficiency
    tokens = microbatch_size * config.sequence_length
    return transformer_flops_per_token(config) * tokens / (peak_flops * eff)


def backward_compute_seconds(
    config: TransformerConfig,
    microbatch_size: int,
    peak_flops: float,
    *,
    activation_checkpointing: bool,
    efficiency: float | None = None,
) -> float:
    """Duration of the backward-pass compute on one GPU.

    Activation checkpointing adds one extra forward recomputation (the "33% additional
    recomputations" the paper quotes from ZeRO-Offload).
    """
    eff = compute_efficiency(microbatch_size) if efficiency is None else efficiency
    tokens = microbatch_size * config.sequence_length
    backward = transformer_flops_per_token(config, backward=True) * tokens
    if activation_checkpointing:
        backward += transformer_flops_per_token(config) * tokens
    return backward / (peak_flops * eff)


def achieved_tflops(config: TransformerConfig, microbatch_size: int, iteration_seconds: float) -> float:
    """Achieved model TFLOP/s per GPU, the metric plotted in Figures 13-15."""
    if iteration_seconds <= 0:
        raise ConfigurationError("iteration_seconds must be positive")
    return iteration_model_flops(config, microbatch_size) / iteration_seconds / 1e12
