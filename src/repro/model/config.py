"""Transformer architecture description and analytical size model.

The parameter-count and byte-size formulas follow the ZeRO-Infinity accounting the
paper cites for Table 2: a GPT-style decoder block contributes ~12*h^2 parameters
(attention QKV + projection + 4x MLP), the embedding contributes vocab*h, and the
mixed-precision training state per parameter is 2 bytes of FP16 parameters + 2 bytes
of FP16 gradients on the GPU plus 16 bytes of FP32 parameters/momentum/variance/
gradients on the host.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.units import GIB
from repro.precision.dtypes import DType


@dataclass(frozen=True)
class TransformerConfig:
    """A GPT-style decoder-only transformer configuration."""

    name: str
    num_layers: int
    hidden_size: int
    num_attention_heads: int
    vocab_size: int = 32_000
    sequence_length: int = 2048
    ffn_multiplier: int = 4
    nominal_parameters: int | None = None
    tie_embeddings: bool = True

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.hidden_size <= 0 or self.num_attention_heads <= 0:
            raise ConfigurationError("layer/hidden/head counts must be positive")
        if self.hidden_size % self.num_attention_heads != 0:
            raise ConfigurationError(
                f"hidden_size {self.hidden_size} is not divisible by "
                f"num_attention_heads {self.num_attention_heads}"
            )
        if self.vocab_size <= 0 or self.sequence_length <= 0:
            raise ConfigurationError("vocab_size and sequence_length must be positive")

    # ------------------------------------------------------------------ sizes

    @property
    def head_dim(self) -> int:
        """Per-head hidden dimension."""
        return self.hidden_size // self.num_attention_heads

    @property
    def ffn_hidden_size(self) -> int:
        """Feed-forward inner dimension."""
        return self.ffn_multiplier * self.hidden_size

    def parameters_per_layer(self) -> int:
        """Parameters of one decoder block (attention + MLP + layer norms + biases)."""
        hidden = self.hidden_size
        attention = 4 * hidden * hidden + 4 * hidden  # QKV (3h*h) + output proj (h*h) + biases
        mlp = 2 * hidden * self.ffn_hidden_size + self.ffn_hidden_size + hidden
        norms = 2 * 2 * hidden
        return attention + mlp + norms

    def embedding_parameters(self) -> int:
        """Token embedding (and untied output head, when applicable)."""
        embed = self.vocab_size * self.hidden_size
        if not self.tie_embeddings:
            embed *= 2
        return embed

    def num_parameters(self) -> int:
        """Total trainable parameters (analytic count)."""
        final_norm = 2 * self.hidden_size
        return self.num_layers * self.parameters_per_layer() + self.embedding_parameters() + final_norm

    @property
    def billions_of_parameters(self) -> float:
        """Parameter count in billions (used for axis labels)."""
        return self.num_parameters() / 1e9

    # ---------------------------------------------------------------- memory model

    def fp16_model_state_bytes(self) -> int:
        """FP16 parameters + FP16 gradients (the "FP16 model size" row of Table 2)."""
        return self.num_parameters() * (DType.FP16.itemsize + DType.FP16.itemsize)

    def fp32_optimizer_state_bytes(self) -> int:
        """FP32 parameters + momentum + variance + gradients (Table 2 optimizer row)."""
        return self.num_parameters() * 4 * DType.FP32.itemsize

    def fp16_model_state_gib(self) -> float:
        """Table 2 "FP16 model size (GB)" value."""
        return self.fp16_model_state_bytes() / GIB

    def fp32_optimizer_state_gib(self) -> float:
        """Table 2 "FP32 optimizer (GB)" value."""
        return self.fp32_optimizer_state_bytes() / GIB

    # Activation constants calibrated against Figure 3 (20B model, microbatch 1):
    # full activations peak around 40 GB on top of the persistent model state, while
    # activation checkpoints only retain a few GB that are freed during backward.
    ACTIVATION_FULL_BYTES_PER_TOKEN_PER_LAYER_FACTOR = 64
    ACTIVATION_CKPT_BYTES_PER_TOKEN_PER_LAYER_FACTOR = 6

    def activation_bytes(self, microbatch_size: int, *, checkpointing: bool) -> int:
        """Peak activation memory of one microbatch on one GPU.

        With activation checkpointing only the per-layer boundary checkpoints are
        retained (plus one layer's worth of recomputed activations, accounted by
        :func:`repro.model.footprint.build_memory_plan`).
        """
        if microbatch_size <= 0:
            raise ConfigurationError("microbatch_size must be positive")
        tokens = microbatch_size * self.sequence_length
        factor = (
            self.ACTIVATION_CKPT_BYTES_PER_TOKEN_PER_LAYER_FACTOR
            if checkpointing
            else self.ACTIVATION_FULL_BYTES_PER_TOKEN_PER_LAYER_FACTOR
        )
        return tokens * self.hidden_size * factor * self.num_layers

    def single_layer_activation_bytes(self, microbatch_size: int) -> int:
        """Full activations of a single layer (materialised during recompute)."""
        tokens = microbatch_size * self.sequence_length
        return tokens * self.hidden_size * self.ACTIVATION_FULL_BYTES_PER_TOKEN_PER_LAYER_FACTOR

    def logits_bytes(self, microbatch_size: int) -> int:
        """Output logits buffer (FP32), relevant for large microbatches."""
        tokens = microbatch_size * self.sequence_length
        return tokens * self.vocab_size * DType.FP32.itemsize // self.gradient_accumulation_chunks()

    def gradient_accumulation_chunks(self) -> int:
        """Number of chunks the logits/loss computation is split into (vocab chunking)."""
        return 4

    # ---------------------------------------------------------------- description

    def describe(self) -> dict:
        """Summary dictionary used by the Table 2 experiment."""
        return {
            "name": self.name,
            "num_layers": self.num_layers,
            "hidden_size": self.hidden_size,
            "attention_heads": self.num_attention_heads,
            "parameters": self.num_parameters(),
            "parameters_billions": round(self.billions_of_parameters, 2),
            "fp16_model_gib": round(self.fp16_model_state_gib(), 1),
            "fp32_optimizer_gib": round(self.fp32_optimizer_state_gib(), 1),
        }
