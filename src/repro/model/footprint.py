"""Per-rank memory footprint accounting (ZeRO-Infinity style).

With ZeRO-3 and data parallelism of degree ``N``, every rank permanently holds 1/N of
the FP16 parameters and FP16 gradients, the full activations (or activation
checkpoints) of its own microbatch, a small workspace of gathered layers, and —
depending on the offloading strategy — a statically GPU-resident slice of the FP32
optimizer state (TwinFlow) and/or one dynamically staged subgroup (Deep Optimizer
States).  The remainder of the FP32 optimizer state plus the FP32 gradient buffer
lives in host memory.

These budgets drive two things: the out-of-memory checks of the Figure 13 experiment
and the GPU-memory timeline of Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.common.units import GIB
from repro.hardware.memory import MemoryPlan
from repro.hardware.specs import MachineSpec
from repro.model.config import TransformerConfig
from repro.precision.dtypes import (
    DType,
    OPTIMIZER_STATE_BYTES_PER_PARAM,
    OPTIMIZER_STATE_WITH_GRADS_BYTES_PER_PARAM,
)

# HBM reserved for the CUDA context, NCCL buffers and allocator fragmentation.
DEFAULT_GPU_RESERVED_BYTES = int(4 * GIB)


@dataclass(frozen=True)
class RankFootprint:
    """Static byte counts for one training process (one GPU)."""

    rank_parameters: int
    fp16_parameter_bytes: int
    fp16_gradient_bytes: int
    gathered_layer_workspace_bytes: int
    activation_bytes: int
    recompute_workspace_bytes: int
    logits_bytes: int
    gpu_resident_optimizer_bytes: int
    staged_subgroup_bytes: int
    host_optimizer_bytes: int
    host_gradient_bytes: int

    def gpu_peak_bytes(self) -> int:
        """Peak GPU memory (during the forward pass, when activations are live)."""
        return (
            self.fp16_parameter_bytes
            + self.fp16_gradient_bytes
            + self.gathered_layer_workspace_bytes
            + self.activation_bytes
            + self.recompute_workspace_bytes
            + self.logits_bytes
            + self.gpu_resident_optimizer_bytes
            + self.staged_subgroup_bytes
        )

    def gpu_update_phase_bytes(self) -> int:
        """GPU memory during the update phase (activations and gradients released)."""
        return (
            self.fp16_parameter_bytes
            + self.gpu_resident_optimizer_bytes
            + self.staged_subgroup_bytes
        )

    def host_bytes(self) -> int:
        """Host DRAM required by the offloaded optimizer state of this rank."""
        return self.host_optimizer_bytes + self.host_gradient_bytes


@dataclass(frozen=True)
class MemoryFootprint:
    """Footprint of the full job: one :class:`RankFootprint` per data-parallel rank."""

    per_rank: RankFootprint
    data_parallel_degree: int

    def total_host_bytes(self) -> int:
        """Host DRAM used by all ranks of the node combined."""
        return self.per_rank.host_bytes() * self.data_parallel_degree


def build_rank_footprint(
    config: TransformerConfig,
    *,
    data_parallel_degree: int,
    microbatch_size: int,
    activation_checkpointing: bool,
    gpu_resident_optimizer_fraction: float = 0.0,
    subgroup_size: int = 100_000_000,
    stage_subgroup_on_gpu: bool = False,
    gpu_scheduled_gradient_fraction: float = 0.0,
) -> RankFootprint:
    """Compute the per-rank footprint for a given configuration.

    ``gpu_scheduled_gradient_fraction`` is the fraction of the rank's gradients kept
    resident on the GPU for GPU-scheduled subgroup updates (Deep Optimizer States'
    design principle 3); the remaining gradients only occupy a small working buffer of
    a few reduce buckets because they are flushed to the host and freed as the
    backward pass progresses.
    """
    if data_parallel_degree <= 0:
        raise ConfigurationError("data_parallel_degree must be positive")
    if not 0.0 <= gpu_resident_optimizer_fraction <= 1.0:
        raise ConfigurationError("gpu_resident_optimizer_fraction must be in [0, 1]")
    if subgroup_size <= 0:
        raise ConfigurationError("subgroup_size must be positive")
    if not 0.0 <= gpu_scheduled_gradient_fraction <= 1.0:
        raise ConfigurationError("gpu_scheduled_gradient_fraction must be in [0, 1]")

    total_params = config.num_parameters()
    rank_params = -(-total_params // data_parallel_degree)  # ceil division
    fp16 = DType.FP16.itemsize

    gathered_layers = 2  # DeepSpeed prefetches the next layer while computing the current one
    layer_workspace = gathered_layers * config.parameters_per_layer() * fp16

    activations = config.activation_bytes(microbatch_size, checkpointing=activation_checkpointing)
    recompute = (
        config.single_layer_activation_bytes(microbatch_size) if activation_checkpointing else 0
    )

    gpu_resident_params = int(rank_params * gpu_resident_optimizer_fraction)
    host_params = rank_params - gpu_resident_params
    staged_params = min(subgroup_size, rank_params) if stage_subgroup_on_gpu else 0

    # Gradients generated during the backward pass are flushed to the host and freed
    # subgroup by subgroup, so only a working buffer of a few reduce buckets plus the
    # deliberately GPU-retained fraction occupies HBM at any one time.
    grad_working_params = min(rank_params, 4 * subgroup_size)
    retained_grad_params = int(rank_params * gpu_scheduled_gradient_fraction)
    gradient_bytes = min(rank_params, grad_working_params + retained_grad_params) * fp16

    return RankFootprint(
        rank_parameters=rank_params,
        fp16_parameter_bytes=rank_params * fp16,
        fp16_gradient_bytes=gradient_bytes,
        gathered_layer_workspace_bytes=layer_workspace,
        activation_bytes=activations,
        recompute_workspace_bytes=recompute,
        logits_bytes=config.logits_bytes(microbatch_size),
        gpu_resident_optimizer_bytes=gpu_resident_params * OPTIMIZER_STATE_BYTES_PER_PARAM,
        staged_subgroup_bytes=staged_params * OPTIMIZER_STATE_BYTES_PER_PARAM,
        host_optimizer_bytes=host_params * OPTIMIZER_STATE_BYTES_PER_PARAM,
        host_gradient_bytes=rank_params * DType.FP32.itemsize,
    )


def build_memory_plan(footprint: RankFootprint) -> MemoryPlan:
    """Translate a :class:`RankFootprint` into the :class:`MemoryPlan` used by the trainer."""
    return MemoryPlan(
        fp16_parameters=footprint.fp16_parameter_bytes,
        fp16_gradients=footprint.fp16_gradient_bytes,
        activations=footprint.activation_bytes,
        activation_checkpoints=0,
        gpu_resident_optimizer=footprint.gpu_resident_optimizer_bytes,
        staged_subgroup=footprint.staged_subgroup_bytes,
        workspace=footprint.gathered_layer_workspace_bytes
        + footprint.recompute_workspace_bytes
        + footprint.logits_bytes,
        host_optimizer_state=footprint.host_optimizer_bytes,
        host_gradient_buffer=footprint.host_gradient_bytes,
    )


def check_fits(
    footprint: RankFootprint,
    machine: MachineSpec,
    *,
    reserved_gpu_bytes: int = DEFAULT_GPU_RESERVED_BYTES,
    data_parallel_degree: int | None = None,
) -> None:
    """Raise :class:`OutOfMemoryError` if the footprint exceeds GPU or host capacity.

    This reproduces the OOM behaviour of Figure 13 (microbatch 16 on the 20B model)
    and the paper's remark that LLaMA-33B no longer fits the 512 GB of host DRAM.
    """
    gpu_budget = machine.gpu.memory_bytes - reserved_gpu_bytes
    gpu_needed = footprint.gpu_peak_bytes()
    if gpu_needed > gpu_budget:
        raise OutOfMemoryError(
            f"GPU memory exceeded: need {gpu_needed / GIB:.1f} GiB, "
            f"budget {gpu_budget / GIB:.1f} GiB",
            requested_bytes=gpu_needed,
            available_bytes=gpu_budget,
        )
    ranks = data_parallel_degree if data_parallel_degree is not None else machine.num_gpus
    host_needed = footprint.host_bytes() * ranks
    if host_needed > machine.host_memory.capacity_bytes:
        raise OutOfMemoryError(
            f"host memory exceeded: need {host_needed / GIB:.1f} GiB, "
            f"capacity {machine.host_memory.capacity_bytes / GIB:.1f} GiB",
            requested_bytes=host_needed,
            available_bytes=machine.host_memory.capacity_bytes,
        )


# Per-parameter host bytes re-exported for documentation/tests.
HOST_OPTIMIZER_BYTES_PER_PARAM = OPTIMIZER_STATE_WITH_GRADS_BYTES_PER_PARAM
