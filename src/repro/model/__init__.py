"""Transformer model substrate.

Two complementary views of "the model" are needed to reproduce the paper:

* an *analytical* view — parameter counts, FP16/FP32 memory footprints, activation
  sizes and FLOPs for the 7B-20B configurations of Table 2, which drive the timing
  simulation and the OOM accounting; and
* a *numeric* view — a miniature GPT-style transformer implemented in NumPy with
  manual backpropagation (:mod:`repro.model.nn`), which produces real gradients so
  that the interleaved optimizer can be validated end-to-end at small scale.
"""

from repro.model.config import TransformerConfig
from repro.model.presets import (
    MODEL_PRESETS,
    TINY_MODELS,
    get_model_preset,
    list_model_presets,
)
from repro.model.flops import (
    achieved_tflops,
    compute_efficiency,
    iteration_model_flops,
    transformer_flops_per_token,
)
from repro.model.footprint import MemoryFootprint, RankFootprint, build_memory_plan

__all__ = [
    "TransformerConfig",
    "MODEL_PRESETS",
    "TINY_MODELS",
    "get_model_preset",
    "list_model_presets",
    "transformer_flops_per_token",
    "iteration_model_flops",
    "achieved_tflops",
    "compute_efficiency",
    "MemoryFootprint",
    "RankFootprint",
    "build_memory_plan",
]
