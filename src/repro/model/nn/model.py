"""Miniature decoder-only language model (NumPy, manual backprop).

The model mirrors the GPT/Megatron architecture at a miniature scale: token and
positional embeddings, a stack of pre-norm transformer blocks, a final layer norm and
a language-model head tied to the token embedding.  Its parameters and gradients can
be flattened into a single 1-D buffer (``flatten_parameters`` / ``flatten_gradients``)
which is exactly the representation the ZeRO-3 subgroup sharding and the interleaved
optimizer operate on.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.model.config import TransformerConfig
from repro.model.nn import functional as F
from repro.model.nn.layers import Embedding, LayerNorm, TransformerBlock


class TinyTransformerLM:
    """A trainable NumPy transformer language model."""

    def __init__(self, config: TransformerConfig, seed: int | None = None) -> None:
        self.config = config
        rng = make_rng(seed, stream=f"model-{config.name}")
        self.token_embedding = Embedding(config.vocab_size, config.hidden_size, rng)
        self.position_embedding = Embedding(config.sequence_length, config.hidden_size, rng)
        self.blocks = [
            TransformerBlock(config.hidden_size, config.num_attention_heads, config.ffn_hidden_size, rng)
            for _ in range(config.num_layers)
        ]
        self.final_norm = LayerNorm(config.hidden_size)
        self._cache: tuple | None = None

    # ------------------------------------------------------------------ parameters

    def named_parameters(self) -> dict[str, np.ndarray]:
        """Ordered mapping of every trainable parameter."""
        params = self.token_embedding.named_parameters("token_embedding.")
        params.update(self.position_embedding.named_parameters("position_embedding."))
        for index, block in enumerate(self.blocks):
            params.update(block.named_parameters(f"blocks.{index}."))
        params.update(self.final_norm.named_parameters("final_norm."))
        return params

    def named_gradients(self) -> dict[str, np.ndarray]:
        """Ordered mapping of gradients matching :meth:`named_parameters`."""
        grads = self.token_embedding.named_gradients("token_embedding.")
        grads.update(self.position_embedding.named_gradients("position_embedding."))
        for index, block in enumerate(self.blocks):
            grads.update(block.named_gradients(f"blocks.{index}."))
        grads.update(self.final_norm.named_gradients("final_norm."))
        return grads

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(value.size for value in self.named_parameters().values())

    def zero_grad(self) -> None:
        """Reset all accumulated gradients."""
        self.token_embedding.zero_grad()
        self.position_embedding.zero_grad()
        for block in self.blocks:
            block.zero_grad()
        self.final_norm.zero_grad()

    # ------------------------------------------------------------------ flattening

    def flatten_parameters(self, dtype=np.float32) -> np.ndarray:
        """Concatenate every parameter into one flat buffer (deterministic order)."""
        return np.concatenate([value.ravel() for value in self.named_parameters().values()]).astype(dtype)

    def flatten_gradients(self, dtype=np.float32) -> np.ndarray:
        """Concatenate every gradient into one flat buffer matching the parameter order."""
        return np.concatenate([value.ravel() for value in self.named_gradients().values()]).astype(dtype)

    def load_flat_parameters(self, flat: np.ndarray) -> None:
        """Scatter a flat parameter buffer back into the model (inverse of flatten)."""
        flat = np.asarray(flat, dtype=np.float32)
        expected = self.num_parameters()
        if flat.size != expected:
            raise ConfigurationError(
                f"flat buffer has {flat.size} elements, model needs {expected}"
            )
        offset = 0
        for value in self.named_parameters().values():
            count = value.size
            value[...] = flat[offset : offset + count].reshape(value.shape)
            offset += count

    # ------------------------------------------------------------------ training ops

    def forward(self, tokens: np.ndarray, targets: np.ndarray | None = None):
        """Run the model; returns (logits, loss) where loss is None without targets."""
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ConfigurationError("tokens must have shape (batch, sequence)")
        batch, seq = tokens.shape
        if seq > self.config.sequence_length:
            raise ConfigurationError(
                f"sequence length {seq} exceeds configured maximum {self.config.sequence_length}"
            )
        positions = np.tile(np.arange(seq), (batch, 1))
        hidden = self.token_embedding.forward(tokens) + self.position_embedding.forward(positions)
        for block in self.blocks:
            hidden = block.forward(hidden)
        hidden = self.final_norm.forward(hidden)
        logits = hidden @ self.token_embedding.params["weight"].T

        loss = None
        probs = None
        if targets is not None:
            loss, probs = F.cross_entropy(logits, targets)
        self._cache = (hidden, probs, targets)
        return logits, loss

    def backward(self, grad_logits: np.ndarray | None = None) -> None:
        """Backpropagate from the logits (or from the cached cross-entropy loss)."""
        if self._cache is None:
            raise ConfigurationError("backward called before forward")
        hidden, probs, targets = self._cache
        if grad_logits is None:
            if probs is None or targets is None:
                raise ConfigurationError("no targets were provided to forward; pass grad_logits")
            grad_logits = F.cross_entropy_backward(probs, targets)

        weight = self.token_embedding.params["weight"]
        flat_hidden = hidden.reshape(-1, hidden.shape[-1])
        flat_grad_logits = grad_logits.reshape(-1, grad_logits.shape[-1])
        # Tied LM head: logits = hidden @ W_emb^T.
        self.token_embedding.grads["weight"] += flat_grad_logits.T @ flat_hidden
        d_hidden = (flat_grad_logits @ weight).reshape(hidden.shape)

        d_hidden = self.final_norm.backward(d_hidden)
        for block in reversed(self.blocks):
            d_hidden = block.backward(d_hidden)
        self.position_embedding.backward(d_hidden)
        self.token_embedding.backward(d_hidden)

    def train_step_gradients(self, tokens: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        """Convenience: zero grads, forward, backward; returns (loss, flat FP32 gradients)."""
        self.zero_grad()
        _, loss = self.forward(tokens, targets)
        self.backward()
        return float(loss), self.flatten_gradients()
