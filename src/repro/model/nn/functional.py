"""Stateless neural-network primitives (forward and backward) in NumPy."""

from __future__ import annotations

import numpy as np

_SQRT_2_OVER_PI = np.sqrt(2.0 / np.pi)


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximated GELU activation (the variant used by GPT-style models)."""
    x = np.asarray(x, dtype=np.float32)
    return 0.5 * x * (1.0 + np.tanh(_SQRT_2_OVER_PI * (x + 0.044715 * x**3)))


def gelu_backward(x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
    """Gradient of :func:`gelu` with respect to its input."""
    x = np.asarray(x, dtype=np.float32)
    inner = _SQRT_2_OVER_PI * (x + 0.044715 * x**3)
    tanh_inner = np.tanh(inner)
    d_inner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * x**2)
    derivative = 0.5 * (1.0 + tanh_inner) + 0.5 * x * (1.0 - tanh_inner**2) * d_inner
    return grad_output * derivative


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    x = np.asarray(x, dtype=np.float32)
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    x = np.asarray(x, dtype=np.float32)
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def layer_norm(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> tuple[np.ndarray, tuple]:
    """Layer normalisation over the last axis; returns (output, cache for backward)."""
    x = np.asarray(x, dtype=np.float32)
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x - mean) * inv_std
    out = gamma * x_hat + beta
    return out, (x_hat, inv_std, gamma)


def layer_norm_backward(
    grad_output: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`layer_norm`; returns (dx, dgamma, dbeta)."""
    x_hat, inv_std, gamma = cache
    features = x_hat.shape[-1]
    dgamma = (grad_output * x_hat).reshape(-1, features).sum(axis=0)
    dbeta = grad_output.reshape(-1, features).sum(axis=0)
    dx_hat = grad_output * gamma
    dx = (
        dx_hat
        - dx_hat.mean(axis=-1, keepdims=True)
        - x_hat * (dx_hat * x_hat).mean(axis=-1, keepdims=True)
    ) * inv_std
    return dx, dgamma, dbeta


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean token-level cross entropy; returns (loss, probabilities)."""
    log_probs = log_softmax(logits, axis=-1)
    flat_log_probs = log_probs.reshape(-1, log_probs.shape[-1])
    flat_targets = np.asarray(targets).reshape(-1)
    picked = flat_log_probs[np.arange(flat_targets.shape[0]), flat_targets]
    loss = float(-picked.mean())
    return loss, np.exp(log_probs)


def cross_entropy_backward(probs: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Gradient of the mean cross entropy with respect to the logits."""
    grad = probs.copy()
    flat = grad.reshape(-1, grad.shape[-1])
    flat_targets = np.asarray(targets).reshape(-1)
    flat[np.arange(flat_targets.shape[0]), flat_targets] -= 1.0
    flat /= flat_targets.shape[0]
    return grad
