"""Transformer building blocks with explicit forward/backward implementations.

Every layer keeps its parameters in ``self.params`` (name -> float32 array) and
accumulates gradients into ``self.grads`` with the same keys during ``backward``.
The layers cache whatever activations they need for the backward pass, which keeps
the implementation simple and mirrors how a framework without activation
checkpointing behaves.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.model.nn import functional as F


class Layer:
    """Base class holding parameters and gradients."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def zero_grad(self) -> None:
        """Reset accumulated gradients to zero."""
        for name, value in self.params.items():
            self.grads[name] = np.zeros_like(value)

    def named_parameters(self, prefix: str = "") -> dict[str, np.ndarray]:
        """Flat mapping of parameter names to arrays (prefix applied)."""
        return {f"{prefix}{name}": value for name, value in self.params.items()}

    def named_gradients(self, prefix: str = "") -> dict[str, np.ndarray]:
        """Flat mapping of gradient names to arrays (prefix applied)."""
        return {f"{prefix}{name}": value for name, value in self.grads.items()}


class Linear(Layer):
    """Affine layer ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        scale = 1.0 / np.sqrt(in_features)
        self.params["weight"] = rng.normal(0.0, scale, size=(in_features, out_features)).astype(np.float32)
        self.params["bias"] = np.zeros(out_features, dtype=np.float32)
        self.zero_grad()
        self._cache_input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the affine transform and cache the input."""
        self._cache_input = x
        return x @ self.params["weight"] + self.params["bias"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Accumulate weight/bias gradients and return the input gradient."""
        if self._cache_input is None:
            raise ConfigurationError("backward called before forward")
        x = self._cache_input
        in_features = x.shape[-1]
        out_features = grad_output.shape[-1]
        flat_x = x.reshape(-1, in_features)
        flat_grad = grad_output.reshape(-1, out_features)
        self.grads["weight"] += flat_x.T @ flat_grad
        self.grads["bias"] += flat_grad.sum(axis=0)
        return (flat_grad @ self.params["weight"].T).reshape(x.shape)


class Embedding(Layer):
    """Token (or positional) embedding lookup."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.params["weight"] = rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)).astype(np.float32)
        self.zero_grad()
        self._cache_indices: np.ndarray | None = None

    def forward(self, indices: np.ndarray) -> np.ndarray:
        """Gather rows of the embedding table."""
        self._cache_indices = np.asarray(indices)
        return self.params["weight"][self._cache_indices]

    def backward(self, grad_output: np.ndarray) -> None:
        """Scatter-add the output gradient back into the table."""
        if self._cache_indices is None:
            raise ConfigurationError("backward called before forward")
        np.add.at(self.grads["weight"], self._cache_indices.reshape(-1),
                  grad_output.reshape(-1, grad_output.shape[-1]))


class LayerNorm(Layer):
    """Layer normalisation over the last dimension."""

    def __init__(self, features: int) -> None:
        super().__init__()
        self.params["gamma"] = np.ones(features, dtype=np.float32)
        self.params["beta"] = np.zeros(features, dtype=np.float32)
        self.zero_grad()
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Normalise and affine-transform ``x``."""
        out, self._cache = F.layer_norm(x, self.params["gamma"], self.params["beta"])
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate through the normalisation."""
        if self._cache is None:
            raise ConfigurationError("backward called before forward")
        dx, dgamma, dbeta = F.layer_norm_backward(grad_output, self._cache)
        self.grads["gamma"] += dgamma
        self.grads["beta"] += dbeta
        return dx


class CausalSelfAttention(Layer):
    """Multi-head causal self-attention."""

    def __init__(self, hidden_size: int, num_heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        if hidden_size % num_heads != 0:
            raise ConfigurationError("hidden_size must be divisible by num_heads")
        self.hidden_size = hidden_size
        self.num_heads = num_heads
        self.head_dim = hidden_size // num_heads
        self.qkv = Linear(hidden_size, 3 * hidden_size, rng)
        self.proj = Linear(hidden_size, hidden_size, rng)
        self._cache: tuple | None = None

    # -- parameter plumbing -------------------------------------------------

    def named_parameters(self, prefix: str = "") -> dict[str, np.ndarray]:
        result = self.qkv.named_parameters(f"{prefix}qkv.")
        result.update(self.proj.named_parameters(f"{prefix}proj."))
        return result

    def named_gradients(self, prefix: str = "") -> dict[str, np.ndarray]:
        result = self.qkv.named_gradients(f"{prefix}qkv.")
        result.update(self.proj.named_gradients(f"{prefix}proj."))
        return result

    def zero_grad(self) -> None:
        self.qkv.zero_grad()
        self.proj.zero_grad()

    # -- forward/backward ---------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Attend causally over the sequence dimension."""
        batch, seq, _ = x.shape
        qkv = self.qkv.forward(x)
        qkv = qkv.reshape(batch, seq, 3, self.num_heads, self.head_dim)
        q = qkv[:, :, 0].transpose(0, 2, 1, 3)  # (B, H, T, D)
        k = qkv[:, :, 1].transpose(0, 2, 1, 3)
        v = qkv[:, :, 2].transpose(0, 2, 1, 3)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = np.matmul(q, k.transpose(0, 1, 3, 2)) * scale
        mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
        scores = np.where(mask, np.float32(-1e9), scores)
        attn = F.softmax(scores, axis=-1)
        context = np.matmul(attn, v)  # (B, H, T, D)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.hidden_size)
        out = self.proj.forward(merged)
        self._cache = (q, k, v, attn, scale, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate through projection, attention weights and QKV."""
        if self._cache is None:
            raise ConfigurationError("backward called before forward")
        q, k, v, attn, scale, x_shape = self._cache
        batch, seq, _ = x_shape

        d_merged = self.proj.backward(grad_output)
        d_context = d_merged.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

        d_attn = np.matmul(d_context, v.transpose(0, 1, 3, 2))
        d_v = np.matmul(attn.transpose(0, 1, 3, 2), d_context)

        # Softmax backward: dS = A * (dA - sum(dA * A)).
        d_scores = attn * (d_attn - (d_attn * attn).sum(axis=-1, keepdims=True))
        d_q = np.matmul(d_scores, k) * scale
        d_k = np.matmul(d_scores.transpose(0, 1, 3, 2), q) * scale

        d_qkv = np.empty((batch, seq, 3, self.num_heads, self.head_dim), dtype=np.float32)
        d_qkv[:, :, 0] = d_q.transpose(0, 2, 1, 3)
        d_qkv[:, :, 1] = d_k.transpose(0, 2, 1, 3)
        d_qkv[:, :, 2] = d_v.transpose(0, 2, 1, 3)
        d_qkv = d_qkv.reshape(batch, seq, 3 * self.hidden_size)
        return self.qkv.backward(d_qkv)


class MLP(Layer):
    """Feed-forward block: Linear -> GELU -> Linear."""

    def __init__(self, hidden_size: int, ffn_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.fc_in = Linear(hidden_size, ffn_size, rng)
        self.fc_out = Linear(ffn_size, hidden_size, rng)
        self._cache_pre_activation: np.ndarray | None = None

    def named_parameters(self, prefix: str = "") -> dict[str, np.ndarray]:
        result = self.fc_in.named_parameters(f"{prefix}fc_in.")
        result.update(self.fc_out.named_parameters(f"{prefix}fc_out."))
        return result

    def named_gradients(self, prefix: str = "") -> dict[str, np.ndarray]:
        result = self.fc_in.named_gradients(f"{prefix}fc_in.")
        result.update(self.fc_out.named_gradients(f"{prefix}fc_out."))
        return result

    def zero_grad(self) -> None:
        self.fc_in.zero_grad()
        self.fc_out.zero_grad()

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the two-layer MLP."""
        pre = self.fc_in.forward(x)
        self._cache_pre_activation = pre
        return self.fc_out.forward(F.gelu(pre))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate through both linear layers and the GELU."""
        if self._cache_pre_activation is None:
            raise ConfigurationError("backward called before forward")
        d_hidden = self.fc_out.backward(grad_output)
        d_pre = F.gelu_backward(self._cache_pre_activation, d_hidden)
        return self.fc_in.backward(d_pre)


class TransformerBlock(Layer):
    """Pre-norm transformer decoder block."""

    def __init__(self, hidden_size: int, num_heads: int, ffn_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.ln_attn = LayerNorm(hidden_size)
        self.attention = CausalSelfAttention(hidden_size, num_heads, rng)
        self.ln_mlp = LayerNorm(hidden_size)
        self.mlp = MLP(hidden_size, ffn_size, rng)

    def named_parameters(self, prefix: str = "") -> dict[str, np.ndarray]:
        result = self.ln_attn.named_parameters(f"{prefix}ln_attn.")
        result.update(self.attention.named_parameters(f"{prefix}attn."))
        result.update(self.ln_mlp.named_parameters(f"{prefix}ln_mlp."))
        result.update(self.mlp.named_parameters(f"{prefix}mlp."))
        return result

    def named_gradients(self, prefix: str = "") -> dict[str, np.ndarray]:
        result = self.ln_attn.named_gradients(f"{prefix}ln_attn.")
        result.update(self.attention.named_gradients(f"{prefix}attn."))
        result.update(self.ln_mlp.named_gradients(f"{prefix}ln_mlp."))
        result.update(self.mlp.named_gradients(f"{prefix}mlp."))
        return result

    def zero_grad(self) -> None:
        self.ln_attn.zero_grad()
        self.attention.zero_grad()
        self.ln_mlp.zero_grad()
        self.mlp.zero_grad()

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Residual attention followed by residual MLP."""
        x = x + self.attention.forward(self.ln_attn.forward(x))
        x = x + self.mlp.forward(self.ln_mlp.forward(x))
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate through both residual branches."""
        d_mlp = self.mlp.backward(grad_output)
        grad_output = grad_output + self.ln_mlp.backward(d_mlp)
        d_attn = self.attention.backward(grad_output)
        grad_output = grad_output + self.ln_attn.backward(d_attn)
        return grad_output
