"""Miniature NumPy transformer with manual backpropagation.

The paper's runtime trains Megatron-style GPT models; the optimizer offloading logic
only sees flat FP16 parameter/gradient buffers and FP32 optimizer states, so any model
that produces real gradients exercises the full Deep Optimizer States code path.  This
subpackage provides such a model at laptop scale: a decoder-only transformer written
with NumPy forward *and* backward passes (verified against finite differences in the
test suite), used by the runnable examples and the end-to-end correctness tests.
"""

from repro.model.nn.functional import (
    cross_entropy,
    cross_entropy_backward,
    gelu,
    gelu_backward,
    layer_norm,
    layer_norm_backward,
    softmax,
)
from repro.model.nn.layers import (
    CausalSelfAttention,
    Embedding,
    LayerNorm,
    Linear,
    MLP,
    TransformerBlock,
)
from repro.model.nn.model import TinyTransformerLM

__all__ = [
    "gelu",
    "gelu_backward",
    "softmax",
    "layer_norm",
    "layer_norm_backward",
    "cross_entropy",
    "cross_entropy_backward",
    "Linear",
    "Embedding",
    "LayerNorm",
    "CausalSelfAttention",
    "MLP",
    "TransformerBlock",
    "TinyTransformerLM",
]
