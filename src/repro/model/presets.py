"""Model presets.

``MODEL_PRESETS`` reproduces Table 2 of the paper: the 7B and 13B configurations are
derived from LLaMA-2, the 8.3B one from Megatron-LM, the 10B one from GPT-10B (the
ZeRO paper) and the 20B one from GPT-NeoX.  ``TINY_MODELS`` adds miniature
configurations used by the numeric execution path (tests and runnable examples) —
small enough to train with the NumPy transformer on a laptop while exercising exactly
the same sharding, scheduling and precision code paths.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.model.config import TransformerConfig

MODEL_PRESETS: dict[str, TransformerConfig] = {
    "7B": TransformerConfig(
        name="7B",
        num_layers=32,
        hidden_size=4096,
        num_attention_heads=32,
        nominal_parameters=7_000_000_000,
    ),
    "8.3B": TransformerConfig(
        name="8.3B",
        num_layers=72,
        hidden_size=3072,
        num_attention_heads=24,
        nominal_parameters=8_300_000_000,
    ),
    "10B": TransformerConfig(
        name="10B",
        num_layers=50,
        hidden_size=4096,
        num_attention_heads=32,
        nominal_parameters=10_000_000_000,
    ),
    "13B": TransformerConfig(
        name="13B",
        num_layers=40,
        hidden_size=5120,
        num_attention_heads=40,
        nominal_parameters=13_000_000_000,
    ),
    "20B": TransformerConfig(
        name="20B",
        num_layers=48,
        hidden_size=6144,
        num_attention_heads=64,
        nominal_parameters=20_000_000_000,
    ),
}

TINY_MODELS: dict[str, TransformerConfig] = {
    "tiny-4M": TransformerConfig(
        name="tiny-4M",
        num_layers=4,
        hidden_size=256,
        num_attention_heads=4,
        vocab_size=512,
        sequence_length=64,
    ),
    "tiny-1M": TransformerConfig(
        name="tiny-1M",
        num_layers=2,
        hidden_size=128,
        num_attention_heads=4,
        vocab_size=256,
        sequence_length=32,
    ),
    "nano": TransformerConfig(
        name="nano",
        num_layers=2,
        hidden_size=32,
        num_attention_heads=2,
        vocab_size=64,
        sequence_length=16,
    ),
}

PAPER_MODEL_ORDER = ("7B", "8.3B", "10B", "13B", "20B")


def list_model_presets(include_tiny: bool = False) -> list[str]:
    """Names of the available model presets, in the order the paper plots them."""
    names = list(PAPER_MODEL_ORDER)
    if include_tiny:
        names.extend(sorted(TINY_MODELS))
    return names


def get_model_preset(name: str) -> TransformerConfig:
    """Look up a model preset (paper-scale or tiny) by name."""
    if name in MODEL_PRESETS:
        return MODEL_PRESETS[name]
    if name in TINY_MODELS:
        return TINY_MODELS[name]
    raise ConfigurationError(
        f"unknown model preset {name!r}; available: {list_model_presets(include_tiny=True)}"
    )
