"""Checkpointing of the sharded, host-offloaded optimizer state.

The paper notes (Section 2) that offloading the optimizer state to host memory also
accelerates checkpointing, because the large FP32 state can be flushed to persistent
storage asynchronously without blocking the GPUs (DataStates-LLM and related work by
the same authors).  This subpackage provides that capability for the reproduction's
:class:`~repro.zero.stage3.ShardedMixedPrecisionOptimizer`: per-rank snapshot files,
integrity checking, and resume.
"""

from repro.checkpoint.snapshot import (
    CheckpointManifest,
    load_optimizer_checkpoint,
    save_optimizer_checkpoint,
)

__all__ = [
    "CheckpointManifest",
    "save_optimizer_checkpoint",
    "load_optimizer_checkpoint",
]
