"""Save/load the sharded optimizer state to/from disk.

Layout: one ``.npz`` file per data-parallel rank (each rank owns a disjoint slice of
the optimizer state, so ranks can write their files in parallel without coordination —
exactly the property that makes host-offloaded checkpointing cheap) plus a JSON
manifest describing the run.  Integrity is protected by a per-file checksum of the
stored arrays.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.common.errors import ConfigurationError
from repro.zero.stage3 import ShardedMixedPrecisionOptimizer

MANIFEST_NAME = "manifest.json"


@dataclass
class CheckpointManifest:
    """Metadata describing one optimizer checkpoint."""

    step_count: int
    num_params: int
    data_parallel_degree: int
    subgroup_size: int
    rank_files: dict[str, str] = field(default_factory=dict)
    checksums: dict[str, str] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialise the manifest."""
        return json.dumps(
            {
                "step_count": self.step_count,
                "num_params": self.num_params,
                "data_parallel_degree": self.data_parallel_degree,
                "subgroup_size": self.subgroup_size,
                "rank_files": self.rank_files,
                "checksums": self.checksums,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "CheckpointManifest":
        """Parse a manifest written by :meth:`to_json`."""
        data = json.loads(text)
        return cls(
            step_count=int(data["step_count"]),
            num_params=int(data["num_params"]),
            data_parallel_degree=int(data["data_parallel_degree"]),
            subgroup_size=int(data["subgroup_size"]),
            rank_files={str(k): str(v) for k, v in data["rank_files"].items()},
            checksums={str(k): str(v) for k, v in data["checksums"].items()},
        )


def _rank_arrays(optimizer: ShardedMixedPrecisionOptimizer, rank: int) -> dict[str, np.ndarray]:
    arrays: dict[str, np.ndarray] = {}
    for subgroup in optimizer.subgroups(rank):
        prefix = f"sg{subgroup.index:05d}"
        arrays[f"{prefix}.fp32_params"] = subgroup.fp32_params
        for name, buffer in subgroup.state.items():
            arrays[f"{prefix}.{name}"] = buffer
    return arrays


def _checksum(arrays: dict[str, np.ndarray]) -> str:
    digest = hashlib.sha256()
    for name in sorted(arrays):
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(arrays[name]).tobytes())
    return digest.hexdigest()


def save_optimizer_checkpoint(
    optimizer: ShardedMixedPrecisionOptimizer, directory: str | Path
) -> CheckpointManifest:
    """Write one snapshot of ``optimizer`` under ``directory`` and return its manifest."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    manifest = CheckpointManifest(
        step_count=optimizer.step_count,
        num_params=optimizer.num_params,
        data_parallel_degree=optimizer.data_parallel_degree,
        subgroup_size=optimizer.offload.subgroup_size,
    )
    for rank in optimizer.ranks:
        arrays = _rank_arrays(optimizer, rank)
        file_name = f"rank{rank:03d}.npz"
        np.savez(target / file_name, **arrays)
        manifest.rank_files[str(rank)] = file_name
        manifest.checksums[str(rank)] = _checksum(arrays)
    (target / MANIFEST_NAME).write_text(manifest.to_json())
    return manifest


def load_optimizer_checkpoint(
    optimizer: ShardedMixedPrecisionOptimizer, directory: str | Path, *, verify: bool = True
) -> CheckpointManifest:
    """Restore ``optimizer`` in place from a snapshot written by :func:`save_optimizer_checkpoint`."""
    target = Path(directory)
    manifest_path = target / MANIFEST_NAME
    if not manifest_path.exists():
        raise ConfigurationError(f"no checkpoint manifest found in {target}")
    manifest = CheckpointManifest.from_json(manifest_path.read_text())

    if manifest.num_params != optimizer.num_params:
        raise ConfigurationError(
            f"checkpoint holds {manifest.num_params} parameters, optimizer has {optimizer.num_params}"
        )
    if manifest.data_parallel_degree != optimizer.data_parallel_degree:
        raise ConfigurationError("checkpoint data-parallel degree does not match the optimizer")

    from repro.precision.convert import downscale_fp32_to_fp16

    for rank in optimizer.ranks:
        file_name = manifest.rank_files.get(str(rank))
        if file_name is None:
            raise ConfigurationError(f"checkpoint is missing rank {rank}")
        with np.load(target / file_name) as stored:
            arrays = {name: stored[name] for name in stored.files}
        if verify:
            expected = manifest.checksums.get(str(rank))
            actual = _checksum(arrays)
            if expected != actual:
                raise ConfigurationError(f"checksum mismatch for rank {rank} checkpoint file")
        for subgroup in optimizer.subgroups(rank):
            prefix = f"sg{subgroup.index:05d}"
            key = f"{prefix}.fp32_params"
            if key not in arrays:
                raise ConfigurationError(f"checkpoint is missing subgroup {subgroup.index} of rank {rank}")
            subgroup.fp32_params[...] = arrays[key]
            for name in subgroup.state:
                subgroup.state[name][...] = arrays[f"{prefix}.{name}"]
            downscale_fp32_to_fp16(subgroup.fp32_params, out=subgroup.fp16_params)

    optimizer.step_count = manifest.step_count
    return manifest
