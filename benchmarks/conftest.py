"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the benchmarks from a source checkout without installing the package.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations, so a single round is enough; this
    keeps the full benchmark suite fast while still recording wall-clock timings.
    """

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
