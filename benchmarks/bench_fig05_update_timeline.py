"""Benchmark: Figure 5 — update-phase timeline, TwinFlow vs Deep Optimizer States."""

from repro.experiments.fig05_update_timeline import run


def test_fig05_update_timeline(run_once):
    result = run_once(run)
    print()
    print(result.format())
    by_strategy = {row["strategy"]: row for row in result.rows}
    assert (
        by_strategy["deep-optimizer-states"]["update_complete_s"]
        < by_strategy["twinflow"]["update_complete_s"]
    )
