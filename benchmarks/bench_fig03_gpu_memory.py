"""Benchmark: Figure 3 — GPU memory utilisation with and without activation checkpointing."""

from repro.experiments.fig03_gpu_memory import run


def test_fig03_gpu_memory(run_once):
    result = run_once(run)
    print()
    print(result.format())
    by_config = {row["configuration"]: row for row in result.rows}
    assert by_config["full_activations"]["forward_peak_gib"] > by_config["activation_checkpointing"]["forward_peak_gib"]
    for row in result.rows:
        assert row["update_phase_gib"] < row["forward_peak_gib"]
