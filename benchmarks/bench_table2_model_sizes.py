"""Benchmark: reproduce Table 2 (model configurations and state sizes)."""

from repro.experiments.table2_models import run


def test_table2_model_sizes(run_once):
    result = run_once(run)
    print()
    print(result.format())
    for row in result.rows:
        assert abs(row["fp16_model_gib"] - row["paper_fp16_gb"]) / row["paper_fp16_gb"] < 0.15
        assert abs(row["fp32_optimizer_gib"] - row["paper_fp32_opt_gb"]) / row["paper_fp32_opt_gb"] < 0.15
