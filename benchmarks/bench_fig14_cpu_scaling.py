"""Benchmark: Figure 14 — varying the number of CPU cores per GPU (20B model)."""

from repro.experiments.fig14_cpu_scaling import run


def test_fig14_cpu_scaling(run_once):
    result = run_once(run)
    print()
    print(result.format())
    rows = {row["cpu_cores_per_gpu"]: row for row in result.rows}
    # Iteration time improves with more CPU cores, then plateaus past DRAM saturation.
    assert rows[10]["zero3_iteration_s"] > rows[30]["zero3_iteration_s"]
    assert abs(rows[48]["zero3_iteration_s"] - rows[44]["zero3_iteration_s"]) < 0.1
    assert all(row["speedup"] > 1.8 for row in result.rows)
