"""Benchmark: Figure 10 — update time vs static GPU-resident fraction (20B model)."""

from repro.experiments.fig10_twinflow_update import run


def test_fig10_twinflow_ratio_update(run_once):
    result = run_once(run)
    print()
    print(result.format())
    twinflow = [row["twinflow_update_s"] for row in result.rows]
    dos = [row["dos_update_s"] for row in result.rows]
    # Update time decreases monotonically as more optimizer state is pinned to the GPU.
    assert all(b <= a + 1e-6 for a, b in zip(twinflow, twinflow[1:]))
    assert all(b <= a + 1e-6 for a, b in zip(dos, dos[1:]))
    assert all(row["speedup"] >= 1.3 for row in result.rows)
