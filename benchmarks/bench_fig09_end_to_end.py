"""Benchmark: Figure 9 — end-to-end training time for 100 iterations."""

from repro.experiments.fig09_end_to_end import run


def test_fig09_end_to_end(run_once):
    result = run_once(run)
    print()
    print(result.format())
    for row in result.rows:
        assert row["dos_total_s"] < row["zero3_total_s"]
        # The end-to-end speedup matches the per-iteration speedup (no accumulated stalls).
        assert abs(row["speedup"] - row["per_iteration_speedup"]) / row["speedup"] < 0.1
    by_model = {row["model"]: row for row in result.rows}
    # Training 20B with DOS costs about as much as 7B on the baseline (paper's remark).
    assert by_model["20B"]["dos_total_s"] <= by_model["7B"]["zero3_total_s"] * 1.8
