"""Engine scheduling throughput (ops/sec) vs subgroup count: seed vs heap engine,
eager vs array-batched ``simulate_job`` op construction, and heap vs vector
scheduler kernels.

**Part 1 — scheduling.**  The seed engine re-scanned every resource queue per
scheduled op and answered every ``Schedule`` query with a linear scan, which made
the schedule-then-analyse pipeline used by the training simulation quadratic in the
number of operations.  This benchmark replays the seed algorithm (ported verbatim
below) against the current heap-scheduled, index-backed engine on
update-phase-shaped DAGs of growing subgroup count and reports end-to-end pipeline
throughput.

**Part 2 — op construction.**  With scheduling O(N log N), per-op Python-object
construction became the next hot path: one ``SimOp`` dataclass per operation plus
per-subgroup strategy-builder overhead dominates ``simulate_job`` beyond ~10k
subgroups.  The second section measures end-to-end ``simulate_job`` (resolve ->
build ops -> run -> materialise the schedule) under the eager ``objects`` backend
(the pre-opbatch path, still selectable) and the array-batched ``batch`` backend,
and asserts the acceptance criterion: >= 2x end-to-end throughput at 10k subgroups
for the default strategy.  The two backends are byte-identical by construction
(``tests/test_opbatch_equivalence.py``), which this script spot-checks via makespans.

**Part 3 — scheduler kernels.**  Beyond ~100k subgroups per scenario the heap
scheduler's per-op Python bookkeeping (heap tuples, growing dicts, the final
Timsort over per-op tuples) dominates ``run_batch`` itself.  The third section
schedules the same prebuilt ``OpBatch`` — the default strategy at growing
subgroup counts, including the chained two-iteration DAG the Trainer actually
simulates — on ``run_batch`` (heap) and ``run_vector`` (the numpy
struct-of-arrays kernel of ``repro.sim.veckernel``).

The gated timing is *scheduling plus a makespan query*: the kernel's own work.
``run_vector`` defers schedule ordering and per-op ``ScheduledOp``
materialisation until a query touches ``.ops``, so analyses that touch every
operation (e.g. the Trainer's per-iteration breakdowns) pay that shared
materialisation cost on either backend — the table's ``mat'd`` column reports
the fully-materialised ratio too (typically ~1.3-2x; informational, not gated)
so the headline speedup cannot be mistaken for an end-to-end number.  It
asserts the acceptance criterion: >= 3x scheduling over ``run_batch`` at 100k
subgroups.  The kernels are byte-identical
(``tests/test_engine_equivalence.py`` is the three-way proof); this script
cross-checks every makespan and fully compares the smallest schedule op by op.

**Part 4 — sweep throughput.**  Grid sweeps re-pay the whole per-scenario
pipeline per grid point even though every point of a typical figure grid shares
one DAG shape.  The fourth section runs a 256-scenario ``cpu_cores_per_gpu``
grid (a fig14-style sweep: same topology per point, different durations)
through ``SweepRunner`` in ``sweep_mode="scenario"`` and ``sweep_mode="batch"``
(the shape-compiled path of ``repro.sim.shapebatch`` /
``repro.sweep.batching``), cross-checks that every scenario's
``(params, config_hash, value)`` projection is byte-identical between the two
modes, and reports sweep throughput in scenarios/sec.  It asserts the
acceptance criterion: >= 3x sweep throughput on the shared-shape grid, and
writes the measurements to ``BENCH_sweep_throughput.json``.

**Part 5 — middleware overhead.**  The middleware layer
(:mod:`repro.middleware`) intercepts the engine's run methods once per
invocation — coarse-grained on purpose, so the chain costs one extra Python
call per *run*, not per op.  The fifth section schedules the 100k-subgroup
prebuilt batch through ``run_vector`` bare and under an installed no-op chain,
asserts identical makespans, and gates the chained/bare ratio: an empty
(observe-only no-op) chain must add **< 2%** to the 100k-op vector path
(``BENCH_MAX_MIDDLEWARE_OVERHEAD``), with the measurements written to
``BENCH_middleware_overhead.json``.

**Part 6 — pipeline deep DAGs.**  The pipeline-parallel lowering
(:mod:`repro.pipeline`) produces the opposite DAG regime of Part 3: long
cross-resource dependency chains (a microbatch's forward walks every stage
with a link hop per boundary) instead of a wide per-subgroup fan.  Deep
chains shrink the vector kernel's batched frontier toward one op at a time,
so this section gates a *floor*, not a speedup: on an 8-stage x
64-microbatch zero-bubble schedule the vector kernel must hold at least
``BENCH_MIN_PIPELINE_SPEEDUP`` (default 0.2x) of the heap path's throughput,
with op-by-op byte-identity asserted in-run and the measurements written to
``BENCH_pipeline_depth.json``.

**Part 7 — trace-chain overhead.**  Span tracing (:mod:`repro.obs.trace`)
rides the same coarse-grained seam as Part 5's no-op chain, but each
interception now records a real span: two uuid draws, a couple of clock
reads, and a dict append under a lock.  The seventh section schedules the
100k-op vector batch bare and under an installed ``trace`` chain, asserts
identical makespans, and gates the ratio: the tracer must add **<= 5%** to
the 100k-op vector path (``BENCH_MAX_TRACE_OVERHEAD``), with the
measurements written to ``BENCH_trace_overhead.json``.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_sim_engine_scaling.py

The script asserts all seven acceptance criteria: >= 5x pipeline throughput
at 1000+ operations (Part 1), >= 2x ``simulate_job`` throughput at 10k
subgroups (Part 2), >= 3x ``run_batch`` scheduling throughput at 100k
subgroups (Part 3), >= 3x sweep throughput on a 256-scenario shared-shape
grid (Part 4), <= 2% no-op middleware overhead on the 100k-op vector path
(Part 5), the vector-kernel floor on the deep pipeline DAG (Part 6), and
<= 5% trace-chain overhead on the 100k-op vector path (Part 7).
CI shrinks Part 4 via ``BENCH_SWEEP_SCENARIOS`` and relaxes its gate via
``BENCH_MIN_SWEEP_SPEEDUP`` (small grids amortise the compiled plan over
fewer scenarios).
"""

from __future__ import annotations

import os
import sys
import time
from collections import deque
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.runtime import ExecutionPolicy  # noqa: E402
from repro.sim.engine import SimEngine, standard_resources  # noqa: E402
from repro.sim.ops import OpKind, SimOp  # noqa: E402
from repro.training.config import TrainingJobConfig  # noqa: E402
from repro.training.simulation import simulate_job  # noqa: E402

SUBGROUP_COUNTS = (50, 125, 250, 500, 1250)
OPS_PER_SUBGROUP = 4  # d2h, cpu update, h2d, gpu compute

# Acceptance threshold for the 1000+ op speedup.  Noisy shared runners (CI) can
# deschedule the millisecond-scale timing windows, so the gate is overridable.
MIN_SPEEDUP = float(os.environ.get("BENCH_MIN_SPEEDUP", "5.0"))

# Part 2: simulate_job end-to-end speedup gate (batch vs eager op construction) at
# SIMJOB_GATE_SUBGROUPS subgroups for the default strategy.  Same noise caveat.
MIN_SIMJOB_SPEEDUP = float(os.environ.get("BENCH_MIN_SIMJOB_SPEEDUP", "2.0"))
SIMJOB_SUBGROUPS = (1000, 2500, 10000)
SIMJOB_GATE_SUBGROUPS = 10000
SIMJOB_STRATEGIES = ("deep-optimizer-states", "zero3-offload", "twinflow")
# Rank parameters of the 20B preset at data-parallel degree 4.
RANK_PARAMS_20B = 5_000_000_000

# Part 3: heap vs vector scheduler on a prebuilt batch.  (subgroups, iterations)
# grid; the gate row is the 100k-subgroup chained-iteration DAG.  Same noise
# caveat as above — CI overrides the bar via BENCH_MIN_VECTOR_SPEEDUP.
MIN_VECTOR_SPEEDUP = float(os.environ.get("BENCH_MIN_VECTOR_SPEEDUP", "3.0"))
VECTOR_CASES = ((10_000, 1), (100_000, 1), (100_000, 2))
VECTOR_GATE_CASE = (100_000, 2)

# Part 4: shape-batched sweep throughput over the per-scenario path on a
# shared-shape grid.  BENCH_SWEEP_SCENARIOS shrinks the grid for CI smoke runs
# (per-group compile/replay costs amortise over fewer scenarios there, so CI
# also relaxes the gate via BENCH_MIN_SWEEP_SPEEDUP).
MIN_SWEEP_SPEEDUP = float(os.environ.get("BENCH_MIN_SWEEP_SPEEDUP", "3.0"))
SWEEP_SCENARIOS = int(os.environ.get("BENCH_SWEEP_SCENARIOS", "256"))
SWEEP_REPEATS = int(os.environ.get("BENCH_SWEEP_REPEATS", "3"))
# 20B at 70M-parameter subgroups: dense enough that the per-scenario path's
# heap scheduling and Python-level breakdown queries dominate, small enough
# that the DAG stays below the auto vector threshold (the realistic regime —
# above it both modes ride the same vector kernel per scenario).
SWEEP_BASE = {
    "model": "20B",
    "strategy": "deep-optimizer-states",
    "subgroup_size": 70_000_000,
}
SWEEP_RESULT_FILE = "BENCH_sweep_throughput.json"

# Part 5: no-op middleware chain overhead on the vector path.  The 100k-op
# single-iteration DAG is the gate case; the bar is a *ratio* (2% by default),
# overridable for noisy shared runners like every other gate here.
MAX_MIDDLEWARE_OVERHEAD = float(os.environ.get("BENCH_MAX_MIDDLEWARE_OVERHEAD", "0.02"))
MIDDLEWARE_REPEATS = int(os.environ.get("BENCH_MIDDLEWARE_REPEATS", "5"))
MIDDLEWARE_CASE = (100_000, 1)
MIDDLEWARE_RESULT_FILE = "BENCH_middleware_overhead.json"

# Part 6: deep-DAG pipeline schedule (long cross-resource dependency chains,
# the opposite regime of Part 3's wide per-subgroup fan).  The vector kernel's
# advantage shrinks on deep chains — its batched frontier degenerates toward
# one-op-at-a-time — so the gate here is deliberately lenient: it pins "the
# vector path must not fall off a cliff on pipeline DAGs", not a speedup.
MIN_PIPELINE_SPEEDUP = float(os.environ.get("BENCH_MIN_PIPELINE_SPEEDUP", "0.2"))
PIPELINE_CASE = (8, 64)  # (stages, microbatches): ~3.3k ops, depth ~8 chains
PIPELINE_REPEATS = int(os.environ.get("BENCH_PIPELINE_REPEATS", "5"))
PIPELINE_RESULT_FILE = "BENCH_pipeline_depth.json"

# Part 7: span-tracing chain overhead on the vector path.  The tracer records
# one real span per engine run — the gate is looser than Part 5's no-op bar
# (5% by default) because each interception now does real work, but it still
# pins "tracing is per-run, never per-op".  Same noise caveat as every gate.
MAX_TRACE_OVERHEAD = float(os.environ.get("BENCH_MAX_TRACE_OVERHEAD", "0.05"))
TRACE_REPEATS = int(os.environ.get("BENCH_TRACE_REPEATS", "5"))
TRACE_CASE = (100_000, 1)
TRACE_RESULT_FILE = "BENCH_trace_overhead.json"


# --------------------------------------------------------------------- seed port


class _SeedSchedule:
    """Seed-era schedule queries: every lookup is a linear scan."""

    def __init__(self, ops):
        self.ops = ops

    def by_id(self, op_id):
        for item in self.ops:
            if item.op.op_id == op_id:
                return item
        raise KeyError(op_id)

    def busy_time(self, resource):
        total = 0.0
        for item in self.ops:
            if item.op.resource == resource:
                total += item.end - item.start
        return total

    def phase_window(self, phase):
        items = [item for item in self.ops if item.op.phase == phase]
        if not items:
            return (0.0, 0.0)
        return (min(i.start for i in items), max(i.end for i in items))


def _seed_run(resources, submissions):
    """Verbatim port of the seed SimEngine.run() scheduling loop."""
    from repro.sim.engine import ScheduledOp

    queues = {name: deque() for name in resources}
    for op in submissions:
        queues[op.resource].append(op)
    finished: dict[int, float] = {}
    resource_free = {name: 0.0 for name in resources}
    scheduled = []

    remaining = len(submissions)
    while remaining:
        best = None
        for name, queue in queues.items():
            if not queue:
                continue
            head = queue[0]
            if any(dep not in finished for dep in head.deps):
                continue
            deps_end = max((finished[dep] for dep in head.deps), default=0.0)
            start = max(resource_free[name], deps_end)
            if best is None or start < best[0] or (start == best[0] and name < best[1]):
                best = (start, name, head)
        assert best is not None
        start, name, op = best
        queues[name].popleft()
        end = start + op.duration
        finished[op.op_id] = end
        resource_free[name] = end
        scheduled.append(ScheduledOp(op=op, start=start, end=end))
        remaining -= 1

    scheduled.sort(key=lambda item: (item.start, item.op.op_id))
    return _SeedSchedule(scheduled)


# --------------------------------------------------------------------- workload


def build_update_phase_ops(num_subgroups: int) -> list[SimOp]:
    """An update-phase-shaped DAG: per-subgroup d2h -> cpu -> h2d with GPU stride hits."""
    ops: list[SimOp] = []
    previous_cpu = None
    for index in range(num_subgroups):
        d2h = SimOp(
            name=f"d2h[{index}]", kind=OpKind.D2H, resource="pcie.d2h",
            duration=0.01, phase="update", subgroup=index, payload_bytes=1000,
        )
        deps = (d2h.op_id,) if previous_cpu is None else (d2h.op_id, previous_cpu)
        target = "gpu.compute" if (index + 1) % 2 == 0 else "cpu"
        update = SimOp(
            name=f"update[{index}]",
            kind=OpKind.GPU_UPDATE if target == "gpu.compute" else OpKind.CPU_UPDATE,
            resource=target, duration=0.02, deps=deps, phase="update", subgroup=index,
        )
        h2d = SimOp(
            name=f"h2d[{index}]", kind=OpKind.H2D, resource="pcie.h2d",
            duration=0.01, deps=(update.op_id,), phase="update", subgroup=index,
            payload_bytes=1000,
        )
        tail = SimOp(
            name=f"apply[{index}]", kind=OpKind.GPU_COMPUTE, resource="gpu.compute",
            duration=0.005, deps=(h2d.op_id,), phase="apply", subgroup=index,
        )
        ops.extend([d2h, update, h2d, tail])
        previous_cpu = update.op_id
    return ops


def _analyse(schedule, ops) -> float:
    """The simulation layer's query pattern, as in SimulationResult.breakdown():
    every op's start and end are looked up independently (update_window does both
    passes), plus per-resource busy totals and the phase window."""
    checksum = 0.0
    for op in ops:
        checksum += schedule.by_id(op.op_id).start
    for op in ops:
        checksum += schedule.by_id(op.op_id).end
    for resource in ("cpu", "gpu.compute", "pcie.h2d", "pcie.d2h"):
        checksum += schedule.busy_time(resource)
    start, end = schedule.phase_window("update")
    return checksum + end - start


def _time_seed(ops, resources) -> tuple[float, float]:
    begin = time.perf_counter()
    schedule = _seed_run(resources, ops)
    checksum = _analyse(schedule, ops)
    return time.perf_counter() - begin, checksum


def _time_heap(ops) -> tuple[float, float]:
    engine = SimEngine()
    standard_resources(engine)
    begin = time.perf_counter()
    for op in ops:
        engine.submit(op)
    schedule = engine.run()
    checksum = _analyse(schedule, ops)
    return time.perf_counter() - begin, checksum


# ----------------------------------------------------------- simulate_job backends


def _time_simulate(job, backend: str, repeats: int = 2) -> tuple[float, float, int]:
    """Best-of-N end-to-end simulate_job time, the makespan, and the op count."""
    best = float("inf")
    makespan = 0.0
    num_ops = 0
    # Pin the scheduler to "heap" so Part 2 isolates op construction: with the
    # "auto" default, the large grids would flip to the vector kernel mid-sweep.
    policy = ExecutionPolicy(op_backend=backend, scheduler="heap")
    for _ in range(repeats):
        begin = time.perf_counter()
        result = simulate_job(job, iterations=1, policy=policy)
        best = min(best, time.perf_counter() - begin)
        makespan = result.schedule.makespan
        num_ops = len(result.schedule.ops)
    return best, makespan, num_ops


def bench_simulate_job_backends() -> None:
    """Part 2: eager vs array-batched op construction across subgroup counts."""
    print(f"\n{'strategy':>22}  {'subgroups':>9}  {'ops':>6}  "
          f"{'eager ops/s':>12}  {'batch ops/s':>12}  {'speedup':>8}")
    gate_speedup = None
    for strategy in SIMJOB_STRATEGIES:
        for subgroups in SIMJOB_SUBGROUPS:
            job = TrainingJobConfig(
                model="20B",
                strategy=strategy,
                subgroup_size=RANK_PARAMS_20B // subgroups,
                check_memory=False,
            ).resolve()
            eager_s, eager_makespan, num_ops = _time_simulate(job, "objects")
            batch_s, batch_makespan, _ = _time_simulate(job, "batch")
            assert batch_makespan == eager_makespan, (
                f"{strategy}@{subgroups}: backends diverged "
                f"({batch_makespan} != {eager_makespan})"
            )
            speedup = eager_s / batch_s if batch_s > 0 else float("inf")
            print(f"{strategy:>22}  {subgroups:>9}  {num_ops:>6}  "
                  f"{num_ops / eager_s:>12.0f}  {num_ops / batch_s:>12.0f}  "
                  f"{speedup:>7.2f}x")
            if strategy == SIMJOB_STRATEGIES[0] and subgroups == SIMJOB_GATE_SUBGROUPS:
                gate_speedup = speedup
    assert gate_speedup is not None and gate_speedup >= MIN_SIMJOB_SPEEDUP, (
        f"expected >= {MIN_SIMJOB_SPEEDUP:g}x end-to-end simulate_job speedup at "
        f"{SIMJOB_GATE_SUBGROUPS} subgroups ({SIMJOB_STRATEGIES[0]}), "
        f"got {gate_speedup:.2f}x"
    )
    print(f"\nOK: >= {MIN_SIMJOB_SPEEDUP:g}x simulate_job speedup at "
          f"{SIMJOB_GATE_SUBGROUPS} subgroups ({gate_speedup:.2f}x)")


# ------------------------------------------------------------ scheduler kernels


def _build_job_batch(subgroups: int, iterations: int):
    """A prebuilt OpBatch of the default strategy's chained-iteration DAG."""
    from repro.sim.opbatch import OpBatch
    from repro.training.simulation import build_iteration_rows

    job = TrainingJobConfig(
        model="20B",
        strategy=SIMJOB_STRATEGIES[0],
        subgroup_size=RANK_PARAMS_20B // subgroups,
        check_memory=False,
    ).resolve()
    batch = OpBatch()
    start_deps: tuple = ()
    for index in range(iterations):
        record = build_iteration_rows(batch, job, index, start_deps)
        start_deps = tuple(record.update.params_ready_ops)
    return batch


def _time_scheduler(
    engine, batch, method: str, repeats: int = 2, materialise: bool = False
) -> tuple[float, float]:
    """Best-of-N time to schedule ``batch`` and answer a makespan query.

    ``materialise=True`` additionally touches every ``ScheduledOp`` inside the
    timed region, charging the vector backend's deferred ordering and per-op
    object construction (the cost an op-touching analysis pays on any backend).
    """
    best = float("inf")
    makespan = 0.0
    for _ in range(repeats):
        begin = time.perf_counter()
        schedule = getattr(engine, method)(batch)
        makespan = schedule.makespan
        if materialise:
            assert schedule.ops[-1].end > 0
        best = min(best, time.perf_counter() - begin)
        del schedule
    return best, makespan


def bench_scheduler_kernels() -> None:
    """Part 3: heap vs vector scheduler kernels on prebuilt op batches."""
    print(f"\n{'subgroups':>9}  {'iters':>5}  {'ops':>8}  "
          f"{'heap ops/s':>12}  {'vector ops/s':>12}  {'speedup':>8}  {'mat_d':>7}")
    gate_speedup = None
    for subgroups, iterations in VECTOR_CASES:
        batch = _build_job_batch(subgroups, iterations)
        num_ops = len(batch)
        engine = SimEngine()
        standard_resources(engine)
        heap_s, heap_makespan = _time_scheduler(engine, batch, "run_batch")
        vector_s, vector_makespan = _time_scheduler(engine, batch, "run_vector")
        assert vector_makespan == heap_makespan, (
            f"{subgroups}x{iterations}: scheduler kernels diverged "
            f"({vector_makespan} != {heap_makespan})"
        )
        if (subgroups, iterations) == VECTOR_CASES[0]:
            # Full byte-identical cross-check on the smallest case: every
            # (op id, start, end) triple, not just the makespan.
            heap_ops = [(i.op.op_id, i.start, i.end) for i in engine.run_batch(batch).ops]
            vector_ops = [(i.op.op_id, i.start, i.end) for i in engine.run_vector(batch).ops]
            assert heap_ops == vector_ops, "scheduler kernels diverged op-by-op"
        # Informational: the ratio when every ScheduledOp is materialised inside
        # the timed region (what a breakdowns()-style analysis sees end to end).
        heap_mat, _ = _time_scheduler(engine, batch, "run_batch", repeats=1,
                                      materialise=True)
        vector_mat, _ = _time_scheduler(engine, batch, "run_vector", repeats=1,
                                        materialise=True)
        speedup = heap_s / vector_s if vector_s > 0 else float("inf")
        materialised = heap_mat / vector_mat if vector_mat > 0 else float("inf")
        print(f"{subgroups:>9}  {iterations:>5}  {num_ops:>8}  "
              f"{num_ops / heap_s:>12.0f}  {num_ops / vector_s:>12.0f}  "
              f"{speedup:>7.2f}x  {materialised:>6.2f}x")
        if (subgroups, iterations) == VECTOR_GATE_CASE:
            gate_speedup = speedup
    assert gate_speedup is not None and gate_speedup >= MIN_VECTOR_SPEEDUP, (
        f"expected >= {MIN_VECTOR_SPEEDUP:g}x scheduling speedup at "
        f"{VECTOR_GATE_CASE[0]} subgroups x{VECTOR_GATE_CASE[1]} iterations, "
        f"got {gate_speedup:.2f}x"
    )
    print(f"\nOK: >= {MIN_VECTOR_SPEEDUP:g}x vector-kernel scheduling speedup at "
          f"{VECTOR_GATE_CASE[0]} subgroups ({gate_speedup:.2f}x; mat'd column is "
          f"informational)")


# ----------------------------------------------------------- sweep throughput


def _scenario_projection(result) -> list[dict]:
    """The per-scenario identity a sweep mode must preserve byte-for-byte.

    ``to_dict()`` also carries run provenance (worker ids, wall times, cache
    counters) that legitimately differs between runs; the scenario params, the
    config hash, and the value are the contract.
    """
    return [
        {key: scenario[key] for key in ("params", "config_hash", "value")}
        for scenario in result.to_dict()["scenarios"]
    ]


def bench_sweep_throughput() -> None:
    """Part 4: per-scenario vs shape-batched sweep on a shared-shape grid."""
    import json

    from repro.experiments.base import run_training
    from repro.sweep import SweepRunner, SweepSpec

    spec = SweepSpec.build(
        {"cpu_cores_per_gpu": list(range(2, 2 + SWEEP_SCENARIOS))}, SWEEP_BASE
    )
    warmup = SweepSpec.build({"cpu_cores_per_gpu": [2]}, SWEEP_BASE)

    timings: dict[str, float] = {}
    projections: dict[str, list[dict]] = {}
    for mode in ("scenario", "batch"):
        runner = SweepRunner(run_training, use_cache=False, sweep_mode=mode)
        runner.run(warmup)  # absorb one-time import/preset costs
        best = float("inf")
        for _ in range(SWEEP_REPEATS):
            begin = time.perf_counter()
            result = runner.run(spec)
            best = min(best, time.perf_counter() - begin)
        timings[mode] = best
        projections[mode] = _scenario_projection(result)

    assert projections["batch"] == projections["scenario"], (
        "sweep modes diverged: batch scenarios are not byte-identical to the "
        "per-scenario path"
    )
    speedup = timings["scenario"] / timings["batch"] if timings["batch"] > 0 else float("inf")

    print(f"\n{'mode':>10}  {'scenarios':>9}  {'time':>8}  {'scn/s':>8}")
    for mode in ("scenario", "batch"):
        print(f"{mode:>10}  {SWEEP_SCENARIOS:>9}  {timings[mode]:>7.2f}s  "
              f"{SWEEP_SCENARIOS / timings[mode]:>8.1f}")

    payload = {
        "grid": {**SWEEP_BASE, "scenarios": SWEEP_SCENARIOS,
                 "axis": "cpu_cores_per_gpu"},
        "repeats": SWEEP_REPEATS,
        "seconds": {mode: timings[mode] for mode in timings},
        "scenarios_per_second": {
            mode: SWEEP_SCENARIOS / timings[mode] for mode in timings
        },
        "speedup": speedup,
        "min_speedup_gate": MIN_SWEEP_SPEEDUP,
        "byte_identical": True,
    }
    with open(SWEEP_RESULT_FILE, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert speedup >= MIN_SWEEP_SPEEDUP, (
        f"expected >= {MIN_SWEEP_SPEEDUP:g}x sweep throughput on the "
        f"{SWEEP_SCENARIOS}-scenario shared-shape grid, got {speedup:.2f}x"
    )
    print(f"\nOK: >= {MIN_SWEEP_SPEEDUP:g}x sweep throughput on the shared-shape "
          f"grid ({speedup:.2f}x; values byte-identical; results in "
          f"{SWEEP_RESULT_FILE})")


# -------------------------------------------------------- middleware overhead


def bench_middleware_overhead() -> None:
    """Part 5: an installed no-op chain must not tax the 100k-op vector path."""
    import json

    from repro.middleware import Middleware, MiddlewareChain

    subgroups, iterations = MIDDLEWARE_CASE
    batch = _build_job_batch(subgroups, iterations)
    num_ops = len(batch)

    bare_engine = SimEngine(name="bare")
    standard_resources(bare_engine)
    chained_engine = SimEngine(name="chained")
    standard_resources(chained_engine)
    chained_engine.install_middleware(MiddlewareChain((Middleware(),)))

    # Interleave the two measurements so a mid-run machine hiccup cannot land
    # entirely on one side; best-of-N on each absorbs the rest of the noise.
    bare_s = chained_s = float("inf")
    bare_makespan = chained_makespan = 0.0
    for _ in range(MIDDLEWARE_REPEATS):
        sample, bare_makespan = _time_scheduler(bare_engine, batch, "run_vector",
                                                repeats=1)
        bare_s = min(bare_s, sample)
        sample, chained_makespan = _time_scheduler(chained_engine, batch,
                                                   "run_vector", repeats=1)
        chained_s = min(chained_s, sample)
    assert chained_makespan == bare_makespan, (
        f"no-op chain changed the schedule ({chained_makespan} != {bare_makespan})"
    )
    overhead = chained_s / bare_s - 1.0 if bare_s > 0 else 0.0

    print(f"\n{'path':>8}  {'ops':>8}  {'time':>10}  {'ops/s':>12}")
    for label, seconds in (("bare", bare_s), ("chained", chained_s)):
        print(f"{label:>8}  {num_ops:>8}  {seconds * 1e3:>8.2f}ms  "
              f"{num_ops / seconds:>12.0f}")

    payload = {
        "case": {"subgroups": subgroups, "iterations": iterations, "ops": num_ops},
        "repeats": MIDDLEWARE_REPEATS,
        "seconds": {"bare": bare_s, "chained": chained_s},
        "overhead": overhead,
        "max_overhead_gate": MAX_MIDDLEWARE_OVERHEAD,
        "makespans_identical": True,
    }
    with open(MIDDLEWARE_RESULT_FILE, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert overhead <= MAX_MIDDLEWARE_OVERHEAD, (
        f"expected <= {MAX_MIDDLEWARE_OVERHEAD:.0%} no-op middleware overhead on "
        f"the {num_ops}-op vector path, got {overhead:.2%}"
    )
    print(f"\nOK: no-op middleware chain adds {overhead:+.2%} on the {num_ops}-op "
          f"vector path (gate <= {MAX_MIDDLEWARE_OVERHEAD:.0%}; results in "
          f"{MIDDLEWARE_RESULT_FILE})")


# ------------------------------------------------------ trace-chain overhead


def bench_trace_overhead() -> None:
    """Part 7: an installed ``trace`` chain must stay cheap on the vector path."""
    import json

    from repro.middleware import build_chain
    from repro.obs.trace import reset_tracing, snapshot_spans

    subgroups, iterations = TRACE_CASE
    batch = _build_job_batch(subgroups, iterations)
    num_ops = len(batch)

    bare_engine = SimEngine(name="bare")
    standard_resources(bare_engine)
    traced_engine = SimEngine(name="traced")
    standard_resources(traced_engine)
    traced_engine.install_middleware(build_chain(("trace",)))

    # Interleave the measurements (same rationale as Part 5); drop recorded
    # spans between repeats so the collector never grows past a handful.
    bare_s = traced_s = float("inf")
    bare_makespan = traced_makespan = 0.0
    try:
        for _ in range(TRACE_REPEATS):
            sample, bare_makespan = _time_scheduler(bare_engine, batch,
                                                    "run_vector", repeats=1)
            bare_s = min(bare_s, sample)
            sample, traced_makespan = _time_scheduler(traced_engine, batch,
                                                      "run_vector", repeats=1)
            traced_s = min(traced_s, sample)
            assert any(r["seam"] == "engine" for r in snapshot_spans()), (
                "trace chain recorded no engine span — it never intercepted"
            )
            reset_tracing()
    finally:
        reset_tracing()
    assert traced_makespan == bare_makespan, (
        f"trace chain changed the schedule ({traced_makespan} != {bare_makespan})"
    )
    overhead = traced_s / bare_s - 1.0 if bare_s > 0 else 0.0

    print(f"\n{'path':>8}  {'ops':>8}  {'time':>10}  {'ops/s':>12}")
    for label, seconds in (("bare", bare_s), ("traced", traced_s)):
        print(f"{label:>8}  {num_ops:>8}  {seconds * 1e3:>8.2f}ms  "
              f"{num_ops / seconds:>12.0f}")

    payload = {
        "case": {"subgroups": subgroups, "iterations": iterations, "ops": num_ops},
        "repeats": TRACE_REPEATS,
        "seconds": {"bare": bare_s, "traced": traced_s},
        "overhead": overhead,
        "max_overhead_gate": MAX_TRACE_OVERHEAD,
        "makespans_identical": True,
    }
    with open(TRACE_RESULT_FILE, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert overhead <= MAX_TRACE_OVERHEAD, (
        f"expected <= {MAX_TRACE_OVERHEAD:.0%} trace-chain overhead on the "
        f"{num_ops}-op vector path, got {overhead:.2%}"
    )
    print(f"\nOK: trace chain adds {overhead:+.2%} on the {num_ops}-op vector "
          f"path (gate <= {MAX_TRACE_OVERHEAD:.0%}; results in "
          f"{TRACE_RESULT_FILE})")


# -------------------------------------------------------- pipeline deep DAGs


def bench_pipeline_depth() -> None:
    """Part 6: heap vs vector on a deep pipeline-parallel schedule DAG."""
    import json

    from repro.pipeline import (
        build_schedule,
        lower_schedule,
        pipeline_resources,
        timing_from_presets,
    )

    stages, microbatches = PIPELINE_CASE
    timing = timing_from_presets(stages=stages)
    schedule = build_schedule("zb", stages=stages, microbatches=microbatches,
                              timing=timing)
    lowered = lower_schedule(schedule, timing)
    num_ops = lowered.op_count

    engine = SimEngine(name="pipeline-bench")
    pipeline_resources(engine, stages)

    # Byte-identity asserted in-run, op by op — a pipeline DAG must agree just
    # like the training DAGs of tests/test_engine_equivalence.py do.
    heap_ops = [(i.op.op_id, i.start, i.end)
                for i in engine.run_batch(lowered.batch).ops]
    vector_ops = [(i.op.op_id, i.start, i.end)
                  for i in engine.run_vector(lowered.batch).ops]
    assert heap_ops == vector_ops, "scheduler kernels diverged on the pipeline DAG"

    heap_s = vector_s = float("inf")
    for _ in range(PIPELINE_REPEATS):
        sample, _ = _time_scheduler(engine, lowered.batch, "run_batch", repeats=1)
        heap_s = min(heap_s, sample)
        sample, _ = _time_scheduler(engine, lowered.batch, "run_vector", repeats=1)
        vector_s = min(vector_s, sample)
    speedup = heap_s / vector_s if vector_s > 0 else float("inf")

    print(f"\n{'schedule':>9}  {'stages':>6}  {'microb':>6}  {'ops':>6}  "
          f"{'heap ops/s':>12}  {'vector ops/s':>12}  {'speedup':>8}")
    print(f"{'zb':>9}  {stages:>6}  {microbatches:>6}  {num_ops:>6}  "
          f"{num_ops / heap_s:>12.0f}  {num_ops / vector_s:>12.0f}  "
          f"{speedup:>7.2f}x")

    payload = {
        "case": {"schedule": "zb", "stages": stages,
                 "microbatches": microbatches, "ops": num_ops},
        "repeats": PIPELINE_REPEATS,
        "seconds": {"heap": heap_s, "vector": vector_s},
        "ops_per_second": {"heap": num_ops / heap_s, "vector": num_ops / vector_s},
        "speedup": speedup,
        "min_speedup_gate": MIN_PIPELINE_SPEEDUP,
        "byte_identical": True,
    }
    with open(PIPELINE_RESULT_FILE, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert speedup >= MIN_PIPELINE_SPEEDUP, (
        f"expected >= {MIN_PIPELINE_SPEEDUP:g}x vector-vs-heap ratio on the "
        f"{stages}x{microbatches} pipeline DAG, got {speedup:.2f}x"
    )
    print(f"\nOK: vector kernel holds {speedup:.2f}x on the deep pipeline DAG "
          f"(gate >= {MIN_PIPELINE_SPEEDUP:g}x; byte-identical; results in "
          f"{PIPELINE_RESULT_FILE})")


def main() -> int:
    resources = ("gpu.compute", "pcie.h2d", "pcie.d2h", "cpu", "nvlink")
    print(f"{'subgroups':>9}  {'ops':>6}  {'seed ops/s':>12}  {'heap ops/s':>12}  {'speedup':>8}")
    worst_at_scale = None
    for subgroups in SUBGROUP_COUNTS:
        ops = build_update_phase_ops(subgroups)
        num_ops = len(ops)
        seed_s, seed_sum = _time_seed(ops, resources)
        heap_s, heap_sum = _time_heap(ops)
        assert abs(seed_sum - heap_sum) < 1e-6, "seed and heap schedules diverged"
        speedup = seed_s / heap_s if heap_s > 0 else float("inf")
        print(f"{subgroups:>9}  {num_ops:>6}  {num_ops / seed_s:>12.0f}  "
              f"{num_ops / heap_s:>12.0f}  {speedup:>7.1f}x")
        if num_ops >= 1000:
            worst_at_scale = speedup if worst_at_scale is None else min(worst_at_scale, speedup)
    assert worst_at_scale is not None and worst_at_scale >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP:g}x pipeline speedup at 1000+ ops, "
        f"got {worst_at_scale:.1f}x"
    )
    print(f"\nOK: >= {MIN_SPEEDUP:g}x speedup sustained at 1000+ ops "
          f"(worst {worst_at_scale:.1f}x)")
    bench_simulate_job_backends()
    bench_scheduler_kernels()
    bench_sweep_throughput()
    bench_middleware_overhead()
    bench_pipeline_depth()
    bench_trace_overhead()
    return 0


if __name__ == "__main__":
    sys.exit(main())
