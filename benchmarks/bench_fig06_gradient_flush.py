"""Benchmark: Figure 6 — gradient-flush paths during the backward pass."""

from repro.experiments.fig06_gradient_flush import run


def test_fig06_gradient_flush(run_once):
    result = run_once(run)
    print()
    print(result.format())
    baseline, dos = result.rows
    assert baseline["per_subgroup_ms"] / dos["per_subgroup_ms"] > 5
    assert baseline["backward_phase_s"] > dos["backward_phase_s"]
