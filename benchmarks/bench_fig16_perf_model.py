"""Benchmark: Figure 16 — update throughput vs fraction of GPU-scheduled updates."""

from repro.experiments.fig16_perf_model_validation import run


def test_fig16_perf_model_validation(run_once):
    result = run_once(run)
    print()
    print(result.format())
    for row in result.rows:
        assert row["best_fraction"] == "50%"
        assert row["dos_50%_bpps"] >= row["dos_33%_bpps"] >= row["dos_25%_bpps"]
        assert row["dos_25%_bpps"] > row["zero3_bpps"]
