"""Benchmark: Figure 4 — PCIe link utilisation across training phases."""

from repro.experiments.fig04_pcie_utilization import run


def test_fig04_pcie_utilization(run_once):
    result = run_once(run)
    print()
    print(result.format())
    for row in result.rows:
        assert row["h2d_fraction_of_peak"] < 0.5
        assert row["d2h_fraction_of_peak"] < 0.5
