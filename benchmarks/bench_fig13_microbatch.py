"""Benchmark: Figure 13 — microbatch-size scaling for the 20B model."""

from repro.experiments.fig13_microbatch import run


def test_fig13_microbatch(run_once):
    result = run_once(run)
    print()
    print(result.format())
    by_mb = {row["microbatch"]: row for row in result.rows}
    assert by_mb[16]["zero3_iteration_s"] == "OOM"
    assert by_mb[8]["zero3_iteration_s"] != "OOM"
    valid = [row for row in result.rows if row["speedup"] is not None]
    assert all(1.5 <= row["speedup"] <= 2.6 for row in valid)
    # Achieved TFLOPs increase with the microbatch size for both strategies.
    tflops = [row["dos_tflops"] for row in valid]
    assert tflops == sorted(tflops)
