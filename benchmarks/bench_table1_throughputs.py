"""Benchmark: reproduce Table 1 (transfer and conversion throughputs)."""

from repro.experiments.table1_throughputs import run


def test_table1_throughputs(run_once):
    result = run_once(run)
    print()
    print(result.format())
    by_kind = {row["transfer"]: row for row in result.rows}
    assert by_kind["G32<->G16"]["measured_gbps"] > 100 * by_kind["G16->H32"]["measured_gbps"] / 10
    for row in result.rows:
        assert 0.5 <= row["ratio_vs_paper"] <= 1.5
