"""Benchmark: Figure 11 — iteration breakdown vs static GPU-resident fraction (20B model)."""

from repro.experiments.fig11_twinflow_iteration import run


def test_fig11_twinflow_ratio_iteration(run_once):
    result = run_once(run)
    print()
    print(result.format())
    assert all(row["speedup"] >= 1.5 for row in result.rows)
    # The paper's headline memory claim: DOS at 0% GPU residency beats TwinFlow at 50%.
    dos_at_zero = result.rows[0]["dos_iteration_s"]
    twinflow_at_half = result.rows[-1]["twinflow_iteration_s"]
    assert dos_at_zero < twinflow_at_half
