"""Benchmark: Figure 17 — weak scaling of the data-parallel degree."""

from repro.experiments.fig17_weak_scaling import run


def test_fig17_weak_scaling(run_once):
    result = run_once(run)
    print()
    print(result.format())
    for row in result.rows:
        # The speedup is largest at DP=1 and decreases with the data-parallel degree,
        # staying in the 2-2.5x band at DP=4 (Figure 17).
        assert row["speedup_dp1"] > row["speedup_dp2"] > row["speedup_dp4"]
        assert row["speedup_dp1"] >= 3.0
        assert 1.8 <= row["speedup_dp4"] <= 2.8
