"""Benchmark: Figure 2 — iteration time vs ZeRO-3 subgroup size."""

from repro.experiments.fig02_subgroup_sizes import run


def test_fig02_subgroup_sizes(run_once):
    result = run_once(run)
    print()
    print(result.format())
    for row in result.rows:
        assert row["max_relative_spread"] < 0.05
