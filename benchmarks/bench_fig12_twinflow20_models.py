"""Benchmark: Figure 12 — TwinFlow ratio 20% across model sizes."""

from repro.experiments.fig12_twinflow20_models import run


def test_fig12_twinflow20_models(run_once):
    result = run_once(run)
    print()
    print(result.format())
    for row in result.rows:
        assert 1.4 <= row["speedup"] <= 2.6
