"""Benchmark: Figure 8 — optimizer update throughput per model."""

from repro.experiments.fig08_update_throughput import run


def test_fig08_update_throughput(run_once):
    result = run_once(run)
    print()
    print(result.format())
    for row in result.rows:
        assert row["dos_bpps"] > row["zero3_bpps"]
        assert 1.3 <= row["improvement"] <= 2.6
