"""Benchmark: Figure 15 — GPU/CPU/PCIe utilisation during the update phase."""

from repro.experiments.fig15_resource_utilization import run


def test_fig15_resource_utilization(run_once):
    result = run_once(run)
    print()
    print(result.format())
    rows = {row["gpu_update_fraction"]: row for row in result.rows}
    assert rows["50%"]["gpu_utilization"] > rows["0%"]["gpu_utilization"]
    assert rows["50%"]["pcie_h2d_gbps"] > rows["33%"]["pcie_h2d_gbps"] > rows["0%"]["pcie_h2d_gbps"]
    assert rows["50%"]["tflops"] > rows["33%"]["tflops"] > rows["25%"]["tflops"] > rows["0%"]["tflops"]
