"""Benchmark: Equation 1 stride selection on both testbeds (Section 4.2 / 5.4)."""

from repro.experiments.eq1_performance_model import run


def test_eq1_performance_model(run_once):
    result = run_once(run)
    print()
    print(result.format())
    assert all(row["selected_stride"] == 2 for row in result.rows)
    h100 = {row["candidate_stride"]: row["update_throughput_bpps"] for row in result.rows
            if row["machine"] == "jlse-4xh100"}
    assert h100[2] > h100[3] > h100[4] > h100[5]
