"""Benchmark: Figure 7 — per-iteration breakdown, ZeRO-3 vs Deep Optimizer States."""

from repro.experiments.fig07_iteration_breakdown import run


def test_fig07_iteration_breakdown(run_once):
    result = run_once(run)
    print()
    print(result.format())
    for row in result.rows:
        assert 1.7 <= row["speedup"] <= 3.0
        assert row["dos_iteration_s"] < row["zero3_iteration_s"]
    # Iteration time grows with the model size for both strategies.
    zero3_times = [row["zero3_iteration_s"] for row in result.rows]
    assert zero3_times[0] < zero3_times[-1]
