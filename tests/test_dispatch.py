"""Dispatch subsystem unit tests: protocol, framing, backend selection, runner wiring.

The cluster backend's process-level behaviour (real daemons, kills, lease
expiry) lives in ``tests/test_dispatch_cluster.py``; this module covers
everything that runs in one process:

* framing round-trips and bounds;
* worker-spec referencing (``module:qualname``) both ways;
* ``select_backend`` policy mapping and ``create_executor`` validation;
* serial/pool executors through ``SweepRunner``: value-identical results,
  provenance (worker ids), progress events from every path including cache
  hits;
* the **cache-key regression**: no execution-policy field may ever reach the
  cache key — a cluster-run sweep and a serial re-run must alias the same
  entries.
"""

import pickle
import socket

import pytest

import dispatch_workers
from repro.common.errors import ConfigurationError
from repro.dispatch import (
    AUTO_EXECUTOR,
    EXECUTOR_BACKENDS,
    EXECUTOR_CHOICES,
    ClusterExecutor,
    PoolExecutor,
    SerialExecutor,
    Task,
    WorkerClient,
    create_executor,
    resolve_worker_spec,
    select_backend,
    worker_spec,
)
from repro.dispatch import framing
from repro.runtime import ExecutionPolicy, POLICY_FIELDS
from repro.sweep import SweepRunner, SweepSpec
from repro.sweep.cache import load_manifest

# ------------------------------------------------------------------- framing


def test_frame_round_trips_json_and_pickle():
    for codec, message in [
        (framing.CODEC_JSON, {"type": "hello", "worker_id": "w1", "n": 3}),
        (framing.CODEC_PICKLE, {"type": "task", "policy": ExecutionPolicy(),
                                "params": {"x": 1.5}}),
    ]:
        frame = framing.encode_frame(message, codec)
        length_codec, payload = frame[:5], frame[5:]
        assert len(payload) == int.from_bytes(length_codec[:4], "big")
        assert framing.decode_payload(length_codec[4], payload) == message


def test_frame_round_trips_over_a_real_socket_pair():
    left, right = socket.socketpair()
    try:
        framing.send_message(left, {"type": "heartbeat", "task_id": 7})
        framing.send_message(left, {"value": [1, 2, 3]}, framing.CODEC_PICKLE)
        assert framing.recv_message(right) == {"type": "heartbeat", "task_id": 7}
        assert framing.recv_message(right) == {"value": [1, 2, 3]}
        left.close()
        with pytest.raises(framing.ConnectionClosed):
            framing.recv_message(right)
    finally:
        right.close()


def test_frame_rejects_unknown_codec_and_oversize():
    with pytest.raises(framing.FramingError):
        framing.encode_frame({}, codec=9)
    with pytest.raises(framing.FramingError):
        framing.decode_payload(9, b"")
    oversize = (framing.MAX_FRAME_BYTES + 1).to_bytes(4, "big") + bytes([framing.CODEC_JSON])
    left, right = socket.socketpair()
    try:
        left.sendall(oversize)
        with pytest.raises(framing.FramingError, match="exceeds"):
            framing.recv_message(right)
    finally:
        left.close()
        right.close()


def test_undecodable_payloads_raise_framing_errors():
    with pytest.raises(framing.FramingError, match="JSON"):
        framing.decode_payload(framing.CODEC_JSON, b"\xff\xfe")
    with pytest.raises(framing.FramingError, match="pickle"):
        framing.decode_payload(framing.CODEC_PICKLE, b"not a pickle")


# --------------------------------------------------------------- worker specs


def test_worker_spec_round_trips_module_level_callables():
    spec = worker_spec(dispatch_workers.echo_params)
    assert spec == "dispatch_workers:echo_params"
    assert resolve_worker_spec(spec) is dispatch_workers.echo_params


def test_worker_spec_rejects_locals_and_uncallables():
    def local_worker(**params):
        return params

    with pytest.raises(ConfigurationError, match="module-level"):
        worker_spec(local_worker)
    with pytest.raises(ConfigurationError, match="malformed"):
        resolve_worker_spec("no-colon")
    with pytest.raises(ConfigurationError, match="cannot import"):
        resolve_worker_spec("no.such.module:fn")
    with pytest.raises(ConfigurationError, match="does not resolve"):
        resolve_worker_spec("dispatch_workers:missing_fn")
    with pytest.raises(ConfigurationError, match="non-callable"):
        resolve_worker_spec("dispatch_workers:__doc__")


# --------------------------------------------------------- backend resolution


def test_executor_choices_are_registered_in_the_policy_layer():
    assert EXECUTOR_CHOICES == (AUTO_EXECUTOR,) + EXECUTOR_BACKENDS
    assert "executor" in POLICY_FIELDS and "workers" in POLICY_FIELDS
    assert POLICY_FIELDS["executor"].env_var == "REPRO_EXECUTOR"
    assert POLICY_FIELDS["workers"].env_var == "REPRO_WORKERS"


def test_select_backend_auto_follows_jobs():
    assert select_backend(ExecutionPolicy()) == "serial"
    assert select_backend(ExecutionPolicy(jobs=2)) == "pool"
    assert select_backend(ExecutionPolicy(executor="cluster")) == "cluster"
    assert select_backend(ExecutionPolicy(executor="serial", jobs=8)) == "serial"


def test_create_executor_instantiates_and_validates():
    policy = ExecutionPolicy()
    assert isinstance(create_executor("serial", dispatch_workers.echo_params, policy),
                      SerialExecutor)
    assert isinstance(create_executor("pool", dispatch_workers.echo_params, policy),
                      PoolExecutor)
    assert isinstance(create_executor("cluster", dispatch_workers.echo_params, policy),
                      ClusterExecutor)
    with pytest.raises(ConfigurationError, match="warp"):
        create_executor("warp", dispatch_workers.echo_params, policy)
    with pytest.raises(ConfigurationError, match="auto"):
        # "auto" is a policy value, not a backend: it must be resolved through
        # select_backend before instantiation.
        create_executor("auto", dispatch_workers.echo_params, policy)


def test_policy_validates_executor_and_workers_fields():
    with pytest.raises(ConfigurationError, match="warp"):
        ExecutionPolicy(executor="warp")
    with pytest.raises(ConfigurationError, match="workers"):
        ExecutionPolicy(workers=0)
    with pytest.raises(ConfigurationError, match="workers"):
        ExecutionPolicy(workers="two")


def test_capabilities_describe_the_backends():
    policy = ExecutionPolicy(jobs=3)
    serial = SerialExecutor(dispatch_workers.echo_params, policy).capabilities()
    pool = PoolExecutor(dispatch_workers.echo_params, policy).capabilities()
    cluster = ClusterExecutor(dispatch_workers.echo_params, policy).capabilities()
    assert (serial.distributed, serial.fault_tolerant, serial.max_parallelism) == \
        (False, False, 1)
    assert (pool.distributed, pool.max_parallelism) == (False, 3)
    assert (cluster.distributed, cluster.fault_tolerant, cluster.max_parallelism) == \
        (True, True, None)


def test_cluster_executor_validates_options():
    policy = ExecutionPolicy()
    with pytest.raises(ConfigurationError, match="HOST:PORT"):
        ClusterExecutor(dispatch_workers.echo_params, policy, bind="7931")
    with pytest.raises(ConfigurationError, match="lease_timeout"):
        ClusterExecutor(dispatch_workers.echo_params, policy, lease_timeout=0)
    with pytest.raises(ConfigurationError, match="min_workers"):
        ClusterExecutor(dispatch_workers.echo_params, policy, min_workers=0)
    with pytest.raises(ConfigurationError, match="module-level"):
        ClusterExecutor(lambda **kw: kw, policy)


def test_parse_bind_handles_ipv4_hostnames_and_bracketed_ipv6():
    from repro.dispatch.cluster import parse_bind

    assert parse_bind("127.0.0.1:7931") == ("127.0.0.1", 7931)
    assert parse_bind("localhost:0") == ("localhost", 0)
    # RFC 3986 bracket form; brackets are stripped for the socket layer,
    # zone identifiers survive.
    assert parse_bind("[::1]:8000") == ("::1", 8000)
    assert parse_bind("[fe80::1%eth0]:7931") == ("fe80::1%eth0", 7931)


def test_parse_bind_rejects_malformed_and_ambiguous_addresses():
    """Regression: ``::1:8000`` used to parse as host ``::1`` — silently wrong
    for any other bare IPv6 address (``fe80::1:7931`` would split at the last
    colon and mangle both halves), so the ambiguous form is an error now."""
    from repro.dispatch.cluster import parse_bind

    for bad, match in [
        ("::1:8000", "ambiguous"),
        ("fe80::1:7931", "ambiguous"),
        ("[::1]", "IPV6-HOST"),
        ("[::1]8000", "IPV6-HOST"),
        ("[]:8000", "IPV6-HOST"),
        ("7931", "HOST:PORT"),
        (":7931", "HOST:PORT"),
        ("host:", "invalid port"),
        ("host:http", "invalid port"),
        ("host:70000", "out of range"),
        ("host:-1", "out of range"),
    ]:
        with pytest.raises(ConfigurationError, match=match):
            parse_bind(bad)


def test_worker_client_validates_arguments():
    with pytest.raises(ConfigurationError, match="HOST:PORT"):
        WorkerClient("nocolon")
    with pytest.raises(ConfigurationError, match="port"):
        WorkerClient("localhost:0")
    with pytest.raises(ConfigurationError, match="heartbeat"):
        WorkerClient("localhost:1234", heartbeat=-1)


# ------------------------------------------------- runner × executor parity


SPEC = SweepSpec.build({"x": (1, 2, 3), "y": (10, 20)})


def _serial_reference(spec=SPEC):
    return [record.value for record in
            SweepRunner(dispatch_workers.echo_params, executor="serial").run(spec).records]


@pytest.mark.parametrize("kwargs", [
    {"executor": "serial"},
    {"executor": "pool", "jobs": 2},
    {"jobs": 2},            # auto -> pool
    {"jobs": 1},            # auto -> serial
    {"executor": "pool"},   # pool with jobs=1 downgrades to serial internally
])
def test_runner_values_identical_across_local_backends(kwargs):
    runner = SweepRunner(dispatch_workers.echo_params, **kwargs)
    values = [record.value for record in runner.run(SPEC).records]
    assert values == _serial_reference()


def test_runner_progress_events_cover_misses_and_hits(tmp_path):
    events = []
    runner = SweepRunner(dispatch_workers.echo_params, use_cache=True,
                         cache_dir=tmp_path, progress=events.append)
    runner.run(SPEC)
    assert len(events) == len(list(SPEC.scenarios()))
    assert all(not event["cached"] and event["worker"] == "local" for event in events)
    assert [event["completed"] for event in events] == list(range(1, len(events) + 1))

    events.clear()
    SweepRunner(dispatch_workers.echo_params, use_cache=True,
                cache_dir=tmp_path, progress=events.append).run(SPEC)
    assert all(event["cached"] and event["worker"] == "cache" for event in events)
    assert all(event["total"] == len(events) for event in events)
    assert all(isinstance(event["label"], str) and "x=" in event["label"]
               for event in events)


def test_runner_pool_progress_reports_pool_workers(tmp_path):
    events = []
    runner = SweepRunner(dispatch_workers.echo_params, jobs=2, use_cache=False,
                         cache_dir=tmp_path, progress=events.append)
    runner.run(SPEC)
    assert len(events) == SPEC.num_scenarios
    assert all(event["worker"].startswith("pool-") for event in events)


def test_runner_streams_cache_pickles_per_outcome(tmp_path):
    """Entry pickles are durable per completion; the manifest catches up by run end.

    The pickle is what a resumed sweep loads (cache probes never consult the
    manifest), so it must stream; manifest records may batch (quadratic to
    rewrite per scenario) but the run must leave none behind.
    """
    seen_pickle_counts = []

    def spy(event):
        seen_pickle_counts.append(len(list(tmp_path.glob("*.pkl"))))

    SweepRunner(dispatch_workers.echo_params, use_cache=True, cache_dir=tmp_path,
                progress=spy).run(SPEC)
    # By the time the progress hook for scenario k fires, k pickles are durable.
    assert seen_pickle_counts == list(range(1, SPEC.num_scenarios + 1))
    assert len(load_manifest(tmp_path)["entries"]) == SPEC.num_scenarios


def test_runner_rejects_policy_plus_executor_kwargs():
    with pytest.raises(ConfigurationError, match="not both"):
        SweepRunner(dispatch_workers.echo_params, policy=ExecutionPolicy(),
                    executor="pool")
    with pytest.raises(ConfigurationError, match="not both"):
        SweepRunner(dispatch_workers.echo_params, policy=ExecutionPolicy(), workers=2)


def test_runner_rejects_local_worker_for_distributed_backends():
    def local_worker(**params):
        return params

    with pytest.raises(ConfigurationError, match="module-level"):
        SweepRunner(local_worker, executor="cluster")
    # Serial is fine with locals, as before.
    runner = SweepRunner(local_worker, executor="serial")
    assert runner.run(SweepSpec.build({"x": (1,)})).values() == [{"x": 1}]


# ------------------------------------------------------ cache-key regression


def test_cache_key_composition_is_pinned(tmp_path):
    """The cache filename is worker id + cache version + salt + scenario hash.

    Pinned so a future field cannot sneak into the key unnoticed: the exact
    byte layout below is what keeps serial and cluster runs aliasing the same
    entries.
    """
    from repro.sweep.cache import CACHE_VERSION

    runner = SweepRunner(dispatch_workers.echo_params, use_cache=True,
                         cache_dir=tmp_path)
    scenario = next(iter(SweepSpec.build({"x": (1,)}).scenarios()))
    path = runner._cache_path(scenario)
    assert path.parent == tmp_path
    assert path.name == (
        f"dispatch_workers.echo_params-v{CACHE_VERSION}-"
        f"{runner._worker_salt}-{scenario.config_hash()}.pkl"
    )


def test_no_execution_policy_field_reaches_the_cache_key(tmp_path):
    """Same worker + scenario => same cache entry under *any* policy.

    A grid computed on a cluster must be a cache hit for a serial re-run (and
    vice versa), so jobs/executor/workers/scheduler/op_backend/threshold must
    all stay out of the key.
    """
    scenario = next(iter(SweepSpec.build({"x": (1,)}).scenarios()))
    policies = [
        ExecutionPolicy(use_cache=True, cache_dir=tmp_path),
        ExecutionPolicy(use_cache=True, cache_dir=tmp_path, jobs=8),
        ExecutionPolicy(use_cache=True, cache_dir=tmp_path, executor="cluster",
                        workers=4),
        ExecutionPolicy(use_cache=True, cache_dir=tmp_path, executor="pool",
                        jobs=2, scheduler="vector"),
        ExecutionPolicy(use_cache=True, cache_dir=tmp_path, op_backend="objects",
                        scheduler="heap", auto_vector_threshold=1),
    ]
    paths = {
        SweepRunner(dispatch_workers.echo_params, policy=policy)._cache_path(scenario)
        for policy in policies
    }
    assert len(paths) == 1


def test_cluster_computed_entries_hit_for_serial_reruns(tmp_path):
    """End-to-end aliasing: populate with one backend, hit with another."""
    spec = SweepSpec.build({"x": (1, 2, 3, 4)})
    first = SweepRunner(dispatch_workers.echo_params, jobs=2, use_cache=True,
                        cache_dir=tmp_path).run(spec)
    assert (first.cache_hits, first.cache_misses) == (0, 4)
    second = SweepRunner(dispatch_workers.echo_params, executor="serial",
                         use_cache=True, cache_dir=tmp_path).run(spec)
    assert (second.cache_hits, second.cache_misses) == (4, 0)
    assert second.values() == first.values()
