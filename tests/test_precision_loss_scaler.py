"""Tests for static and dynamic loss scaling."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.precision.loss_scaler import DynamicLossScaler, StaticLossScaler


def test_static_scaler_scales_loss_and_unscales_gradients():
    scaler = StaticLossScaler(scale=1024.0)
    assert scaler.scale_loss(2.0) == 2048.0
    grads = np.array([1024.0, -2048.0], dtype=np.float32)
    np.testing.assert_allclose(scaler.unscale_gradients(grads), [1.0, -2.0])


def test_static_scaler_rejects_non_positive_scale():
    with pytest.raises(ConfigurationError):
        StaticLossScaler(scale=0.0)


def test_overflow_detection():
    assert StaticLossScaler.has_overflow(np.array([1.0, np.inf], dtype=np.float16))
    assert StaticLossScaler.has_overflow(np.array([np.nan], dtype=np.float32))
    assert not StaticLossScaler.has_overflow(np.array([1.0, -2.0], dtype=np.float16))


def test_static_update_only_skips_on_overflow():
    scaler = StaticLossScaler()
    assert scaler.update(found_overflow=False)
    assert not scaler.update(found_overflow=True)
    assert scaler.scale == StaticLossScaler().scale


def test_dynamic_scaler_backs_off_on_overflow():
    scaler = DynamicLossScaler(scale=2.0**16, backoff_factor=0.5, growth_interval=4)
    assert not scaler.update(found_overflow=True)
    assert scaler.scale == 2.0**15


def test_dynamic_scaler_grows_after_interval():
    scaler = DynamicLossScaler(scale=1024.0, growth_factor=2.0, growth_interval=3)
    for _ in range(3):
        assert scaler.update(found_overflow=False)
    assert scaler.scale == 2048.0


def test_dynamic_scaler_respects_bounds():
    scaler = DynamicLossScaler(scale=2.0, min_scale=1.0, growth_interval=1, max_scale=4.0)
    scaler.update(found_overflow=True)
    scaler.update(found_overflow=True)
    assert scaler.scale >= scaler.min_scale
    for _ in range(5):
        scaler.update(found_overflow=False)
    assert scaler.scale <= scaler.max_scale


def test_dynamic_scaler_validates_configuration():
    with pytest.raises(ConfigurationError):
        DynamicLossScaler(backoff_factor=1.5)
    with pytest.raises(ConfigurationError):
        DynamicLossScaler(growth_factor=0.5)
    with pytest.raises(ConfigurationError):
        DynamicLossScaler(growth_interval=0)
