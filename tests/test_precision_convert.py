"""Tests for precision conversion, including the properties Deep Optimizer States relies on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.common.errors import ConfigurationError
from repro.precision.convert import (
    chunked_convert,
    conversion_bytes,
    downscale_fp32_to_fp16,
    iter_chunks,
    upscale_fp16_to_fp32,
)

finite_fp16_arrays = hnp.arrays(
    dtype=np.float16,
    shape=st.integers(1, 300),
    elements=st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False, width=16),
)


@settings(max_examples=50, deadline=None)
@given(finite_fp16_arrays)
def test_fp16_to_fp32_upscale_is_exact(values):
    upscaled = upscale_fp16_to_fp32(values)
    assert upscaled.dtype == np.float32
    np.testing.assert_array_equal(upscaled.astype(np.float16), values)


@settings(max_examples=50, deadline=None)
@given(finite_fp16_arrays)
def test_downscale_after_upscale_roundtrips(values):
    """FP16 -> FP32 -> FP16 must be the identity (both steps are needed in training)."""
    roundtrip = downscale_fp32_to_fp16(upscale_fp16_to_fp32(values))
    np.testing.assert_array_equal(roundtrip, values)


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float32,
        shape=st.integers(1, 500),
        elements=st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False, width=32),
    ),
    st.integers(1, 64),
)
def test_chunked_conversion_matches_whole_array(values, chunk):
    """Chunk-wise conversion (the paper's on-GPU path) is bit-identical to a single cast."""
    chunked = chunked_convert(values, np.float16, chunk)
    np.testing.assert_array_equal(chunked, values.astype(np.float16))


def test_upscale_into_preallocated_output():
    source = np.array([1.5, -2.25, 0.0], dtype=np.float16)
    out = np.empty(3, dtype=np.float32)
    result = upscale_fp16_to_fp32(source, out=out)
    assert result is out
    np.testing.assert_array_equal(out, source.astype(np.float32))


def test_downscale_into_preallocated_output():
    source = np.array([1.0, 2.0, 3.0], dtype=np.float32)
    out = np.empty(3, dtype=np.float16)
    downscale_fp32_to_fp16(source, out=out)
    np.testing.assert_array_equal(out, source.astype(np.float16))


def test_output_shape_mismatch_raises():
    with pytest.raises(ConfigurationError):
        upscale_fp16_to_fp32(np.zeros(3, dtype=np.float16), out=np.zeros(4, dtype=np.float32))
    with pytest.raises(ConfigurationError):
        downscale_fp32_to_fp16(np.zeros(3, dtype=np.float32), out=np.zeros(2, dtype=np.float16))


def test_downscale_uses_round_to_nearest_even():
    # 2049 is not representable in fp16; nearest even rounding gives 2048.
    assert float(downscale_fp32_to_fp16(np.array([2049.0], dtype=np.float32))[0]) == 2048.0


def test_iter_chunks_covers_range_without_overlap():
    chunks = list(iter_chunks(10, 3))
    assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]


def test_iter_chunks_rejects_non_positive_chunk():
    with pytest.raises(ConfigurationError):
        list(iter_chunks(10, 0))


def test_conversion_bytes_counts_read_and_write():
    assert conversion_bytes(100, 2, 4) == 600
    with pytest.raises(ConfigurationError):
        conversion_bytes(-1, 2, 4)
