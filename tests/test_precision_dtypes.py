"""Tests for dtype descriptors and the per-parameter byte accounting."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.precision.dtypes import (
    DType,
    OPTIMIZER_STATE_BYTES_PER_PARAM,
    OPTIMIZER_STATE_WITH_GRADS_BYTES_PER_PARAM,
    dtype_size,
    parse_dtype,
    to_numpy_dtype,
)


def test_itemsizes_match_ieee_formats():
    assert DType.FP16.itemsize == 2
    assert DType.BF16.itemsize == 2
    assert DType.FP32.itemsize == 4
    assert DType.FP64.itemsize == 8


def test_low_precision_flag():
    assert DType.FP16.is_low_precision
    assert DType.BF16.is_low_precision
    assert not DType.FP32.is_low_precision


def test_numpy_dtype_mapping():
    assert to_numpy_dtype(DType.FP16) == np.float16
    assert to_numpy_dtype(DType.FP32) == np.float32
    assert to_numpy_dtype(DType.FP64) == np.float64


def test_dtype_size_helper_matches_itemsize():
    for dtype in DType:
        assert dtype_size(dtype) == dtype.itemsize


def test_parse_dtype_accepts_names_and_instances():
    assert parse_dtype("fp16") == DType.FP16
    assert parse_dtype("FP32") == DType.FP32
    assert parse_dtype(DType.BF16) == DType.BF16


def test_parse_dtype_rejects_unknown():
    with pytest.raises(ConfigurationError):
        parse_dtype("int8")


def test_optimizer_state_bytes_per_param_match_zero_infinity_accounting():
    # FP32 parameters + momentum + variance = 12 bytes; +4 for the FP32 gradient buffer.
    assert OPTIMIZER_STATE_BYTES_PER_PARAM == 12
    assert OPTIMIZER_STATE_WITH_GRADS_BYTES_PER_PARAM == 16
