"""Tests for the iteration-level simulation."""

import pytest

from repro.training.config import TrainingJobConfig
from repro.training.simulation import simulate_job
from repro.common.errors import ConfigurationError


def resolve(model="7B", strategy="zero3-offload", **kwargs):
    return TrainingJobConfig(model=model, strategy=strategy, iterations=3, warmup_iterations=1, **kwargs).resolve()


@pytest.fixture(scope="module")
def zero3_result():
    return simulate_job(resolve(strategy="zero3-offload"), iterations=2)


@pytest.fixture(scope="module")
def dos_result():
    return simulate_job(resolve(strategy="deep-optimizer-states"), iterations=2)


def test_simulation_produces_valid_schedule(zero3_result):
    zero3_result.schedule.validate()
    assert zero3_result.schedule.makespan > 0
    assert len(zero3_result.iterations) == 2


def test_phase_boundaries_are_ordered(zero3_result):
    for index in range(2):
        start = zero3_result.iteration_start(index)
        forward_end = zero3_result.forward_end(index)
        backward_end = zero3_result.backward_end(index)
        ready = zero3_result.params_ready_time(index)
        assert start <= forward_end <= backward_end <= ready


def test_second_iteration_starts_after_first_params_ready(zero3_result):
    assert zero3_result.iteration_start(1) >= zero3_result.params_ready_time(0) - 1e-9


def test_breakdowns_are_positive_and_sum_to_iteration(zero3_result):
    breakdown = zero3_result.breakdown(1)
    assert breakdown.forward_seconds > 0
    assert breakdown.backward_seconds > 0
    assert breakdown.update_seconds > 0
    span = zero3_result.params_ready_time(1) - zero3_result.iteration_start(1)
    assert breakdown.total_seconds == pytest.approx(span, rel=1e-6)


def test_dos_iteration_faster_than_zero3(zero3_result, dos_result):
    zero3 = zero3_result.breakdown(1)
    dos = dos_result.breakdown(1)
    assert dos.total_seconds < zero3.total_seconds
    assert dos.backward_seconds < zero3.backward_seconds
    assert dos.update_seconds < zero3.update_seconds
    # Forward compute is identical between strategies.
    assert dos.forward_seconds == pytest.approx(zero3.forward_seconds, rel=0.05)


def test_memory_timeline_peaks_during_forward(zero3_result):
    timeline = zero3_result.memory_timeline()
    assert timeline.peak_bytes > zero3_result.initial_gpu_bytes
    job = zero3_result.job
    # Never exceeds the GPU capacity for a configuration that passed the OOM check.
    assert timeline.peak_bytes < job.machine.gpu.memory_bytes


def test_update_window_contains_update_ops(dos_result):
    start, end = dos_result.update_window(0)
    assert start < end
    assert end <= dos_result.schedule.makespan + 1e-9


def test_pcie_timelines_nonzero_for_offloaded_training(zero3_result):
    h2d = zero3_result.pcie_timeline("h2d", resolution=0.2)
    d2h = zero3_result.pcie_timeline("d2h", resolution=0.2)
    assert h2d.total_bytes() > 0
    assert d2h.total_bytes() > 0


def test_dos_moves_more_h2d_bytes_due_to_staging(zero3_result, dos_result):
    zero3_h2d = zero3_result.iterations[1].update.h2d_bytes
    dos_h2d = dos_result.iterations[1].update.h2d_bytes
    assert dos_h2d > zero3_h2d


def test_simulate_job_rejects_non_positive_iterations():
    with pytest.raises(ConfigurationError):
        simulate_job(resolve(), iterations=0)
