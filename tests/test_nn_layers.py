"""Gradient-checking tests for the transformer building blocks."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.model.nn.layers import (
    CausalSelfAttention,
    Embedding,
    LayerNorm,
    Linear,
    MLP,
    TransformerBlock,
)


def check_parameter_gradients(layer, forward, atol=2e-2):
    """Finite-difference check of every parameter gradient of ``layer``."""
    layer.zero_grad()
    out = forward()
    loss = float((out**2).sum())
    layer_backward = getattr(layer, "backward")
    layer_backward(2 * out)
    params = layer.named_parameters()
    grads = layer.named_gradients()
    eps = 1e-3
    rng = np.random.default_rng(0)
    for name, value in params.items():
        flat = value.reshape(-1)
        picks = rng.choice(flat.size, size=min(5, flat.size), replace=False)
        for index in picks:
            original = flat[index]
            flat[index] = original + eps
            plus = float((forward() ** 2).sum())
            flat[index] = original - eps
            minus = float((forward() ** 2).sum())
            flat[index] = original
            numeric = (plus - minus) / (2 * eps)
            analytic = grads[name].reshape(-1)[index]
            assert analytic == pytest.approx(numeric, abs=atol), f"{name}[{index}]"
    return loss


def test_linear_forward_shape_and_gradients():
    rng = make_rng(0)
    layer = Linear(6, 4, rng)
    x = rng.normal(size=(2, 3, 6)).astype(np.float32)
    out = layer.forward(x)
    assert out.shape == (2, 3, 4)
    check_parameter_gradients(layer, lambda: layer.forward(x))


def test_linear_input_gradient():
    rng = make_rng(1)
    layer = Linear(5, 5, rng)
    x = rng.normal(size=(2, 5)).astype(np.float64)
    out = layer.forward(x.astype(np.float32))
    dx = layer.backward(2 * out)
    eps = 1e-4
    for index in range(5):
        perturbed = x.copy()
        perturbed[0, index] += eps
        plus = float((layer.forward(perturbed.astype(np.float32)) ** 2).sum())
        perturbed[0, index] -= 2 * eps
        minus = float((layer.forward(perturbed.astype(np.float32)) ** 2).sum())
        numeric = (plus - minus) / (2 * eps)
        assert dx[0, index] == pytest.approx(numeric, abs=1e-2)


def test_backward_before_forward_raises():
    rng = make_rng(2)
    layer = Linear(3, 3, rng)
    with pytest.raises(ConfigurationError):
        layer.backward(np.zeros((1, 3), dtype=np.float32))


def test_embedding_forward_and_scatter_add_gradient():
    rng = make_rng(3)
    layer = Embedding(10, 4, rng)
    indices = np.array([[1, 1, 3]])
    out = layer.forward(indices)
    assert out.shape == (1, 3, 4)
    layer.zero_grad()
    grad_out = np.ones((1, 3, 4), dtype=np.float32)
    layer.backward(grad_out)
    # Token 1 appears twice, so its gradient row accumulates twice the ones-vector.
    np.testing.assert_allclose(layer.grads["weight"][1], 2.0)
    np.testing.assert_allclose(layer.grads["weight"][3], 1.0)
    np.testing.assert_allclose(layer.grads["weight"][0], 0.0)


def test_layer_norm_gradients():
    layer = LayerNorm(8)
    rng = make_rng(4)
    x = rng.normal(size=(2, 3, 8)).astype(np.float32)
    check_parameter_gradients(layer, lambda: layer.forward(x))


def test_attention_is_causal():
    rng = make_rng(5)
    attention = CausalSelfAttention(hidden_size=8, num_heads=2, rng=rng)
    x = rng.normal(size=(1, 6, 8)).astype(np.float32)
    baseline = attention.forward(x)
    modified = x.copy()
    modified[:, -1, :] += 10.0  # changing the last position must not affect earlier outputs
    changed = attention.forward(modified)
    np.testing.assert_allclose(baseline[:, :-1, :], changed[:, :-1, :], atol=1e-5)
    assert not np.allclose(baseline[:, -1, :], changed[:, -1, :])


def test_attention_gradients():
    rng = make_rng(6)
    attention = CausalSelfAttention(hidden_size=8, num_heads=2, rng=rng)
    x = rng.normal(size=(1, 4, 8)).astype(np.float32)
    check_parameter_gradients(attention, lambda: attention.forward(x), atol=5e-2)


def test_attention_rejects_indivisible_heads():
    with pytest.raises(ConfigurationError):
        CausalSelfAttention(hidden_size=10, num_heads=3, rng=make_rng(0))


def test_mlp_gradients():
    rng = make_rng(7)
    mlp = MLP(hidden_size=6, ffn_size=12, rng=rng)
    x = rng.normal(size=(2, 3, 6)).astype(np.float32)
    check_parameter_gradients(mlp, lambda: mlp.forward(x), atol=5e-2)


def test_transformer_block_preserves_shape_and_has_all_parameters():
    rng = make_rng(8)
    block = TransformerBlock(hidden_size=8, num_heads=2, ffn_size=32, rng=rng)
    x = rng.normal(size=(2, 5, 8)).astype(np.float32)
    out = block.forward(x)
    assert out.shape == x.shape
    params = block.named_parameters("blocks.0.")
    assert any(name.startswith("blocks.0.attn.qkv") for name in params)
    assert any(name.startswith("blocks.0.mlp.fc_out") for name in params)
    assert any(name.startswith("blocks.0.ln_attn") for name in params)


def test_transformer_block_gradients():
    rng = make_rng(9)
    block = TransformerBlock(hidden_size=8, num_heads=2, ffn_size=16, rng=rng)
    x = rng.normal(size=(1, 3, 8)).astype(np.float32)
    check_parameter_gradients(block, lambda: block.forward(x), atol=8e-2)
