"""Tests for the host contention model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.hardware.contention import HostContentionModel


def test_cpu_derated_only_when_transfers_overlap():
    model = HostContentionModel(cpu_efficiency_under_transfer=0.8)
    assert model.effective_cpu_update_pps(10e9, transfers_overlap=False) == 10e9
    assert model.effective_cpu_update_pps(10e9, transfers_overlap=True) == pytest.approx(8e9)


def test_pcie_derated_only_when_bidirectional():
    model = HostContentionModel(pcie_duplex_efficiency=0.9)
    assert model.effective_pcie_pps(13.75e9, bidirectional=False) == 13.75e9
    assert model.effective_pcie_pps(13.75e9, bidirectional=True) == pytest.approx(12.375e9)


def test_effective_cores_plateau():
    model = HostContentionModel(dram_saturation_cores=38)
    assert model.effective_cores(10) == 10
    assert model.effective_cores(38) == 38
    assert model.effective_cores(48) == 38
    with pytest.raises(ConfigurationError):
        model.effective_cores(0)


def test_configuration_validation():
    with pytest.raises(ConfigurationError):
        HostContentionModel(cpu_efficiency_under_transfer=0.0)
    with pytest.raises(ConfigurationError):
        HostContentionModel(pcie_duplex_efficiency=1.5)
    with pytest.raises(ConfigurationError):
        HostContentionModel(dram_saturation_cores=0)
