"""Documentation checks: intra-repo links resolve and documented CLI commands parse.

Docs drift is a test failure here, not a review comment:

* every relative markdown link in ``README.md`` and ``docs/*.md`` must point at a
  file that exists in the repository;
* every ``python -m repro ...`` command inside a fenced code block must parse
  against the real argument parser (``repro.cli.build_parser``), so an example
  using a renamed flag or a removed subcommand breaks the build;
* every subcommand's ``--help`` must render (smoke invocation).
"""

import re
import shlex
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[1]
DOC_FILES = sorted([REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```(?:bash|sh|console)?\n(.*?)```", re.DOTALL)


def _doc_ids():
    return [str(path.relative_to(REPO_ROOT)) for path in DOC_FILES]


def test_docs_suite_exists():
    names = {path.name for path in DOC_FILES}
    assert {"README.md", "architecture.md", "sweeps.md", "experiments.md"} <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_intra_repo_links_resolve(doc):
    broken = []
    for target in _LINK.findall(doc.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (doc.parent / path).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken relative links {broken}"


def _documented_commands():
    """Every `python -m repro ...` line inside a fenced code block, per doc."""
    commands = []
    for doc in DOC_FILES:
        for block in _FENCE.findall(doc.read_text()):
            # Join "\"-continued lines before scanning.
            joined = block.replace("\\\n", " ")
            for line in joined.splitlines():
                line = line.strip()
                if line.startswith("#") or "python -m repro" not in line:
                    continue
                tokens = shlex.split(line)
                anchor = tokens.index("repro")
                commands.append((doc.name, tokens[anchor + 1:]))
    return commands


def test_docs_contain_cli_examples():
    commands = _documented_commands()
    assert len(commands) >= 10
    subcommands = {argv[0] for _, argv in commands if argv}
    assert {"sweep", "experiment", "compare", "stride", "list-presets"} <= subcommands


@pytest.mark.parametrize(
    "doc,argv",
    _documented_commands(),
    ids=[f"{doc}:{' '.join(argv[:4])}" for doc, argv in _documented_commands()],
)
def test_documented_cli_commands_parse(doc, argv):
    """The CLI-reference check: docs and `repro --help` must agree."""
    parser = build_parser()
    try:
        parser.parse_args(argv)
    except SystemExit as exc:  # argparse rejected the documented command
        pytest.fail(f"{doc}: documented command {' '.join(argv)!r} no longer parses ({exc})")


@pytest.mark.parametrize(
    "subcommand", ["list-presets", "compare", "experiment", "sweep", "stride"]
)
def test_subcommand_help_smoke(subcommand, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([subcommand, "--help"])
    assert excinfo.value.code == 0
    help_text = capsys.readouterr().out
    assert subcommand != "sweep" or "--cache-stats" in help_text


def test_readme_documents_new_sweep_flags():
    readme = (REPO_ROOT / "README.md").read_text()
    for needle in ("--cache-stats", "--cache-evict", "--machines", "docs/sweeps.md"):
        assert needle in readme, f"README.md must document {needle}"
