"""The middleware layer, proven two ways.

**Unit layer** — the chain mechanics themselves: onion ordering, short-circuit,
error propagation, frozen contexts, the spec grammar, retry/fault arithmetic,
and a hypothesis property that *any* stack of observe-only middleware is
value-preserving and invokes the wrapped operation exactly once.

**Differential layer** — the headline guarantee of this whole subsystem: at
every seam (engine, dispatch, CLI) and on every backend (serial, pool, cluster
daemons; scenario and batch sweep modes), installing a no-op or observe-only
chain yields **byte-identical** schedules, sweep JSON and cache entries versus
no middleware at all.  Middleware observe the mechanism; they never become
part of it.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import socket
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, strategies as st

import dispatch_workers
from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.middleware import (
    SEAM_CLI,
    SEAM_DISPATCH,
    SEAM_ENGINE,
    SEAM_SERVE,
    ConcurrencyLimitError,
    ConcurrencyMiddleware,
    FaultInjectionMiddleware,
    InjectedFault,
    LoggingMiddleware,
    Middleware,
    MiddlewareChain,
    MiddlewareContext,
    QuotaExceededError,
    QuotaMiddleware,
    RetryMiddleware,
    TimingMiddleware,
    build_chain,
    build_middleware,
    middleware_metrics,
    normalize_middleware_specs,
    parse_middleware_spec,
    reset_middleware_metrics,
    retry_attempts_from_specs,
)
from repro.experiments.base import run_training
from repro.obs import metrics as obs_metrics
from repro.obs.trace import TraceMiddleware, reset_tracing, snapshot_spans
from repro.runtime import ExecutionPolicy
from repro.sim.ops import reset_op_counter
from repro.sweep import SweepRunner, SweepSpec
from repro.training.config import TrainingJobConfig
from repro.training.simulation import simulate_job

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The observe-only stack every differential test installs: all three
#: built-in observers at once, so identity holds for the composition too.
OBSERVERS = ("noop", "timing", "logging")

#: Chains the byte-identity harness runs beyond the classic observer stack:
#: the span tracer alone, and the tracer composed with the other observers.
TRACED_CHAINS = [("trace",), ("trace", "timing", "logging")]


@pytest.fixture(autouse=True)
def _fresh_metrics():
    """Each test sees empty process-wide metric and span registries.

    ``obs_metrics.reset()`` clears both the obs registry and the legacy seam
    timing table, so metric assertions never depend on test order; span state
    is cleared separately because tracing has its own buffer.
    """
    obs_metrics.reset()
    reset_tracing()
    yield
    obs_metrics.reset()
    reset_tracing()


# --------------------------------------------------------------- chain mechanics


class Recorder(Middleware):
    """Observe-only middleware that journals its traversal order."""

    def __init__(self, tag: str, journal: list) -> None:
        self.tag = tag
        self.journal = journal

    def handle(self, context, call_next):
        self.journal.append(("enter", self.tag))
        try:
            result = call_next(context)
        except BaseException:
            self.journal.append(("error", self.tag))
            raise
        self.journal.append(("exit", self.tag))
        return result


def _context(seam=SEAM_DISPATCH, **payload):
    return MiddlewareContext(seam=seam, name="test", payload=payload)


def test_chain_runs_first_middleware_outermost():
    journal: list = []
    chain = MiddlewareChain((Recorder("outer", journal), Recorder("inner", journal)))
    result = chain.run(_context(), lambda: journal.append(("body", "-")) or 41)
    assert result == 41
    assert journal == [("enter", "outer"), ("enter", "inner"), ("body", "-"),
                       ("exit", "inner"), ("exit", "outer")]


def test_middleware_can_short_circuit_everything_deeper():
    journal: list = []

    class ShortCircuit(Middleware):
        def handle(self, context, call_next):
            return "substituted"  # never calls call_next

    chain = MiddlewareChain((Recorder("outer", journal), ShortCircuit(),
                             Recorder("unreached", journal)))
    result = chain.run(_context(), lambda: journal.append(("body", "-")))
    assert result == "substituted"
    # The outer middleware completed normally; nothing deeper ever ran.
    assert journal == [("enter", "outer"), ("exit", "outer")]


def test_operation_error_propagates_outward_through_every_middleware():
    journal: list = []
    chain = MiddlewareChain((Recorder("outer", journal), Recorder("inner", journal)))

    def body():
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        chain.run(_context(), body)
    assert journal == [("enter", "outer"), ("enter", "inner"),
                       ("error", "inner"), ("error", "outer")]


def test_context_is_frozen():
    context = _context()
    with pytest.raises(dataclasses.FrozenInstanceError):
        context.seam = "tampered"


def test_chain_rejects_objects_without_a_handle_method():
    with pytest.raises(ConfigurationError, match="handle"):
        MiddlewareChain((object(),))


def test_empty_chain_is_falsy_and_build_chain_returns_none_for_it():
    assert not MiddlewareChain(())
    assert len(MiddlewareChain((Middleware(),))) == 1
    assert build_chain(()) is None
    assert build_chain(None) is None


def test_chains_are_cached_per_spec_tuple():
    assert build_chain(("timing", "logging")) is build_chain(("timing", "logging"))
    assert build_chain(("timing",)) is not build_chain(("logging",))


# ------------------------------------------------------------------ spec grammar


def test_spec_parsing_splits_name_and_colon_args():
    assert parse_middleware_spec("retry:attempts=3:backoff=0.1") == (
        "retry", {"attempts": "3", "backoff": "0.1"})
    assert parse_middleware_spec("timing") == ("timing", {})


@pytest.mark.parametrize("spec, message", [
    ("", "non-empty"),
    ("retry:attempts", "key=value"),
    ("warp", "unknown middleware 'warp'"),
    ("timing:speed=11", "unknown argument"),
    ("retry:attempts=lots", "must be an integer"),
    ("fault:ratio=often", "must be a number"),
    ("fault:mode=blackhole", "unknown fault middleware mode"),
    ("logging:level=shout", "unknown logging middleware level"),
])
def test_bad_specs_fail_at_declaration_time(spec, message):
    with pytest.raises(ConfigurationError, match=message):
        build_middleware(spec)


def test_normalize_accepts_comma_strings_and_sequences():
    assert normalize_middleware_specs("timing, logging") == ("timing", "logging")
    assert normalize_middleware_specs(["retry:attempts=1"]) == ("retry:attempts=1",)
    assert normalize_middleware_specs("") == ()
    with pytest.raises(ConfigurationError, match="spec string"):
        normalize_middleware_specs(42)
    with pytest.raises(ConfigurationError, match="unknown middleware"):
        normalize_middleware_specs(("timing", "warp"))


def test_retry_attempts_extraction_from_spec_stacks():
    assert retry_attempts_from_specs(None) == 2
    assert retry_attempts_from_specs(("timing",), default=5) == 5
    assert retry_attempts_from_specs(("timing", "retry:attempts=7")) == 7
    assert retry_attempts_from_specs(("retry",)) == 2  # spec default


# ------------------------------------------------------------------ retry logic


class Flaky:
    """Callable that fails ``failures`` times, then succeeds forever."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"transient #{self.calls}")
        return "recovered"


def test_retry_reinvokes_until_the_bound_then_succeeds():
    body = Flaky(failures=2)
    chain = MiddlewareChain((RetryMiddleware(attempts=2),))
    assert chain.run(_context(), body) == "recovered"
    assert body.calls == 3  # 1 try + 2 retries


def test_retry_exhaustion_reraises_the_last_error():
    body = Flaky(failures=5)
    chain = MiddlewareChain((RetryMiddleware(attempts=1),))
    with pytest.raises(RuntimeError, match="transient #2"):
        chain.run(_context(), body)
    assert body.calls == 2


def test_retry_is_inert_off_the_dispatch_seam():
    body = Flaky(failures=1)
    chain = MiddlewareChain((RetryMiddleware(attempts=3),))
    with pytest.raises(RuntimeError, match="transient #1"):
        chain.run(_context(seam=SEAM_ENGINE), body)
    assert body.calls == 1


def test_retry_backoff_doubles_per_failure(monkeypatch):
    import repro.middleware.builtin as builtin

    naps: list = []
    monkeypatch.setattr(builtin.time, "sleep", naps.append)
    chain = MiddlewareChain((RetryMiddleware(attempts=3, backoff=0.1),))
    assert chain.run(_context(), Flaky(failures=2)) == "recovered"
    assert naps == pytest.approx([0.1, 0.2])


def test_retry_rejects_negative_bounds():
    with pytest.raises(ConfigurationError, match=">= 0"):
        RetryMiddleware(attempts=-1)
    with pytest.raises(ConfigurationError, match=">= 0"):
        RetryMiddleware(backoff=-0.5)


# -------------------------------------------------------------- fault injection


def test_fault_index_targeting_fires_only_on_that_task():
    fault = FaultInjectionMiddleware(mode="raise", index=2)
    chain = MiddlewareChain((fault,))
    assert chain.run(_context(index=0, attempts=1), lambda: "ok") == "ok"
    with pytest.raises(InjectedFault, match=r"index=2"):
        chain.run(_context(index=2, attempts=1), lambda: "ok")


def test_fault_times_gate_disarms_after_k_attempts():
    fault = FaultInjectionMiddleware(mode="raise", index=0, times=2)
    chain = MiddlewareChain((fault,))
    for attempt in (1, 2):
        with pytest.raises(InjectedFault):
            chain.run(_context(index=0, attempts=attempt), lambda: "ok")
    assert chain.run(_context(index=0, attempts=3), lambda: "ok") == "ok"
    # times=0 means every attempt, forever.
    relentless = MiddlewareChain((FaultInjectionMiddleware(mode="raise", times=0),))
    with pytest.raises(InjectedFault):
        relentless.run(_context(index=9, attempts=99), lambda: "ok")


def test_fault_ratio_selection_is_seed_deterministic():
    fault = FaultInjectionMiddleware(mode="raise", ratio=0.5, seed=42)
    picks = [fault._selected(index) for index in range(200)]
    again = [fault._selected(index) for index in range(200)]
    assert picks == again, "the same seed must pick the same tasks"
    assert 40 < sum(picks) < 160, "ratio=0.5 selects roughly half"
    assert not any(FaultInjectionMiddleware(ratio=0.0)._selected(i) for i in range(50))
    assert all(FaultInjectionMiddleware(ratio=1.0)._selected(i) for i in range(50))
    shifted = FaultInjectionMiddleware(mode="raise", ratio=0.5, seed=43)
    assert [shifted._selected(i) for i in range(200)] != picks


def test_fault_is_inert_off_the_dispatch_seam():
    fault = FaultInjectionMiddleware(mode="raise", times=0)
    chain = MiddlewareChain((fault,))
    assert chain.run(_context(seam=SEAM_ENGINE), lambda: "ok") == "ok"
    assert chain.run(_context(seam=SEAM_CLI), lambda: "ok") == "ok"


def test_fault_constructor_validates_its_knobs():
    with pytest.raises(ConfigurationError, match="mode"):
        FaultInjectionMiddleware(mode="meltdown")
    with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
        FaultInjectionMiddleware(ratio=1.5)
    with pytest.raises(ConfigurationError, match=">= 0"):
        FaultInjectionMiddleware(times=-1)


# ------------------------------------------------- admission control (serve)


def _serve_context(client="c1"):
    return MiddlewareContext(seam=SEAM_SERVE, name="sweep",
                             payload={"method": "sweep", "client": client})


def test_quota_admits_up_to_the_limit_then_raises_with_retry_hint():
    quota = QuotaMiddleware(limit=2, window=60.0)
    chain = MiddlewareChain((quota,))
    assert chain.run(_serve_context(), lambda: "ok") == "ok"
    assert chain.run(_serve_context(), lambda: "ok") == "ok"
    with pytest.raises(QuotaExceededError, match="retry in"):
        chain.run(_serve_context(), lambda: "ok")


def test_quota_buckets_are_per_client():
    quota = QuotaMiddleware(limit=1)
    chain = MiddlewareChain((quota,))
    chain.run(_serve_context("alice"), lambda: None)
    # A different client has its own window; alice is throttled, bob is not.
    chain.run(_serve_context("bob"), lambda: None)
    with pytest.raises(QuotaExceededError, match="alice"):
        chain.run(_serve_context("alice"), lambda: None)


def test_quota_window_slides_and_admits_again():
    import time as time_module

    quota = QuotaMiddleware(limit=1, window=0.2)
    chain = MiddlewareChain((quota,))
    chain.run(_serve_context(), lambda: None)
    with pytest.raises(QuotaExceededError):
        chain.run(_serve_context(), lambda: None)
    time_module.sleep(0.25)
    chain.run(_serve_context(), lambda: None)  # the old admission expired


def test_quota_is_inert_off_its_seam_and_a_throttled_call_never_runs():
    quota = QuotaMiddleware(limit=1)
    chain = MiddlewareChain((quota,))
    calls: list = []
    for _ in range(3):  # dispatch-seam traffic is not serve traffic
        chain.run(_context(), lambda: calls.append("ran"))
    assert calls == ["ran"] * 3
    chain.run(_serve_context(), lambda: calls.append("ran"))
    with pytest.raises(QuotaExceededError):
        chain.run(_serve_context(), lambda: calls.append("ran"))
    assert calls == ["ran"] * 4  # the throttled call never reached the body


def test_concurrency_reject_mode_sheds_load_beyond_the_limit():
    import threading

    limiter = ConcurrencyMiddleware(limit=1, mode="reject")
    chain = MiddlewareChain((limiter,))
    entered = threading.Event()
    release = threading.Event()

    def slow():
        entered.set()
        release.wait(timeout=10.0)
        return "slow"

    results: list = []
    worker = threading.Thread(
        target=lambda: results.append(chain.run(_serve_context(), slow)))
    worker.start()
    try:
        assert entered.wait(timeout=10.0)
        with pytest.raises(ConcurrencyLimitError, match="limit of 1"):
            chain.run(_serve_context(), lambda: "fast")
    finally:
        release.set()
        worker.join(timeout=10.0)
    assert results == ["slow"]
    # The slot was released on exit; the next call is admitted again.
    assert chain.run(_serve_context(), lambda: "after") == "after"


def test_concurrency_wait_mode_blocks_until_a_slot_frees():
    import threading

    limiter = ConcurrencyMiddleware(limit=1, mode="wait")
    chain = MiddlewareChain((limiter,))
    entered = threading.Event()
    release = threading.Event()
    order: list = []

    def slow():
        entered.set()
        release.wait(timeout=10.0)
        order.append("slow")

    worker = threading.Thread(target=lambda: chain.run(_serve_context(), slow))
    worker.start()
    assert entered.wait(timeout=10.0)
    waiter = threading.Thread(
        target=lambda: chain.run(_serve_context(), lambda: order.append("waited")))
    waiter.start()
    waiter.join(timeout=0.2)
    assert waiter.is_alive()  # blocked on the held slot, not failed
    release.set()
    worker.join(timeout=10.0)
    waiter.join(timeout=10.0)
    assert order == ["slow", "waited"]


def test_admission_specs_parse_and_validate():
    quota = build_middleware("quota:limit=3:window=1.5")
    limiter = build_middleware("concurrency:limit=2:mode=reject")
    assert (quota.limit, quota.window, quota.seam) == (3, 1.5, SEAM_SERVE)
    assert (limiter.limit, limiter.mode) == (2, "reject")
    for spec, message in [
        ("quota", "requires a limit"),
        ("quota:limit=0", ">= 1"),
        ("quota:limit=2:window=0", "positive"),
        ("quota:limit=2:seam=warp", "seam"),
        ("concurrency", "requires a limit"),
        ("concurrency:limit=2:mode=drop", "mode"),
    ]:
        with pytest.raises(ConfigurationError, match=message):
            build_middleware(spec)


# --------------------------------------------------------------------- pickling


def test_policy_with_middleware_pickles_and_chains_rebuild():
    """Spec strings — not instances — cross process boundaries."""
    policy = ExecutionPolicy.resolve(
        middleware=("timing", "retry:attempts=3:backoff=0.1"))
    clone = pickle.loads(pickle.dumps(policy))
    assert clone == policy
    assert clone.middleware == ("timing", "retry:attempts=3:backoff=0.1")
    chain = build_chain(clone.middleware)
    assert [type(m).__name__ for m in chain.middlewares] == [
        "TimingMiddleware", "RetryMiddleware"]


# --------------------------------------------------- hypothesis: observe-only


_OBSERVER_FACTORIES = {
    "noop": Middleware,
    "timing": TimingMiddleware,
    "logging": LoggingMiddleware,
    "trace": TraceMiddleware,
}


@given(
    stack=st.lists(st.sampled_from(sorted(_OBSERVER_FACTORIES)), max_size=6),
    value=st.one_of(st.integers(), st.floats(allow_nan=False), st.text(),
                    st.dictionaries(st.text(max_size=3), st.integers(), max_size=3)),
    seam=st.sampled_from([SEAM_ENGINE, SEAM_DISPATCH, SEAM_CLI]),
)
def test_observe_only_stacks_preserve_values(stack, value, seam):
    """Any composition of observe-only middleware is an identity wrapper."""
    chain = MiddlewareChain(tuple(_OBSERVER_FACTORIES[name]() for name in stack))
    calls: list = []

    def body():
        calls.append(1)
        return value

    assert chain.run(_context(seam=seam), body) == value
    assert len(calls) == 1, "the wrapped operation runs exactly once"


# ------------------------------------------------- differential: engine seam


@pytest.fixture(scope="module")
def job():
    return TrainingJobConfig(model="7B", strategy="deep-optimizer-states",
                             check_memory=False).resolve()


def _schedule_triples(result):
    return [(item.op.op_id, item.start, item.end) for item in result.schedule.ops]


@pytest.mark.parametrize("chain", [OBSERVERS] + TRACED_CHAINS)
@pytest.mark.parametrize("scheduler", ["heap", "vector"])
def test_engine_seam_chain_yields_byte_identical_schedules(job, scheduler, chain):
    reset_op_counter()
    bare = simulate_job(job, 2, policy=ExecutionPolicy(scheduler=scheduler))
    reset_op_counter()
    chained = simulate_job(job, 2, policy=ExecutionPolicy(
        scheduler=scheduler, middleware=chain))
    assert _schedule_triples(chained) == _schedule_triples(bare)
    assert chained.schedule.makespan == bare.schedule.makespan
    # The chain genuinely intercepted: the observers saw the engine seam.
    if "timing" in chain:
        assert middleware_metrics()["engine"]["count"] >= 1
    if "trace" in chain:
        assert any(record["seam"] == "engine" for record in snapshot_spans())


# ------------------------------------------------ differential: dispatch seam


def _result_json(result) -> bytes:
    return json.dumps(result.to_dict(), indent=2, sort_keys=True).encode()


def _cache_files(cache_dir: Path) -> dict[str, bytes]:
    return {path.name: path.read_bytes()
            for path in sorted(cache_dir.glob("*.pkl"))}


GRID = {"x": (1, 2, 3), "y": (10, 20)}


@pytest.mark.parametrize("chain", [OBSERVERS] + TRACED_CHAINS)
def test_serial_sweep_with_observers_is_byte_identical(tmp_path, chain):
    spec = SweepSpec.build(GRID)
    bare_dir, chained_dir = tmp_path / "bare", tmp_path / "chained"
    bare = SweepRunner(dispatch_workers.echo_params, executor="serial",
                       use_cache=True, cache_dir=bare_dir).run(spec)
    chained = SweepRunner(dispatch_workers.echo_params, executor="serial",
                          use_cache=True, cache_dir=chained_dir,
                          middleware=chain).run(spec)
    assert _result_json(chained) == _result_json(bare)
    # Cache entries too: same file names (policy-free key) and same bytes.
    assert _cache_files(chained_dir) == _cache_files(bare_dir)
    if "timing" in chain:
        assert middleware_metrics()["dispatch"]["count"] == spec.num_scenarios
    if "trace" in chain:
        # One span per scenario, plus the sweep-root span on the same seam.
        assert sum(1 for record in snapshot_spans()
                   if record["seam"] == "dispatch"
                   and record["name"] != "sweep") == spec.num_scenarios


@pytest.mark.parametrize("chain", [OBSERVERS] + TRACED_CHAINS)
def test_pool_sweep_with_observers_is_byte_identical(chain):
    spec = SweepSpec.build(GRID)
    bare = SweepRunner(dispatch_workers.echo_params, executor="pool", jobs=2,
                       use_cache=False).run(spec)
    chained = SweepRunner(dispatch_workers.echo_params, executor="pool", jobs=2,
                          use_cache=False, middleware=chain).run(spec)
    assert _result_json(chained) == _result_json(bare)


TRAIN_GRID = {"cpu_cores_per_gpu": (2, 3, 4)}
TRAIN_BASE = {"model": "7B", "strategy": "deep-optimizer-states", "iterations": 2}


def _projection(result) -> str:
    """The JSON identity a sweep must preserve (params, hash, value)."""
    return json.dumps(
        [{key: scenario[key] for key in ("params", "config_hash", "value")}
         for scenario in result.to_dict()["scenarios"]],
        sort_keys=True,
    )


def test_batch_mode_sweep_with_observers_is_byte_identical():
    """Shape-batched dispatch under a chain matches both unchained modes."""
    spec = SweepSpec.build(TRAIN_GRID, TRAIN_BASE)
    bare_batch = SweepRunner(run_training, use_cache=False,
                             sweep_mode="batch").run(spec)
    chained_batch = SweepRunner(run_training, use_cache=False, sweep_mode="batch",
                                middleware=OBSERVERS).run(spec)
    chained_scenario = SweepRunner(run_training, use_cache=False,
                                   sweep_mode="scenario",
                                   middleware=OBSERVERS).run(spec)
    assert _projection(chained_batch) == _projection(bare_batch)
    assert _projection(chained_scenario) == _projection(bare_batch)


@pytest.mark.parametrize("chain", [("timing", "logging"),
                                   ("trace", "timing", "logging")])
def test_cluster_sweep_with_observers_is_byte_identical(tmp_path, chain):
    """One real daemon, chain shipped inside the pickled policy."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    env.pop("REPRO_MIDDLEWARE", None)
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", f"127.0.0.1:{port}", "--id", "mw-1", "--retry-for", "30"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT)
    try:
        spec = SweepSpec.build(GRID)
        options = {"bind": f"127.0.0.1:{port}", "lease_timeout": 5.0,
                   "worker_wait_timeout": 30.0}
        chained = SweepRunner(dispatch_workers.echo_params, executor="cluster",
                              workers=1, executor_options=options,
                              use_cache=False, middleware=chain).run(spec)
        bare = SweepRunner(dispatch_workers.echo_params, executor="serial",
                           use_cache=False).run(spec)
        assert _result_json(chained) == _result_json(bare)
    finally:
        if daemon.poll() is None:
            daemon.terminate()
        daemon.wait(timeout=10)


# ----------------------------------------------------- differential: CLI seam


def test_cli_seam_intercepts_and_reports_metrics(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_MIDDLEWARE", raising=False)
    assert main(["--middleware", "timing", "config", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["middleware"]["value"] == ["timing"]
    assert payload["middleware"]["source"] == "arg"
    # The config command itself ran under the chain: entry counts are live.
    assert payload["middleware_metrics"]["cli"]["count"] >= 1


def test_cli_without_middleware_prints_no_metrics(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_MIDDLEWARE", raising=False)
    assert main(["config", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["middleware"]["value"] == []
    assert "middleware_metrics" not in payload
