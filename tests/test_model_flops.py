"""Tests for the FLOPs and compute-efficiency model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.model.flops import (
    achieved_tflops,
    backward_compute_seconds,
    compute_efficiency,
    forward_compute_seconds,
    iteration_model_flops,
    transformer_flops_per_token,
)
from repro.model.presets import MODEL_PRESETS


def test_flops_per_token_roughly_2p_forward_6p_iteration():
    config = MODEL_PRESETS["7B"]
    params = config.num_parameters()
    forward = transformer_flops_per_token(config)
    assert forward == pytest.approx(2 * params, rel=0.05)
    assert transformer_flops_per_token(config, backward=True) == pytest.approx(2 * forward)
    assert iteration_model_flops(config, 1) == pytest.approx(6 * params * config.sequence_length)


def test_compute_efficiency_increases_and_saturates():
    values = [compute_efficiency(mb) for mb in (1, 2, 4, 8, 16, 64)]
    assert all(b > a for a, b in zip(values, values[1:]))
    assert values[-1] < 0.5
    with pytest.raises(ConfigurationError):
        compute_efficiency(0)


def test_forward_seconds_in_expected_range_for_20b():
    config = MODEL_PRESETS["20B"]
    seconds = forward_compute_seconds(config, 1, peak_flops=989e12)
    # Figure 3 shows the forward pass of the 20B model taking on the order of a second.
    assert 0.3 < seconds < 2.0


def test_backward_costs_more_with_activation_checkpointing():
    config = MODEL_PRESETS["13B"]
    without = backward_compute_seconds(config, 1, 989e12, activation_checkpointing=False)
    with_ckpt = backward_compute_seconds(config, 1, 989e12, activation_checkpointing=True)
    # The paper quotes "33% additional recomputations" for activation checkpointing.
    assert with_ckpt == pytest.approx(without * 1.5, rel=0.05)
    assert without == pytest.approx(2 * forward_compute_seconds(config, 1, 989e12), rel=0.05)


def test_achieved_tflops_matches_paper_convention():
    config = MODEL_PRESETS["20B"]
    # The paper's ZeRO-3 baseline: ~7.3 s iterations -> ~30 achieved TFLOPs per GPU.
    assert achieved_tflops(config, 1, 7.3) == pytest.approx(37, rel=0.25)
    with pytest.raises(ConfigurationError):
        achieved_tflops(config, 1, 0.0)


def test_forward_seconds_validation():
    config = MODEL_PRESETS["7B"]
    with pytest.raises(ConfigurationError):
        forward_compute_seconds(config, 1, peak_flops=0.0)
    with pytest.raises(ConfigurationError):
        iteration_model_flops(config, 0)
