"""Tests for the two gradient-flush paths (Figure 6)."""

import pytest

from repro.core.gradient_flush import (
    baseline_flush_seconds,
    build_baseline_gradient_flush,
    build_overlapped_gradient_flush,
    overlapped_flush_seconds,
)
from repro.core.scheduler import build_update_plan
from repro.sim.engine import SimEngine, standard_resources
from repro.sim.ops import OpKind, SimOp

SUBGROUP = 100_000_000


def engine_with_producers(num_subgroups):
    engine = SimEngine()
    standard_resources(engine)
    deps = {}
    for index in range(num_subgroups):
        producer = SimOp(f"bwd[{index}]", OpKind.GPU_COMPUTE, "gpu.compute", 0.015, subgroup=index)
        engine.submit(producer)
        deps[index] = producer.op_id
    return engine, deps


def test_baseline_flush_has_three_sequential_stages():
    engine, deps = engine_with_producers(3)
    profile_sizes = {i: SUBGROUP for i in range(3)}
    from repro.hardware.presets import JLSE_H100_NODE
    from repro.hardware.throughput import ThroughputProfile

    profile = ThroughputProfile.from_machine(JLSE_H100_NODE)
    result = build_baseline_gradient_flush(engine, profile, profile_sizes, deps)
    schedule = engine.run()
    assert len(result.op_ids) == 9  # alloc + copy + upscale per subgroup
    assert set(result.blocking_ops) == {0, 1, 2}
    # The flush transfers FP16 gradients.
    assert result.d2h_bytes == 3 * SUBGROUP * 2
    # Alloc happens before copy which happens before upscale for each subgroup.
    for index in range(3):
        alloc = schedule.filter(kind=OpKind.HOST_ALLOC, subgroup=index)[0]
        copy = schedule.filter(kind=OpKind.D2H, subgroup=index)[0]
        upscale = schedule.filter(kind=OpKind.CPU_UPSCALE, subgroup=index)[0]
        assert alloc.end <= copy.start + 1e-9
        assert copy.end <= upscale.start + 1e-9


def test_overlapped_flush_skips_gpu_scheduled_subgroups(h100_profile):
    engine, deps = engine_with_producers(4)
    sizes = {i: SUBGROUP for i in range(4)}
    plan = build_update_plan(4, 2)  # subgroups 1 and 3 update on the GPU
    result = build_overlapped_gradient_flush(engine, h100_profile, sizes, deps, plan=plan)
    schedule = engine.run()
    d2h_ops = schedule.filter(kind=OpKind.D2H)
    assert {item.op.subgroup for item in d2h_ops} == {0, 2}
    assert result.d2h_bytes == 2 * SUBGROUP * 4  # FP32 transfers for the CPU-scheduled half
    assert not result.blocking_ops  # never blocks the backward pass
    assert set(result.grad_ready_ops) == {0, 1, 2, 3}


def test_overlapped_flush_without_plan_flushes_everything(h100_profile):
    engine, deps = engine_with_producers(2)
    sizes = {i: SUBGROUP for i in range(2)}
    result = build_overlapped_gradient_flush(engine, h100_profile, sizes, deps, plan=None)
    engine.run()
    assert result.d2h_bytes == 2 * SUBGROUP * 4


def test_per_subgroup_analytic_costs_match_paper_orders(h100_profile):
    baseline_ms = baseline_flush_seconds(h100_profile, SUBGROUP) * 1e3
    overlapped_ms = overlapped_flush_seconds(h100_profile, SUBGROUP) * 1e3
    # Figure 6: ~90 ms for the baseline path, single-digit milliseconds for the new path.
    assert 50 <= baseline_ms <= 150
    assert overlapped_ms <= 15
    assert baseline_ms / overlapped_ms > 5


def test_flush_frees_fp16_gradients_on_gpu(h100_profile):
    engine, deps = engine_with_producers(2)
    sizes = {i: SUBGROUP for i in range(2)}
    build_overlapped_gradient_flush(engine, h100_profile, sizes, deps, plan=None)
    schedule = engine.run()
    freed = sum(-item.op.gpu_mem_delta for item in schedule.filter(kind=OpKind.D2H))
    assert freed == 2 * SUBGROUP * 2


def test_last_op_id_property(h100_profile):
    engine, deps = engine_with_producers(1)
    result = build_overlapped_gradient_flush(engine, h100_profile, {0: SUBGROUP}, deps, plan=None)
    assert result.last_op_id == result.op_ids[-1]
    from repro.core.gradient_flush import GradientFlushOps

    assert GradientFlushOps().last_op_id is None
