"""Golden-equivalence tests for the array-batched op-construction path.

Two layers of guarantees:

* **engine layer** — ``SimEngine.run_batch`` over an :class:`OpBatch` must produce a
  byte-identical :class:`Schedule` to expanding the same batch through
  ``submit()``/``run()`` (same op ids, names, dependency tuples and exact floats);
* **simulation layer** — ``simulate_job`` under ``op_backend="batch"`` must match
  ``op_backend="objects"`` bit for bit, for every offloading strategy, including
  all the per-iteration bookkeeping the metrics are derived from.

Exact float equality is intentional: both paths must compute start times through
identical ``max()`` chains, not merely close ones.  Backends are selected
through :class:`~repro.runtime.ExecutionPolicy`; the deprecated ``op_backend=``/
``scheduler_backend=`` keyword shims are pinned (DeprecationWarning plus
policy-path equality) by the regression tests in ``tests/test_runtime_policy.py``.
"""

import random
import warnings

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.runtime import ExecutionPolicy, OpBackendFallbackWarning
from repro.sim.engine import SimEngine, standard_resources
from repro.sim.opbatch import ROW_FIELDS, OpBatch
from repro.sim.ops import OpKind, SimOp, reset_op_counter
from repro.training.config import TrainingJobConfig
from repro.training.simulation import reset_fallback_warnings, simulate_job

RESOURCES = ("cpu", "gpu", "link", "pcie.h2d", "pcie.d2h")


def _random_batch(rng: random.Random, size: int) -> OpBatch:
    batch = OpBatch()
    ids: list[int] = []
    for index in range(size):
        deps = tuple(rng.choice(ids) for _ in range(rng.randint(0, 3))) if ids else ()
        not_before = rng.random() * 2 if rng.random() < 0.3 else 0.0
        op_id = batch.add_op(
            f"op{index}",
            OpKind.GPU_COMPUTE,
            rng.choice(RESOURCES),
            rng.random() * 3,
            deps,
            phase=f"phase{index % 3}",
            subgroup=index % 5,
            payload_bytes=index * 10,
            gpu_mem_delta=(-1) ** index * index,
            not_before=not_before,
        )
        ids.append(op_id)
    return batch


def _engine() -> SimEngine:
    engine = SimEngine()
    for name in RESOURCES:
        engine.add_resource(name)
    return engine


def _schedule_tuples(schedule):
    return [(item.op, item.start, item.end) for item in schedule.ops]


# ---------------------------------------------------------------------- engine layer


@pytest.mark.parametrize("seed", range(12))
def test_run_batch_matches_eager_run_on_random_dags(seed):
    rng = random.Random(seed)
    size = rng.randint(1, 150)
    state = rng.getstate()

    reset_op_counter()
    batch = _random_batch(rng, size)
    eager_engine = _engine()
    batch.submit_to(eager_engine)
    eager = eager_engine.run()

    rng.setstate(state)
    reset_op_counter()
    batch = _random_batch(rng, size)
    schedule = _engine().run_batch(batch, validate=True)

    assert _schedule_tuples(schedule) == _schedule_tuples(eager)


def test_run_batch_schedule_passes_validate_and_queries():
    reset_op_counter()
    batch = _random_batch(random.Random(99), 80)
    schedule = _engine().run_batch(batch)
    schedule.validate()
    assert schedule.makespan > 0
    first = schedule.ops[0]
    assert schedule.by_id(first.op.op_id) is first
    assert schedule.filter(resource=first.op.resource)


def test_run_batch_rejects_unknown_resource_and_negative_duration():
    batch = OpBatch()
    batch.add_op("x", OpKind.CPU_UPDATE, "not-a-resource", 1.0)
    with pytest.raises(ConfigurationError):
        _engine().run_batch(batch)

    bad = OpBatch()
    bad.rows.append(("neg", OpKind.CPU_UPDATE, "cpu", -1.0, (), "", None, 0, 0, 1))
    with pytest.raises(ConfigurationError):
        _engine().run_batch(bad)


def test_run_batch_detects_deadlock_like_run():
    batch = OpBatch()
    # Head of "cpu" waits on an op queued *behind* the head of "gpu" and vice versa.
    first = batch.add_op("a", OpKind.CPU_UPDATE, "cpu", 1.0, deps=(10**9,))
    batch.add_op("b", OpKind.GPU_COMPUTE, "gpu", 1.0, deps=(first,))
    with pytest.raises(SimulationError, match="deadlock"):
        _engine().run_batch(batch)


def test_run_batch_refuses_mixed_admission():
    engine = _engine()
    engine.submit(SimOp("eager", OpKind.CPU_UPDATE, "cpu", 1.0))
    with pytest.raises(ConfigurationError):
        engine.run_batch(OpBatch())


def test_opbatch_expand_and_columns_round_trip():
    reset_op_counter()
    batch = OpBatch()
    batch.add_op("a", OpKind.H2D, "pcie.h2d", 2.0, phase="update", payload_bytes=64)
    batch.add_op("b", OpKind.CPU_UPDATE, "cpu", 1.0, not_before=3.0)
    ops = batch.expand()
    assert [op.name for op in ops] == ["a", "b"]
    assert ops[0].payload_bytes == 64 and ops[0].kind is OpKind.H2D
    assert batch.column("resource") == ["pcie.h2d", "cpu"]
    assert batch.release_times == {ops[1].op_id: 3.0}
    assert len(batch) == 2
    with pytest.raises(ConfigurationError):
        batch.column("no-such-field")
    with pytest.raises(ConfigurationError):
        batch.add_op("c", OpKind.CPU_UPDATE, "cpu", 1.0, not_before=-1.0)
    # Row layout is the SimOp field order (the expand() contract).
    assert ROW_FIELDS == tuple(ops[0].__dict__.keys())


# ------------------------------------------------------------------ simulation layer


JOB_VARIANTS = [
    pytest.param({"model": "7B", "strategy": "zero3-offload"}, id="zero3"),
    pytest.param({"model": "7B", "strategy": "twinflow", "static_gpu_fraction": 0.3}, id="twinflow"),
    pytest.param({"model": "7B", "strategy": "deep-optimizer-states"}, id="dos"),
    pytest.param(
        {"model": "20B", "strategy": "deep-optimizer-states", "static_gpu_fraction": 0.2},
        id="dos-static",
    ),
    pytest.param(
        {"model": "7B", "strategy": "deep-optimizer-states", "update_stride": 3,
         "model_contention": True},
        id="dos-contention",
    ),
]


def _assert_simulations_identical(job, iterations):
    reset_op_counter()
    eager = simulate_job(job, iterations=iterations,
                         policy=ExecutionPolicy(op_backend="objects", scheduler="heap"))
    reset_op_counter()
    batched = simulate_job(job, iterations=iterations,
                           policy=ExecutionPolicy(op_backend="batch", scheduler="heap"))

    assert _schedule_tuples(batched.schedule) == _schedule_tuples(eager.schedule)
    batched.schedule.validate()
    assert batched.initial_gpu_bytes == eager.initial_gpu_bytes
    for got, expected in zip(batched.iterations, eager.iterations):
        assert got.forward_ops == expected.forward_ops
        assert got.forward_compute_ops == expected.forward_compute_ops
        assert got.backward_compute_ops == expected.backward_compute_ops
        assert got.blocks_backward == expected.blocks_backward
        assert got.flush.grad_ready_ops == expected.flush.grad_ready_ops
        assert got.flush.blocking_ops == expected.flush.blocking_ops
        assert got.flush.op_ids == expected.flush.op_ids
        assert got.flush.d2h_bytes == expected.flush.d2h_bytes
        assert got.update.op_ids == expected.update.op_ids
        assert got.update.params_ready_ops == expected.update.params_ready_ops
        assert got.update.per_subgroup_done == expected.update.per_subgroup_done
        assert got.update.h2d_bytes == expected.update.h2d_bytes
        assert got.update.d2h_bytes == expected.update.d2h_bytes
    assert [b.__dict__ for b in batched.breakdowns()] == [
        b.__dict__ for b in eager.breakdowns()
    ]


@pytest.mark.parametrize("kwargs", JOB_VARIANTS)
def test_simulate_job_backends_are_byte_identical(kwargs):
    job = TrainingJobConfig(check_memory=False, **kwargs).resolve()
    _assert_simulations_identical(job, iterations=2)


def test_simulate_job_backends_identical_at_10k_subgroups():
    """The acceptance-scale case: ~80k ops for one iteration of 10k+ subgroups."""
    job = TrainingJobConfig(
        model="20B",
        strategy="deep-optimizer-states",
        subgroup_size=500_000,
        check_memory=False,
    ).resolve()
    assert job.num_subgroups >= 10_000
    _assert_simulations_identical(job, iterations=1)


def test_strategies_without_row_builders_fall_back_to_eager():
    """A strategy that never implemented the row twins still simulates correctly."""
    job = TrainingJobConfig(model="7B", strategy="zero3-offload", check_memory=False).resolve()
    job.strategy.supports_op_batch = lambda: False  # simulate a third-party strategy
    reset_fallback_warnings()
    with pytest.warns(OpBackendFallbackWarning):
        result = simulate_job(job, 1, policy=ExecutionPolicy(op_backend="batch"))
    assert result.schedule.ops  # eager fallback produced a real schedule
    assert result.resolved_policy.op_backend == "objects"
    assert result.resolved_policy.op_backend_fallback
    # Warned once per strategy: a second simulation stays silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error", OpBackendFallbackWarning)
        simulate_job(job, 1, policy=ExecutionPolicy(op_backend="batch"))
    reset_fallback_warnings()
