"""Tests for Adagrad, RMSProp and the optimizer factory."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.optim import build_optimizer
from repro.optim.adagrad import AdagradConfig, AdagradRule
from repro.optim.adam import AdamRule
from repro.optim.rmsprop import RMSPropConfig, RMSPropRule


def test_adagrad_accumulates_squared_gradients(rng):
    rule = AdagradRule(AdagradConfig(learning_rate=0.1))
    params = np.zeros(16, dtype=np.float32)
    grads = rng.normal(size=16).astype(np.float32)
    state = rule.init_state(16)
    rule.apply(params, grads, state, 1)
    np.testing.assert_allclose(state["accumulator"], grads**2, rtol=1e-6)
    first_step = params.copy()
    rule.apply(params, grads, state, 2)
    # The adaptive denominator grows, so the second step is smaller in magnitude.
    assert np.all(np.abs(params - first_step) <= np.abs(first_step) + 1e-7)


def test_adagrad_weight_decay_and_validation():
    with pytest.raises(ConfigurationError):
        AdagradConfig(eps=0.0)
    rule = AdagradRule(AdagradConfig(learning_rate=0.1, weight_decay=0.5))
    params = np.full(4, 2.0, dtype=np.float32)
    rule.apply(params, np.zeros(4, dtype=np.float32), rule.init_state(4), 1)
    assert np.all(params < 2.0)


def test_rmsprop_moving_average(rng):
    rule = RMSPropRule(RMSPropConfig(learning_rate=0.01, alpha=0.9))
    params = np.zeros(8, dtype=np.float32)
    grads = np.ones(8, dtype=np.float32)
    state = rule.init_state(8)
    rule.apply(params, grads, state, 1)
    np.testing.assert_allclose(state["square_avg"], 0.1, rtol=1e-5)
    rule.apply(params, grads, state, 2)
    np.testing.assert_allclose(state["square_avg"], 0.19, rtol=1e-5)
    assert np.all(params < 0)


def test_rmsprop_momentum_accumulates():
    plain = RMSPropRule(RMSPropConfig(learning_rate=0.01, momentum=0.0))
    momentum = RMSPropRule(RMSPropConfig(learning_rate=0.01, momentum=0.9))
    grads = np.ones(4, dtype=np.float32)
    params_plain = np.zeros(4, dtype=np.float32)
    params_momentum = np.zeros(4, dtype=np.float32)
    state_plain = plain.init_state(4)
    state_momentum = momentum.init_state(4)
    for step in (1, 2, 3):
        plain.apply(params_plain, grads, state_plain, step)
        momentum.apply(params_momentum, grads, state_momentum, step)
    assert np.all(np.abs(params_momentum) > np.abs(params_plain))


def test_rmsprop_validation():
    with pytest.raises(ConfigurationError):
        RMSPropConfig(alpha=1.0)
    with pytest.raises(ConfigurationError):
        RMSPropConfig(momentum=-1.0)


def test_build_optimizer_factory():
    assert isinstance(build_optimizer("adam"), AdamRule)
    assert isinstance(build_optimizer("adamw", weight_decay=0.1), AdamRule)
    assert isinstance(build_optimizer("adagrad"), AdagradRule)
    assert isinstance(build_optimizer("rmsprop"), RMSPropRule)
    with pytest.raises(ConfigurationError):
        build_optimizer("lamb")


def test_init_state_shapes():
    rule = RMSPropRule()
    state = rule.init_state(10)
    assert set(state) == {"square_avg", "momentum_buffer"}
    assert all(buffer.shape == (10,) and buffer.dtype == np.float32 for buffer in state.values())
    with pytest.raises(ConfigurationError):
        rule.init_state(-1)
