"""Cross-module integration tests tying the public API together."""

import numpy as np
import pytest

import repro
from repro import (
    DeepOptimizerStates,
    DeepOptimizerStatesConfig,
    ShardedMixedPrecisionOptimizer,
    Trainer,
    TrainingJobConfig,
    build_strategy,
    get_model_preset,
    optimal_update_stride,
)
from repro.core.numeric_executor import SequentialCpuExecutor
from repro.hardware.throughput import ThroughputProfile
from repro.model.nn.model import TinyTransformerLM
from repro.optim import AdamRule
from repro.training.numeric import MiniTrainer


def test_package_exports_are_importable():
    assert repro.__version__
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_flow_from_readme():
    report = Trainer(
        TrainingJobConfig(model="7B", strategy="deep-optimizer-states", iterations=3, warmup_iterations=1)
    ).run()
    baseline = Trainer(
        TrainingJobConfig(model="7B", strategy="zero3-offload", iterations=3, warmup_iterations=1)
    ).run()
    assert report.speedup_over(baseline) > 1.5
    assert "iteration_s" in report.as_row()


def test_middleware_attached_to_real_model_training():
    """The full stack: NumPy transformer -> ZeRO-3 sharding -> interleaved updates."""
    config = get_model_preset("nano")
    model = TinyTransformerLM(config, seed=0)
    strategy = DeepOptimizerStates(DeepOptimizerStatesConfig(subgroup_size=4096, update_stride=2))
    optimizer = ShardedMixedPrecisionOptimizer(
        model.flatten_parameters(),
        AdamRule(),
        data_parallel_degree=2,
        offload=strategy.offload_config(4096),
    )
    executor = strategy.attach(optimizer)

    reference = ShardedMixedPrecisionOptimizer(
        model.flatten_parameters(),
        AdamRule(),
        data_parallel_degree=2,
        offload=strategy.offload_config(4096),
    )

    rng = np.random.default_rng(0)
    for step in range(3):
        tokens = rng.integers(0, config.vocab_size, size=(2, config.sequence_length))
        targets = rng.integers(0, config.vocab_size, size=(2, config.sequence_length))
        _, grads = model.train_step_gradients(tokens, targets)
        optimizer.set_gradients(grads)
        optimizer.step(executor)
        reference.set_gradients(grads)
        reference.step(SequentialCpuExecutor())
        model.load_flat_parameters(optimizer.gathered_fp16_parameters().astype(np.float32))

    np.testing.assert_array_equal(
        optimizer.gathered_fp32_parameters(), reference.gathered_fp32_parameters()
    )
    assert executor.devices_used()["gpu"] > 0


def test_stride_selection_consistent_between_api_layers(h100_machine):
    profile = ThroughputProfile.from_machine(h100_machine)
    strategy = build_strategy("deep-optimizer-states")
    assert strategy.update_stride(profile) == optimal_update_stride(profile)
    job = TrainingJobConfig(model="7B", strategy="deep-optimizer-states").resolve()
    assert job.plan.stride == optimal_update_stride(job.profile)


def test_paper_headline_claims_hold_in_simulation():
    """2-2.5x faster iterations and ~1.7x+ faster updates for the 20B model."""
    dos = Trainer(TrainingJobConfig(model="20B", strategy="deep-optimizer-states", iterations=3, warmup_iterations=1)).run()
    zero3 = Trainer(TrainingJobConfig(model="20B", strategy="zero3-offload", iterations=3, warmup_iterations=1)).run()
    speedup = dos.speedup_over(zero3)
    assert 1.8 <= speedup <= 3.2
    assert dos.update_throughput_pps / zero3.update_throughput_pps >= 1.5
    # Training the 20B model with DOS costs no more than the 7B model on the baseline
    # (the Figure 9 observation).
    zero3_7b = Trainer(TrainingJobConfig(model="7B", strategy="zero3-offload", iterations=3, warmup_iterations=1)).run()
    assert dos.iteration_seconds <= zero3_7b.iteration_seconds * 1.8


def test_mini_trainer_and_simulated_trainer_share_strategy_objects():
    strategy = build_strategy("deep-optimizer-states", subgroup_size=4096)
    mini = MiniTrainer(get_model_preset("nano"), strategy=strategy, data_parallel_degree=1, subgroup_size=4096)
    assert mini.strategy is strategy
    report = Trainer(TrainingJobConfig(model="7B", strategy=strategy, iterations=3, warmup_iterations=1)).run()
    assert report.job["strategy"] == "deep-optimizer-states"
