"""Tests for throughput profiles and the Table 1 reconstruction."""

import pytest

from repro.common.errors import ConfigurationError
from repro.hardware.throughput import ThroughputProfile, TransferKind, transfer_table
from repro.precision.dtypes import DType


def test_profile_from_machine_matches_paper_headline_rates(h100_machine):
    profile = ThroughputProfile.from_machine(h100_machine)
    # 55 GB/s PCIe over 4-byte FP32 parameters.
    assert profile.pcie_pps == pytest.approx(55e9 / 4)
    # "the 4xH100 GPUs update ~100 Billion parameters per second" -> 25 B/s per GPU.
    assert profile.gpu_update_pps == pytest.approx(25e9)
    # 24 cores per rank at ~83M params/s per core -> ~2 B params/s per rank.
    assert profile.cpu_update_pps == pytest.approx(2e9, rel=0.05)
    # H32<->H16 at 62 GB/s shared by 4 ranks, 6 bytes moved per converted parameter.
    assert profile.cpu_downscale_pps == pytest.approx(62e9 / 4 / 6, rel=1e-6)


def test_profile_respects_cores_per_gpu_override(h100_machine):
    few = ThroughputProfile.from_machine(h100_machine, cores_per_gpu=10)
    many = ThroughputProfile.from_machine(h100_machine, cores_per_gpu=40)
    assert few.cpu_update_pps < many.cpu_update_pps
    with pytest.raises(ConfigurationError):
        ThroughputProfile.from_machine(h100_machine, cores_per_gpu=0)


def test_profile_rejects_non_positive_rates():
    with pytest.raises(ConfigurationError):
        ThroughputProfile(pcie_pps=0, gpu_update_pps=1, cpu_update_pps=1, cpu_downscale_pps=1)


def test_paper_v100_profile_values(paper_v100_profile):
    assert paper_v100_profile.pcie_pps == pytest.approx(3e9)
    assert paper_v100_profile.gpu_update_pps == pytest.approx(35e9)
    assert paper_v100_profile.cpu_update_pps == pytest.approx(2e9)
    assert paper_v100_profile.cpu_downscale_pps == pytest.approx(8.7e9)


def test_scaled_cpu_returns_new_profile(h100_profile):
    scaled = h100_profile.scaled_cpu(0.5)
    assert scaled.cpu_update_pps == pytest.approx(h100_profile.cpu_update_pps * 0.5)
    assert scaled.gpu_update_pps == h100_profile.gpu_update_pps
    with pytest.raises(ConfigurationError):
        h100_profile.scaled_cpu(0.0)


def test_seconds_helpers(h100_profile):
    params = 100_000_000
    assert h100_profile.seconds_for_update(params, "gpu") == pytest.approx(params / 25e9)
    assert h100_profile.seconds_for_update(params, "cpu") == pytest.approx(
        params / h100_profile.cpu_update_pps
    )
    assert h100_profile.seconds_for_downscale(params) == pytest.approx(
        params / h100_profile.cpu_downscale_pps
    )
    fp32 = h100_profile.seconds_for_transfer(params, DType.FP32)
    fp16 = h100_profile.seconds_for_transfer(params, DType.FP16)
    assert fp16 == pytest.approx(fp32 / 2)


def test_transfer_table_reproduces_table1_ordering(h100_machine):
    table = transfer_table(h100_machine)
    # On-device conversion is fastest, then host conversion, then pinned PCIe, then the
    # two mixed-precision cross-device paths (Table 1's ordering).
    assert table[TransferKind.G32_G16] > table[TransferKind.H32_H16]
    assert table[TransferKind.H32_H16] > table[TransferKind.H16_G16] / 2
    assert table[TransferKind.H16_G16] > table[TransferKind.H32_G16]
    assert table[TransferKind.H32_G16] > table[TransferKind.G16_H32]


def test_transfer_table_matches_paper_within_factor(h100_machine):
    paper = {
        TransferKind.G32_G16: 1200.0,
        TransferKind.H32_H16: 62.0,
        TransferKind.H16_G16: 52.0,
        TransferKind.H32_G16: 8.0,
        TransferKind.G16_H32: 4.0,
    }
    table = transfer_table(h100_machine)
    for kind, expected in paper.items():
        assert table[kind] == pytest.approx(expected, rel=0.35)
