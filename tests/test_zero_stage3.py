"""Tests for the sharded mixed-precision optimizer (ZeRO-3 substrate)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.optim import AdamConfig, AdamRule
from repro.zero.offload import OffloadConfig, OffloadDevice
from repro.zero.stage3 import ShardedMixedPrecisionOptimizer, offload_disabled_config


def make_optimizer(num_params=1000, dp=2, subgroup_size=128, static_fraction=0.0, seed=0):
    rng = np.random.default_rng(seed)
    params = rng.normal(size=num_params).astype(np.float32)
    offload = OffloadConfig(subgroup_size=subgroup_size, static_gpu_fraction=static_fraction)
    rule = AdamRule(AdamConfig(learning_rate=1e-3))
    return (
        ShardedMixedPrecisionOptimizer(
            params, rule, data_parallel_degree=dp, offload=offload
        ),
        params,
        rng,
    )


def test_sharding_covers_all_parameters():
    optimizer, params, _ = make_optimizer()
    gathered = optimizer.gathered_fp32_parameters()
    np.testing.assert_array_equal(gathered, params)
    assert optimizer.num_subgroups() == sum(
        optimizer.num_subgroups(rank) for rank in optimizer.ranks
    )


def test_fp16_working_copy_matches_downscaled_master():
    optimizer, params, _ = make_optimizer()
    np.testing.assert_array_equal(
        optimizer.gathered_fp16_parameters(), params.astype(np.float16)
    )


def test_static_residents_marked_per_rank():
    optimizer, _, _ = make_optimizer(num_params=1024, dp=2, subgroup_size=128, static_fraction=0.5)
    for rank in optimizer.ranks:
        subgroups = optimizer.subgroups(rank)
        statics = [s for s in subgroups if s.static_gpu_resident]
        assert len(statics) == len(subgroups) // 2


def test_set_gradients_distributes_and_casts(rng):
    optimizer, _, _ = make_optimizer(num_params=300, dp=1, subgroup_size=100)
    grads = rng.normal(size=300).astype(np.float32)
    optimizer.set_gradients(grads)
    for subgroup in optimizer.subgroups():
        expected = grads[subgroup.spec.slice].astype(np.float16)
        np.testing.assert_array_equal(subgroup.fp16_grads, expected)
    with pytest.raises(ConfigurationError):
        optimizer.set_gradients(grads[:-1])


def test_default_step_updates_every_subgroup(rng):
    optimizer, params, _ = make_optimizer(num_params=500, dp=2, subgroup_size=100)
    grads = rng.normal(size=500).astype(np.float32)
    optimizer.set_gradients(grads)
    step = optimizer.step()
    assert step == 1
    assert optimizer.step_count == 1
    updated = optimizer.gathered_fp32_parameters()
    assert not np.allclose(updated, params)
    for subgroup in optimizer.subgroups():
        assert subgroup.last_update_step == 1


def test_custom_executor_receives_rank_subgroups(rng):
    optimizer, _, _ = make_optimizer(num_params=400, dp=2, subgroup_size=100)
    optimizer.set_gradients(rng.normal(size=400).astype(np.float32))
    seen = []

    def executor(subgroups, rule, step):
        seen.append((len(subgroups), step))
        for subgroup in subgroups:
            subgroup.flush_gradients_to_host()
            subgroup.apply_update(rule, step, device="cpu")

    optimizer.step(executor)
    assert seen == [(2, 1), (2, 1)]


def test_offload_disabled_places_subgroups_on_gpu():
    rng = np.random.default_rng(0)
    params = rng.normal(size=200).astype(np.float32)
    optimizer = ShardedMixedPrecisionOptimizer(
        params, AdamRule(), data_parallel_degree=1, offload=offload_disabled_config(64)
    )
    assert optimizer.offload.device == OffloadDevice.NONE
    assert all(s.placement.value == "gpu" for s in optimizer.subgroups())


def test_state_dict_round_trip(rng):
    optimizer, _, _ = make_optimizer(num_params=256, dp=2, subgroup_size=64, seed=3)
    optimizer.set_gradients(rng.normal(size=256).astype(np.float32))
    optimizer.step()
    snapshot = optimizer.state_dict()

    restored, _, _ = make_optimizer(num_params=256, dp=2, subgroup_size=64, seed=99)
    restored.load_state_dict(snapshot)
    np.testing.assert_array_equal(
        restored.gathered_fp32_parameters(), optimizer.gathered_fp32_parameters()
    )
    np.testing.assert_array_equal(
        restored.gathered_fp16_parameters(), optimizer.gathered_fp16_parameters()
    )
    assert restored.step_count == optimizer.step_count


def test_state_dict_mismatch_rejected():
    optimizer, _, _ = make_optimizer(num_params=256, dp=2, subgroup_size=64)
    other, _, _ = make_optimizer(num_params=128, dp=2, subgroup_size=64)
    with pytest.raises(ConfigurationError):
        other.load_state_dict(optimizer.state_dict())


def test_invalid_construction():
    with pytest.raises(ConfigurationError):
        ShardedMixedPrecisionOptimizer(np.array([], dtype=np.float32), AdamRule())
    with pytest.raises(ConfigurationError):
        ShardedMixedPrecisionOptimizer(np.ones(10, dtype=np.float32), AdamRule(), data_parallel_degree=0)
    optimizer, _, _ = make_optimizer()
    with pytest.raises(ConfigurationError):
        optimizer.subgroups(rank=99)


def test_describe_contains_key_fields():
    optimizer, _, _ = make_optimizer()
    description = optimizer.describe()
    assert description["data_parallel_degree"] == 2
    assert description["offload_device"] == "cpu"
    assert "subgroups_per_rank" in description
